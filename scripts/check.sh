#!/usr/bin/env bash
# Repo health gate: formatting, lints, tests. Run from the repo root.
# CI runs exactly this script (.github/workflows/ci.yml); keep it fast
# and fully offline — the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> ddpa profile JSONL smoke test"
# Every sample must profile cleanly and emit strict one-object-per-line
# JSONL (validated by the jsonl-check hidden subcommand of the CLI, which
# reuses the crates/obs validator).
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
for sample in samples/*; do
    out="$tmp/$(basename "$sample").jsonl"
    cargo run -q -p ddpa-cli -- profile "$sample" --json "$out" > /dev/null
    cargo run -q -p ddpa-cli -- jsonl-check "$out"
done

echo "==> cycle-collapse smoke test"
# The differential suite (fixed seeds) proves collapsing never changes an
# answer; the profile run proves the collapse actually fires end-to-end —
# samples/cycles.cons is a 40-edge copy ring, over the engine's default
# threshold — and exports well-formed demand.cycles.* metrics.
cargo test -q -p ddpa-demand --test cycles_differential
cyc="$tmp/cycles-metrics.jsonl"
cargo run -q -p ddpa-cli -- profile samples/cycles.cons --json "$cyc" > /dev/null
cargo run -q -p ddpa-cli -- jsonl-check "$cyc"
grep -q '"name":"demand.cycles.collapsed","value":[1-9]' "$cyc" \
    || { echo "metrics missing a nonzero demand.cycles.collapsed" >&2; exit 1; }

echo "==> shared-memo smoke test"
# The differential suite (fixed seeds) proves the shared cross-worker
# memo table is transparent: answers bit-identical to private-memo
# engines and the naive oracle, including across add-constraints
# generations. The serve run below proves cross-worker reuse end-to-end.
cargo test -q -p ddpa-demand --test differential shared_memo

echo "==> ddpa-serve smoke test"
# Start a server on an ephemeral port, run a batch through the client,
# shut it down cleanly, and validate the exported metrics JSONL.
portfile="$tmp/serve-port"
srv_metrics="$tmp/serve-metrics.jsonl"
access_log="$tmp/serve-access.jsonl"
cargo run -q -p ddpa-cli -- serve --addr 127.0.0.1:0 \
    --port-file "$portfile" --metrics-out "$srv_metrics" \
    --access-log "$access_log" --slow-ms 0 \
    > "$tmp/serve.log" &
srv_pid=$!
for _ in $(seq 1 100); do
    [ -s "$portfile" ] && break
    sleep 0.1
done
[ -s "$portfile" ] || { echo "server never wrote $portfile" >&2; exit 1; }
addr="$(cat "$portfile")"
client() { cargo run -q -p ddpa-cli -- client --addr "$addr" "$@" > /dev/null; }
client ping
client open smoke samples/list.mc
client query smoke main::got data        # a batch over the wire
client query smoke main::got data        # warm repeat: served from the memo table
client query smoke main::got data --parallel  # workers reuse the session's shared memo
client query smoke main::got --trace     # traced request: response carries the delta report
client slow                              # slow-query ring over the wire
client stats
client shutdown
wait "$srv_pid"
cargo run -q -p ddpa-cli -- jsonl-check "$srv_metrics"
grep -q 'server.cache_hits' "$srv_metrics" \
    || { echo "metrics missing server.cache_hits" >&2; exit 1; }
grep -q '"name":"demand.share.hits","value":[1-9]' "$srv_metrics" \
    || { echo "metrics missing a nonzero demand.share.hits" >&2; exit 1; }
grep -Eq '"kind":"hist","name":"server\.latency\.request_us".*"p99":[1-9]' "$srv_metrics" \
    || { echo "metrics missing a nonzero request-latency p99 histogram" >&2; exit 1; }
# The access log is itself strict metrics JSONL: one access line per
# request, plus slow lines (threshold 0 ⇒ everything is slow).
cargo run -q -p ddpa-cli -- jsonl-check "$access_log"
grep -q '"kind":"access"' "$access_log" \
    || { echo "access log missing access lines" >&2; exit 1; }
grep -q '"kind":"slow"' "$access_log" \
    || { echo "access log missing slow lines (slow-ms 0)" >&2; exit 1; }
grep -q '"trace":"r' "$access_log" \
    || { echo "access log missing request trace ids" >&2; exit 1; }

echo "==> flight recorder / introspection smoke test"
# Against a live server with the recorder on (the default): a traced
# query populates the ring, the flight export and the scrape both pass
# jsonl-check, the scrape shows nonzero flight events, and the live
# views (top, graph --dot) render.
portfile3="$tmp/serve-flight-port"
flight_out="$tmp/flight.jsonl"
scrape_out="$tmp/scrape.jsonl"
cargo run -q -p ddpa-cli -- serve --addr 127.0.0.1:0 \
    --port-file "$portfile3" \
    > "$tmp/serve-flight.log" &
srv_pid=$!
for _ in $(seq 1 100); do
    [ -s "$portfile3" ] && break
    sleep 0.1
done
[ -s "$portfile3" ] || { echo "server never wrote $portfile3" >&2; exit 1; }
addr="$(cat "$portfile3")"
client open smoke samples/list.mc
client query smoke main::got --trace
cargo run -q -p ddpa-cli -- flight smoke --addr "$addr" --out "$flight_out"
cargo run -q -p ddpa-cli -- jsonl-check "$flight_out"
grep -q '"kind":"flight"' "$flight_out" \
    || { echo "flight export has no flight events" >&2; exit 1; }
cargo run -q -p ddpa-cli -- scrape --addr "$addr" --out "$scrape_out"
cargo run -q -p ddpa-cli -- jsonl-check "$scrape_out"
grep -Eq '"name":"session\.smoke\.flight_events","value":[1-9]' "$scrape_out" \
    || { echo "scrape missing a nonzero session.smoke.flight_events" >&2; exit 1; }
# Capture before grepping: `grep -q` exits on first match, and under
# pipefail the writer's resulting EPIPE would fail the pipeline.
cargo run -q -p ddpa-cli -- top smoke --addr "$addr" --iters 1 > "$tmp/top.out"
grep -q 'critical path: work' "$tmp/top.out" \
    || { echo "ddpa top did not render the critical path" >&2; exit 1; }
cargo run -q -p ddpa-cli -- graph smoke --addr "$addr" --dot > "$tmp/graph.dot"
head -1 "$tmp/graph.dot" | grep -q 'digraph goals' \
    || { echo "ddpa graph --dot did not render DOT" >&2; exit 1; }
client shutdown
wait "$srv_pid"
# A local traced query with the recorder on (the default) exports a
# nonzero demand.flight.events counter.
flight_metrics="$tmp/flight-local-metrics.jsonl"
cargo run -q -p ddpa-cli -- query samples/list.mc main::got \
    --metrics-out "$flight_metrics" > /dev/null
cargo run -q -p ddpa-cli -- jsonl-check "$flight_metrics"
grep -q '"name":"demand.flight.events","value":[1-9]' "$flight_metrics" \
    || { echo "metrics missing a nonzero demand.flight.events" >&2; exit 1; }

echo "==> snapshot / warm-start smoke test"
# First server life: open a session, warm the memo table, snapshot it to
# disk (both on request and via the periodic background snapshotter).
# Second life: --restore warm-starts the session from the same directory,
# so the very first query must be served from installed fixpoints
# (nonzero demand.share.hits with no prior query in this life).
snapdir="$tmp/snaps"
portfile2="$tmp/serve2-port"
snap_metrics="$tmp/serve-snap-metrics.jsonl"
cargo run -q -p ddpa-cli -- serve --addr 127.0.0.1:0 \
    --port-file "$portfile2" --snapshot-dir "$snapdir" --snapshot-every-ms 200 \
    > "$tmp/serve2.log" &
srv_pid=$!
for _ in $(seq 1 100); do
    [ -s "$portfile2" ] && break
    sleep 0.1
done
[ -s "$portfile2" ] || { echo "server never wrote $portfile2" >&2; exit 1; }
addr="$(cat "$portfile2")"
client open smoke samples/list.mc
client query smoke main::got data
client snapshot smoke                    # explicit snapshot into --snapshot-dir
client shutdown
wait "$srv_pid"
[ -s "$snapdir/smoke.snap" ] || { echo "no snapshot written to $snapdir" >&2; exit 1; }

cargo run -q -p ddpa-cli -- serve --addr 127.0.0.1:0 \
    --port-file "$portfile2.b" --metrics-out "$snap_metrics" \
    --snapshot-dir "$snapdir" --restore \
    > "$tmp/serve3.log" &
srv_pid=$!
for _ in $(seq 1 100); do
    [ -s "$portfile2.b" ] && break
    sleep 0.1
done
[ -s "$portfile2.b" ] || { echo "server never wrote $portfile2.b" >&2; exit 1; }
addr="$(cat "$portfile2.b")"
client open smoke samples/list.mc        # --restore warm-starts from smoke.snap
client query smoke main::got data
client shutdown
wait "$srv_pid"
cargo run -q -p ddpa-cli -- jsonl-check "$snap_metrics"
grep -q '"name":"snap.load","value":[1-9]' "$snap_metrics" \
    || { echo "metrics missing a nonzero snap.load after --restore" >&2; exit 1; }
grep -q '"name":"demand.share.hits","value":[1-9]' "$snap_metrics" \
    || { echo "restored session answered cold (no demand.share.hits)" >&2; exit 1; }

# A corrupted snapshot must be refused cleanly, offline, at the CLI level.
cp samples/list.mc "$tmp/snap-prog.mc"
cli_snap="$tmp/cli.snap"
cargo run -q -p ddpa-cli -- snapshot "$tmp/snap-prog.mc" --out "$cli_snap" > /dev/null
cargo run -q -p ddpa-cli -- restore "$tmp/snap-prog.mc" "$cli_snap" > /dev/null
printf 'garbage' >> "$cli_snap"
if cargo run -q -p ddpa-cli -- restore "$tmp/snap-prog.mc" "$cli_snap" > /dev/null 2>&1; then
    echo "corrupted snapshot was not refused" >&2; exit 1
fi

echo "==> incremental edit smoke test"
# A warm session edited via add-constraints keeps the goals whose
# support sets miss the edit: the differential suite (fixed seeds)
# proves the split is exact across edit scripts; end-to-end, the edit
# must leave a nonzero demand.dirty.retained in the metrics export and
# a re-query of an untouched goal must answer at zero deduction work.
cargo test -q -p ddpa-demand --test incremental
edit_base="$tmp/edit-base.cons"
edit_extra="$tmp/edit-extra.cons"
printf 'p = &o\nq = p\nr = &u\n' > "$edit_base"
printf 's = r\n' > "$edit_extra"
portfile5="$tmp/serve-edit-port"
edit_metrics="$tmp/serve-edit-metrics.jsonl"
cargo run -q -p ddpa-cli -- serve --addr 127.0.0.1:0 \
    --port-file "$portfile5" --metrics-out "$edit_metrics" \
    > "$tmp/serve-edit.log" &
srv_pid=$!
for _ in $(seq 1 100); do
    [ -s "$portfile5" ] && break
    sleep 0.1
done
[ -s "$portfile5" ] || { echo "server never wrote $portfile5" >&2; exit 1; }
addr="$(cat "$portfile5")"
client open smoke "$edit_base"
client query smoke q r                   # warm both chains
client add smoke "$edit_extra"           # touches only the r-chain
# The untouched q-chain answers from the still-warm table.
cargo run -q -p ddpa-cli -- client --addr "$addr" query smoke q \
    > "$tmp/edit-requery.out"
grep -q '"work":0' "$tmp/edit-requery.out" \
    || { echo "re-query after edit re-derived an untouched goal: $(cat "$tmp/edit-requery.out")" >&2; exit 1; }
client shutdown
wait "$srv_pid"
cargo run -q -p ddpa-cli -- jsonl-check "$edit_metrics"
grep -q '"name":"demand.dirty.retained","value":[1-9]' "$edit_metrics" \
    || { echo "metrics missing a nonzero demand.dirty.retained" >&2; exit 1; }

echo "==> parallel scheduler smoke test"
# The differential suite (fixed seeds) proves the frame scheduler is
# exact — {sequential, DFS×1..N, BFS×1..N} all match the wave solver,
# including across add-constraints generations. Run it at the sequential
# boundary and at the CI worker count via the env knob.
DDPA_SCHED_WORKERS=1 cargo test -q -p ddpa-demand --test sched_differential
DDPA_SCHED_WORKERS=4 cargo test -q -p ddpa-demand --test sched_differential
# End-to-end: a traced parallel_query against a live --workers 4 server
# over a wide (headroom-rich) workload must actually steal — the
# mirrored demand.sched.steals counter lands in the metrics export.
wide="$tmp/wide.cons"
# Big enough that the solve outlives an OS timeslice: on a one-core
# host a short solve can be drained entirely by one worker, and then
# nothing steals.
cargo run -q -p ddpa-cli -- gen --wide --size 8000 --seed 7 > "$wide"
portfile4="$tmp/serve-sched-port"
sched_metrics="$tmp/serve-sched-metrics.jsonl"
cargo run -q -p ddpa-cli -- serve --addr 127.0.0.1:0 \
    --port-file "$portfile4" --metrics-out "$sched_metrics" \
    --workers 4 \
    > "$tmp/serve-sched.log" &
srv_pid=$!
for _ in $(seq 1 100); do
    [ -s "$portfile4" ] && break
    sleep 0.1
done
[ -s "$portfile4" ] || { echo "server never wrote $portfile4" >&2; exit 1; }
addr="$(cat "$portfile4")"
client open smoke "$wide"
client query smoke hub --parallel-query --trace
cargo run -q -p ddpa-cli -- top smoke --addr "$addr" --iters 1 > "$tmp/top-sched.out"
grep -q '4 worker(s), dfs policy' "$tmp/top-sched.out" \
    || { echo "ddpa top did not show the scheduler configuration" >&2; exit 1; }
# Whether a given solve steals is a scheduling race (on a one-core host
# a single worker can drain the whole goal graph before the others run),
# so retry across fresh sessions — each `open` gets its own memo table,
# hence a fresh scheduler run — until the live scrape shows a steal.
sched_scrape="$tmp/sched-scrape.jsonl"
stole=""
for i in $(seq 1 12); do
    client open "smoke$i" "$wide"
    client query "smoke$i" hub --parallel-query
    cargo run -q -p ddpa-cli -- scrape --addr "$addr" --out "$sched_scrape"
    if grep -q '"name":"demand.sched.steals","value":[1-9]' "$sched_scrape"; then
        stole=1
        break
    fi
done
[ -n "$stole" ] \
    || { echo "no nonzero demand.sched.steals after 12 parallel solves" >&2; exit 1; }
client shutdown
wait "$srv_pid"
cargo run -q -p ddpa-cli -- jsonl-check "$sched_metrics"
grep -q '"name":"demand.sched.steals","value":[1-9]' "$sched_metrics" \
    || { echo "metrics missing a nonzero demand.sched.steals" >&2; exit 1; }
grep -q '"name":"demand.sched.parked","value":[1-9]' "$sched_metrics" \
    || { echo "metrics missing a nonzero demand.sched.parked" >&2; exit 1; }

echo "All checks passed."
