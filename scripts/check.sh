#!/usr/bin/env bash
# Repo health gate: formatting, lints, tests. Run from the repo root.
# CI runs exactly this script (.github/workflows/ci.yml); keep it fast
# and fully offline — the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> ddpa profile JSONL smoke test"
# Every sample must profile cleanly and emit strict one-object-per-line
# JSONL (validated by the jsonl-check hidden subcommand of the CLI, which
# reuses the crates/obs validator).
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
for sample in samples/*; do
    out="$tmp/$(basename "$sample").jsonl"
    cargo run -q -p ddpa-cli -- profile "$sample" --json "$out" > /dev/null
    cargo run -q -p ddpa-cli -- jsonl-check "$out"
done

echo "All checks passed."
