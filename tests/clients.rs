//! Integration tests for the client analyses against realistic programs.

use ddpa::clients::{CallGraph, DerefAudit, Reachability};
use ddpa::demand::{DemandConfig, DemandEngine};

const DISPATCHER: &str = r#"
    int g;

    int *handle_a(int *req) { return req; }
    int *handle_b(int *req) { return &g; }
    int *never_installed(int *req) { return req; }
    void internal_only() { }

    void *routes0; void *routes1;
    void *shelf;

    void setup() {
        routes0 = handle_a;
        routes1 = handle_b;
        shelf = never_installed;   // address taken, but never called
        internal_only();
    }

    void main() {
        setup();
        int *r = (*routes0)(&g);
        r = (*routes1)(r);
    }
"#;

fn func_names(
    cp: &ddpa::constraints::ConstraintProgram,
    funcs: &[ddpa::constraints::FuncId],
) -> Vec<String> {
    funcs
        .iter()
        .map(|&f| cp.interner().resolve(cp.func(f).name).to_owned())
        .collect()
}

#[test]
fn dispatcher_callgraph_and_dead_code() {
    let cp = ddpa::compile(DISPATCHER).expect("compiles");
    let mut engine = DemandEngine::new(&cp, DemandConfig::default());
    let (cg, stats) = CallGraph::from_demand(&mut engine);
    assert_eq!(stats.indirect_fallback, 0);

    // Each route resolves to exactly one handler.
    for &cs in cp.indirect_callsites() {
        assert_eq!(cg.targets(cs).len(), 1, "routes are not conflated");
    }

    let main_fn = cp
        .funcs()
        .iter_enumerated()
        .find(|(_, i)| cp.interner().resolve(i.name) == "main")
        .map(|(id, _)| id)
        .expect("main");
    let reach = Reachability::compute(&cp, &cg, &[main_fn]);
    let mut dead = func_names(&cp, &reach.dead());
    dead.sort();
    assert_eq!(dead, vec!["never_installed"]);
}

#[test]
fn budget_degrades_gracefully_then_converges() {
    let cp = ddpa::compile(DISPATCHER).expect("compiles");

    // Zero budget: falls back, conservatively including never_installed.
    let mut tiny = DemandEngine::new(&cp, DemandConfig::default().with_budget(0));
    let cs = cp.indirect_callsites()[0];
    let fallback = tiny.call_targets(cs);
    assert!(!fallback.resolved);
    let names = func_names(&cp, &fallback.targets);
    assert!(names.contains(&"never_installed".to_owned()));

    // Conservative answer is a superset of the precise one.
    let mut full = DemandEngine::new(&cp, DemandConfig::default());
    let precise = full.call_targets(cs);
    assert!(precise.resolved);
    for t in &precise.targets {
        assert!(fallback.targets.contains(t));
    }

    // Repeated tiny-budget queries eventually converge by resumption.
    let mut attempts = 0;
    let mut resumed = DemandEngine::new(&cp, DemandConfig::default().with_budget(3));
    loop {
        attempts += 1;
        assert!(attempts < 10_000);
        let r = resumed.call_targets(cs);
        if r.resolved {
            assert_eq!(r.targets, precise.targets);
            break;
        }
    }
}

#[test]
fn deref_audit_on_suite_program() {
    let bench = ddpa::gen::suite().into_iter().next().expect("minic-app");
    let cp = bench.build();
    let mut engine = DemandEngine::new(&cp, DemandConfig::default());
    let audit = DerefAudit::run(&mut engine);
    assert_eq!(audit.sites.len(), cp.loads().len() + cp.stores().len());
    assert!(audit.sites.iter().all(|s| s.resolved));
    // The generated app always initializes what it dereferences through
    // parameters — but `p1`-style out-params loaded before any caller
    // stores remain sound either way; just check the audit is coherent.
    for site in audit.wild() {
        assert_eq!(site.targets, 0);
    }
}

#[test]
fn parallel_driver_matches_sequential_on_suite() {
    let bench = ddpa::gen::suite().into_iter().nth(1).expect("syn-1k");
    let cp = bench.build();
    let queries: Vec<_> = cp.loads().iter().map(|l| l.ptr).take(100).collect();
    let sequential = ddpa::demand::points_to_parallel(&cp, &queries, 1, &DemandConfig::default());
    let parallel = ddpa::demand::points_to_parallel(&cp, &queries, 4, &DemandConfig::default());
    for (s, p) in sequential.iter().zip(&parallel) {
        assert_eq!(s.pts, p.pts);
        assert_eq!(s.complete, p.complete);
    }
}
