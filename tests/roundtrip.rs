//! Property tests across crate boundaries: pretty-printer/parser
//! roundtrips and analysis-preserving constraint-text roundtrips, on
//! generator output. Cases are drawn from a seeded RNG so each run
//! exercises the same inputs deterministically.

use ddpa::gen::{generate_minic, generate_random, MiniCConfig, RandomConfig};
use ddpa::support::rng::Rng;

const CASES: usize = 32;

/// pretty ∘ parse is a fixpoint on generated MiniC programs.
#[test]
fn minic_pretty_parse_fixpoint() {
    let mut rng = Rng::seed_from_u64(0x0ddb_a5e1);
    for _ in 0..CASES {
        let seed = rng.gen_range(0u64..5000);
        let funcs = rng.gen_range(4usize..24);
        let program = generate_minic(&MiniCConfig::sized(seed, funcs));
        let text1 = ddpa::ir::pretty(&program);
        let reparsed = ddpa::ir::parse(&text1).expect("pretty output parses");
        ddpa::ir::check(&reparsed).expect("pretty output checks");
        let text2 = ddpa::ir::pretty(&reparsed);
        assert_eq!(text1, text2, "seed {seed} funcs {funcs}");
    }
}

/// Lowering the reparsed program gives the same constraint counts.
#[test]
fn minic_roundtrip_preserves_constraint_counts() {
    let mut rng = Rng::seed_from_u64(0x0ddb_a5e2);
    for _ in 0..CASES {
        let seed = rng.gen_range(0u64..5000);
        let program = generate_minic(&MiniCConfig::sized(seed, 12));
        let cp1 = ddpa::constraints::lower(&program).expect("lowers");
        let reparsed = ddpa::ir::parse(&ddpa::ir::pretty(&program)).expect("parses");
        let cp2 = ddpa::constraints::lower(&reparsed).expect("lowers");
        assert_eq!(cp1.num_constraints(), cp2.num_constraints(), "seed {seed}");
        assert_eq!(cp1.callsites().len(), cp2.callsites().len(), "seed {seed}");
        assert_eq!(cp1.num_nodes(), cp2.num_nodes(), "seed {seed}");
    }
}

/// Constraint-text roundtrips preserve whole solutions on random
/// workloads.
#[test]
fn constraint_text_roundtrip_preserves_solutions() {
    let mut rng = Rng::seed_from_u64(0x0ddb_a5e3);
    for _ in 0..CASES {
        let seed = rng.gen_range(0u64..5000);
        let cp = generate_random(&RandomConfig::sized(seed, 300));
        let printed = ddpa::constraints::print_constraints(&cp);
        let reparsed = ddpa::constraints::parse_constraints(&printed).expect("reparses");

        let sol1 = ddpa::anders::naive::solve(&cp);
        let sol2 = ddpa::anders::naive::solve(&reparsed);
        let summarize = |cp: &ddpa::constraints::ConstraintProgram,
                         sol: &ddpa::anders::Solution| {
            let mut map = std::collections::BTreeMap::new();
            for n in cp.node_ids() {
                let mut t: Vec<String> = sol
                    .pts_nodes(n)
                    .iter()
                    .map(|&x| cp.display_node(x))
                    .collect();
                t.sort();
                map.insert(cp.display_node(n), t);
            }
            map
        };
        let before = summarize(&cp, &sol1);
        let after = summarize(&reparsed, &sol2);
        // The text format only materializes referenced nodes; a node
        // absent after the roundtrip must have had an empty answer.
        for (name, targets) in &before {
            match after.get(name) {
                Some(t) => assert_eq!(t, targets, "seed {seed}: pts({name}) differs"),
                None => assert!(
                    targets.is_empty(),
                    "seed {seed}: unreferenced node {name} lost a non-empty set"
                ),
            }
        }
        assert!(after.keys().all(|k| before.contains_key(k)));
    }
}
