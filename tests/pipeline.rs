//! End-to-end pipeline tests: MiniC source → constraints → all three
//! solvers agree (naive oracle, worklist baseline, demand engine).

use ddpa::anders::{naive, worklist, SolverConfig};
use ddpa::constraints::ConstraintProgram;
use ddpa::demand::{DemandConfig, DemandEngine};

/// A corpus of MiniC programs covering the constructs the analyses model.
const CORPUS: &[(&str, &str)] = &[
    (
        "swap",
        r#"
        int a; int b;
        void swap(int **x, int **y) {
            int *t1 = *x;
            int *t2 = *y;
            *x = t2;
            *y = t1;
        }
        void main() {
            int *p = &a;
            int *q = &b;
            swap(&p, &q);
        }
        "#,
    ),
    (
        "heap-chains",
        r#"
        void main() {
            int **head = malloc();
            int *cell = malloc();
            *head = cell;
            int *got = *head;
            int **indirect = head;
            *indirect = got;
        }
        "#,
    ),
    (
        "function-pointers",
        r#"
        int g;
        int *zero(int *p) { return &g; }
        int *one(int *p)  { return p; }
        void main() {
            void *fp = zero;
            if (g == 0) fp = one;
            int *r = (*fp)(&g);
            int *s = fp(r);
        }
        "#,
    ),
    (
        "recursion",
        r#"
        int g;
        int *walk(int *p) {
            if (p == null) return &g;
            int *next = walk(p);
            return next;
        }
        void main() {
            int *r = walk(&g);
        }
        "#,
    ),
    (
        "globals-and-init",
        r#"
        int obj;
        int *gp = &obj;
        int **gpp = &gp;
        void main() {
            int *local = *gpp;
            *gpp = local;
        }
        "#,
    ),
    (
        "deep-derefs",
        r#"
        int x;
        void main() {
            int *p = &x;
            int **pp = &p;
            int ***ppp = &pp;
            int *r = **ppp;
            **ppp = r;
            int **q = *ppp;
        }
        "#,
    ),
    (
        "structs-field-sensitive",
        r#"
        struct Pair { int *first; int *second; };
        int a; int b;
        void main() {
            struct Pair pair;
            pair.first = &a;
            pair.second = &b;
            int *f = pair.first;
            int *s = pair.second;
            struct Pair *p = &pair;
            p->first = f;
            int *viaptr = p->first;
            int **faddr = &p->second;
        }
        "#,
    ),
    (
        "linked-list",
        r#"
        struct Node { struct Node *next; int *payload; };
        int data;
        void main() {
            struct Node *head = malloc();
            struct Node *second = malloc();
            head->next = second;
            head->payload = &data;
            struct Node *cur = head;
            while (cur != null) {
                int *got = cur->payload;
                cur = cur->next;
            }
        }
        "#,
    ),
    (
        "fp-through-memory",
        r#"
        int g;
        int *f1(int *a) { return a; }
        int *f2(int *a) { return &g; }
        void main() {
            void **table = malloc();
            *table = f1;
            *table = f2;
            void *h = *table;
            int *r = (*h)(&g);
        }
        "#,
    ),
];

fn compile(name: &str, src: &str) -> ConstraintProgram {
    ddpa::compile(src).unwrap_or_else(|e| panic!("{name} failed to compile: {e}"))
}

#[test]
fn all_solvers_agree_on_corpus() {
    for (name, src) in CORPUS {
        let cp = compile(name, src);
        let oracle = naive::solve(&cp);

        for config in [
            SolverConfig::default(),
            SolverConfig::without_cycle_elimination(),
        ] {
            let (got, _) = worklist::solve(&cp, &config);
            if let Err(node) = got.same_as(&oracle, &cp) {
                panic!(
                    "{name}: worklist (cycles={}) differs at {}",
                    config.cycle_elimination,
                    cp.display_node(node)
                );
            }
        }
        let (wave, _) = ddpa::anders::wave::solve(&cp);
        if let Err(node) = wave.same_as(&oracle, &cp) {
            panic!("{name}: wave differs at {}", cp.display_node(node));
        }

        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        for node in cp.node_ids() {
            let got = engine.points_to(node);
            assert!(
                got.complete,
                "{name}: pts({}) unresolved",
                cp.display_node(node)
            );
            assert_eq!(
                got.pts,
                oracle.pts_nodes(node),
                "{name}: pts({}) differs",
                cp.display_node(node)
            );
        }
        for cs in cp.callsites().indices() {
            let got = engine.call_targets(cs);
            assert!(got.resolved);
            assert_eq!(
                got.targets.as_slice(),
                oracle.call_targets(cs),
                "{name}: callsite {cs:?} targets differ"
            );
        }
    }
}

#[test]
fn swap_keeps_both_objects_in_both_pointers() {
    // Flow-insensitively, after swap p and q may each point to a and b.
    let (name, src) = CORPUS[0];
    let cp = compile(name, src);
    let mut engine = DemandEngine::new(&cp, DemandConfig::default());
    for var in ["main::p", "main::q"] {
        let node = cp
            .node_ids()
            .find(|&n| cp.display_node(n) == var)
            .expect("node exists");
        let r = engine.points_to(node);
        let names: Vec<String> = r.pts.iter().map(|&n| cp.display_node(n)).collect();
        assert_eq!(names, vec!["a", "b"], "{var}");
    }
}

#[test]
fn fp_through_memory_resolves_both_targets() {
    let (name, src) = CORPUS
        .iter()
        .find(|(name, _)| *name == "fp-through-memory")
        .expect("corpus entry exists");
    let cp = compile(name, src);
    let mut engine = DemandEngine::new(&cp, DemandConfig::default());
    let cs = cp.indirect_callsites()[0];
    let targets = engine.call_targets(cs);
    assert!(targets.resolved);
    let names: Vec<&str> = targets
        .targets
        .iter()
        .map(|&f| cp.interner().resolve(cp.func(f).name))
        .collect();
    assert_eq!(names, vec!["f1", "f2"]);
}

#[test]
fn textual_constraint_roundtrip_preserves_solutions() {
    for (name, src) in CORPUS {
        let cp = compile(name, src);
        let printed = ddpa::constraints::print_constraints(&cp);
        let reparsed = ddpa::constraints::parse_constraints(&printed)
            .unwrap_or_else(|e| panic!("{name} failed to reparse: {e}"));

        // Compare solutions keyed by display name (node ids differ).
        let sol1 = naive::solve(&cp);
        let sol2 = naive::solve(&reparsed);
        let pts_by_name = |cp: &ConstraintProgram, sol: &ddpa::anders::Solution| {
            let mut map = std::collections::BTreeMap::new();
            for n in cp.node_ids() {
                let mut targets: Vec<String> = sol
                    .pts_nodes(n)
                    .iter()
                    .map(|&t| cp.display_node(t))
                    .collect();
                targets.sort();
                map.insert(cp.display_node(n), targets);
            }
            map
        };
        assert_eq!(
            pts_by_name(&cp, &sol1),
            pts_by_name(&reparsed, &sol2),
            "{name}: solutions differ after text roundtrip"
        );
    }
}

#[test]
fn generated_suite_demand_equals_exhaustive_on_callgraph() {
    // The actual experiment invariant, on the two smallest suite entries.
    for bench in ddpa::gen::suite().into_iter().take(2) {
        let cp = bench.build();
        let solution = ddpa::anders::solve(&cp);
        let exhaustive = ddpa::clients::CallGraph::from_exhaustive(&cp, &solution);
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        let (demand, stats) = ddpa::clients::CallGraph::from_demand(&mut engine);
        assert!(demand.same_as(&exhaustive), "{}", bench.name);
        assert_eq!(stats.indirect_fallback, 0);
    }
}

#[test]
fn field_sensitivity_keeps_fields_apart() {
    let (name, src) = CORPUS
        .iter()
        .find(|(name, _)| *name == "structs-field-sensitive")
        .expect("corpus entry exists");
    let cp = compile(name, src);
    let mut engine = DemandEngine::new(&cp, DemandConfig::default());
    let node = |n: &str| {
        cp.node_ids()
            .find(|&x| cp.display_node(x) == n)
            .unwrap_or_else(|| panic!("no node {n}"))
    };
    // pair.first only ever holds &a (plus f, which is also a); pair.second
    // holds &b. A field-insensitive analysis would conflate them.
    let f = engine.points_to(node("main::f"));
    let names: Vec<String> = f.pts.iter().map(|&n| cp.display_node(n)).collect();
    assert_eq!(names, vec!["a"]);
    let s = engine.points_to(node("main::s"));
    let names: Vec<String> = s.pts.iter().map(|&n| cp.display_node(n)).collect();
    assert_eq!(names, vec!["b"]);
}

#[test]
fn linked_list_traversal_reaches_payload() {
    let (name, src) = CORPUS
        .iter()
        .find(|(name, _)| *name == "linked-list")
        .expect("corpus entry exists");
    let cp = compile(name, src);
    let mut engine = DemandEngine::new(&cp, DemandConfig::default());
    let got = cp
        .node_ids()
        .find(|&x| cp.display_node(x) == "main::got")
        .expect("got exists");
    let r = engine.points_to(got);
    assert!(r.complete);
    let names: Vec<String> = r.pts.iter().map(|&n| cp.display_node(n)).collect();
    assert_eq!(names, vec!["data"]);
}

#[test]
fn generated_minic_demand_equals_oracle_on_all_nodes() {
    for seed in [3u64, 8] {
        let program = ddpa::gen::generate_minic(&ddpa::gen::MiniCConfig::sized(seed, 10));
        let cp = ddpa::constraints::lower(&program).expect("lowers");
        let oracle = naive::solve(&cp);
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        for node in cp.node_ids() {
            let got = engine.points_to(node);
            assert!(
                got.complete,
                "seed {seed}: {} unresolved",
                cp.display_node(node)
            );
            assert_eq!(
                got.pts,
                oracle.pts_nodes(node),
                "seed {seed}: pts({}) differs",
                cp.display_node(node)
            );
        }
    }
}

#[test]
fn monolithic_arrays_behave_like_single_objects() {
    let cp = compile(
        "arrays",
        "int g; int h; \
         void main() { int *tab[4]; tab[0] = &g; tab[3] = &h; int *x = tab[1]; }",
    );
    let mut engine = DemandEngine::new(&cp, DemandConfig::default());
    let x = cp
        .node_ids()
        .find(|&n| cp.display_node(n) == "main::x")
        .expect("x");
    let r = engine.points_to(x);
    let names: Vec<String> = r.pts.iter().map(|&n| cp.display_node(n)).collect();
    // Monolithic: reading any element sees every stored address.
    assert_eq!(names, vec!["g", "h"]);
}

#[test]
fn function_pointer_array_dispatch() {
    let cp = compile(
        "fp-array",
        "int *f1(int *a) { return a; } \
         int *f2(int *a) { return a; } \
         void main() { \
             void *tab[2]; \
             tab[0] = f1; \
             tab[1] = f2; \
             void *h = tab[0]; \
             int *r = (*h)(null); \
         }",
    );
    let oracle = naive::solve(&cp);
    let mut engine = DemandEngine::new(&cp, DemandConfig::default());
    let cs = cp.indirect_callsites()[0];
    let targets = engine.call_targets(cs);
    assert!(targets.resolved);
    assert_eq!(targets.targets.as_slice(), oracle.call_targets(cs));
    assert_eq!(targets.targets.len(), 2, "monolithic table: both targets");
}

#[test]
fn array_decay_through_calls() {
    let cp = compile(
        "array-decay",
        "int g; \
         void take(int **p) { *p = &g; } \
         void main() { int *tab[2]; take(tab); take(&tab[0]); int *y = tab[0]; }",
    );
    let oracle = naive::solve(&cp);
    let y = cp
        .node_ids()
        .find(|&n| cp.display_node(n) == "main::y")
        .expect("y");
    let mut engine = DemandEngine::new(&cp, DemandConfig::default());
    assert_eq!(engine.points_to(y).pts, oracle.pts_nodes(y));
    let names: Vec<String> = oracle
        .pts_nodes(y)
        .iter()
        .map(|&n| cp.display_node(n))
        .collect();
    assert_eq!(names, vec!["g"]);
}
