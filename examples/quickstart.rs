//! Quick start: parse a MiniC program and answer points-to queries on
//! demand.
//!
//! ```sh
//! cargo run -p ddpa --example quickstart
//! ```

use ddpa::demand::{DemandConfig, DemandEngine};

const SOURCE: &str = r#"
    // The swap-like example family used throughout the literature.
    int a; int b;

    int *choose(int *x, int *y) {
        if (x == y) return x;
        return y;
    }

    void main() {
        int *p = &a;
        int *q = &b;
        int **pp = &p;
        int *r = choose(p, q);   // r -> {a, b}
        *pp = r;                 // p -> {a, b} as well, via the store
        int *s = *pp;
        s = p;                   // s -> {a, b}
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Parse, check, lower.
    let cp = ddpa::compile(SOURCE)?;
    println!(
        "program: {} locations, {} primitive constraints\n",
        cp.num_nodes(),
        cp.num_constraints()
    );

    // One engine, many queries; results are memoized across them.
    let mut engine = DemandEngine::new(&cp, DemandConfig::default());

    for name in ["main::p", "main::q", "main::r", "main::s", "choose::ret"] {
        let node = cp
            .node_ids()
            .find(|&n| cp.display_node(n) == name)
            .ok_or_else(|| format!("no node named {name}"))?;
        let answer = engine.points_to(node);
        let targets: Vec<String> = answer.pts.iter().map(|&t| cp.display_node(t)).collect();
        println!(
            "pts({name}) = {{{}}}   [work: {} rule firings{}]",
            targets.join(", "),
            answer.work,
            if answer.complete { "" } else { ", unresolved" },
        );
    }

    let stats = engine.stats();
    println!(
        "\nengine: {} queries, {} subgoals tabled, {} total firings",
        stats.queries,
        engine.tabled_goals(),
        stats.fires
    );
    Ok(())
}
