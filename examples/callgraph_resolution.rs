//! The paper's motivating client: resolving indirect calls to build a call
//! graph, comparing the demand-driven route against exhaustive analysis.
//!
//! ```sh
//! cargo run -p ddpa --example callgraph_resolution
//! ```

use std::time::Instant;

use ddpa::clients::{CallGraph, Reachability};
use ddpa::demand::{DemandConfig, DemandEngine};

const SOURCE: &str = r#"
    // A command dispatch table, the classic function-pointer pattern.
    int g;

    int *cmd_open(int *arg)  { return arg; }
    int *cmd_close(int *arg) { return arg; }
    int *cmd_read(int *arg)  { return &g; }
    int *helper(int *arg)    { return arg; }   // installed nowhere: dead

    void *table0; void *table1; void *table2;

    void install() {
        table0 = cmd_open;
        table1 = cmd_close;
        table2 = cmd_read;
    }

    void main() {
        install();
        void *which = table1;
        int *r = (*which)(&g);
        r = (*table2)(r);
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cp = ddpa::compile(SOURCE)?;

    // Demand-driven: one query per indirect call site.
    let mut engine = DemandEngine::new(&cp, DemandConfig::default());
    let start = Instant::now();
    let (demand_cg, stats) = CallGraph::from_demand(&mut engine);
    let demand_time = start.elapsed();

    // Exhaustive: solve everything, then read the targets off.
    let start = Instant::now();
    let solution = ddpa::anders::solve(&cp);
    let exhaustive_cg = CallGraph::from_exhaustive(&cp, &solution);
    let exhaustive_time = start.elapsed();

    println!("indirect call sites and their resolved targets:");
    for &cs in cp.indirect_callsites() {
        let names: Vec<&str> = demand_cg
            .targets(cs)
            .iter()
            .map(|&f| cp.interner().resolve(cp.func(f).name))
            .collect();
        println!("  callsite {cs:?} → {{{}}}", names.join(", "));
    }

    assert!(
        demand_cg.same_as(&exhaustive_cg),
        "precision must be identical"
    );
    println!(
        "\nprecision identical to exhaustive ✓  \
         (demand {demand_time:?} vs exhaustive {exhaustive_time:?}, \
         {} of {} queries resolved)",
        stats.indirect_resolved,
        stats.indirect_resolved + stats.indirect_fallback,
    );

    // A consumer of the call graph: dead-function detection.
    let main_fn = cp
        .funcs()
        .iter_enumerated()
        .find(|(_, i)| cp.interner().resolve(i.name) == "main")
        .map(|(id, _)| id)
        .expect("main exists");
    let reach = Reachability::compute(&cp, &demand_cg, &[main_fn]);
    let dead: Vec<&str> = reach
        .dead()
        .iter()
        .map(|&f| cp.interner().resolve(cp.func(f).name))
        .collect();
    println!(
        "reachable functions: {}, dead: {{{}}}",
        reach.count(),
        dead.join(", ")
    );
    // cmd_open is installed in table0 but table0 is never invoked.
    assert_eq!(dead, vec!["cmd_open", "helper"]);
    Ok(())
}
