//! Context-sensitivity via call-string cloning: the classic `id()`
//! conflation, and heap cloning for `malloc` wrappers.
//!
//! ```sh
//! cargo run -p ddpa --example context_sensitivity
//! ```

use ddpa::cxt::{CloneConfig, CsAnalysis};

const SOURCE: &str = r#"
    int a; int b;

    int *id(int *p) { return p; }

    // A malloc wrapper: context-insensitively, every caller shares ONE
    // abstract heap object.
    int *fresh() { int *p = malloc(); return p; }

    void main() {
        int *r1 = id(&a);
        int *r2 = id(&b);
        int *h1 = fresh();
        int *h2 = fresh();
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cp = ddpa::compile(SOURCE)?;
    let node = |name: &str| {
        cp.node_ids()
            .find(|&n| cp.display_node(n) == name)
            .unwrap_or_else(|| panic!("no node named {name}"))
    };
    let names = |nodes: &[ddpa::constraints::NodeId]| {
        nodes
            .iter()
            .map(|&n| cp.display_node(n))
            .collect::<Vec<_>>()
            .join(", ")
    };

    // Context-insensitive baseline: both id() results merge.
    let ci = ddpa::anders::solve(&cp);
    println!("context-insensitive:");
    println!("  pts(r1) = {{{}}}", names(&ci.pts_nodes(node("main::r1"))));
    println!("  pts(r2) = {{{}}}", names(&ci.pts_nodes(node("main::r2"))));
    assert_eq!(ci.pts(node("main::r1")).len(), 2);

    // k=1 call strings keep the two calls apart.
    let cs = CsAnalysis::run(&cp, &CloneConfig::with_k(1));
    println!(
        "\nk=1 call-string cloning ({} clones, {:.2}x nodes):",
        cs.cloned.clone_count,
        cs.cloned.expansion_factor(&cp)
    );
    let r1 = cs.pts_of(node("main::r1"));
    let r2 = cs.pts_of(node("main::r2"));
    println!("  pts(r1) = {{{}}}", names(&r1));
    println!("  pts(r2) = {{{}}}", names(&r2));
    assert_eq!(names(&r1), "a");
    assert_eq!(names(&r2), "b");

    // Heap cloning: h1 and h2 get distinct allocation sites.
    let h1 = cs.pts_of(node("main::h1"));
    let h2 = cs.pts_of(node("main::h2"));
    println!(
        "  pts(h1) = {{{}}}   pts(h2) = {{{}}}",
        names(&h1),
        names(&h2)
    );
    // Projection folds the cloned sites back to the original, so compare
    // inside the cloned program where the sites stay distinct.
    let ci_total: usize = cp.node_ids().map(|n| ci.pts(n).len()).sum();
    let cs_total = cs.total_pts(&cp);
    println!(
        "\nΣ|pts|: context-insensitive {ci_total} → k=1 {cs_total} \
         ({} spurious facts removed)",
        ci_total - cs_total
    );
    assert!(cs_total < ci_total);
    Ok(())
}
