//! Budgets and precision/latency trade-offs: sweep the per-query budget on
//! a generated workload and watch the resolution rate climb, then
//! demonstrate budget resumption.
//!
//! ```sh
//! cargo run -p ddpa --example budget_sweep --release
//! ```

use ddpa::demand::{DemandConfig, DemandEngine};
use ddpa::gen::{generate_random, RandomConfig};

fn main() {
    let cp = generate_random(&RandomConfig::sized(7, 8_000));
    let queries: Vec<_> = cp.loads().iter().map(|l| l.ptr).take(300).collect();
    println!(
        "workload: {} constraints, {} queries\n",
        cp.num_constraints(),
        queries.len()
    );

    println!(
        "{:>10}  {:>9}  {:>13}",
        "budget", "resolved", "avg work/query"
    );
    for budget in [10u64, 100, 1_000, 10_000, 100_000] {
        let mut engine = DemandEngine::new(&cp, DemandConfig::default().with_budget(budget));
        let mut resolved = 0usize;
        let mut work = 0u64;
        for &q in &queries {
            let r = engine.points_to(q);
            resolved += r.complete as usize;
            work += r.work;
        }
        println!(
            "{:>10}  {:>8.1}%  {:>13.0}",
            budget,
            100.0 * resolved as f64 / queries.len() as f64,
            work as f64 / queries.len() as f64
        );
    }

    // Resumption: a query that fails under a small budget finishes later
    // because the engine keeps the partial deduction state. Find a query
    // that actually needs more than one 500-firing slice.
    let hard = queries.iter().copied().find(|&q| {
        let mut probe = DemandEngine::new(&cp, DemandConfig::default().with_budget(500));
        !probe.points_to(q).complete
    });
    match hard {
        None => println!("\n(no query needed more than 500 firings — nothing to resume)"),
        Some(q) => {
            let mut engine = DemandEngine::new(&cp, DemandConfig::default().with_budget(500));
            let mut attempts = 0;
            loop {
                attempts += 1;
                let r = engine.points_to(q);
                if r.complete {
                    println!(
                        "\nresumption: query resolved after {attempts} attempts \
                         of 500-firing budgets ({} targets)",
                        r.pts.len()
                    );
                    break;
                }
                assert!(attempts < 1_000_000, "failed to converge");
            }
            assert!(attempts > 1, "the probe said this query needs resumption");
        }
    }
}
