//! Field-sensitive analysis of linked structures (the extension beyond
//! the 2001 paper's field-insensitive model).
//!
//! ```sh
//! cargo run -p ddpa --example linked_list_fields
//! ```

use ddpa::demand::{DemandConfig, DemandEngine};

const SOURCE: &str = r#"
    struct Node { struct Node *next; int *payload; };

    int red;
    int blue;

    void main() {
        // Two disjoint lists with different payloads.
        struct Node *reds = malloc();
        struct Node *more_reds = malloc();
        reds->next = more_reds;
        reds->payload = &red;
        more_reds->payload = &red;

        struct Node *blues = malloc();
        blues->payload = &blue;

        // Walk the red list.
        struct Node *cur = reds;
        while (cur != null) {
            int *got = cur->payload;
            cur = cur->next;
        }

        // Read the blue payload through a pointer field.
        int *other = blues->payload;
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cp = ddpa::compile(SOURCE)?;
    let mut engine = DemandEngine::new(&cp, DemandConfig::default());

    let node = |name: &str| {
        cp.node_ids()
            .find(|&n| cp.display_node(n) == name)
            .unwrap_or_else(|| panic!("no node named {name}"))
    };
    let names = |pts: &[ddpa::constraints::NodeId]| {
        pts.iter()
            .map(|&n| cp.display_node(n))
            .collect::<Vec<_>>()
            .join(", ")
    };

    let got = engine.points_to(node("main::got"));
    let other = engine.points_to(node("main::other"));
    println!(
        "pts(got)   = {{{}}}   (walking the red list)",
        names(&got.pts)
    );
    println!("pts(other) = {{{}}}   (blue payload)", names(&other.pts));

    // Field-sensitivity keeps payloads of distinct objects distinct: the
    // red walk only ever sees `red`, the blue read only `blue`.
    assert_eq!(names(&got.pts), "red");
    assert_eq!(names(&other.pts), "blue");

    // And the `next` field of the red head points to exactly the second
    // red cell — inspect the heap object's field node directly.
    let head = engine.points_to(node("main::reds"));
    let head_obj = head.pts[0];
    let next_field = cp
        .field_of(head_obj, 0)
        .expect("typed allocation has fields");
    let next = engine.points_to(next_field);
    println!(
        "pts({}) = {{{}}}",
        cp.display_node(next_field),
        names(&next.pts)
    );
    assert_eq!(next.pts.len(), 1);

    println!("\nfield-sensitive: red and blue payloads never conflate ✓");
    Ok(())
}
