//! May-alias queries over heap-manipulating code, plus the dereference
//! audit client.
//!
//! ```sh
//! cargo run -p ddpa --example alias_queries
//! ```

use ddpa::clients::DerefAudit;
use ddpa::demand::{DemandConfig, DemandEngine};

const SOURCE: &str = r#"
    // Two disjoint "lists": cells chained through stores. A correct
    // may-alias analysis keeps the chains apart.
    void main() {
        int *listA = malloc();
        int *listB = malloc();
        int **curA = &listA;
        int **curB = &listB;

        int *cellA = malloc();
        *curA = cellA;          // listA -> cellA's heap cell... (int-level abstraction)
        int *cellB = malloc();
        *curB = cellB;

        int *tipA = *curA;
        int *tipB = *curB;

        int *uninit;
        int *wild = *uninit;    // dereference of a pointer that points nowhere
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cp = ddpa::compile(SOURCE)?;
    let mut engine = DemandEngine::new(&cp, DemandConfig::default());

    let node = |name: &str| {
        cp.node_ids()
            .find(|&n| cp.display_node(n) == name)
            .unwrap_or_else(|| panic!("no node named {name}"))
    };

    println!("alias queries:");
    for (a, b) in [
        ("main::tipA", "main::cellA"),
        ("main::tipA", "main::tipB"),
        ("main::listA", "main::listB"),
        ("main::curA", "main::curB"),
    ] {
        let r = engine.may_alias(node(a), node(b));
        println!(
            "  may_alias({a}, {b}) = {}{}",
            r.may_alias,
            if r.resolved { "" } else { " (unresolved)" }
        );
    }

    // The two chains must stay apart.
    assert!(
        engine
            .may_alias(node("main::tipA"), node("main::cellA"))
            .may_alias
    );
    assert!(
        !engine
            .may_alias(node("main::tipA"), node("main::tipB"))
            .may_alias
    );

    // Dereference audit: flags the load through the uninitialized pointer.
    let audit = DerefAudit::run(&mut engine);
    println!("\ndereference audit ({} sites):", audit.sites.len());
    for site in audit.wild() {
        println!("  WILD: {}", audit.describe(&cp, site));
    }
    assert_eq!(audit.wild().len(), 1);
    Ok(())
}
