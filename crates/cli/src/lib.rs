//! Command-line driver for the `ddpa` pointer analyses.
//!
//! ```text
//! ddpa stats     <file>                      program characteristics
//! ddpa dump      <file>                      lowered constraints (text format)
//! ddpa dot       <file>                      constraint graph in Graphviz format
//! ddpa solve     <file> [names…]             exhaustive points-to sets
//! ddpa query     <file> <names…> [--budget N] [--no-cache] [--ptb]
//! ddpa explain   <file> <node> <target>      derivation of a points-to fact
//! ddpa cs        <file> <names…> [--k N]     context-sensitive points-to
//! ddpa callgraph <file> [--budget N]         resolve all call sites on demand
//! ddpa audit     <file> [--budget N]         dereference audit (wild pointers)
//! ddpa stackret  <file> [--budget N]         stack-return (dangling pointer) lint
//! ddpa profile   <file> [--json <path>]      run both analyses, report metrics + spans
//! ddpa gen       [--size N] [--seed S] [--minic]   emit a generated workload
//! ddpa snapshot  <file> [names…] --out <path>      warm the memo table, write a snapshot
//! ddpa restore   <file> <snap> [names…]            warm-start from a snapshot
//! ddpa serve     --addr HOST:PORT [--threads N]    persistent demand-query server
//! ddpa client    --addr HOST:PORT <op> [args…]     talk to a running server
//! ddpa top       <session> --addr HOST:PORT        live engine view (hottest goals,
//!                                                  critical path, hit rates)
//! ddpa graph     <session> --addr HOST:PORT [--dot]  goal dependency graph
//! ddpa flight    <session> --addr HOST:PORT        flight-recorder events as JSONL
//! ddpa scrape    --addr HOST:PORT                  server + session metrics as JSONL
//! ```
//!
//! `solve`, `query`, `callgraph`, `audit` and `stackret` additionally take
//! `--profile` (print the span tree after the command) and
//! `--metrics-out <path>` (export counters/spans as JSONL; see
//! `docs/OBSERVABILITY.md` for the schema).
//!
//! Inputs ending in `.c` or `.mc` are parsed as MiniC; anything else as the
//! textual constraint format (`--minic` / `--constraints` override).

use std::fmt;
use std::io::Write;

use ddpa::constraints::{ConstraintProgram, NodeId};
use ddpa::demand::{DemandConfig, DemandEngine, SchedPolicy};
use ddpa::obs::{JsonValue, JsonlSink, Obs};
use ddpa::support::stats::fmt_count;

/// A CLI failure (bad usage, I/O, or input error).
#[derive(Debug)]
pub struct CliError(String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(format!("i/o error: {e}"))
    }
}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

const USAGE: &str = "\
usage: ddpa <command> [args]

commands:
  stats     <file>                      program characteristics
  dump      <file>                      lowered constraints (text format)
  dot       <file>                      constraint graph (Graphviz)
  solve     <file> [names...]           exhaustive points-to sets
  query     <file> <names...>           demand points-to queries
            [--budget N] [--no-cache] [--ptb]
            [--workers N] [--sched-policy dfs|bfs]  intra-query parallelism
  explain   <file> <node> <target>      derivation of target ∈ pts(node)
  cs        <file> <names...> [--k N]   context-sensitive points-to (default k=1)
  callgraph <file> [--budget N]         resolve all call sites on demand
  audit     <file> [--budget N]         dereference audit (wild pointers)
  stackret  <file> [--budget N]         stack-return (dangling pointer) lint
  profile   <file> [--json <path>]      run both analyses, report metrics + spans
  jsonl-check <file>                    validate a JSONL metrics export
  gen       [--size N] [--seed S] [--minic] [--wide]  emit a generated
            workload (--wide: many independent chains, high W/S headroom)
  snapshot  <file> [names...] --out <path>   answer queries (default: all
            locations), then write the completed fixpoints as a durable
            snapshot (see docs/PERSISTENCE.md)
  restore   <file> <snap> [names...]    warm-start from a snapshot and
            answer queries with zero deduction work
  serve     --addr HOST:PORT            persistent demand-query server
            [--threads N] [--budget N] [--timeout-ms T]
            [--workers N] [--sched-policy dfs|bfs]  intra-query parallelism
            [--port-file <path>] [--stdin-shutdown] [--metrics-out <path>]
            [--access-log <path>] [--slow-ms N]
            [--snapshot-dir <dir>] [--snapshot-every-ms N] [--restore]
  client    --addr HOST:PORT <op>       one request against a running server:
            ping | stats | shutdown | close <session>
            open <session> <file> [--budget N] [--parallel-query]
            add <session> <file>
            query <session> <names...> [--ptb] [--parallel] [--trace]
                  [--budget N] [--timeout-ms T] [--parallel-query]
            alias <session> <a> <b> [--trace]
            targets <session> <site> [--trace]
            snapshot <session> [--out <server-side path>]
            restore <session> <server-side path>
            slow [limit]                the server's slowest requests
            inspect <session> [--top K] | flight <session> [--limit N]
            graph <session> [--dot] | scrape
            (multi-name query sends one batch; see docs/SERVER.md)
  top       <session> --addr HOST:PORT  live engine view: hottest goals,
            critical path, hit rates [--iters N (0 = until interrupted)]
            [--interval-ms T] [--top K]
  graph     <session> --addr HOST:PORT [--dot]  goal dependency graph
            (JSON by default, Graphviz with --dot)
  flight    <session> --addr HOST:PORT [--limit N] [--out <path>]
            flight-recorder events as JSONL (validates with jsonl-check)
  scrape    --addr HOST:PORT [--out <path>]  server + per-session metrics
            as JSONL (validates with jsonl-check)

solve/query/callgraph/audit/stackret also take:
  --profile             print the span profile tree after the command
  --metrics-out <path>  export counters and spans as JSONL

inputs ending in .c/.mc parse as MiniC; otherwise as constraint text
(--minic / --constraints override).";

/// Parsed common options.
#[derive(Debug, Default)]
struct Options {
    budget: Option<u64>,
    no_cache: bool,
    ptb: bool,
    minic: Option<bool>,
    k: usize,
    size: usize,
    seed: u64,
    profile: bool,
    metrics_out: Option<String>,
    json: Option<String>,
    addr: Option<String>,
    threads: Option<usize>,
    workers: Option<usize>,
    sched_policy: Option<SchedPolicy>,
    parallel_query: bool,
    wide: bool,
    timeout_ms: Option<u64>,
    parallel: bool,
    stdin_shutdown: bool,
    port_file: Option<String>,
    access_log: Option<String>,
    slow_ms: Option<u64>,
    trace: bool,
    snapshot_dir: Option<String>,
    snapshot_every_ms: Option<u64>,
    restore: bool,
    out: Option<String>,
    dot: bool,
    iters: u64,
    interval_ms: Option<u64>,
    top: Option<u64>,
    limit: Option<u64>,
    positional: Vec<String>,
}

fn parse_options(args: &[String]) -> Result<Options, CliError> {
    let mut opts = Options {
        size: 1000,
        k: 1,
        ..Options::default()
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--budget" => {
                let v = iter.next().ok_or_else(|| err("--budget needs a value"))?;
                opts.budget = Some(v.parse().map_err(|_| err(format!("bad budget `{v}`")))?);
            }
            "--size" => {
                let v = iter.next().ok_or_else(|| err("--size needs a value"))?;
                opts.size = v.parse().map_err(|_| err(format!("bad size `{v}`")))?;
            }
            "--seed" => {
                let v = iter.next().ok_or_else(|| err("--seed needs a value"))?;
                opts.seed = v.parse().map_err(|_| err(format!("bad seed `{v}`")))?;
            }
            "--k" => {
                let v = iter.next().ok_or_else(|| err("--k needs a value"))?;
                opts.k = v.parse().map_err(|_| err(format!("bad k `{v}`")))?;
            }
            "--no-cache" => opts.no_cache = true,
            "--ptb" => opts.ptb = true,
            "--profile" => opts.profile = true,
            "--metrics-out" => {
                let v = iter
                    .next()
                    .ok_or_else(|| err("--metrics-out needs a path"))?;
                opts.metrics_out = Some(v.clone());
            }
            "--json" => {
                let v = iter.next().ok_or_else(|| err("--json needs a path"))?;
                opts.json = Some(v.clone());
            }
            "--minic" => opts.minic = Some(true),
            "--constraints" => opts.minic = Some(false),
            "--addr" => {
                let v = iter.next().ok_or_else(|| err("--addr needs host:port"))?;
                opts.addr = Some(v.clone());
            }
            "--threads" => {
                let v = iter.next().ok_or_else(|| err("--threads needs a value"))?;
                opts.threads = Some(v.parse().map_err(|_| err(format!("bad threads `{v}`")))?);
            }
            "--workers" => {
                let v = iter.next().ok_or_else(|| err("--workers needs a value"))?;
                opts.workers = Some(v.parse().map_err(|_| err(format!("bad workers `{v}`")))?);
            }
            "--sched-policy" => {
                let v = iter
                    .next()
                    .ok_or_else(|| err("--sched-policy needs dfs or bfs"))?;
                opts.sched_policy = Some(v.parse().map_err(|e: String| err(e))?);
            }
            "--parallel-query" => opts.parallel_query = true,
            "--wide" => opts.wide = true,
            "--timeout-ms" => {
                let v = iter
                    .next()
                    .ok_or_else(|| err("--timeout-ms needs a value"))?;
                opts.timeout_ms = Some(v.parse().map_err(|_| err(format!("bad timeout `{v}`")))?);
            }
            "--parallel" => opts.parallel = true,
            "--stdin-shutdown" => opts.stdin_shutdown = true,
            "--port-file" => {
                let v = iter.next().ok_or_else(|| err("--port-file needs a path"))?;
                opts.port_file = Some(v.clone());
            }
            "--access-log" => {
                let v = iter
                    .next()
                    .ok_or_else(|| err("--access-log needs a path"))?;
                opts.access_log = Some(v.clone());
            }
            "--slow-ms" => {
                let v = iter.next().ok_or_else(|| err("--slow-ms needs a value"))?;
                opts.slow_ms = Some(v.parse().map_err(|_| err(format!("bad slow-ms `{v}`")))?);
            }
            "--trace" => opts.trace = true,
            "--snapshot-dir" => {
                let v = iter
                    .next()
                    .ok_or_else(|| err("--snapshot-dir needs a directory"))?;
                opts.snapshot_dir = Some(v.clone());
            }
            "--snapshot-every-ms" => {
                let v = iter
                    .next()
                    .ok_or_else(|| err("--snapshot-every-ms needs a value"))?;
                opts.snapshot_every_ms =
                    Some(v.parse().map_err(|_| err(format!("bad interval `{v}`")))?);
            }
            "--restore" => opts.restore = true,
            "--dot" => opts.dot = true,
            "--iters" => {
                let v = iter.next().ok_or_else(|| err("--iters needs a value"))?;
                opts.iters = v.parse().map_err(|_| err(format!("bad iters `{v}`")))?;
            }
            "--interval-ms" => {
                let v = iter
                    .next()
                    .ok_or_else(|| err("--interval-ms needs a value"))?;
                opts.interval_ms = Some(v.parse().map_err(|_| err(format!("bad interval `{v}`")))?);
            }
            "--top" => {
                let v = iter.next().ok_or_else(|| err("--top needs a value"))?;
                opts.top = Some(v.parse().map_err(|_| err(format!("bad top `{v}`")))?);
            }
            "--limit" => {
                let v = iter.next().ok_or_else(|| err("--limit needs a value"))?;
                opts.limit = Some(v.parse().map_err(|_| err(format!("bad limit `{v}`")))?);
            }
            "--out" => {
                let v = iter.next().ok_or_else(|| err("--out needs a path"))?;
                opts.out = Some(v.clone());
            }
            other if other.starts_with("--") => {
                return Err(err(format!("unknown option `{other}`")));
            }
            other => opts.positional.push(other.to_owned()),
        }
    }
    Ok(opts)
}

fn load_program(path: &str, minic: Option<bool>) -> Result<ConstraintProgram, CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| err(format!("cannot read `{path}`: {e}")))?;
    let is_minic = minic.unwrap_or_else(|| path.ends_with(".c") || path.ends_with(".mc"));
    if is_minic {
        ddpa::compile(&text).map_err(|e| err(format!("{path}: {e}")))
    } else {
        ddpa::constraints::parse_constraints(&text).map_err(|e| err(format!("{path}: {e}")))
    }
}

fn find_node(cp: &ConstraintProgram, name: &str) -> Result<NodeId, CliError> {
    cp.node_ids()
        .find(|&n| cp.display_node(n) == name)
        .ok_or_else(|| err(format!("no location named `{name}` (try `ddpa dump`)")))
}

/// Runs the CLI with `args`, writing human output to `out`.
///
/// # Errors
///
/// Returns [`CliError`] on bad usage or failing inputs; the caller maps it
/// to a nonzero exit status.
pub fn run(args: &[String], out: &mut impl Write) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        return Err(err(USAGE));
    };
    let opts = parse_options(&args[1..])?;
    let obs = if opts.profile || command == "profile" {
        Obs::with_profiling()
    } else {
        Obs::new()
    };

    match command.as_str() {
        "stats" => {
            let path = opts.positional.first().ok_or_else(|| err(USAGE))?;
            let cp = load_program(path, opts.minic)?;
            writeln!(out, "{}", ddpa::constraints::ProgramStats::of(&cp))?;
        }
        "dump" => {
            let path = opts.positional.first().ok_or_else(|| err(USAGE))?;
            let cp = load_program(path, opts.minic)?;
            write!(out, "{}", ddpa::constraints::print_constraints(&cp))?;
        }
        "dot" => {
            let path = opts.positional.first().ok_or_else(|| err(USAGE))?;
            let cp = load_program(path, opts.minic)?;
            write!(out, "{}", ddpa::constraints::to_dot(&cp))?;
        }
        "solve" => {
            let path = opts.positional.first().ok_or_else(|| err(USAGE))?;
            let cp = load_program(path, opts.minic)?;
            let solution = ddpa::anders::solve_with_obs(&cp, &obs);
            let names = &opts.positional[1..];
            let nodes: Vec<NodeId> = if names.is_empty() {
                cp.node_ids().collect()
            } else {
                names
                    .iter()
                    .map(|n| find_node(&cp, n))
                    .collect::<Result<_, _>>()?
            };
            for node in nodes {
                let targets: Vec<String> = solution
                    .pts_nodes(node)
                    .iter()
                    .map(|&t| cp.display_node(t))
                    .collect();
                if !targets.is_empty() || !names.is_empty() {
                    writeln!(
                        out,
                        "pts({}) = {{{}}}",
                        cp.display_node(node),
                        targets.join(", ")
                    )?;
                }
            }
        }
        "query" => {
            let path = opts.positional.first().ok_or_else(|| err(USAGE))?;
            let cp = load_program(path, opts.minic)?;
            if opts.positional.len() < 2 {
                return Err(err("query needs at least one location name"));
            }
            let mut config = DemandConfig {
                budget: opts.budget,
                caching: !opts.no_cache,
                workers: opts.workers.unwrap_or(1).max(1),
                sched_policy: opts.sched_policy.unwrap_or_default(),
                ..DemandConfig::default()
            };
            if opts.no_cache {
                config.caching = false;
            }
            let mut engine = DemandEngine::with_obs(&cp, config, obs.clone());
            for name in &opts.positional[1..] {
                let node = find_node(&cp, name)?;
                let r = if opts.ptb {
                    engine.pointed_to_by(node)
                } else {
                    engine.points_to(node)
                };
                let targets: Vec<String> = r.pts.iter().map(|&t| cp.display_node(t)).collect();
                writeln!(
                    out,
                    "{}({name}) = {{{}}}  [work {}{}]",
                    if opts.ptb { "ptb" } else { "pts" },
                    targets.join(", "),
                    r.work,
                    if r.complete { "" } else { ", UNRESOLVED" },
                )?;
            }
        }
        "cs" => {
            let path = opts.positional.first().ok_or_else(|| err(USAGE))?;
            let cp = load_program(path, opts.minic)?;
            if opts.positional.len() < 2 {
                return Err(err("cs needs at least one location name"));
            }
            let analysis = ddpa::cxt::CsAnalysis::run(&cp, &ddpa::cxt::CloneConfig::with_k(opts.k));
            writeln!(
                out,
                "k={} call-string cloning: {} clones, {:.2}x nodes{}",
                opts.k,
                analysis.cloned.clone_count,
                analysis.cloned.expansion_factor(&cp),
                if analysis.cloned.capped {
                    " (clone budget hit)"
                } else {
                    ""
                },
            )?;
            for name in &opts.positional[1..] {
                let node = find_node(&cp, name)?;
                let targets: Vec<String> = analysis
                    .pts_of(node)
                    .iter()
                    .map(|&t| cp.display_node(t))
                    .collect();
                writeln!(out, "pts({name}) = {{{}}}", targets.join(", "))?;
            }
        }
        "explain" => {
            let path = opts.positional.first().ok_or_else(|| err(USAGE))?;
            let cp = load_program(path, opts.minic)?;
            let [_, node_name, target_name] = opts.positional.as_slice() else {
                return Err(err("explain needs <file> <node> <target>"));
            };
            let node = find_node(&cp, node_name)?;
            let target = find_node(&cp, target_name)?;
            let mut engine = DemandEngine::new(&cp, DemandConfig::new().with_trace());
            let r = engine.points_to(node);
            match engine.explain_points_to(node, target) {
                Some(explanation) => {
                    write!(out, "{}", explanation.render(&cp))?;
                }
                None => {
                    writeln!(
                        out,
                        "{target_name} ∉ pts({node_name}){}",
                        if r.complete {
                            ""
                        } else {
                            " (query unresolved)"
                        }
                    )?;
                }
            }
        }
        "callgraph" => {
            let path = opts.positional.first().ok_or_else(|| err(USAGE))?;
            let cp = load_program(path, opts.minic)?;
            let config = DemandConfig {
                budget: opts.budget,
                ..DemandConfig::default()
            };
            let mut engine = DemandEngine::with_obs(&cp, config, obs.clone());
            let (cg, stats) = ddpa::clients::CallGraph::from_demand(&mut engine);
            for cs in cp.callsites().indices() {
                let site = cp.callsite(cs);
                let kind = if site.is_indirect() { "icall" } else { "call" };
                let names: Vec<&str> = cg
                    .targets(cs)
                    .iter()
                    .map(|&f| cp.interner().resolve(cp.func(f).name))
                    .collect();
                writeln!(out, "{kind} #{} -> {{{}}}", cs.as_u32(), names.join(", "))?;
            }
            writeln!(
                out,
                "{} indirect queries: {} resolved, {} fallback",
                stats.indirect_resolved + stats.indirect_fallback,
                stats.indirect_resolved,
                stats.indirect_fallback
            )?;
        }
        "audit" => {
            let path = opts.positional.first().ok_or_else(|| err(USAGE))?;
            let cp = load_program(path, opts.minic)?;
            let config = DemandConfig {
                budget: opts.budget,
                ..DemandConfig::default()
            };
            let mut engine = DemandEngine::with_obs(&cp, config, obs.clone());
            let audit = ddpa::clients::DerefAudit::run(&mut engine);
            for site in audit.wild() {
                writeln!(out, "WILD: {}", audit.describe(&cp, site))?;
            }
            writeln!(
                out,
                "{} dereference sites, {} wild, {} singleton",
                audit.sites.len(),
                audit.wild().len(),
                audit.singletons().len()
            )?;
        }
        "stackret" => {
            let path = opts.positional.first().ok_or_else(|| err(USAGE))?;
            let cp = load_program(path, opts.minic)?;
            let config = DemandConfig {
                budget: opts.budget,
                ..DemandConfig::default()
            };
            let mut engine = DemandEngine::with_obs(&cp, config, obs.clone());
            let report = ddpa::clients::StackReturnAudit::run(&mut engine);
            for finding in &report.findings {
                writeln!(out, "{}", report.describe(&cp, finding))?;
            }
            writeln!(
                out,
                "{} function(s) flagged, {} unresolved",
                report.findings.len(),
                report.unresolved.len()
            )?;
        }
        "profile" => {
            let path = opts.positional.first().ok_or_else(|| err(USAGE))?;
            let cp = {
                let _load = obs.span("load");
                load_program(path, opts.minic)?
            };
            ddpa::constraints::ProgramStats::of(&cp).record(&obs.registry);
            // Exhaustive baseline: solve the whole program once.
            let _solution = ddpa::anders::solve_with_obs(&cp, &obs);
            // Demand pass: the paper's query load — every call site plus
            // every dereferenced pointer.
            let config = DemandConfig {
                budget: opts.budget,
                ..DemandConfig::default()
            };
            let mut engine = DemandEngine::with_obs(&cp, config, obs.clone());
            {
                let _span = obs.span("demand.clients");
                let latency = obs.histogram("demand.query.latency_us");
                for cs in cp.callsites().indices() {
                    let t = std::time::Instant::now();
                    let _ = engine.call_targets(cs);
                    latency.record_duration(t.elapsed());
                }
                for ptr in deref_ptrs(&cp) {
                    let t = std::time::Instant::now();
                    let _ = engine.points_to(ptr);
                    latency.record_duration(t.elapsed());
                }
            }
            let stats = engine.stats();
            writeln!(out, "profile: {path}")?;
            writeln!(out)?;
            write!(out, "{}", obs.profiler.render())?;
            writeln!(out)?;
            write!(out, "{}", render_registry(&obs))?;
            writeln!(out)?;
            let anders_work = obs.registry.counter_value("anders.work");
            let ratio = if anders_work > 0 {
                format!(" ({:.4}x)", stats.work as f64 / anders_work as f64)
            } else {
                String::new()
            };
            let fires_per_query = if stats.queries > 0 {
                stats.fires as f64 / stats.queries as f64
            } else {
                0.0
            };
            writeln!(
                out,
                "demand work {} vs exhaustive work {}{ratio}; \
                 {} queries, {fires_per_query:.1} fires/query",
                fmt_count(stats.work),
                fmt_count(anders_work),
                fmt_count(stats.queries),
            )?;
            if let Some(json) = opts.json.as_deref() {
                export_jsonl(&obs, "profile", Some(path), json)?;
                writeln!(out, "wrote JSONL metrics to {json}")?;
            }
        }
        "jsonl-check" => {
            let path = opts.positional.first().ok_or_else(|| err(USAGE))?;
            let text = std::fs::read_to_string(path)?;
            let mut lines = 0usize;
            for (i, line) in text.lines().enumerate() {
                // Name the offending line so a failing CI export is
                // greppable without re-running the check under a shell
                // loop; the kind (or parse failure) comes from the
                // validator's own message.
                ddpa::obs::validate_metrics_line(line)
                    .map_err(|e| err(format!("{path}: line {}: {e}", i + 1)))?;
                lines += 1;
            }
            if lines == 0 {
                return Err(err(format!("{path}: empty (expected JSONL lines)")));
            }
            writeln!(out, "{path}: {lines} valid JSONL line(s)")?;
        }
        "gen" => {
            if opts.wide {
                let cp =
                    ddpa::gen::generate_wide(&ddpa::gen::WideConfig::sized(opts.seed, opts.size));
                write!(out, "{}", ddpa::constraints::print_constraints(&cp))?;
            } else if opts.minic == Some(true) {
                let program = ddpa::gen::generate_minic(&ddpa::gen::MiniCConfig::sized(
                    opts.seed,
                    opts.size.max(4) / 12,
                ));
                write!(out, "{}", ddpa::ir::pretty(&program))?;
            } else {
                let cp = ddpa::gen::generate_random(&ddpa::gen::RandomConfig::sized(
                    opts.seed, opts.size,
                ));
                write!(out, "{}", ddpa::constraints::print_constraints(&cp))?;
            }
        }
        "snapshot" => {
            let path = opts.positional.first().ok_or_else(|| err(USAGE))?;
            let out_path = opts
                .out
                .as_deref()
                .ok_or_else(|| err("snapshot needs --out <path>"))?;
            let cp = load_program(path, opts.minic)?;
            // The snapshot binds to the canonical constraint text, so a
            // MiniC input and its `ddpa dump` restore interchangeably.
            let source = ddpa::constraints::print_constraints(&cp);
            let shared = std::sync::Arc::new(ddpa::demand::SharedMemo::new());
            let config = DemandConfig {
                budget: opts.budget,
                ..DemandConfig::default()
            };
            let mut engine = DemandEngine::with_obs(&cp, config, obs.clone())
                .with_shared_memo(std::sync::Arc::clone(&shared));
            let names = &opts.positional[1..];
            let nodes: Vec<NodeId> = if names.is_empty() {
                cp.node_ids().collect()
            } else {
                names
                    .iter()
                    .map(|n| find_node(&cp, n))
                    .collect::<Result<_, _>>()?
            };
            for node in nodes {
                let _ = engine.points_to(node);
            }
            let snapshot = ddpa::snap::Snapshot::of_memo(&shared, source);
            let bytes = ddpa::snap::write_file(&snapshot, out_path)
                .map_err(|e| err(format!("cannot write `{out_path}`: {e}")))?;
            writeln!(
                out,
                "wrote {out_path}: {} fixpoint(s), {} bytes",
                snapshot.entries.len(),
                fmt_count(bytes as u64),
            )?;
        }
        "restore" => {
            let path = opts.positional.first().ok_or_else(|| err(USAGE))?;
            let snap_path = opts
                .positional
                .get(1)
                .ok_or_else(|| err("restore needs <file> <snap> [names...]"))?;
            let cp = load_program(path, opts.minic)?;
            let source = ddpa::constraints::print_constraints(&cp);
            let snapshot = ddpa::snap::read_file(snap_path)
                .map_err(|e| err(format!("cannot restore `{snap_path}`: {e}")))?;
            snapshot
                .verify_program(&source)
                .map_err(|e| err(format!("cannot restore `{snap_path}`: {e}")))?;
            let config = DemandConfig {
                budget: opts.budget,
                ..DemandConfig::default()
            };
            let mut engine = DemandEngine::with_obs(&cp, config, obs.clone());
            let installed = engine.warm_start(&snapshot.entries);
            writeln!(out, "restored {installed} fixpoint(s) from {snap_path}",)?;
            for name in &opts.positional[2..] {
                let node = find_node(&cp, name)?;
                let r = engine.points_to(node);
                let targets: Vec<String> = r.pts.iter().map(|&t| cp.display_node(t)).collect();
                writeln!(
                    out,
                    "pts({name}) = {{{}}}  [work {}{}]",
                    targets.join(", "),
                    r.work,
                    if r.complete { "" } else { ", UNRESOLVED" },
                )?;
            }
        }
        "serve" => {
            let addr = opts.addr.as_deref().unwrap_or("127.0.0.1:7077");
            let mut config = ddpa::serve::ServeConfig::default();
            if let Some(t) = opts.threads {
                config.threads = t.max(1);
            }
            if let Some(w) = opts.workers {
                config.workers = w.max(1);
            }
            if let Some(p) = opts.sched_policy {
                config.sched_policy = p;
            }
            config.default_budget = opts.budget;
            if let Some(t) = opts.timeout_ms {
                config.default_timeout_ms = t;
            }
            config.access_log = opts.access_log.clone().map(std::path::PathBuf::from);
            if let Some(ms) = opts.slow_ms {
                config.slow_ms = ms;
            }
            config.snapshot_dir = opts.snapshot_dir.clone().map(std::path::PathBuf::from);
            if let Some(ms) = opts.snapshot_every_ms {
                config.snapshot_every_ms = ms;
            }
            config.restore_on_open = opts.restore;
            let server = ddpa::serve::Server::bind(addr, config, obs.clone())
                .map_err(|e| err(format!("cannot bind `{addr}`: {e}")))?;
            let local = server.local_addr();
            if let Some(pf) = opts.port_file.as_deref() {
                std::fs::write(pf, local.to_string())
                    .map_err(|e| err(format!("cannot write `{pf}`: {e}")))?;
            }
            writeln!(out, "ddpa-serve listening on {local}")?;
            out.flush()?;
            if opts.stdin_shutdown {
                // Supervisor-friendly stop signal without OS signal
                // handling: closing our stdin (EOF) shuts the server
                // down gracefully.
                let handle = server.handle();
                std::thread::spawn(move || {
                    let mut sink = Vec::new();
                    let _ = std::io::Read::read_to_end(&mut std::io::stdin(), &mut sink);
                    handle.shutdown();
                });
            }
            server.run()?;
            writeln!(out, "ddpa-serve stopped")?;
        }
        "client" => {
            let addr = opts
                .addr
                .as_deref()
                .ok_or_else(|| err("client needs --addr HOST:PORT"))?;
            let request = client_request(&opts)?;
            let mut client = ddpa::serve::Client::connect(addr)
                .map_err(|e| err(format!("cannot connect to `{addr}`: {e}")))?;
            let response = client.request(&request)?;
            writeln!(out, "{response}")?;
            if response.get("ok").and_then(JsonValue::as_bool) != Some(true) {
                let code = response
                    .get("error")
                    .and_then(|e| e.get("code"))
                    .and_then(JsonValue::as_str)
                    .unwrap_or("unknown");
                let message = response
                    .get("error")
                    .and_then(|e| e.get("message"))
                    .and_then(JsonValue::as_str)
                    .unwrap_or("");
                return Err(err(format!("server error {code}: {message}")));
            }
        }
        "top" => {
            let addr = opts
                .addr
                .as_deref()
                .ok_or_else(|| err("top needs --addr HOST:PORT"))?;
            let session = opts
                .positional
                .first()
                .ok_or_else(|| err("top needs a session name"))?;
            let mut client = ddpa::serve::Client::connect(addr)
                .map_err(|e| err(format!("cannot connect to `{addr}`: {e}")))?;
            let interval = std::time::Duration::from_millis(opts.interval_ms.unwrap_or(1000));
            let mut round = 0u64;
            loop {
                round += 1;
                let stats = request_ok(&mut client, &ddpa::serve::proto::build::stats())?;
                let inspect = request_ok(
                    &mut client,
                    &ddpa::serve::proto::build::inspect(session, opts.top),
                )?;
                if round > 1 {
                    // ANSI home+clear keeps the refresh flicker-free.
                    write!(out, "\x1b[H\x1b[2J")?;
                }
                render_top(out, addr, session, &stats, &inspect)?;
                out.flush()?;
                if opts.iters != 0 && round >= opts.iters {
                    break;
                }
                std::thread::sleep(interval);
            }
        }
        "graph" => {
            let addr = opts
                .addr
                .as_deref()
                .ok_or_else(|| err("graph needs --addr HOST:PORT"))?;
            let session = opts
                .positional
                .first()
                .ok_or_else(|| err("graph needs a session name"))?;
            let mut client = ddpa::serve::Client::connect(addr)
                .map_err(|e| err(format!("cannot connect to `{addr}`: {e}")))?;
            let response = request_ok(
                &mut client,
                &ddpa::serve::proto::build::graph(session, opts.dot),
            )?;
            if opts.dot {
                let text = response
                    .get("text")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| err("graph response missing DOT text"))?;
                write!(out, "{text}")?;
            } else {
                let graph = response
                    .get("graph")
                    .ok_or_else(|| err("graph response missing graph object"))?;
                writeln!(out, "{graph}")?;
            }
        }
        "flight" => {
            let addr = opts
                .addr
                .as_deref()
                .ok_or_else(|| err("flight needs --addr HOST:PORT"))?;
            let session = opts
                .positional
                .first()
                .ok_or_else(|| err("flight needs a session name"))?;
            let mut client = ddpa::serve::Client::connect(addr)
                .map_err(|e| err(format!("cannot connect to `{addr}`: {e}")))?;
            let response = request_ok(
                &mut client,
                &ddpa::serve::proto::build::flight(session, opts.limit),
            )?;
            let empty: &[JsonValue] = &[];
            let events = response
                .get("events")
                .and_then(JsonValue::as_array)
                .unwrap_or(empty);
            if let Some(path) = opts.out.as_deref() {
                let file = std::fs::File::create(path)
                    .map_err(|e| err(format!("cannot write `{path}`: {e}")))?;
                let mut w = std::io::BufWriter::new(file);
                for event in events {
                    writeln!(w, "{event}")?;
                }
                w.flush()?;
                let recorded = response
                    .get("recorded")
                    .and_then(JsonValue::as_u64)
                    .unwrap_or(0);
                let dropped = response
                    .get("dropped")
                    .and_then(JsonValue::as_u64)
                    .unwrap_or(0);
                writeln!(
                    out,
                    "wrote {} flight event(s) to {path} ({recorded} recorded, {dropped} dropped by the ring)",
                    events.len(),
                )?;
            } else {
                for event in events {
                    writeln!(out, "{event}")?;
                }
            }
        }
        "scrape" => {
            let addr = opts
                .addr
                .as_deref()
                .ok_or_else(|| err("scrape needs --addr HOST:PORT"))?;
            let mut client = ddpa::serve::Client::connect(addr)
                .map_err(|e| err(format!("cannot connect to `{addr}`: {e}")))?;
            let response = request_ok(&mut client, &ddpa::serve::proto::build::scrape())?;
            let text = response
                .get("text")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| err("scrape response missing text"))?;
            if let Some(path) = opts.out.as_deref() {
                std::fs::write(path, text)
                    .map_err(|e| err(format!("cannot write `{path}`: {e}")))?;
                let lines = response
                    .get("lines")
                    .and_then(JsonValue::as_u64)
                    .unwrap_or_else(|| text.lines().count() as u64);
                writeln!(out, "wrote {lines} metric line(s) to {path}")?;
            } else {
                write!(out, "{text}")?;
            }
        }
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}")?;
        }
        other => return Err(err(format!("unknown command `{other}`\n{USAGE}"))),
    }
    if opts.profile && command != "profile" {
        writeln!(out)?;
        write!(out, "{}", obs.profiler.render())?;
    }
    if let Some(path) = opts.metrics_out.as_deref() {
        export_jsonl(
            &obs,
            command,
            opts.positional.first().map(String::as_str),
            path,
        )?;
    }
    Ok(())
}

/// Sends one request and unwraps the ok envelope, surfacing server-side
/// failures as CLI errors.
fn request_ok(
    client: &mut ddpa::serve::Client,
    request: &JsonValue,
) -> Result<JsonValue, CliError> {
    let response = client.request(request)?;
    if response.get("ok").and_then(JsonValue::as_bool) == Some(true) {
        return Ok(response);
    }
    let code = response
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(JsonValue::as_str)
        .unwrap_or("unknown");
    let message = response
        .get("error")
        .and_then(|e| e.get("message"))
        .and_then(JsonValue::as_str)
        .unwrap_or("");
    Err(err(format!("server error {code}: {message}")))
}

/// Renders one `ddpa top` frame: server health, the session's engine
/// counters, the critical-path summary, and the hottest-goals table.
fn render_top(
    out: &mut impl Write,
    addr: &str,
    session: &str,
    stats: &JsonValue,
    inspect: &JsonValue,
) -> Result<(), CliError> {
    let num = |v: Option<&JsonValue>| v.and_then(JsonValue::as_u64).unwrap_or(0);
    let counters = stats.get("counters");
    writeln!(
        out,
        "ddpa top — {addr}  session `{session}`  [{} request(s), {} error(s), {} timeout(s)]",
        num(counters.and_then(|c| c.get("requests"))),
        num(counters.and_then(|c| c.get("errors"))),
        num(counters.and_then(|c| c.get("timeouts"))),
    )?;
    if let Some(q) = stats.get("latency").and_then(|l| l.get("query_us")) {
        writeln!(
            out,
            "query latency: p50 {}us  p90 {}us  p99 {}us  max {}us  over {} query(s)",
            num(q.get("p50")),
            num(q.get("p90")),
            num(q.get("p99")),
            num(q.get("max")),
            num(q.get("count")),
        )?;
    }
    if let Some(s) = stats.get("sessions").and_then(|all| all.get(session)) {
        let queries = num(s.get("queries"));
        let hits = num(s.get("cache_hits")) + num(s.get("share_hits"));
        let rate = if queries > 0 {
            100.0 * hits as f64 / queries as f64
        } else {
            0.0
        };
        writeln!(
            out,
            "engine: {} query(s)  work {}  fires {}  tabled goals {}  \
             hit rate {rate:.1}% ({} cache + {} share)",
            fmt_count(queries),
            fmt_count(num(s.get("work"))),
            fmt_count(num(s.get("fires"))),
            fmt_count(num(s.get("tabled_goals"))),
            num(s.get("cache_hits")),
            num(s.get("share_hits")),
        )?;
    }
    if let Some(cp) = inspect.get("critical_path") {
        let headroom = match cp.get("headroom") {
            Some(JsonValue::F64(x)) => *x,
            Some(JsonValue::U64(n)) => *n as f64,
            _ => 1.0,
        };
        // The configured scheduler next to the headroom bound it could
        // exploit: workers beyond W/S cannot help this workload.
        let workers = num(stats.get("workers")).max(1);
        let policy = stats
            .get("sched_policy")
            .and_then(JsonValue::as_str)
            .unwrap_or("dfs");
        writeln!(
            out,
            "critical path: work {}  span {}  parallelism headroom {headroom:.2}x  \
             [{workers} worker(s), {policy} policy]",
            fmt_count(num(cp.get("work"))),
            fmt_count(num(cp.get("span"))),
        )?;
    }
    writeln!(out)?;
    writeln!(out, "  {:<36} {:>10} {:>8}  state", "goal", "work", "fires")?;
    if let Some(hottest) = inspect.get("hottest").and_then(JsonValue::as_array) {
        for g in hottest {
            let name = g.get("goal").and_then(JsonValue::as_str).unwrap_or("?");
            let state = if g.get("complete").and_then(JsonValue::as_bool) == Some(true) {
                "done"
            } else {
                "open"
            };
            writeln!(
                out,
                "  {name:<36} {:>10} {:>8}  {state}",
                num(g.get("work")),
                num(g.get("fires")),
            )?;
        }
    }
    Ok(())
}

/// Builds the wire request for a `ddpa client` invocation.
fn client_request(opts: &Options) -> Result<JsonValue, CliError> {
    use ddpa::serve::proto::{build, QuerySpec};
    let pos = &opts.positional;
    let op = pos
        .first()
        .ok_or_else(|| err("client needs an operation (ping, open, query, ...)"))?;
    let session = |i: usize| -> Result<&str, CliError> {
        pos.get(i)
            .map(String::as_str)
            .ok_or_else(|| err(format!("client {op} needs a session name")))
    };
    let file_text = |i: usize| -> Result<(String, bool), CliError> {
        let path = pos
            .get(i)
            .ok_or_else(|| err(format!("client {op} needs a program file")))?;
        let text =
            std::fs::read_to_string(path).map_err(|e| err(format!("cannot read `{path}`: {e}")))?;
        let minic = opts
            .minic
            .unwrap_or_else(|| path.ends_with(".c") || path.ends_with(".mc"));
        Ok((text, minic))
    };
    let traced = |request: JsonValue| {
        let request = if opts.parallel_query {
            build::with_parallel_query(request)
        } else {
            request
        };
        if opts.trace {
            build::with_trace(request)
        } else {
            request
        }
    };
    match op.as_str() {
        "ping" => Ok(build::ping()),
        "stats" => Ok(build::stats()),
        "shutdown" => Ok(build::shutdown()),
        "slow" => {
            let limit = match pos.get(1) {
                Some(v) => Some(
                    v.parse::<u64>()
                        .map_err(|_| err(format!("bad slow limit `{v}`")))?,
                ),
                None => None,
            };
            Ok(build::slow(limit))
        }
        "close" => Ok(build::close(session(1)?)),
        "open" => {
            let (text, minic) = file_text(2)?;
            let request = build::open(session(1)?, &text, minic, opts.budget);
            Ok(if opts.parallel_query {
                build::with_parallel_query(request)
            } else {
                request
            })
        }
        "add" => {
            let (text, _) = file_text(2)?;
            Ok(build::add_constraints(session(1)?, &text))
        }
        "query" => {
            let names = &pos[2.min(pos.len())..];
            if names.is_empty() {
                return Err(err("client query needs at least one location name"));
            }
            let spec_of = |name: &str| {
                if opts.ptb {
                    QuerySpec::PointedToBy { name: name.into() }
                } else {
                    QuerySpec::PointsTo { name: name.into() }
                }
            };
            if names.len() == 1 && !opts.parallel {
                Ok(traced(build::query(
                    session(1)?,
                    &spec_of(&names[0]),
                    opts.budget,
                    opts.timeout_ms,
                )))
            } else {
                let specs: Vec<QuerySpec> = names.iter().map(|n| spec_of(n)).collect();
                Ok(traced(build::batch(
                    session(1)?,
                    &specs,
                    opts.parallel,
                    opts.budget,
                    opts.timeout_ms,
                )))
            }
        }
        "alias" => {
            let (a, b) = (
                pos.get(2)
                    .ok_or_else(|| err("client alias needs <a> <b>"))?,
                pos.get(3)
                    .ok_or_else(|| err("client alias needs <a> <b>"))?,
            );
            Ok(traced(build::query(
                session(1)?,
                &QuerySpec::MayAlias {
                    a: a.clone(),
                    b: b.clone(),
                },
                opts.budget,
                opts.timeout_ms,
            )))
        }
        "inspect" => Ok(build::inspect(session(1)?, opts.top)),
        "flight" => Ok(build::flight(session(1)?, opts.limit)),
        "graph" => Ok(build::graph(session(1)?, opts.dot)),
        "scrape" => Ok(build::scrape()),
        "snapshot" => Ok(build::snapshot(session(1)?, opts.out.as_deref())),
        "restore" => {
            let path = pos
                .get(2)
                .ok_or_else(|| err("client restore needs a server-side snapshot path"))?;
            Ok(build::restore(session(1)?, path))
        }
        "targets" => {
            let site = pos
                .get(2)
                .ok_or_else(|| err("client targets needs a call-site index"))?;
            let site: u64 = site
                .parse()
                .map_err(|_| err(format!("bad call-site index `{site}`")))?;
            Ok(traced(build::query(
                session(1)?,
                &QuerySpec::CallTargets { site },
                opts.budget,
                opts.timeout_ms,
            )))
        }
        other => Err(err(format!("unknown client operation `{other}`"))),
    }
}

/// Distinct pointers dereferenced by loads and stores — the demand query
/// load the audit clients issue.
fn deref_ptrs(cp: &ConstraintProgram) -> Vec<NodeId> {
    let mut ptrs: Vec<NodeId> = cp
        .loads()
        .iter()
        .map(|l| l.ptr)
        .chain(cp.stores().iter().map(|s| s.ptr))
        .collect();
    ptrs.sort_unstable();
    ptrs.dedup();
    ptrs
}

/// The registry rendered as aligned `name  value` tables.
fn render_registry(obs: &Obs) -> String {
    use std::fmt::Write as _;
    let counters = obs.registry.counters();
    let gauges = obs.registry.gauges();
    let width = counters
        .iter()
        .chain(gauges.iter())
        .map(|(name, _)| name.len())
        .max()
        .unwrap_or(7)
        .max(7);
    let mut s = String::new();
    let _ = writeln!(s, "{:<width$}  {:>14}", "counter", "value");
    for (name, value) in counters {
        let _ = writeln!(s, "{name:<width$}  {:>14}", fmt_count(value));
    }
    if !gauges.is_empty() {
        let _ = writeln!(s, "{:<width$}  {:>14}", "gauge", "value");
        for (name, value) in gauges {
            let _ = writeln!(s, "{name:<width$}  {:>14}", fmt_count(value));
        }
    }
    let hists: Vec<_> = obs
        .registry
        .histograms()
        .into_iter()
        .filter(|(_, h)| h.count() > 0)
        .collect();
    if !hists.is_empty() {
        let hwidth = hists
            .iter()
            .map(|(name, _)| name.len())
            .max()
            .unwrap_or(9)
            .max(9);
        let _ = writeln!(
            s,
            "{:<hwidth$}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}",
            "histogram", "count", "p50", "p90", "p99", "max"
        );
        for (name, h) in hists {
            let _ = writeln!(
                s,
                "{name:<hwidth$}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}",
                fmt_count(h.count()),
                fmt_count(h.quantile(0.50)),
                fmt_count(h.quantile(0.90)),
                fmt_count(h.quantile(0.99)),
                fmt_count(h.max()),
            );
        }
    }
    s
}

/// Writes the run's metrics as JSONL: one `meta` line, then one line per
/// counter, gauge and profile-tree span.
fn export_jsonl(obs: &Obs, command: &str, input: Option<&str>, path: &str) -> Result<(), CliError> {
    let file =
        std::fs::File::create(path).map_err(|e| err(format!("cannot write `{path}`: {e}")))?;
    let mut sink = JsonlSink::new(std::io::BufWriter::new(file));
    let mut fields = vec![
        ("tool", JsonValue::str("ddpa")),
        ("command", JsonValue::str(command)),
    ];
    if let Some(input) = input {
        fields.push(("input", JsonValue::str(input)));
    }
    sink.emit("meta", &fields)?;
    sink.emit_registry(&obs.registry)?;
    sink.emit_profile(&obs.profiler)?;
    sink.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(args: &[&str]) -> Result<String, CliError> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&args, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("ddpa-cli-tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join(name);
        std::fs::write(&path, contents).expect("write");
        path
    }

    #[test]
    fn usage_on_no_args() {
        let e = run_to_string(&[]).expect_err("usage error");
        assert!(e.to_string().contains("usage:"));
    }

    #[test]
    fn help_prints_usage() {
        let out = run_to_string(&["help"]).expect("ok");
        assert!(out.contains("callgraph"));
    }

    #[test]
    fn stats_and_dump_on_minic() {
        let path = write_temp("t1.mc", "int g; void main() { int *p = &g; }");
        let p = path.to_str().expect("utf8 path");
        let out = run_to_string(&["stats", p]).expect("stats");
        assert!(out.contains("assignments=1"));
        let out = run_to_string(&["dump", p]).expect("dump");
        assert!(out.contains("main::p = &g"));
    }

    #[test]
    fn query_on_constraints() {
        let path = write_temp("t2.cons", "p = &o\nq = p\n");
        let p = path.to_str().expect("utf8 path");
        let out = run_to_string(&["query", p, "q"]).expect("query");
        assert!(out.contains("pts(q) = {o}"), "got: {out}");
        let out = run_to_string(&["query", p, "o", "--ptb"]).expect("ptb query");
        assert!(out.contains("ptb(o) = {p, q}"), "got: {out}");
    }

    #[test]
    fn query_budget_reports_unresolved() {
        let path = write_temp("t3.cons", "p = &o\nq = p\nr = q\n");
        let p = path.to_str().expect("utf8 path");
        let out = run_to_string(&["query", p, "r", "--budget", "0"]).expect("query");
        assert!(out.contains("UNRESOLVED"), "got: {out}");
    }

    #[test]
    fn callgraph_command() {
        let path = write_temp("t4.cons", "fun f/0\nfp = &f\nicall fp()\ncall f()\n");
        let p = path.to_str().expect("utf8 path");
        let out = run_to_string(&["callgraph", p]).expect("callgraph");
        assert!(out.contains("icall #0 -> {f}"), "got: {out}");
        assert!(out.contains("call #1 -> {f}"), "got: {out}");
        assert!(out.contains("1 resolved"), "got: {out}");
    }

    #[test]
    fn audit_command() {
        let path = write_temp("t5.cons", "x = *q\n");
        let p = path.to_str().expect("utf8 path");
        let out = run_to_string(&["audit", p]).expect("audit");
        assert!(out.contains("WILD"), "got: {out}");
    }

    #[test]
    fn gen_produces_parseable_output() {
        let out = run_to_string(&["gen", "--size", "200", "--seed", "3"]).expect("gen");
        let cp = ddpa::constraints::parse_constraints(&out).expect("reparses");
        assert!(cp.num_constraints() > 100);
        let out = run_to_string(&["gen", "--minic", "--size", "200"]).expect("gen minic");
        let program = ddpa::ir::parse(&out).expect("parses");
        ddpa::ir::check(&program).expect("checks");
    }

    #[test]
    fn wide_gen_and_parallel_query_flags() {
        let wide = run_to_string(&["gen", "--wide", "--size", "400", "--seed", "5"]).expect("gen");
        assert!(wide.contains("hub = "), "hub joins the chains: {wide}");
        let cp = ddpa::constraints::parse_constraints(&wide).expect("reparses");
        assert!(cp.num_constraints() > 200);
        let path = write_temp("t12.cons", &wide);
        let p = path.to_str().expect("utf8 path");
        let seq = run_to_string(&["query", p, "hub"]).expect("sequential");
        let par = run_to_string(&["query", p, "hub", "--workers", "4"]).expect("parallel");
        assert_eq!(seq, par, "scheduler answers are bit-identical");
        let bfs = run_to_string(&["query", p, "hub", "--workers", "4", "--sched-policy", "bfs"])
            .expect("bfs");
        assert_eq!(seq, bfs);
        assert!(run_to_string(&["query", p, "hub", "--sched-policy", "lifo"]).is_err());
    }

    #[test]
    fn rejects_unknown_things() {
        assert!(run_to_string(&["frobnicate"]).is_err());
        assert!(run_to_string(&["stats", "/nonexistent/file"]).is_err());
        let path = write_temp("t6.cons", "p = &o\n");
        let p = path.to_str().expect("utf8 path");
        assert!(run_to_string(&["query", p, "missing_name"]).is_err());
        assert!(run_to_string(&["query", p, "o", "--budget", "NaN"]).is_err());
    }

    #[test]
    fn cs_command() {
        let path = write_temp(
            "t11.mc",
            "int a; int b; int *id(int *p) { return p; } \
             void main() { int *r1 = id(&a); int *r2 = id(&b); }",
        );
        let p = path.to_str().expect("utf8 path");
        // Context-insensitive demand query conflates.
        let out = run_to_string(&["query", p, "main::r1"]).expect("query");
        assert!(out.contains("{a, b}"), "got: {out}");
        // k=1 disambiguates.
        let out = run_to_string(&["cs", p, "main::r1", "main::r2"]).expect("cs");
        assert!(out.contains("pts(main::r1) = {a}"), "got: {out}");
        assert!(out.contains("pts(main::r2) = {b}"), "got: {out}");
        // k=0 equals context-insensitive.
        let out = run_to_string(&["cs", p, "main::r1", "--k", "0"]).expect("cs k0");
        assert!(out.contains("pts(main::r1) = {a, b}"), "got: {out}");
    }

    #[test]
    fn dot_command() {
        let path = write_temp("t10.cons", "p = &o\nq = p\n");
        let p = path.to_str().expect("utf8 path");
        let out = run_to_string(&["dot", p]).expect("dot");
        assert!(out.starts_with("digraph constraints {"), "got: {out}");
    }

    #[test]
    fn stackret_command() {
        let path = write_temp(
            "t9.mc",
            "int *bad() { int local; return &local; } void main() { int *p = bad(); }",
        );
        let p = path.to_str().expect("utf8 path");
        let out = run_to_string(&["stackret", p]).expect("stackret");
        assert!(out.contains("`bad` may return a pointer"), "got: {out}");
        assert!(out.contains("1 function(s) flagged"), "got: {out}");
    }

    #[test]
    fn explain_command() {
        let path = write_temp("t8.cons", "p = &o\nq = p\nr = q\n");
        let p = path.to_str().expect("utf8 path");
        let out = run_to_string(&["explain", p, "r", "o"]).expect("explain");
        assert!(out.contains("o ∈ pts(r)"), "got: {out}");
        assert!(out.contains("[ADDR]"), "got: {out}");
        let out = run_to_string(&["explain", p, "p", "q"]).expect("explain");
        assert!(out.contains("∉"), "got: {out}");
        assert!(run_to_string(&["explain", p, "r"]).is_err());
    }

    #[test]
    fn profile_emits_valid_jsonl_and_fire_counts() {
        let path = write_temp(
            "t12.cons",
            "fun f/0\nfp = &f\nicall fp()\np = &o\nq = p\nx = *q\n*q = p\n",
        );
        let p = path.to_str().expect("utf8 path");
        let json = write_temp("t12.jsonl", "");
        let j = json.to_str().expect("utf8 path");
        let out = run_to_string(&["profile", p, "--json", j]).expect("profile");

        // The human report shows per-Watcher fire counts and the
        // demand-vs-exhaustive work comparison.
        assert!(out.contains("demand.fires.copy_to"), "got: {out}");
        assert!(out.contains("anders.work"), "got: {out}");
        assert!(out.contains("demand work"), "got: {out}");
        assert!(out.contains("vs exhaustive work"), "got: {out}");
        assert!(
            out.contains("demand.query"),
            "span tree present, got: {out}"
        );

        // Per-query latency lands in a histogram with quantile columns.
        assert!(out.contains("demand.query.latency_us"), "got: {out}");
        assert!(out.contains("p99"), "histogram header present, got: {out}");

        // Every JSONL line is exactly one JSON object with a known kind.
        let text = std::fs::read_to_string(&json).expect("jsonl written");
        assert!(text.lines().count() > 10, "got: {text}");
        for line in text.lines() {
            ddpa::obs::validate_metrics_line(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        assert!(text.contains("\"kind\":\"meta\""));
        assert!(text.contains("\"kind\":\"counter\""));
        assert!(text.contains("\"kind\":\"gauge\""));
        assert!(text.contains("\"kind\":\"span\""));
        assert!(text.contains("\"kind\":\"hist\""));
        assert!(text.contains("demand.fires.copy_to"));
    }

    #[test]
    fn metrics_out_and_profile_flags() {
        let path = write_temp("t13.cons", "p = &o\nq = p\n");
        let p = path.to_str().expect("utf8 path");
        let metrics = write_temp("t13.jsonl", "");
        let m = metrics.to_str().expect("utf8 path");
        let out =
            run_to_string(&["query", p, "q", "--profile", "--metrics-out", m]).expect("query");
        assert!(out.contains("pts(q) = {o}"), "got: {out}");
        assert!(out.contains("demand.query"), "span tree shown, got: {out}");
        let text = std::fs::read_to_string(&metrics).expect("metrics written");
        for line in text.lines() {
            ddpa::obs::validate_jsonl_line(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        assert!(text.contains("demand.queries"), "got: {text}");
    }

    #[test]
    fn jsonl_check_command() {
        let path = write_temp("t14.cons", "p = &o\n");
        let p = path.to_str().expect("utf8 path");
        let json = write_temp("t14.jsonl", "");
        let j = json.to_str().expect("utf8 path");
        run_to_string(&["profile", p, "--json", j]).expect("profile");
        let out = run_to_string(&["jsonl-check", j]).expect("valid export");
        assert!(out.contains("valid JSONL line"), "got: {out}");

        // A failing check names the offending line.
        let bad = write_temp("t14-bad.jsonl", "{\"kind\":\"meta\"}\nnot json\n");
        let b = bad.to_str().expect("utf8 path");
        let err = run_to_string(&["jsonl-check", b]).expect_err("invalid line rejected");
        assert!(err.to_string().contains("line 2"), "got: {err}");

        // Structurally valid JSON with an unknown kind is rejected too,
        // and the message names both the line and the kind.
        let bad_kind = write_temp(
            "t14-kind.jsonl",
            "{\"kind\":\"meta\"}\n{\"kind\":\"counter\",\"name\":\"x\",\"value\":1}\n{\"kind\":\"frobnicate\"}\n",
        );
        let b = bad_kind.to_str().expect("utf8 path");
        let err = run_to_string(&["jsonl-check", b]).expect_err("unknown kind rejected");
        assert!(err.to_string().contains("line 3"), "got: {err}");
        assert!(err.to_string().contains("unknown kind"), "got: {err}");
        assert!(err.to_string().contains("frobnicate"), "got: {err}");
    }

    /// Starts `ddpa serve` on an ephemeral port in a background thread
    /// and returns the address it bound plus the thread handle.
    fn start_serve(tag: &str) -> (String, std::thread::JoinHandle<Result<(), CliError>>) {
        start_serve_with(tag, &[])
    }

    fn start_serve_with(
        tag: &str,
        extra: &[&str],
    ) -> (String, std::thread::JoinHandle<Result<(), CliError>>) {
        let port_file = write_temp(&format!("{tag}.port"), "");
        std::fs::remove_file(&port_file).expect("clear stale port file");
        let pf = port_file.to_str().expect("utf8 path").to_string();
        let pf_thread = pf.clone();
        let extra: Vec<String> = extra.iter().map(|s| s.to_string()).collect();
        let thread = std::thread::spawn(move || {
            let mut args: Vec<String> =
                ["serve", "--addr", "127.0.0.1:0", "--port-file", &pf_thread]
                    .iter()
                    .map(|s| s.to_string())
                    .collect();
            args.extend(extra);
            let mut out = Vec::new();
            run(&args, &mut out)
        });
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                if text.parse::<std::net::SocketAddr>().is_ok() {
                    break text;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "server did not write its port file"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        (addr, thread)
    }

    #[test]
    fn serve_and_client_end_to_end() {
        let (addr, server) = start_serve("t15");
        let cons = write_temp("t15.cons", "p = &o\nq = p\nr = q\n");
        let c = cons.to_str().expect("utf8 path");

        let out = run_to_string(&["client", "--addr", &addr, "ping"]).expect("ping");
        assert!(out.contains("\"ok\":true"), "got: {out}");

        let out = run_to_string(&["client", "--addr", &addr, "open", "s", c]).expect("open");
        assert!(out.contains("\"ok\":true"), "got: {out}");

        // Single query.
        let out = run_to_string(&["client", "--addr", &addr, "query", "s", "r"]).expect("query");
        assert!(out.contains("\"pts\":[\"o\"]"), "got: {out}");

        // --trace attaches the per-request trace report.
        let out = run_to_string(&["client", "--addr", &addr, "query", "s", "r", "--trace"])
            .expect("traced query");
        assert!(out.contains("\"trace\":{\"id\":"), "got: {out}");
        assert!(out.contains("\"wall_us\":"), "got: {out}");

        // Multi-name query becomes one batch.
        let out = run_to_string(&["client", "--addr", &addr, "query", "s", "p", "q", "r"])
            .expect("batch");
        assert!(out.contains("\"results\":["), "got: {out}");
        assert_eq!(out.matches("\"pts\":[\"o\"]").count(), 3, "got: {out}");

        // May-alias and incremental edit.
        let out =
            run_to_string(&["client", "--addr", &addr, "alias", "s", "p", "q"]).expect("alias");
        assert!(out.contains("\"may_alias\":true"), "got: {out}");
        let extra = write_temp("t15-extra.cons", "p = &o2\n");
        let e = extra.to_str().expect("utf8 path");
        let out = run_to_string(&["client", "--addr", &addr, "add", "s", e]).expect("add");
        assert!(out.contains("\"generation\":1"), "got: {out}");
        let out = run_to_string(&["client", "--addr", &addr, "query", "s", "r"]).expect("re-query");
        assert!(
            out.contains("\"o2\""),
            "no stale answer after edit, got: {out}"
        );

        // Server-side errors surface as nonzero exits with the code.
        let e = run_to_string(&["client", "--addr", &addr, "query", "s", "ghost"])
            .expect_err("unknown name");
        assert!(e.to_string().contains("no-node"), "got: {e}");

        let out = run_to_string(&["client", "--addr", &addr, "stats"]).expect("stats");
        assert!(out.contains("\"sessions\""), "got: {out}");
        assert!(out.contains("\"latency\""), "got: {out}");

        // The slow-query ring has retained the traced queries.
        let out = run_to_string(&["client", "--addr", &addr, "slow"]).expect("slow");
        assert!(out.contains("\"entries\":["), "got: {out}");
        assert!(out.contains("\"latency_us\":"), "got: {out}");
        let out = run_to_string(&["client", "--addr", &addr, "slow", "1"]).expect("slow 1");
        assert!(out.contains("\"kept\":"), "got: {out}");

        let out = run_to_string(&["client", "--addr", &addr, "shutdown"]).expect("shutdown");
        assert!(out.contains("\"ok\":true"), "got: {out}");
        server
            .join()
            .expect("server thread")
            .expect("clean shutdown");
    }

    #[test]
    fn client_requires_addr_and_valid_op() {
        assert!(run_to_string(&["client", "ping"]).is_err());
        let e = run_to_string(&["client", "--addr", "127.0.0.1:1", "frobnicate"])
            .expect_err("unknown op");
        assert!(
            e.to_string().contains("unknown client operation"),
            "got: {e}"
        );
    }

    #[test]
    fn snapshot_and_restore_commands_round_trip() {
        let path = write_temp("t16.cons", "p = &o\nq = p\nr = q\n");
        let p = path.to_str().expect("utf8 path");
        let snap = std::env::temp_dir().join("ddpa-cli-tests/t16.snap");
        let s = snap.to_str().expect("utf8 path");
        let _ = std::fs::remove_file(&snap);

        let out = run_to_string(&["snapshot", p, "--out", s]).expect("snapshot");
        assert!(out.contains("fixpoint(s)"), "got: {out}");
        assert!(snap.is_file());

        // The restored engine answers identically with zero deduction work.
        let out = run_to_string(&["restore", p, s, "r", "q"]).expect("restore");
        assert!(out.contains("restored"), "got: {out}");
        assert!(out.contains("pts(r) = {o}  [work 0]"), "got: {out}");
        assert!(out.contains("pts(q) = {o}  [work 0]"), "got: {out}");

        // A MiniC program snapshots via its canonical constraint text.
        let mc = write_temp("t16.mc", "int g; void main() { int *p = &g; }");
        let m = mc.to_str().expect("utf8 path");
        let snap2 = std::env::temp_dir().join("ddpa-cli-tests/t16b.snap");
        let s2 = snap2.to_str().expect("utf8 path");
        run_to_string(&["snapshot", m, "main::p", "--out", s2]).expect("minic snapshot");
        let out = run_to_string(&["restore", m, s2, "main::p"]).expect("minic restore");
        assert!(out.contains("pts(main::p) = {g}  [work 0]"), "got: {out}");
    }

    #[test]
    fn restore_refuses_corrupt_and_mismatched_snapshots() {
        let path = write_temp("t17.cons", "p = &o\n");
        let p = path.to_str().expect("utf8 path");

        // Garbage bytes are not a snapshot.
        let bad = write_temp("t17-bad.snap", "this is not a snapshot");
        let b = bad.to_str().expect("utf8 path");
        let e = run_to_string(&["restore", p, b]).expect_err("corrupt refused");
        assert!(e.to_string().contains("cannot restore"), "got: {e}");

        // A single flipped byte breaks the checksum.
        let snap = std::env::temp_dir().join("ddpa-cli-tests/t17.snap");
        let s = snap.to_str().expect("utf8 path");
        run_to_string(&["snapshot", p, "--out", s]).expect("snapshot");
        let mut bytes = std::fs::read(&snap).expect("read snapshot");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&snap, &bytes).expect("corrupt it");
        let e = run_to_string(&["restore", p, s]).expect_err("bad crc refused");
        assert!(e.to_string().contains("corrupt snapshot"), "got: {e}");

        // A snapshot of a different program is refused by hash.
        let other = write_temp("t17-other.cons", "x = &y\n");
        let o = other.to_str().expect("utf8 path");
        run_to_string(&["snapshot", o, "--out", s]).expect("snapshot other");
        let e = run_to_string(&["restore", p, s]).expect_err("mismatch refused");
        assert!(e.to_string().contains("different program"), "got: {e}");
    }

    #[test]
    fn serve_snapshot_flags_and_client_ops() {
        let dir = std::env::temp_dir().join("ddpa-cli-tests/t18-snaps");
        let _ = std::fs::remove_dir_all(&dir);
        let d = dir.to_str().expect("utf8 path").to_string();
        let (addr, server) = start_serve_with("t18", &["--snapshot-dir", &d, "--restore"]);
        let cons = write_temp("t18.cons", "p = &o\nq = p\nr = q\n");
        let c = cons.to_str().expect("utf8 path");

        run_to_string(&["client", "--addr", &addr, "open", "s", c]).expect("open");
        run_to_string(&["client", "--addr", &addr, "query", "s", "r"]).expect("query");
        let out =
            run_to_string(&["client", "--addr", &addr, "snapshot", "s"]).expect("snapshot op");
        assert!(out.contains("\"entries\":"), "got: {out}");
        assert!(
            dir.join("s.snap").is_file(),
            "snapshot landed in --snapshot-dir"
        );

        // Close and re-open: --restore warm-starts the session from disk.
        run_to_string(&["client", "--addr", &addr, "close", "s"]).expect("close");
        let out = run_to_string(&["client", "--addr", &addr, "open", "s", c]).expect("re-open");
        assert!(out.contains("\"restored\":"), "got: {out}");
        assert!(!out.contains("\"restored\":0"), "warm re-open, got: {out}");

        // Explicit restore into a second session over the same program.
        let snap_path = dir.join("s.snap");
        let sp = snap_path.to_str().expect("utf8 path");
        run_to_string(&["client", "--addr", &addr, "open", "twin", c]).expect("open twin");
        let out =
            run_to_string(&["client", "--addr", &addr, "restore", "twin", sp]).expect("restore op");
        assert!(out.contains("\"installed\":"), "got: {out}");

        run_to_string(&["client", "--addr", &addr, "shutdown"]).expect("shutdown");
        server
            .join()
            .expect("server thread")
            .expect("clean shutdown");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn top_graph_flight_scrape_against_live_server() {
        let (addr, server) = start_serve("t19");
        let cons = write_temp("t19.cons", "p = &a\np = &b\nq = p\nr = *q\n*q = p\n");
        let c = cons.to_str().expect("utf8 path");
        run_to_string(&["client", "--addr", &addr, "open", "s", c]).expect("open");
        run_to_string(&["client", "--addr", &addr, "query", "s", "r"]).expect("query");

        // One `top` frame shows server health, the engine counters, the
        // critical-path summary, and a hottest-goals table.
        let out = run_to_string(&["top", "s", "--addr", &addr, "--iters", "1", "--top", "5"])
            .expect("top");
        assert!(out.contains("ddpa top"), "got: {out}");
        assert!(out.contains("critical path: work"), "got: {out}");
        assert!(out.contains("parallelism headroom"), "got: {out}");
        assert!(out.contains("hit rate"), "got: {out}");
        assert!(
            out.contains("pts(") || out.contains("ptb("),
            "hottest goals listed, got: {out}"
        );

        // The goal graph exports as JSON and as Graphviz DOT.
        let out = run_to_string(&["graph", "s", "--addr", &addr]).expect("graph json");
        assert!(out.contains("\"nodes\":["), "got: {out}");
        assert!(out.contains("\"edges\":["), "got: {out}");
        let out = run_to_string(&["graph", "s", "--addr", &addr, "--dot"]).expect("graph dot");
        assert!(out.starts_with("digraph goals {"), "got: {out}");
        assert!(out.contains("->"), "got: {out}");

        // Flight events written with --out validate as a metrics export.
        let flight = write_temp("t19-flight.jsonl", "");
        let f = flight.to_str().expect("utf8 path");
        let out =
            run_to_string(&["flight", "s", "--addr", &addr, "--out", f]).expect("flight export");
        assert!(out.contains("flight event(s)"), "got: {out}");
        let text = std::fs::read_to_string(&flight).expect("flight written");
        assert!(!text.is_empty(), "recorder captured the query");
        assert!(text.contains("\"kind\":\"flight\""), "got: {text}");
        run_to_string(&["jsonl-check", f]).expect("flight export validates");

        // Without --out the events stream to stdout.
        let out = run_to_string(&["flight", "s", "--addr", &addr, "--limit", "3"])
            .expect("flight stdout");
        assert!(out.lines().count() <= 3, "got: {out}");
        assert!(out.contains("\"kind\":\"flight\""), "got: {out}");

        // A scrape is a valid JSONL export covering server and session.
        let scrape = write_temp("t19-scrape.jsonl", "");
        let m = scrape.to_str().expect("utf8 path");
        let out = run_to_string(&["scrape", "--addr", &addr, "--out", m]).expect("scrape");
        assert!(out.contains("metric line(s)"), "got: {out}");
        let text = std::fs::read_to_string(&scrape).expect("scrape written");
        assert!(text.contains("server.requests"), "got: {text}");
        assert!(text.contains("session.s.flight_events"), "got: {text}");
        run_to_string(&["jsonl-check", m]).expect("scrape validates");

        // The client passthrough ops answer too.
        let out = run_to_string(&["client", "--addr", &addr, "inspect", "s", "--top", "2"])
            .expect("client inspect");
        assert!(out.contains("\"hottest\":["), "got: {out}");
        assert!(out.contains("\"critical_path\":"), "got: {out}");

        run_to_string(&["client", "--addr", &addr, "shutdown"]).expect("shutdown");
        server
            .join()
            .expect("server thread")
            .expect("clean shutdown");
    }

    #[test]
    fn solve_named_nodes() {
        let path = write_temp("t7.cons", "p = &o\nq = p\n");
        let p = path.to_str().expect("utf8 path");
        let out = run_to_string(&["solve", p, "q"]).expect("solve");
        assert_eq!(out.trim(), "pts(q) = {o}");
    }
}
