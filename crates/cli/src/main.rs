//! The `ddpa` command-line tool.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    match ddpa_cli::run(&args, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ddpa: {e}");
            ExitCode::FAILURE
        }
    }
}
