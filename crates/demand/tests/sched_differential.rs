//! Differential testing for the parallel scheduler: every worker count
//! and scheduling policy must produce answers bit-identical to the
//! sequential engine and to the exhaustive wave solver. Parallelism is
//! an execution strategy, never a semantics change — the deduction
//! rules are monotone, so the least fixpoint is unique no matter the
//! interleaving.
//!
//! Set `DDPA_SCHED_WORKERS` to raise (or lower) the maximum worker
//! count exercised; the default sweeps 1..=4.

use std::sync::Arc;

use ddpa_constraints::{ConstraintBuilder, ConstraintProgram, NodeId};
use ddpa_demand::{DemandConfig, DemandEngine, SchedPolicy, SharedMemo};
use ddpa_gen::{generate_cyclic, generate_wide, CyclicConfig, WideConfig};
use ddpa_support::rng::Rng;

const CASES: usize = 128;

/// Maximum worker count to sweep, from `DDPA_SCHED_WORKERS` (default 4).
fn max_workers() -> usize {
    std::env::var("DDPA_SCHED_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(4)
        .max(1)
}

/// Every (policy, workers) configuration the suite exercises, including
/// the plain sequential engine (`workers = 1` short-circuits to it).
fn configurations() -> Vec<(SchedPolicy, usize)> {
    let mut cfgs = vec![(SchedPolicy::Dfs, 1)];
    for w in 2..=max_workers() {
        cfgs.push((SchedPolicy::Dfs, w));
        cfgs.push((SchedPolicy::Bfs, w));
    }
    cfgs
}

/// A compact random program: raw pointer constraints over a small
/// variable pool, dense enough that load/store deduction and value
/// cycles appear regularly.
fn random_program(rng: &mut Rng) -> ConstraintProgram {
    let num_vars = rng.gen_range(3..16usize);
    let mut b = ConstraintBuilder::new();
    let vars: Vec<NodeId> = (0..num_vars).map(|i| b.var(&format!("v{i}"))).collect();
    for _ in 0..rng.gen_range(2..28usize) {
        let x = vars[rng.gen_range(0..num_vars)];
        let y = vars[rng.gen_range(0..num_vars)];
        match rng.gen_range(0..4u8) {
            0 => b.addr_of(x, y),
            1 => b.copy(x, y),
            2 => b.load(x, y),
            _ => b.store(x, y),
        };
    }
    b.build()
}

/// The exhaustive ptb relation: every node whose pts contains `obj`.
fn oracle_ptb(cp: &ConstraintProgram, oracle: &ddpa_anders::Solution, obj: NodeId) -> Vec<NodeId> {
    cp.node_ids()
        .filter(|&w| oracle.points_to(w, obj))
        .collect()
}

/// Asserts that `cp` answers identically under every configuration.
fn assert_all_configs_agree(cp: &ConstraintProgram, tag: &str) {
    let (oracle, _) = ddpa_anders::wave::solve(cp);
    for (policy, workers) in configurations() {
        let config = DemandConfig::default()
            .with_workers(workers)
            .with_sched_policy(policy);
        let mut engine = DemandEngine::new(cp, config);
        for node in cp.node_ids() {
            let got = engine.points_to(node);
            assert!(got.complete, "{tag}: {policy:?}x{workers} incomplete");
            assert_eq!(
                got.pts,
                oracle.pts_nodes(node),
                "{tag}: pts({}) diverges under {policy:?}x{workers}",
                cp.display_node(node)
            );
        }
    }
}

/// pts over random programs: sequential, DFS×1..N and BFS×2..N all
/// reproduce the wave solver's fixpoint exactly.
#[test]
fn parallel_pts_matches_wave_on_random_programs() {
    let mut rng = Rng::seed_from_u64(0x5ced_0001);
    for case in 0..CASES {
        let cp = random_program(&mut rng);
        assert_all_configs_agree(&cp, &format!("case {case}"));
    }
}

/// ptb and may-alias answers are likewise policy- and worker-invariant.
#[test]
fn parallel_ptb_and_alias_match_sequential() {
    let mut rng = Rng::seed_from_u64(0x5ced_0002);
    for case in 0..CASES / 2 {
        let cp = random_program(&mut rng);
        let (oracle, _) = ddpa_anders::wave::solve(&cp);
        let nodes: Vec<NodeId> = cp.node_ids().collect();
        for (policy, workers) in configurations() {
            let config = DemandConfig::default()
                .with_workers(workers)
                .with_sched_policy(policy);
            let mut engine = DemandEngine::new(&cp, config);
            for &obj in &nodes {
                let got = engine.pointed_to_by(obj);
                assert!(got.complete, "case {case}: {policy:?}x{workers}");
                assert_eq!(
                    got.pts,
                    oracle_ptb(&cp, &oracle, obj),
                    "case {case}: ptb({}) diverges under {policy:?}x{workers}",
                    cp.display_node(obj)
                );
            }
            for pair in nodes.windows(2) {
                let want = oracle
                    .pts_nodes(pair[0])
                    .iter()
                    .any(|o| oracle.points_to(pair[1], *o));
                let got = engine.may_alias(pair[0], pair[1]);
                assert!(got.resolved, "case {case}");
                assert_eq!(
                    got.may_alias, want,
                    "case {case}: alias diverges under {policy:?}x{workers}"
                );
            }
        }
    }
}

/// Cycle-dominated programs: online cycle collapsing runs inside worker
/// frames too, and the collapsed answers stay exact for every policy.
#[test]
fn parallel_matches_wave_on_cyclic_programs() {
    for (i, seed) in [3u64, 17, 41].into_iter().enumerate() {
        // `sized(seed, s)` builds `s` rings of `4·s` variables each.
        let cp = generate_cyclic(&CyclicConfig::sized(seed, 3 + 2 * i));
        assert_all_configs_agree(&cp, &format!("cyclic seed {seed}"));
    }
}

/// Wide programs (the T10 workload): maximal fan-out is where stealing
/// is busiest, and the merged hub answer must still be byte-for-byte
/// the sequential one.
#[test]
fn parallel_matches_wave_on_wide_programs() {
    for seed in [1u64, 9] {
        let cp = generate_wide(&WideConfig::sized(seed, 700));
        let (oracle, _) = ddpa_anders::wave::solve(&cp);
        let hub = cp
            .node_ids()
            .find(|&n| cp.display_node(n) == "hub")
            .expect("hub exists");
        for (policy, workers) in configurations() {
            let config = DemandConfig::default()
                .with_workers(workers)
                .with_sched_policy(policy);
            let mut engine = DemandEngine::new(&cp, config);
            let got = engine.points_to(hub);
            assert!(got.complete);
            assert_eq!(
                got.pts,
                oracle.pts_nodes(hub),
                "pts(hub) diverges under {policy:?}x{workers} (seed {seed})"
            );
        }
    }
}

/// Across add-constraints generations: after `reload` onto a grown
/// program, parallel engines sharing a memo table republish fresh
/// fixpoints — never a stale generation's — and still match the wave
/// solver on the new program.
#[test]
fn parallel_stays_exact_across_generations() {
    let mut rng = Rng::seed_from_u64(0x5ced_0003);
    let workers = max_workers();
    for case in 0..32 {
        // Generation 0: a base program, solved and published.
        let base = random_program(&mut rng);
        let shared = Arc::new(SharedMemo::new());
        let config = DemandConfig::default()
            .with_workers(workers)
            .with_sched_policy(if case % 2 == 0 {
                SchedPolicy::Dfs
            } else {
                SchedPolicy::Bfs
            });
        let mut engine =
            DemandEngine::new(&base, config.clone()).with_shared_memo(Arc::clone(&shared));
        for node in base.node_ids() {
            let _ = engine.points_to(node);
        }

        // Generation 1: the same program plus extra constraints — the
        // serve `add` path reparses the grown text and reloads.
        let mut text = ddpa_constraints::print_constraints(&base);
        let n = base.node_ids().count();
        for _ in 0..rng.gen_range(1..6usize) {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            match rng.gen_range(0..3u8) {
                0 => text.push_str(&format!("v{a} = &v{b}\n")),
                1 => text.push_str(&format!("v{a} = v{b}\n")),
                _ => text.push_str(&format!("v{a} = *v{b}\n")),
            }
        }
        let grown = ddpa_constraints::parse_constraints(&text).expect("grown program parses");
        let (oracle, _) = ddpa_anders::wave::solve(&grown);
        engine.reload(&grown);
        for node in grown.node_ids() {
            let got = engine.points_to(node);
            assert!(got.complete, "case {case}");
            assert_eq!(
                got.pts,
                oracle.pts_nodes(node),
                "case {case}: stale answer for pts({}) after reload",
                grown.display_node(node)
            );
        }
        // A second parallel engine attached to the same table sees only
        // current-generation entries.
        let mut second = DemandEngine::new(&grown, config).with_shared_memo(Arc::clone(&shared));
        for node in grown.node_ids() {
            assert_eq!(
                second.points_to(node).pts,
                oracle.pts_nodes(node),
                "case {case}: second engine after reload"
            );
        }
    }
}

/// On acyclic programs a fresh parallel run performs exactly the same
/// deduction steps as a fresh sequential run — each (goal, fact) pair
/// fires once no matter who fires it — so total work is identical, not
/// merely close.
#[test]
fn parallel_work_equals_sequential_on_fresh_tables() {
    for seed in [2u64, 13] {
        let cp = generate_wide(&WideConfig::sized(seed, 520));
        let hub = cp
            .node_ids()
            .find(|&n| cp.display_node(n) == "hub")
            .expect("hub exists");
        let mut seq = DemandEngine::new(&cp, DemandConfig::default());
        let want = seq.points_to(hub);
        for workers in 2..=max_workers() {
            let mut par = DemandEngine::new(&cp, DemandConfig::default().with_workers(workers));
            let got = par.points_to(hub);
            assert_eq!(
                got.pts, want.pts,
                "seed {seed}: answers at {workers} workers"
            );
            assert_eq!(
                got.work, want.work,
                "seed {seed}: duplicated or skipped deduction at {workers} workers"
            );
        }
    }
}
