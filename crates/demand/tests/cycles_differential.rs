//! Differential testing for online cycle collapsing: on every random
//! program seeded with forced copy cycles, the engine with collapsing on
//! must agree bit-for-bit with collapsing off and with the exhaustive
//! wave solver — for `points_to`, `pointed_to_by`, and `may_alias`.
//! Merging a cycle's goals must never change an answer, only the work.

use ddpa_constraints::NodeId;
use ddpa_demand::{DemandConfig, DemandEngine};
use ddpa_gen::{generate_random, RandomConfig};
use ddpa_support::rng::Rng;

const CASES: usize = 120;

#[test]
fn collapsing_is_invisible_to_every_query() {
    let mut rng = Rng::seed_from_u64(0x000c_7c1e_0001);
    for case in 0..CASES {
        let seed = rng.gen_range(0..u32::MAX as u64);
        let rings = rng.gen_range(2..6usize);
        let len = rng.gen_range(2..24usize);
        let config = RandomConfig::sized(seed, 140).with_copy_cycles(rings, len);
        let cp = generate_random(&config);
        let (wave, _) = ddpa_anders::wave::solve(&cp);

        // Aggressive threshold so every discovered cycle collapses early,
        // maximising the chance a merge could corrupt an answer.
        let mut on = DemandEngine::new(&cp, DemandConfig::default().with_collapse_threshold(1));
        let mut off = DemandEngine::new(&cp, DemandConfig::default().without_cycle_collapsing());

        let nodes: Vec<NodeId> = cp.node_ids().collect();
        for &n in &nodes {
            let a = on.points_to(n);
            let b = off.points_to(n);
            assert!(a.complete && b.complete, "case {case}");
            assert_eq!(
                a.pts,
                b.pts,
                "case {case}: pts({}) differs on vs off",
                cp.display_node(n)
            );
            assert_eq!(
                a.pts,
                wave.pts_nodes(n),
                "case {case}: pts({}) differs from wave",
                cp.display_node(n)
            );
        }
        assert!(
            on.stats().cycles_collapsed > 0,
            "case {case}: forced rings should collapse (rings={rings}, len={len})"
        );

        for &obj in &nodes {
            let a = on.pointed_to_by(obj);
            let b = off.pointed_to_by(obj);
            assert!(a.complete && b.complete, "case {case}");
            assert_eq!(
                a.pts,
                b.pts,
                "case {case}: ptb({}) differs on vs off",
                cp.display_node(obj)
            );
            let want: Vec<NodeId> = nodes
                .iter()
                .copied()
                .filter(|&w| wave.points_to(w, obj))
                .collect();
            assert_eq!(
                a.pts,
                want,
                "case {case}: ptb({}) differs from wave",
                cp.display_node(obj)
            );
        }

        // may_alias over a sampled pair set (n² pairs is too many).
        for _ in 0..64 {
            let a = nodes[rng.gen_range(0..nodes.len())];
            let b = nodes[rng.gen_range(0..nodes.len())];
            let ra = on.may_alias(a, b);
            let rb = off.may_alias(a, b);
            assert!(ra.resolved && rb.resolved, "case {case}");
            let want = !intersection_empty(&wave.pts_nodes(a), &wave.pts_nodes(b));
            assert_eq!(ra.may_alias, want, "case {case}: may_alias vs wave");
            assert_eq!(rb.may_alias, want, "case {case}: may_alias on vs off");
        }
    }
}

fn intersection_empty(a: &[NodeId], b: &[NodeId]) -> bool {
    a.iter().all(|x| !b.contains(x))
}
