//! Differential testing: the demand engine must agree exactly with the
//! exhaustive analysis on every query it resolves, for arbitrary constraint
//! programs (the paper's precision claim).

use proptest::prelude::*;

use ddpa_anders::naive;
use ddpa_constraints::{ConstraintBuilder, ConstraintProgram, NodeId};
use ddpa_demand::{DemandConfig, DemandEngine};

/// A generatable constraint-program description.
#[derive(Clone, Debug)]
struct Spec {
    num_vars: usize,
    /// (kind, a, b): kind 0 → a=&b, 1 → a=b, 2 → a=*b, 3 → *a=b.
    constraints: Vec<(u8, usize, usize)>,
    /// Function arities (each function gets `ret = arg0` wiring when unary).
    funcs: Vec<usize>,
    /// (func_index, take_address): seed `fpK = &func` facts.
    fp_seeds: Vec<usize>,
    /// (callee_fp_var, arg_var, want_ret): indirect call sites.
    icalls: Vec<(usize, usize, bool)>,
    /// (func_index, arg_var, want_ret): direct call sites.
    dcalls: Vec<(usize, usize, bool)>,
    /// (parent_var, field): field-node declarations.
    field_decls: Vec<(usize, u32)>,
    /// (dst_var, base_var, field): `dst = &base->field` constraints.
    field_addrs: Vec<(usize, usize, u32)>,
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    (2usize..14, 0usize..3).prop_flat_map(|(num_vars, num_funcs)| {
        let constraint = (0u8..4, 0..num_vars, 0..num_vars);
        let funcs = prop::collection::vec(0usize..3, num_funcs);
        let fp_seeds = prop::collection::vec(0usize..num_funcs.max(1), 0..3);
        let icalls =
            prop::collection::vec((0..num_vars, 0..num_vars, any::<bool>()), 0..3);
        let dcalls = prop::collection::vec(
            (0usize..num_funcs.max(1), 0..num_vars, any::<bool>()),
            0..3,
        );
        let field_decls = prop::collection::vec((0..num_vars, 0u32..3), 0..4);
        let field_addrs =
            prop::collection::vec((0..num_vars, 0..num_vars, 0u32..3), 0..4);
        (
            prop::collection::vec(constraint, 0..24),
            funcs,
            fp_seeds,
            icalls,
            dcalls,
            field_decls,
            field_addrs,
        )
            .prop_map(
                move |(constraints, funcs, fp_seeds, icalls, dcalls, field_decls, field_addrs)| {
                    Spec {
                        num_vars,
                        constraints,
                        funcs,
                        fp_seeds,
                        icalls,
                        dcalls,
                        field_decls,
                        field_addrs,
                    }
                },
            )
    })
}

fn build(spec: &Spec) -> ConstraintProgram {
    let mut b = ConstraintBuilder::new();
    let vars: Vec<NodeId> =
        (0..spec.num_vars).map(|i| b.var(&format!("v{i}"))).collect();
    let funcs: Vec<_> = spec
        .funcs
        .iter()
        .enumerate()
        .map(|(i, &arity)| b.func(&format!("f{i}"), arity))
        .collect();
    // Give each function some internal flow: ret ⊇ each formal.
    for &f in &funcs {
        let info = b.func_info(f).clone();
        for formal in info.formals {
            b.copy(info.ret, formal);
        }
    }
    for (kind, x, y) in &spec.constraints {
        let (x, y) = (vars[*x], vars[*y]);
        match kind {
            0 => b.addr_of(x, y),
            1 => b.copy(x, y),
            2 => b.load(x, y),
            _ => b.store(x, y),
        };
    }
    if !funcs.is_empty() {
        for (i, &fi) in spec.fp_seeds.iter().enumerate() {
            let obj = b.func_info(funcs[fi % funcs.len()]).object;
            let fp = vars[i % vars.len()];
            b.addr_of(fp, obj);
        }
        for &(fi, arg, want_ret) in &spec.dcalls {
            let f = funcs[fi % funcs.len()];
            let arity = b.func_info(f).formals.len();
            let args = (0..arity).map(|_| Some(vars[arg])).collect();
            let ret = want_ret.then(|| vars[(arg + 1) % vars.len()]);
            b.call_direct(f, args, ret);
        }
    }
    for &(fp, arg, want_ret) in &spec.icalls {
        let args = vec![Some(vars[arg])];
        let ret = want_ret.then(|| vars[(arg + 1) % vars.len()]);
        b.call_indirect(vars[fp], args, ret);
    }
    for &(parent, field) in &spec.field_decls {
        b.field_node(vars[parent], field);
    }
    for &(dst, base, field) in &spec.field_addrs {
        b.field_addr(vars[dst], vars[base], field);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// pts(v) computed on demand equals the exhaustive answer, ∀v — and
    /// all three exhaustive solvers agree with each other.
    #[test]
    fn demand_pts_equals_exhaustive(spec in spec_strategy()) {
        let cp = build(&spec);
        let oracle = naive::solve(&cp);
        let (wave, _) = ddpa_anders::wave::solve(&cp);
        let (worklist, _) = ddpa_anders::worklist::solve(
            &cp,
            &ddpa_anders::SolverConfig::default(),
        );
        for node in cp.node_ids() {
            prop_assert_eq!(wave.pts_nodes(node), oracle.pts_nodes(node));
            prop_assert_eq!(worklist.pts_nodes(node), oracle.pts_nodes(node));
        }
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        for node in cp.node_ids() {
            let got = engine.points_to(node);
            prop_assert!(got.complete);
            let want = oracle.pts_nodes(node);
            prop_assert_eq!(
                &got.pts, &want,
                "pts({}) mismatch", cp.display_node(node)
            );
        }
    }

    /// ptb(o) computed on demand equals the exhaustive inverse relation.
    #[test]
    fn demand_ptb_matches_inverse(spec in spec_strategy()) {
        let cp = build(&spec);
        let oracle = naive::solve(&cp);
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        for obj in cp.node_ids() {
            let got = engine.pointed_to_by(obj);
            prop_assert!(got.complete);
            let want: Vec<NodeId> = cp
                .node_ids()
                .filter(|&w| oracle.points_to(w, obj))
                .collect();
            prop_assert_eq!(
                &got.pts, &want,
                "ptb({}) mismatch", cp.display_node(obj)
            );
        }
    }

    /// Partial (budgeted) answers never exceed the full answer, and caching
    /// off gives the same answers as caching on.
    #[test]
    fn budget_partial_is_subset_and_caching_is_transparent(
        spec in spec_strategy(),
        budget in 1u64..60,
    ) {
        let cp = build(&spec);
        let oracle = naive::solve(&cp);
        let mut cached = DemandEngine::new(&cp, DemandConfig::default());
        let mut uncached =
            DemandEngine::new(&cp, DemandConfig::default().without_caching());
        for node in cp.node_ids() {
            let full: Vec<NodeId> = oracle.pts_nodes(node);
            let mut partial_engine =
                DemandEngine::new(&cp, DemandConfig::default().with_budget(budget));
            let partial = partial_engine.points_to(node);
            for n in &partial.pts {
                prop_assert!(full.contains(n), "partial exceeds full");
            }
            if partial.complete {
                prop_assert_eq!(&partial.pts, &full);
            }
            prop_assert_eq!(cached.points_to(node).pts, full.clone());
            prop_assert_eq!(uncached.points_to(node).pts, full);
        }
    }

    /// Call targets resolved on demand match the exhaustive call graph.
    #[test]
    fn call_targets_match_exhaustive(spec in spec_strategy()) {
        let cp = build(&spec);
        let oracle = naive::solve(&cp);
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        for cs in cp.callsites().indices() {
            let got = engine.call_targets(cs);
            prop_assert!(got.resolved);
            prop_assert_eq!(
                got.targets.as_slice(),
                oracle.call_targets(cs),
                "targets of callsite {:?} mismatch", cs
            );
        }
    }
}
