//! Differential testing: the demand engine must agree exactly with the
//! exhaustive analysis on every query it resolves, for arbitrary constraint
//! programs (the paper's precision claim). Specs are drawn from a seeded
//! RNG so every run replays the same corpus.

use ddpa_support::rng::Rng;

use ddpa_anders::naive;
use ddpa_constraints::{ConstraintBuilder, ConstraintProgram, NodeId};
use ddpa_demand::{DemandConfig, DemandEngine};

const CASES: usize = 256;

/// A generatable constraint-program description.
#[derive(Clone, Debug)]
struct Spec {
    num_vars: usize,
    /// (kind, a, b): kind 0 → a=&b, 1 → a=b, 2 → a=*b, 3 → *a=b.
    constraints: Vec<(u8, usize, usize)>,
    /// Function arities (each function gets `ret = arg0` wiring when unary).
    funcs: Vec<usize>,
    /// (func_index, take_address): seed `fpK = &func` facts.
    fp_seeds: Vec<usize>,
    /// (callee_fp_var, arg_var, want_ret): indirect call sites.
    icalls: Vec<(usize, usize, bool)>,
    /// (func_index, arg_var, want_ret): direct call sites.
    dcalls: Vec<(usize, usize, bool)>,
    /// (parent_var, field): field-node declarations.
    field_decls: Vec<(usize, u32)>,
    /// (dst_var, base_var, field): `dst = &base->field` constraints.
    field_addrs: Vec<(usize, usize, u32)>,
}

fn random_spec(rng: &mut Rng) -> Spec {
    let num_vars = rng.gen_range(2..14usize);
    let num_funcs = rng.gen_range(0..3usize);
    let constraints = (0..rng.gen_range(0..24usize))
        .map(|_| {
            (
                rng.gen_range(0..4u8),
                rng.gen_range(0..num_vars),
                rng.gen_range(0..num_vars),
            )
        })
        .collect();
    let funcs = (0..num_funcs).map(|_| rng.gen_range(0..3usize)).collect();
    let fp_seeds = (0..rng.gen_range(0..3usize))
        .map(|_| rng.gen_range(0..num_funcs.max(1)))
        .collect();
    let icalls = (0..rng.gen_range(0..3usize))
        .map(|_| {
            (
                rng.gen_range(0..num_vars),
                rng.gen_range(0..num_vars),
                rng.gen_bool(0.5),
            )
        })
        .collect();
    let dcalls = (0..rng.gen_range(0..3usize))
        .map(|_| {
            (
                rng.gen_range(0..num_funcs.max(1)),
                rng.gen_range(0..num_vars),
                rng.gen_bool(0.5),
            )
        })
        .collect();
    let field_decls = (0..rng.gen_range(0..4usize))
        .map(|_| (rng.gen_range(0..num_vars), rng.gen_range(0u32..3)))
        .collect();
    let field_addrs = (0..rng.gen_range(0..4usize))
        .map(|_| {
            (
                rng.gen_range(0..num_vars),
                rng.gen_range(0..num_vars),
                rng.gen_range(0u32..3),
            )
        })
        .collect();
    Spec {
        num_vars,
        constraints,
        funcs,
        fp_seeds,
        icalls,
        dcalls,
        field_decls,
        field_addrs,
    }
}

fn build(spec: &Spec) -> ConstraintProgram {
    let mut b = ConstraintBuilder::new();
    let vars: Vec<NodeId> = (0..spec.num_vars)
        .map(|i| b.var(&format!("v{i}")))
        .collect();
    let funcs: Vec<_> = spec
        .funcs
        .iter()
        .enumerate()
        .map(|(i, &arity)| b.func(&format!("f{i}"), arity))
        .collect();
    // Give each function some internal flow: ret ⊇ each formal.
    for &f in &funcs {
        let info = b.func_info(f).clone();
        for formal in info.formals {
            b.copy(info.ret, formal);
        }
    }
    for (kind, x, y) in &spec.constraints {
        let (x, y) = (vars[*x], vars[*y]);
        match kind {
            0 => b.addr_of(x, y),
            1 => b.copy(x, y),
            2 => b.load(x, y),
            _ => b.store(x, y),
        };
    }
    if !funcs.is_empty() {
        for (i, &fi) in spec.fp_seeds.iter().enumerate() {
            let obj = b.func_info(funcs[fi % funcs.len()]).object;
            let fp = vars[i % vars.len()];
            b.addr_of(fp, obj);
        }
        for &(fi, arg, want_ret) in &spec.dcalls {
            let f = funcs[fi % funcs.len()];
            let arity = b.func_info(f).formals.len();
            let args = (0..arity).map(|_| Some(vars[arg])).collect();
            let ret = want_ret.then(|| vars[(arg + 1) % vars.len()]);
            b.call_direct(f, args, ret);
        }
    }
    for &(fp, arg, want_ret) in &spec.icalls {
        let args = vec![Some(vars[arg])];
        let ret = want_ret.then(|| vars[(arg + 1) % vars.len()]);
        b.call_indirect(vars[fp], args, ret);
    }
    for &(parent, field) in &spec.field_decls {
        b.field_node(vars[parent], field);
    }
    for &(dst, base, field) in &spec.field_addrs {
        b.field_addr(vars[dst], vars[base], field);
    }
    b.build()
}

/// pts(v) computed on demand equals the exhaustive answer, ∀v — and
/// all three exhaustive solvers agree with each other.
#[test]
fn demand_pts_equals_exhaustive() {
    let mut rng = Rng::seed_from_u64(0xd1f_0001);
    for case in 0..CASES {
        let spec = random_spec(&mut rng);
        let cp = build(&spec);
        let oracle = naive::solve(&cp);
        let (wave, _) = ddpa_anders::wave::solve(&cp);
        let (worklist, _) =
            ddpa_anders::worklist::solve(&cp, &ddpa_anders::SolverConfig::default());
        for node in cp.node_ids() {
            assert_eq!(wave.pts_nodes(node), oracle.pts_nodes(node), "case {case}");
            assert_eq!(
                worklist.pts_nodes(node),
                oracle.pts_nodes(node),
                "case {case}"
            );
        }
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        for node in cp.node_ids() {
            let got = engine.points_to(node);
            assert!(got.complete, "case {case}");
            let want = oracle.pts_nodes(node);
            assert_eq!(
                &got.pts,
                &want,
                "case {case}: pts({}) mismatch",
                cp.display_node(node)
            );
        }
    }
}

/// ptb(o) computed on demand equals the exhaustive inverse relation.
#[test]
fn demand_ptb_matches_inverse() {
    let mut rng = Rng::seed_from_u64(0xd1f_0002);
    for case in 0..CASES {
        let spec = random_spec(&mut rng);
        let cp = build(&spec);
        let oracle = naive::solve(&cp);
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        for obj in cp.node_ids() {
            let got = engine.pointed_to_by(obj);
            assert!(got.complete, "case {case}");
            let want: Vec<NodeId> = cp
                .node_ids()
                .filter(|&w| oracle.points_to(w, obj))
                .collect();
            assert_eq!(
                &got.pts,
                &want,
                "case {case}: ptb({}) mismatch",
                cp.display_node(obj)
            );
        }
    }
}

/// Partial (budgeted) answers never exceed the full answer, and caching
/// off gives the same answers as caching on.
#[test]
fn budget_partial_is_subset_and_caching_is_transparent() {
    let mut rng = Rng::seed_from_u64(0xd1f_0003);
    for case in 0..CASES {
        let spec = random_spec(&mut rng);
        let budget = rng.gen_range(1u64..60);
        let cp = build(&spec);
        let oracle = naive::solve(&cp);
        let mut cached = DemandEngine::new(&cp, DemandConfig::default());
        let mut uncached = DemandEngine::new(&cp, DemandConfig::default().without_caching());
        for node in cp.node_ids() {
            let full: Vec<NodeId> = oracle.pts_nodes(node);
            let mut partial_engine =
                DemandEngine::new(&cp, DemandConfig::default().with_budget(budget));
            let partial = partial_engine.points_to(node);
            for n in &partial.pts {
                assert!(full.contains(n), "case {case}: partial exceeds full");
            }
            if partial.complete {
                assert_eq!(&partial.pts, &full, "case {case}");
            }
            assert_eq!(cached.points_to(node).pts, full.clone(), "case {case}");
            assert_eq!(uncached.points_to(node).pts, full, "case {case}");
        }
    }
}

/// Call targets resolved on demand match the exhaustive call graph.
#[test]
fn call_targets_match_exhaustive() {
    let mut rng = Rng::seed_from_u64(0xd1f_0004);
    for case in 0..CASES {
        let spec = random_spec(&mut rng);
        let cp = build(&spec);
        let oracle = naive::solve(&cp);
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        for cs in cp.callsites().indices() {
            let got = engine.call_targets(cs);
            assert!(got.resolved, "case {case}");
            assert_eq!(
                got.targets.as_slice(),
                oracle.call_targets(cs),
                "case {case}: targets of callsite {cs:?} mismatch"
            );
        }
    }
}

/// The shared memo table is transparent: engines wired to one
/// [`SharedMemo`] give bit-identical answers to a private-memo engine
/// and to the exhaustive oracle — whether they compute a result
/// themselves or install another engine's published fixpoint — and
/// invalidation (the `add-constraints` path) never serves an answer
/// from a stale generation.
#[test]
fn shared_memo_is_transparent_and_respects_generations() {
    use ddpa_demand::SharedMemo;
    use std::sync::Arc;

    let mut rng = Rng::seed_from_u64(0xd1f_0005);
    for case in 0..CASES {
        let spec = random_spec(&mut rng);
        let cp = build(&spec);
        let oracle = naive::solve(&cp);
        let shared = Arc::new(SharedMemo::new());
        let mut plain = DemandEngine::new(&cp, DemandConfig::default());
        // `writer` computes and publishes; `reader` starts cold against
        // a table `writer` has already filled, so its answers come
        // largely from shared installs rather than deduction.
        let mut writer =
            DemandEngine::new(&cp, DemandConfig::default()).with_shared_memo(Arc::clone(&shared));
        let mut reader =
            DemandEngine::new(&cp, DemandConfig::default()).with_shared_memo(Arc::clone(&shared));
        for node in cp.node_ids() {
            let want = oracle.pts_nodes(node);
            assert_eq!(plain.points_to(node).pts, want, "case {case}: private");
            assert_eq!(writer.points_to(node).pts, want, "case {case}: writer");
            let got = reader.points_to(node);
            assert!(got.complete, "case {case}: reader");
            assert_eq!(got.pts, want, "case {case}: shared install");
        }
        for obj in cp.node_ids() {
            let want: Vec<NodeId> = cp
                .node_ids()
                .filter(|&w| oracle.points_to(w, obj))
                .collect();
            assert_eq!(writer.pointed_to_by(obj).pts, want, "case {case}: ptb");
            assert_eq!(reader.pointed_to_by(obj).pts, want, "case {case}: ptb");
        }
        let stats = reader.stats();
        assert_eq!(
            stats.share_hits + stats.share_misses,
            stats.goals_activated,
            "case {case}: every activation consulted the shared table"
        );

        // Invalidate (as `add-constraints` does via reload): the bumped
        // generation must hide every published entry from both the
        // invalidating engine and any engine attached afterwards.
        writer.invalidate();
        for node in cp.node_ids() {
            let want = oracle.pts_nodes(node);
            assert_eq!(
                writer.points_to(node).pts,
                want,
                "case {case}: post-invalidate recompute"
            );
        }
        let mut fresh =
            DemandEngine::new(&cp, DemandConfig::default()).with_shared_memo(Arc::clone(&shared));
        for node in cp.node_ids() {
            assert_eq!(
                fresh.points_to(node).pts,
                oracle.pts_nodes(node),
                "case {case}: new engine after invalidation"
            );
        }
    }
}

/// Invalidation across a *program change*: results published for the old
/// program must never leak into answers for the new one, in any engine
/// attached to the table.
#[test]
fn shared_memo_never_serves_across_reload() {
    use ddpa_demand::SharedMemo;
    use std::sync::Arc;

    let mut rng = Rng::seed_from_u64(0xd1f_0006);
    for case in 0..64 {
        let spec1 = random_spec(&mut rng);
        let spec2 = random_spec(&mut rng);
        let cp1 = build(&spec1);
        let cp2 = build(&spec2);
        let oracle2 = naive::solve(&cp2);
        let shared = Arc::new(SharedMemo::new());

        // Fill the table with cp1's fixpoints...
        let mut engine =
            DemandEngine::new(&cp1, DemandConfig::default()).with_shared_memo(Arc::clone(&shared));
        for node in cp1.node_ids() {
            let _ = engine.points_to(node);
        }
        // ...then swap the program. `reload` bumps the shared
        // generation, so every cp1 entry is dead.
        engine.reload(&cp2);
        for node in cp2.node_ids() {
            let got = engine.points_to(node);
            assert!(got.complete, "case {case}");
            assert_eq!(
                got.pts,
                oracle2.pts_nodes(node),
                "case {case}: stale cp1 entry served after reload"
            );
        }
        // A second engine over cp2 sharing the same table is also clean,
        // and benefits from the re-published cp2 results.
        let mut second =
            DemandEngine::new(&cp2, DemandConfig::default()).with_shared_memo(Arc::clone(&shared));
        for node in cp2.node_ids() {
            assert_eq!(
                second.points_to(node).pts,
                oracle2.pts_nodes(node),
                "case {case}: second engine after reload"
            );
        }
        assert!(second.stats().share_hits > 0 || cp2.node_ids().count() == 0);
    }
}
