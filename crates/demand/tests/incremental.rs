//! Differential testing for the incremental edit path: an engine stepped
//! through `reload_incremental` across a script of constraint edits must
//! give bit-identical answers — pts, ptb, and may-alias — to a fresh
//! full-invalidation engine and to the exhaustive oracle, at *every*
//! generation. The corpus mixes random, cyclic, and wide program shapes
//! so support sets are exercised over SCCs, long chains, and fan-out.

use ddpa_support::rng::Rng;

use ddpa_anders::naive;
use ddpa_constraints::{diff_programs, ConstraintBuilder, ConstraintProgram, NodeId};
use ddpa_demand::{DemandConfig, DemandEngine};

/// One appended constraint: `(kind, a, b)` over var indices, where kind
/// 0 → a=&b, 1 → a=b, 2 → a=*b, 3 → *a=b, 4 → introduce a fresh var `w`
/// with `w = a` and `a = &w` (touches the id frontier), 5 → seed an
/// extra function pointer `a = &fK` (dirties indirect-call consumers).
type Edit = (u8, usize, usize);

/// A generatable base program plus an edit script. Every generation `g`
/// is the base with `edits[..g]` appended; the builder mints vars, then
/// funcs, then edit-born vars in script order, so node ids are stable
/// prefixes across generations (the property `diff_programs` keys on).
#[derive(Clone, Debug)]
struct Scripted {
    num_vars: usize,
    constraints: Vec<(u8, usize, usize)>,
    /// Function arities; each function also gets `ret ⊇ formal` wiring.
    funcs: Vec<usize>,
    /// Var indices seeded with `&fK` facts (round-robin over funcs).
    fp_seeds: Vec<usize>,
    /// (callee_fp_var, arg_var, want_ret) indirect call sites.
    icalls: Vec<(usize, usize, bool)>,
    edits: Vec<Edit>,
}

fn random_scripted(rng: &mut Rng) -> Scripted {
    let num_vars = rng.gen_range(3..12usize);
    let num_funcs = rng.gen_range(0..3usize);
    let constraints = (0..rng.gen_range(2..18usize))
        .map(|_| {
            (
                rng.gen_range(0..4u8),
                rng.gen_range(0..num_vars),
                rng.gen_range(0..num_vars),
            )
        })
        .collect();
    let funcs = (0..num_funcs).map(|_| rng.gen_range(0..2usize)).collect();
    let fp_seeds = (0..rng.gen_range(0..3usize))
        .map(|_| rng.gen_range(0..num_vars))
        .collect();
    let icalls = (0..rng.gen_range(0..2usize))
        .map(|_| {
            (
                rng.gen_range(0..num_vars),
                rng.gen_range(0..num_vars),
                rng.gen_bool(0.5),
            )
        })
        .collect();
    Scripted {
        num_vars,
        constraints,
        funcs,
        fp_seeds,
        icalls,
        edits: Vec::new(),
    }
}

/// Copy cycles with address-of facts hanging off them: edits inside one
/// SCC must dirty the merged representative's consumers and nothing in
/// disjoint cycles.
fn cyclic_scripted(rng: &mut Rng) -> Scripted {
    let cycles = rng.gen_range(2..4usize);
    let len = rng.gen_range(2..5usize);
    let num_vars = cycles * len;
    let mut constraints = Vec::new();
    for c in 0..cycles {
        let base = c * len;
        for i in 0..len {
            // v[base+i] = v[base + (i+1) % len]: one copy cycle per block.
            constraints.push((1u8, base + i, base + (i + 1) % len));
        }
        // Each cycle sources at least one object.
        constraints.push((0u8, base, (base + len / 2) % num_vars));
    }
    for _ in 0..rng.gen_range(0..4usize) {
        constraints.push((
            rng.gen_range(0..4u8),
            rng.gen_range(0..num_vars),
            rng.gen_range(0..num_vars),
        ));
    }
    Scripted {
        num_vars,
        constraints,
        funcs: Vec::new(),
        fp_seeds: Vec::new(),
        icalls: Vec::new(),
        edits: Vec::new(),
    }
}

/// A hub with many spokes: `hub` collects objects, every spoke copies
/// from it. A single-constraint edit on one spoke must leave the other
/// spokes' fixpoints warm; an edit on the hub dirties all of them.
fn wide_scripted(rng: &mut Rng) -> Scripted {
    let spokes = rng.gen_range(6..12usize);
    let num_vars = spokes + 2; // hub = 0, objects parked at 1
    let mut constraints = vec![(0u8, 0, 1)];
    for s in 0..spokes {
        constraints.push((1u8, s + 2, 0)); // spoke = hub
    }
    for _ in 0..rng.gen_range(0..3usize) {
        constraints.push((0u8, rng.gen_range(0..num_vars), rng.gen_range(0..num_vars)));
    }
    Scripted {
        num_vars,
        constraints,
        funcs: Vec::new(),
        fp_seeds: Vec::new(),
        icalls: Vec::new(),
        edits: Vec::new(),
    }
}

fn random_edits(rng: &mut Rng, spec: &Scripted, count: usize) -> Vec<Edit> {
    (0..count)
        .map(|_| {
            let kind = if spec.funcs.is_empty() {
                rng.gen_range(0..5u8)
            } else {
                rng.gen_range(0..6u8)
            };
            (
                kind,
                rng.gen_range(0..spec.num_vars),
                rng.gen_range(0..spec.num_vars.max(spec.funcs.len())),
            )
        })
        .collect()
}

/// Builds generation `upto` of the script: base program plus
/// `edits[..upto]`, with a deterministic var/func/edit-var mint order.
fn build_gen(spec: &Scripted, upto: usize) -> ConstraintProgram {
    let mut b = ConstraintBuilder::new();
    let vars: Vec<NodeId> = (0..spec.num_vars)
        .map(|i| b.var(&format!("v{i}")))
        .collect();
    let funcs: Vec<_> = spec
        .funcs
        .iter()
        .enumerate()
        .map(|(i, &arity)| b.func(&format!("f{i}"), arity))
        .collect();
    for &f in &funcs {
        let info = b.func_info(f).clone();
        for formal in info.formals {
            b.copy(info.ret, formal);
        }
    }
    for &(kind, x, y) in &spec.constraints {
        let (x, y) = (vars[x], vars[y]);
        match kind {
            0 => b.addr_of(x, y),
            1 => b.copy(x, y),
            2 => b.load(x, y),
            _ => b.store(x, y),
        };
    }
    if !funcs.is_empty() {
        for (i, &v) in spec.fp_seeds.iter().enumerate() {
            let obj = b.func_info(funcs[i % funcs.len()]).object;
            b.addr_of(vars[v], obj);
        }
    }
    for &(fp, arg, want_ret) in &spec.icalls {
        let args = vec![Some(vars[arg])];
        let ret = want_ret.then(|| vars[(arg + 1) % vars.len()]);
        b.call_indirect(vars[fp], args, ret);
    }
    for (e, &(kind, a, bi)) in spec.edits[..upto].iter().enumerate() {
        let (x, y) = (vars[a], vars[bi % spec.num_vars]);
        match kind {
            0 => {
                b.addr_of(x, y);
            }
            1 => {
                b.copy(x, y);
            }
            2 => {
                b.load(x, y);
            }
            3 => {
                b.store(x, y);
            }
            4 => {
                // Fresh var at the id frontier, wired into existing flow.
                let w = b.var(&format!("w{e}"));
                b.copy(w, x);
                b.addr_of(x, w);
            }
            _ => {
                let obj = b.func_info(funcs[bi % funcs.len()]).object;
                b.addr_of(x, obj);
            }
        }
    }
    b.build()
}

/// Steps one engine through the whole edit script and checks every
/// generation against a cold engine and the oracle. Returns, per
/// generation, whether the incremental path ran (vs full fallback) and
/// how many goals it retained.
fn check_script(spec: &Scripted, case: usize) -> Vec<(bool, usize)> {
    let gens: Vec<ConstraintProgram> = (0..=spec.edits.len()).map(|g| build_gen(spec, g)).collect();
    let mut warm = DemandEngine::new(&gens[0], DemandConfig::default());
    let mut outcomes = Vec::new();
    for (g, cp) in gens.iter().enumerate() {
        if g > 0 {
            let diff = diff_programs(&gens[g - 1], cp);
            let stats = warm.reload_incremental(cp, &diff);
            assert!(
                diff.compatible,
                "case {case}: append-only edits keep node ids stable"
            );
            outcomes.push((!stats.full, stats.retained));
        }
        let oracle = naive::solve(cp);
        let mut cold = DemandEngine::new(cp, DemandConfig::default());
        for node in cp.node_ids() {
            let want = oracle.pts_nodes(node);
            let got = warm.points_to(node);
            assert!(got.complete, "case {case} gen {g}");
            assert_eq!(
                got.pts,
                want,
                "case {case} gen {g}: pts({}) diverged from the oracle",
                cp.display_node(node)
            );
            assert_eq!(
                cold.points_to(node).pts,
                want,
                "case {case} gen {g}: cold engine disagrees (oracle bug?)"
            );
        }
        for obj in cp.node_ids() {
            let want: Vec<NodeId> = cp
                .node_ids()
                .filter(|&w| oracle.points_to(w, obj))
                .collect();
            assert_eq!(
                warm.pointed_to_by(obj).pts,
                want,
                "case {case} gen {g}: ptb({}) diverged",
                cp.display_node(obj)
            );
        }
        // may-alias over a deterministic sample of pairs.
        let nodes: Vec<NodeId> = cp.node_ids().collect();
        for (i, &a) in nodes.iter().enumerate() {
            let bnode = nodes[(i * 7 + 3) % nodes.len()];
            let w = warm.may_alias(a, bnode);
            let c = cold.may_alias(a, bnode);
            assert!(w.resolved && c.resolved, "case {case} gen {g}");
            assert_eq!(
                w.may_alias,
                c.may_alias,
                "case {case} gen {g}: may_alias({}, {}) diverged",
                cp.display_node(a),
                cp.display_node(bnode)
            );
        }
    }
    outcomes
}

/// 128+ scripted programs across three shapes, 2–4 edits each: the
/// incrementally-stepped engine is bit-identical to cold engines and the
/// exhaustive oracle at every generation, and the corpus as a whole
/// takes the incremental path (retaining goals) often enough to prove
/// the support-set machinery is actually being exercised.
#[test]
fn edit_scripts_are_bit_identical_across_generations() {
    let mut rng = Rng::seed_from_u64(0x1ec_0001);
    let mut incremental_gens = 0usize;
    let mut retained_total = 0usize;
    let mut total_gens = 0usize;
    for case in 0..132 {
        let mut spec = match case % 3 {
            0 => random_scripted(&mut rng),
            1 => cyclic_scripted(&mut rng),
            _ => wide_scripted(&mut rng),
        };
        let count = rng.gen_range(2..5usize);
        spec.edits = random_edits(&mut rng, &spec, count);
        for (incremental, retained) in check_script(&spec, case) {
            total_gens += 1;
            if incremental {
                incremental_gens += 1;
                retained_total += retained;
            }
        }
    }
    assert!(total_gens >= 128 * 2, "scripts cover enough generations");
    assert_eq!(
        incremental_gens, total_gens,
        "append-only edits never fall back to full invalidation"
    );
    assert!(
        retained_total > 0,
        "the corpus retains warm goals across edits"
    );
}

/// The shared table survives edits per-entry: after an edit, an engine
/// freshly attached to the shared memo answers correctly for the new
/// program — retained entries serve, dirtied ones are gone (no stale
/// serve, no wholesale eviction).
#[test]
fn shared_survivors_answer_for_the_new_program() {
    use ddpa_demand::SharedMemo;
    use std::sync::Arc;

    let mut rng = Rng::seed_from_u64(0x1ec_0002);
    let mut survivor_hits = 0u64;
    for case in 0..48 {
        let mut spec = match case % 3 {
            0 => random_scripted(&mut rng),
            1 => cyclic_scripted(&mut rng),
            _ => wide_scripted(&mut rng),
        };
        spec.edits = random_edits(&mut rng, &spec, 1);
        let before = build_gen(&spec, 0);
        let after = build_gen(&spec, 1);
        let shared = Arc::new(SharedMemo::new());
        let mut engine = DemandEngine::new(&before, DemandConfig::default())
            .with_shared_memo(Arc::clone(&shared));
        for node in before.node_ids() {
            let _ = engine.points_to(node);
        }
        let diff = diff_programs(&before, &after);
        engine.reload_incremental(&after, &diff);

        let oracle = naive::solve(&after);
        let mut fresh = DemandEngine::new(&after, DemandConfig::default())
            .with_shared_memo(Arc::clone(&shared));
        for node in after.node_ids() {
            let got = fresh.points_to(node);
            assert!(got.complete, "case {case}");
            assert_eq!(
                got.pts,
                oracle.pts_nodes(node),
                "case {case}: stale or missing shared entry for pts({})",
                after.display_node(node)
            );
        }
        survivor_hits += fresh.stats().share_hits;
    }
    assert!(
        survivor_hits > 0,
        "some pre-edit fixpoints were served from the shared table"
    );
}
