//! Per-request trace context: who did how much work, and how long it took.
//!
//! The engine's counters ([`crate::EngineStats`]) are cumulative across
//! every query an engine (or a set of engines sharing one
//! [`ddpa_obs::Obs`]) has ever run. A [`QueryTrace`] brackets one request:
//! [`DemandEngine::begin_trace`] snapshots the counters and starts the
//! clock, and [`QueryTrace::finish`] closes the bracket into a
//! [`TraceReport`] holding the *deltas* — rule fires, goals activated,
//! work (budget) spent, cache and share-table traffic, cycle collapses —
//! plus the wall time and the invalidation generation the answer was
//! computed under.
//!
//! Because deltas come from the shared registry, a traced batch request
//! whose parallel workers share the session's `Obs` attributes the
//! workers' fires to the request too. The flip side: two requests traced
//! *concurrently* over one registry each see the union of the overlap.
//! `ddpa-serve` sessions run requests one at a time per session, so in
//! practice a trace is exactly one request's work.
//!
//! Trace IDs are minted by the host (the server, or the CLI) — the engine
//! only carries them through.

use std::time::{Duration, Instant};

use ddpa_obs::JsonValue;

use crate::engine::DemandEngine;
use crate::stats::EngineStats;

/// An open trace bracket around one request. Create with
/// [`DemandEngine::begin_trace`]; close with [`QueryTrace::finish`].
#[derive(Clone, Debug)]
pub struct QueryTrace {
    id: String,
    start: Instant,
    before: EngineStats,
}

impl QueryTrace {
    /// Opens a bracket: snapshots `engine`'s counters and starts the clock.
    pub fn begin(id: impl Into<String>, engine: &DemandEngine<'_>) -> Self {
        QueryTrace {
            id: id.into(),
            start: Instant::now(),
            before: engine.stats(),
        }
    }

    /// The host-minted trace ID.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Closes the bracket: the report holds the counter deltas since
    /// [`QueryTrace::begin`], the wall time, and the engine's current
    /// invalidation generation.
    pub fn finish(self, engine: &DemandEngine<'_>) -> TraceReport {
        TraceReport {
            wall: self.start.elapsed(),
            generation: engine.generation(),
            delta: engine.stats().delta_since(&self.before),
            id: self.id,
        }
    }
}

/// What one traced request did: wall time plus counter deltas.
#[derive(Clone, Debug)]
pub struct TraceReport {
    /// The host-minted trace ID, echoed back verbatim.
    pub id: String,
    /// Wall-clock time between begin and finish.
    pub wall: Duration,
    /// The engine's invalidation generation at finish.
    pub generation: u64,
    /// Counter deltas attributable to this request.
    pub delta: EngineStats,
}

impl TraceReport {
    /// Wall time in whole microseconds (saturating).
    pub fn wall_us(&self) -> u64 {
        u64::try_from(self.wall.as_micros()).unwrap_or(u64::MAX)
    }

    /// The report as a JSON object — the `"trace"` value attached to
    /// server responses and slow-log entries. Keys are stable schema
    /// (documented in `docs/OBSERVABILITY.md`).
    pub fn json(&self) -> JsonValue {
        let d = &self.delta;
        JsonValue::Object(vec![
            ("id".to_owned(), JsonValue::str(self.id.clone())),
            ("wall_us".to_owned(), JsonValue::U64(self.wall_us())),
            ("generation".to_owned(), JsonValue::U64(self.generation)),
            ("queries".to_owned(), JsonValue::U64(d.queries)),
            ("fires".to_owned(), JsonValue::U64(d.fires)),
            ("goals".to_owned(), JsonValue::U64(d.goals_activated)),
            ("work".to_owned(), JsonValue::U64(d.work)),
            ("cache_hits".to_owned(), JsonValue::U64(d.cache_hits)),
            ("share_hits".to_owned(), JsonValue::U64(d.share_hits)),
            ("share_misses".to_owned(), JsonValue::U64(d.share_misses)),
            (
                "cycles_collapsed".to_owned(),
                JsonValue::U64(d.cycles_collapsed),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DemandConfig;

    fn engine_over(
        src: &str,
    ) -> (
        &'static ddpa_constraints::ConstraintProgram,
        DemandEngine<'static>,
    ) {
        let program = ddpa_ir::parse(src).expect("parse");
        let cp = Box::leak(Box::new(ddpa_constraints::lower(&program).expect("lower")));
        let engine = DemandEngine::new(cp, DemandConfig::default());
        (cp, engine)
    }

    #[test]
    fn trace_captures_exactly_one_querys_work() {
        let (cp, mut engine) =
            engine_over("int g; int h; void main() { int *p = &g; int *q = p; int *r = &h; }");
        let q = cp
            .node_ids()
            .find(|&n| cp.display_node(n) == "main::q")
            .expect("q exists");
        let r = cp
            .node_ids()
            .find(|&n| cp.display_node(n) == "main::r")
            .expect("r exists");

        // Warm-up query outside the bracket must not leak into the trace.
        let _ = engine.points_to(r);
        let warm = engine.stats();

        let t = engine.begin_trace("req-7");
        let result = engine.points_to(q);
        assert!(result.complete);
        let report = t.finish(&engine);

        assert_eq!(report.id, "req-7");
        assert_eq!(report.delta.queries, 1);
        assert!(report.delta.fires > 0, "resolving q fires rules");
        assert!(report.delta.work > 0);
        // The bracket is a delta: total = warm-up + traced.
        let total = engine.stats();
        assert_eq!(total.fires, warm.fires + report.delta.fires);
        assert_eq!(total.work, warm.work + report.delta.work);
        assert_eq!(report.generation, engine.generation());
    }

    #[test]
    fn report_json_carries_the_schema_fields() {
        let (cp, mut engine) = engine_over("int g; void main() { int *p = &g; }");
        let p = cp
            .node_ids()
            .find(|&n| cp.display_node(n) == "main::p")
            .expect("p exists");
        let t = engine.begin_trace("abc");
        let _ = engine.points_to(p);
        let report = t.finish(&engine);
        let v = report.json();
        assert_eq!(v.get("id").and_then(JsonValue::as_str), Some("abc"));
        assert_eq!(v.get("queries").and_then(JsonValue::as_u64), Some(1));
        for key in [
            "wall_us",
            "generation",
            "fires",
            "goals",
            "work",
            "cache_hits",
            "share_hits",
            "share_misses",
            "cycles_collapsed",
        ] {
            assert!(
                v.get(key).and_then(JsonValue::as_u64).is_some(),
                "missing {key}"
            );
        }
    }
}
