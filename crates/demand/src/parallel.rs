//! Parallel query driver.
//!
//! Demand-driven queries are independent, which makes the analysis
//! embarrassingly parallel across queries: each worker owns a private
//! engine and pulls the next query from a shared atomic counter, so
//! heavy-tailed per-query costs balance dynamically. Results are
//! deterministic and identical to the sequential engine's.
//!
//! When caching is on (the default), the workers' engines additionally
//! share one [`SharedMemo`] table: a subgoal completed by any worker is
//! published and installed by the others at zero rule firings, so the
//! batch does roughly the work of a single cached engine rather than N
//! copies of it (the concurrent-tabling upgrade; `EXPERIMENTS.md` §A2
//! records the before/after). With caching off every query still starts
//! from scratch and nothing is shared.
//!
//! Workers run on a [`ThreadPool`]: [`points_to_parallel`] spins up a
//! private pool per call (the historical behaviour), while long-lived
//! hosts like `ddpa-serve` keep one pool alive and fan batches out through
//! [`points_to_on_pool`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use ddpa_constraints::{ConstraintProgram, NodeId};

use crate::config::DemandConfig;
use crate::engine::DemandEngine;
use crate::pool::ThreadPool;
use crate::query::QueryResult;
use crate::share::SharedMemo;

/// Answers `queries` in parallel on `threads` workers.
///
/// Returns one [`QueryResult`] per query, in input order.
///
/// # Panics
///
/// Panics if `threads` is zero or a worker job panics.
///
/// # Examples
///
/// ```
/// use ddpa_demand::{points_to_parallel, DemandConfig};
///
/// let cp = ddpa_constraints::parse_constraints("p = &o\nq = p\n")?;
/// let queries: Vec<_> = cp.node_ids().collect();
/// let results = points_to_parallel(&cp, &queries, 2, &DemandConfig::default());
/// assert_eq!(results.len(), queries.len());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn points_to_parallel(
    cp: &ConstraintProgram,
    queries: &[NodeId],
    threads: usize,
    config: &DemandConfig,
) -> Vec<QueryResult> {
    assert!(threads > 0, "need at least one worker thread");
    if threads == 1 || queries.len() <= 1 {
        // One query with several threads: parallelize *inside* the query
        // via the frame scheduler instead of across queries.
        let workers = if queries.len() == 1 { threads } else { 1 };
        let mut engine = DemandEngine::new(cp, config.clone().with_workers(workers));
        return queries.iter().map(|&q| engine.points_to(q)).collect();
    }
    let pool = ThreadPool::new(threads);
    points_to_on_pool(cp, queries, &pool, config)
}

/// Answers `queries` in parallel on an existing [`ThreadPool`].
///
/// Identical to [`points_to_parallel`] but reuses the caller's workers —
/// one engine per worker job (sharing a batch-wide [`SharedMemo`] when
/// caching is on), queries claimed dynamically. The call blocks until
/// the whole batch is answered.
pub fn points_to_on_pool(
    cp: &ConstraintProgram,
    queries: &[NodeId],
    pool: &ThreadPool,
    config: &DemandConfig,
) -> Vec<QueryResult> {
    if queries.len() <= 1 || pool.threads() == 1 {
        let workers = if queries.len() == 1 {
            pool.threads()
        } else {
            1
        };
        let mut engine = DemandEngine::new(cp, config.clone().with_workers(workers));
        return queries.iter().map(|&q| engine.points_to(q)).collect();
    }
    let shared = config.caching.then(|| Arc::new(SharedMemo::new()));

    let mut results: Vec<Option<QueryResult>> = vec![None; queries.len()];
    let next = AtomicUsize::new(0);

    // Hand each worker a distinct &mut view of the result slots through a
    // mutex-free claim protocol: a worker that claims index i via `next`
    // is the only one to touch `slot_ptrs[i]`.
    #[derive(Clone, Copy)]
    struct SlotPtr(*mut Option<QueryResult>);
    unsafe impl Send for SlotPtr {}
    unsafe impl Sync for SlotPtr {}
    let slots: Vec<SlotPtr> = results.iter_mut().map(|r| SlotPtr(r as *mut _)).collect();
    let slots = &slots;
    let next = &next;

    let workers = pool.threads().min(queries.len());
    pool.scoped((0..workers).map(|_| {
        let config = config.clone();
        let shared = shared.clone();
        Box::new(move || {
            // Worker engines stay sequential: nesting a frame scheduler
            // inside each pool worker would oversubscribe the machine.
            let mut engine = DemandEngine::new(cp, config.with_workers(1));
            if let Some(shared) = shared {
                engine = engine.with_shared_memo(shared);
            }
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= queries.len() {
                    break;
                }
                let answer = engine.points_to(queries[i]);
                // SAFETY: index i was claimed exclusively by this worker
                // via the atomic counter; each slot outlives the scoped
                // batch and is written at most once.
                let slot: SlotPtr = slots[i];
                unsafe {
                    *slot.0 = Some(answer);
                }
            }
        }) as Box<dyn FnOnce() + Send + '_>
    }));

    results
        .into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_program(n: usize) -> ConstraintProgram {
        let mut b = ddpa_constraints::ConstraintBuilder::new();
        let o = b.var("obj");
        let first = b.var("v0");
        b.addr_of(first, o);
        let mut prev = first;
        for i in 1..n {
            let v = b.var(&format!("v{i}"));
            b.copy(v, prev);
            prev = v;
        }
        b.build()
    }

    #[test]
    fn parallel_matches_sequential() {
        let cp = chain_program(64);
        let queries: Vec<_> = cp.node_ids().collect();
        let config = DemandConfig::default();
        let sequential = points_to_parallel(&cp, &queries, 1, &config);
        for threads in [2, 4] {
            let parallel = points_to_parallel(&cp, &queries, threads, &config);
            for (s, p) in sequential.iter().zip(&parallel) {
                assert_eq!(s.pts, p.pts);
                assert_eq!(s.complete, p.complete);
            }
        }
    }

    #[test]
    fn single_query_uses_intra_query_parallelism() {
        let cp = chain_program(64);
        let q = cp
            .node_ids()
            .find(|&n| cp.display_node(n) == "v63")
            .expect("v63");
        let sequential = points_to_parallel(&cp, &[q], 1, &DemandConfig::default());
        let parallel = points_to_parallel(&cp, &[q], 4, &DemandConfig::default());
        assert_eq!(sequential[0].pts, parallel[0].pts);
        assert!(parallel[0].complete);
    }

    #[test]
    fn handles_more_threads_than_queries() {
        let cp = chain_program(3);
        let queries: Vec<_> = cp.node_ids().take(2).collect();
        let results = points_to_parallel(&cp, &queries, 8, &DemandConfig::default());
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| r.complete));
    }

    #[test]
    fn empty_query_list() {
        let cp = chain_program(2);
        let results = points_to_parallel(&cp, &[], 4, &DemandConfig::default());
        assert!(results.is_empty());
    }

    #[test]
    fn uncached_parallel_matches_too() {
        let cp = chain_program(32);
        let queries: Vec<_> = cp.node_ids().collect();
        let config = DemandConfig::default().without_caching();
        let sequential = points_to_parallel(&cp, &queries, 1, &config);
        let parallel = points_to_parallel(&cp, &queries, 3, &config);
        for (s, p) in sequential.iter().zip(&parallel) {
            assert_eq!(s.pts, p.pts);
        }
    }

    #[test]
    fn cycle_collapsing_is_invisible_across_workers() {
        // A closed copy ring: every worker's private engine discovers and
        // collapses the cycle independently (the union-find is per-engine
        // state, inherited through the cloned config), and answers must
        // match the sequential engine with collapsing off.
        let mut b = ddpa_constraints::ConstraintBuilder::new();
        let ring: Vec<_> = (0..48).map(|i| b.var(&format!("r{i}"))).collect();
        for i in 1..ring.len() {
            b.copy(ring[i], ring[i - 1]);
        }
        b.copy(ring[0], ring[ring.len() - 1]);
        for j in 0..6 {
            let o = b.var(&format!("o{j}"));
            b.addr_of(ring[j * 8], o);
        }
        let cp = b.build();
        let queries: Vec<_> = ring.clone();
        let on = DemandConfig::default().with_collapse_threshold(4);
        let off = DemandConfig::default().without_cycle_collapsing();
        let baseline = points_to_parallel(&cp, &queries, 1, &off);
        for threads in [2, 4] {
            let collapsed = points_to_parallel(&cp, &queries, threads, &on);
            for (s, p) in baseline.iter().zip(&collapsed) {
                assert_eq!(s.pts, p.pts);
                assert!(p.complete);
            }
        }
    }

    #[test]
    fn shared_pool_answers_repeated_batches() {
        let cp = chain_program(48);
        let queries: Vec<_> = cp.node_ids().collect();
        let config = DemandConfig::default();
        let sequential = points_to_parallel(&cp, &queries, 1, &config);
        let pool = ThreadPool::new(4);
        for _ in 0..3 {
            let batch = points_to_on_pool(&cp, &queries, &pool, &config);
            for (s, p) in sequential.iter().zip(&batch) {
                assert_eq!(s.pts, p.pts);
            }
        }
    }
}
