//! Frame-based suspendable goal scheduler — intra-query parallelism.
//!
//! The sequential engine drains one goal queue on one thread; here each
//! in-progress goal becomes a [`Frame`] any worker can *step*. A step
//! installs the goal's static rules (first step only) and then fires
//! every watcher on every element it has not yet consumed. A frame whose
//! watchers have drained *parks* — it simply leaves the runnable set.
//! Publishing a new fact into a goal (or installing a new watcher on it)
//! *wakes* its frame: the publishing worker pushes the frame onto its own
//! stealable deque ([`StealQueue`]). The paper's deduction is formulated
//! as resumable subgoals, which is exactly what makes this sound: a frame
//! carries complete resumption state (element cursors per watcher), so
//! steps can happen in any order, on any worker.
//!
//! # Why answers are bit-identical to the sequential engine
//!
//! The rule system is monotone: facts are only ever added, and every
//! (goal, watcher, element) triple fires exactly once — cursors advance
//! under the frame lock, so two workers stepping the same frame consume
//! disjoint element ranges. A monotone system has a unique least
//! fixpoint; evaluation order (DFS vs BFS, 1 vs N workers, steal
//! interleavings) changes only the *discovery* order, never the final
//! sets. The differential suite (`tests/sched_differential.rs`) asserts
//! this across policies × worker counts against the sequential engine
//! and the exhaustive wave solver.
//!
//! The same argument gives deterministic total work: the fire multiset is
//! the same as the sequential engine's (collapse-off), so
//! [`SchedStats::work`] is *equal* — not merely close — on a fresh table.
//!
//! # Addressing
//!
//! Frames are pre-allocated, one per possible goal, and addressed by
//! *slot*: `pts(n) ↔ 2·n`, `ptb(n) ↔ 2·n + 1`. Slot identity replaces
//! the sequential engine's activation-ordered goal indices and its
//! `index` hash map — workers never contend on a shared allocation, and
//! `Goal ↔ slot` is a pure function.
//!
//! # Termination
//!
//! `active` counts frames that are queued or mid-step. It is incremented
//! under the frame lock on the off-list → on-list transition, kept while
//! a popped frame is being stepped, and decremented when the step
//! finishes. New work only appears from steps, so `active == 0` implies
//! the global fixpoint; idle workers spin on a condvar with a short
//! timeout until then.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use ddpa_constraints::{ConstraintProgram, NodeId};
use ddpa_obs::{FlightEventKind, FlightRecorder, Obs};

use crate::config::{DemandConfig, SchedPolicy};
use crate::cycles::CopyGraph;
use crate::goal::{Goal, GoalState, Watcher};
use crate::pool::StealQueue;
use crate::rules::Deduce;
use crate::share::{CompletedGoal, SharedMemo};
use crate::trace::Origin;

/// The slot addressing a goal's frame: `pts(n) → 2n`, `ptb(n) → 2n+1`.
fn slot_of(goal: Goal) -> u32 {
    match goal {
        Goal::Pts(n) => 2 * n.as_u32(),
        Goal::Ptb(n) => 2 * n.as_u32() + 1,
    }
}

/// Inverse of [`slot_of`].
fn goal_of(slot: u32) -> Goal {
    let n = NodeId::from_u32(slot / 2);
    if slot.is_multiple_of(2) {
        Goal::Pts(n)
    } else {
        Goal::Ptb(n)
    }
}

/// One suspendable goal: the tabled deduction state plus scheduling
/// bookkeeping. `state.on_list` marks membership in some runnable deque;
/// `state.cursors` are the resumption points.
#[derive(Debug, Default)]
struct Frame {
    state: GoalState,
    /// Completed steps; a schedule of a stepped frame is a *wakeup*.
    steps: u32,
    /// The frame has been referenced (seeded or queued) this solve.
    active: bool,
    /// Seeded from the host engine's already-complete table entry — the
    /// fixpoint was derived (and published) previously, so finalization
    /// skips it.
    seeded_from_engine: bool,
}

/// Per-worker tallies, summed by the driver after the run.
#[derive(Clone, Copy, Debug, Default)]
pub struct SchedStats {
    /// Frames referenced (≈ goals activated on a fresh table).
    pub activated: u64,
    /// Work ticks: rule installs + watcher firings (identical to the
    /// sequential engine's `work` on a fresh table).
    pub work: u64,
    /// Watcher firings.
    pub fires: u64,
    /// Steps after which a frame left the runnable set incomplete.
    pub parked: u64,
    /// Steps of a frame that had been stepped before.
    pub resumed: u64,
    /// Frames taken from another worker's deque.
    pub steals: u64,
    /// Reschedules of previously stepped frames (fact or watcher arrived).
    pub wakeups: u64,
    /// Shared-memo consults that installed a published fixpoint.
    pub share_hits: u64,
    /// Shared-memo consults that found nothing.
    pub share_misses: u64,
    /// Stale shared-memo entries evicted by our lookups.
    pub share_evictions: u64,
    /// Flight-recorder events emitted by this worker.
    pub flight_events: u64,
    /// Firings per [`Watcher`] variant, by [`Watcher::kind_index`].
    pub fires_by_kind: [u64; 12],
}

impl SchedStats {
    fn absorb(&mut self, other: &SchedStats) {
        self.activated += other.activated;
        self.work += other.work;
        self.fires += other.fires;
        self.parked += other.parked;
        self.resumed += other.resumed;
        self.steals += other.steals;
        self.wakeups += other.wakeups;
        self.share_hits += other.share_hits;
        self.share_misses += other.share_misses;
        self.share_evictions += other.share_evictions;
        self.flight_events += other.flight_events;
        for (mine, theirs) in self.fires_by_kind.iter_mut().zip(&other.fires_by_kind) {
            *mine += *theirs;
        }
    }
}

/// The result of one parallel solve.
#[derive(Debug)]
pub struct SolveOutcome {
    /// Every goal newly driven to fixpoint, with its final element set
    /// (ascending) — ready for [`crate::DemandEngine::install_completed`]
    /// or [`SharedMemo::publish`]. Engine-seeded goals are excluded.
    pub completed: Vec<(Goal, CompletedGoal)>,
    /// The requested goal's final set, ascending.
    pub pts: Vec<NodeId>,
    /// Whether the requested goal was answered from an engine seed (no
    /// frames were stepped at all).
    pub seeded: bool,
    /// Summed worker tallies.
    pub stats: SchedStats,
}

/// A read-only view of a host engine's tabled state, used to seed frames
/// from goals the engine has already driven to fixpoint — the parallel
/// path's equivalent of a warm memo table.
pub(crate) struct EngineView<'a> {
    pub goals: &'a [GoalState],
    pub index: &'a HashMap<Goal, u32>,
    pub cycles: &'a CopyGraph,
}

impl EngineView<'_> {
    /// The engine's completed element set for `goal`, if it has one.
    fn lookup(&self, goal: Goal) -> Option<Vec<u32>> {
        let &gi = self.index.get(&goal)?;
        let rep = self.cycles.find_readonly(gi);
        let state = &self.goals[rep as usize];
        state.complete.then(|| state.members.iter().collect())
    }
}

/// Shared scheduler state: the frame table plus the runnable queues.
struct Core<'p> {
    cp: &'p ConstraintProgram,
    policy: SchedPolicy,
    frames: Vec<Mutex<Frame>>,
    /// The global runnable queue: the root goal enters here, and workers
    /// fall back to it before stealing.
    injector: StealQueue<u32>,
    /// Per-worker stealable deques; a worker schedules onto its own.
    locals: Vec<StealQueue<u32>>,
    /// Queued + mid-step frames; 0 ⇒ global fixpoint.
    active: AtomicUsize,
    idle: Mutex<()>,
    wake: Condvar,
    shared: Option<(Arc<SharedMemo>, u64)>,
    flight: Option<Arc<FlightRecorder>>,
    obs: Obs,
}

impl<'p> Core<'p> {
    fn lock(&self, slot: u32) -> MutexGuard<'_, Frame> {
        self.frames[slot as usize]
            .lock()
            .expect("frame lock poisoned")
    }
}

/// One worker's execution context. Implements [`Deduce`], so a step runs
/// the very same rule bodies as the sequential engine.
struct WorkerCtx<'c, 'p> {
    core: &'c Core<'p>,
    view: Option<&'c EngineView<'c>>,
    /// Worker index into `locals`; `usize::MAX` is the driver bootstrap
    /// context, which schedules onto the global injector.
    id: usize,
    stats: SchedStats,
}

impl<'c, 'p> WorkerCtx<'c, 'p> {
    /// First-touch activation: seed the frame from the host engine's
    /// table or the shared memo, or schedule its first step.
    fn ensure_active(&mut self, slot: u32) {
        let mut f = self.core.lock(slot);
        if f.active {
            return;
        }
        f.active = true;
        self.stats.activated += 1;
        let goal = goal_of(slot);
        if let Some(elems) = self.view.and_then(|v| v.lookup(goal)) {
            for v in elems {
                f.state.add(v);
            }
            f.state.needs_init = false;
            f.state.complete = true;
            f.seeded_from_engine = true;
            // Nothing to schedule: a complete frame with no watchers is
            // quiescent. A later subscribe wakes it to replay `elems`.
            return;
        }
        if let Some((shared, gen)) = &self.core.shared {
            let (hit, evicted) = shared.lookup(*gen, goal);
            self.stats.share_evictions += evicted;
            match hit {
                Some(hit) => {
                    self.stats.share_hits += 1;
                    for &v in &hit.elems {
                        f.state.add(v);
                    }
                    for &n in &hit.support {
                        f.state.support.insert(n);
                    }
                    f.state.deps = hit.deps.clone();
                    f.state.reads_indirect = hit.reads_indirect;
                    f.state.needs_init = false;
                    f.state.complete = true;
                    return;
                }
                None => self.stats.share_misses += 1,
            }
        }
        self.schedule_locked(slot, &mut f);
    }

    /// Puts `slot` on this worker's deque (idempotent while queued).
    /// Completed frames are scheduled too: they must replay their element
    /// list to newly installed watchers, exactly as the sequential engine
    /// re-enqueues a completed goal on subscription.
    fn schedule_locked(&mut self, slot: u32, f: &mut Frame) {
        if f.state.on_list {
            return;
        }
        f.state.on_list = true;
        if f.steps > 0 {
            self.stats.wakeups += 1;
            self.flight(FlightEventKind::Woken, slot);
        }
        self.core.active.fetch_add(1, Ordering::SeqCst);
        if self.id == usize::MAX {
            self.core.injector.push(slot);
        } else {
            self.core.locals[self.id].push(slot);
        }
        self.core.wake.notify_one();
    }

    #[inline]
    fn flight(&mut self, kind: FlightEventKind, slot: u32) {
        if let Some(flight) = &self.core.flight {
            let worker = if self.id == usize::MAX {
                u32::MAX
            } else {
                self.id as u32
            };
            flight.record(kind, slot, worker, 0);
            self.stats.flight_events += 1;
        }
    }

    /// Runs one frame to (momentary) quiescence: install static rules on
    /// the first step, then fire every watcher on every unconsumed
    /// element, in batches collected under the frame lock. Rule bodies
    /// run *unlocked* — they lock other frames (or re-lock this one via
    /// `add`/`subscribe`, e.g. the `FwdProp` self-subscription).
    fn step(&mut self, slot: u32) {
        let _span = self.core.obs.span("demand.sched.step");
        let needs_init = {
            let mut f = self.core.lock(slot);
            f.state.on_list = false;
            if f.steps > 0 {
                self.stats.resumed += 1;
            }
            std::mem::replace(&mut f.state.needs_init, false)
        };
        if needs_init {
            self.stats.work += 1;
            match goal_of(slot) {
                Goal::Pts(x) => self.install_pts(x),
                Goal::Ptb(o) => self.install_ptb(o),
            }
        }
        let src = goal_of(slot);
        loop {
            // Claim the pending (watcher, elements) pairs under the lock;
            // cursor advancement is what makes concurrent steps of the
            // same frame consume disjoint ranges.
            let mut batch: Vec<(Watcher, Vec<u32>)> = Vec::new();
            {
                let mut f = self.core.lock(slot);
                let nelems = f.state.elems.len();
                for wi in 0..f.state.watchers.len() {
                    let cursor = f.state.cursors[wi] as usize;
                    if cursor < nelems {
                        let pending = f.state.elems[cursor..nelems].to_vec();
                        batch.push((f.state.watchers[wi], pending));
                        f.state.cursors[wi] = nelems as u32;
                    }
                }
            }
            if batch.is_empty() {
                break;
            }
            for (watcher, elems) in batch {
                for elem in elems {
                    self.stats.fires += 1;
                    self.stats.work += 1;
                    self.stats.fires_by_kind[watcher.kind_index()] += 1;
                    if let Some(flight) = &self.core.flight {
                        if flight.maybe_record_fire(slot, watcher.kind_index() as u32) {
                            self.stats.flight_events += 1;
                        }
                    }
                    self.fire(src, watcher, elem);
                }
            }
        }
        let mut f = self.core.lock(slot);
        f.steps += 1;
        if !f.state.on_list && !f.state.complete {
            self.stats.parked += 1;
            drop(f);
            self.flight(FlightEventKind::Parked, slot);
        }
    }

    /// Pops the next runnable frame: own deque (policy order), then the
    /// global injector, then round-robin theft from the other workers.
    fn next_task(&mut self) -> Option<u32> {
        let own = &self.core.locals[self.id];
        let task = match self.core.policy {
            SchedPolicy::Dfs => own.pop_back(),
            SchedPolicy::Bfs => own.pop_front(),
        };
        if task.is_some() {
            return task;
        }
        if let Some(slot) = self.core.injector.steal() {
            return Some(slot);
        }
        let n = self.core.locals.len();
        for k in 1..n {
            let victim = (self.id + k) % n;
            if let Some(slot) = self.core.locals[victim].steal() {
                self.stats.steals += 1;
                self.flight(FlightEventKind::Stolen, slot);
                return Some(slot);
            }
        }
        None
    }

    /// The worker loop: step frames until the global fixpoint.
    fn run(&mut self) {
        loop {
            if let Some(slot) = self.next_task() {
                self.step(slot);
                // The popped entry kept `active` high through the step;
                // release it, and if that was the last unit, wake the
                // idle workers so they observe the fixpoint and exit.
                if self.core.active.fetch_sub(1, Ordering::SeqCst) == 1 {
                    let _idle = self.core.idle.lock().expect("idle lock poisoned");
                    self.core.wake.notify_all();
                }
            } else {
                if self.core.active.load(Ordering::SeqCst) == 0 {
                    return;
                }
                let idle = self.core.idle.lock().expect("idle lock poisoned");
                if self.core.active.load(Ordering::SeqCst) == 0 {
                    return;
                }
                let _ = self
                    .core
                    .wake
                    .wait_timeout(idle, std::time::Duration::from_millis(1))
                    .expect("idle lock poisoned");
            }
        }
    }
}

impl<'p> Deduce<'p> for WorkerCtx<'_, 'p> {
    fn cp(&self) -> &'p ConstraintProgram {
        self.core.cp
    }

    fn add(&mut self, goal: Goal, value: u32, _origin: Origin) {
        let slot = slot_of(goal);
        self.ensure_active(slot);
        let mut f = self.core.lock(slot);
        let inserted = f.state.add(value);
        debug_assert!(
            !(inserted && f.state.complete),
            "fact added to a completed goal {goal:?}"
        );
        if inserted {
            self.schedule_locked(slot, &mut f);
        }
    }

    fn subscribe(&mut self, goal: Goal, watcher: Watcher) {
        let slot = slot_of(goal);
        // Record the consumer → producer dependency edge before touching
        // the producer frame (one frame lock at a time, never two).
        let consumer = slot_of(watcher.consumer());
        if consumer != slot {
            self.core.lock(consumer).state.add_dep(goal);
        }
        self.ensure_active(slot);
        let mut f = self.core.lock(slot);
        // A CopyTo into the subscribed goal itself (`p = p`) is the
        // identity — suppress it, mirroring the sequential engine.
        if let Watcher::CopyTo { dst } = watcher {
            if slot_of(Goal::Pts(dst)) == slot {
                f.state.registered.insert(watcher);
                return;
            }
        }
        if f.state.registered.insert(watcher) {
            f.state.watchers.push(watcher);
            f.state.cursors.push(0);
            self.schedule_locked(slot, &mut f);
        }
    }

    fn note_support(&mut self, goal: Goal, node: NodeId) {
        let mut f = self.core.lock(slot_of(goal));
        f.state.support.insert(node.as_u32());
    }

    fn note_indirect(&mut self, goal: Goal) {
        let mut f = self.core.lock(slot_of(goal));
        f.state.reads_indirect = true;
    }
}

/// The frame scheduler. Construct one per parallel query; the engine's
/// dispatch ([`crate::DemandEngine`]) does this automatically when
/// [`DemandConfig::workers`] `> 1`.
pub struct Scheduler<'p> {
    cp: &'p ConstraintProgram,
    config: DemandConfig,
    shared: Option<(Arc<SharedMemo>, u64)>,
    flight: Option<Arc<FlightRecorder>>,
    obs: Obs,
}

impl<'p> Scheduler<'p> {
    /// A scheduler over `cp`; worker count and policy come from `config`.
    pub fn new(cp: &'p ConstraintProgram, config: DemandConfig) -> Self {
        Scheduler {
            cp,
            config,
            shared: None,
            flight: None,
            obs: Obs::new(),
        }
    }

    /// Routes cross-worker fact publication through `shared` (entries
    /// valid for generation `gen`): activations consult it, and the
    /// driver publishes every newly completed goal into it.
    pub fn with_shared(mut self, shared: Arc<SharedMemo>, gen: u64) -> Self {
        self.shared = Some((shared, gen));
        self
    }

    /// Records park/steal/wake (and sampled fire) events into `flight`.
    pub fn with_flight(mut self, flight: Arc<FlightRecorder>) -> Self {
        self.flight = Some(flight);
        self
    }

    /// Publishes the `demand.sched.step` span into `obs`.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Solves `goal` to its least fixpoint with `config.workers` workers.
    pub fn solve(&self, goal: Goal) -> SolveOutcome {
        self.solve_seeded(goal, None)
    }

    /// [`solve`](Self::solve), additionally seeding frames from a host
    /// engine's already-completed goals.
    pub(crate) fn solve_seeded(&self, goal: Goal, view: Option<&EngineView<'_>>) -> SolveOutcome {
        let workers = self.config.workers.max(1);
        let slots = 2 * self.cp.num_nodes();
        let core = Core {
            cp: self.cp,
            policy: self.config.sched_policy,
            frames: (0..slots).map(|_| Mutex::new(Frame::default())).collect(),
            injector: StealQueue::new(),
            locals: (0..workers).map(|_| StealQueue::new()).collect(),
            active: AtomicUsize::new(0),
            idle: Mutex::new(()),
            wake: Condvar::new(),
            shared: self.shared.clone(),
            flight: self.flight.clone(),
            obs: self.obs.clone(),
        };
        let root = slot_of(goal);
        // Bootstrap from the driver: activate the root (which may answer
        // it outright from a seed) and enqueue its first step on the
        // global injector.
        let mut boot = WorkerCtx {
            core: &core,
            view,
            id: usize::MAX,
            stats: SchedStats::default(),
        };
        boot.ensure_active(root);
        let mut stats = boot.stats;
        let seeded = core.lock(root).seeded_from_engine;
        if !seeded {
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|id| {
                        let core = &core;
                        s.spawn(move || {
                            let mut ctx = WorkerCtx {
                                core,
                                view,
                                id,
                                stats: SchedStats::default(),
                            };
                            ctx.run();
                            ctx.stats
                        })
                    })
                    .collect();
                for h in handles {
                    stats.absorb(&h.join().expect("scheduler worker panicked"));
                }
            });
        }
        debug_assert_eq!(core.active.load(Ordering::SeqCst), 0);
        // Finalize: every referenced frame is at the global fixpoint.
        let mut completed = Vec::new();
        let mut pts = Vec::new();
        for (slot, frame) in core.frames.iter().enumerate() {
            let mut f = frame.lock().expect("frame lock poisoned");
            if !f.active {
                continue;
            }
            if !f.state.complete {
                debug_assert!(f.state.quiescent(), "fixpoint but frame not quiescent");
                f.state.complete = true;
            }
            if slot as u32 == root {
                pts = f.state.members.iter().map(NodeId::from_u32).collect();
            }
            if !f.seeded_from_engine {
                let mut deps = std::mem::take(&mut f.state.deps);
                deps.sort_unstable_by_key(|g| match *g {
                    Goal::Pts(n) => (0u8, n.as_u32()),
                    Goal::Ptb(n) => (1u8, n.as_u32()),
                });
                completed.push((
                    goal_of(slot as u32),
                    CompletedGoal {
                        elems: f.state.members.iter().collect(),
                        provenance: Vec::new(),
                        support: f.state.support.iter().collect(),
                        deps,
                        reads_indirect: f.state.reads_indirect,
                    },
                ));
            }
        }
        SolveOutcome {
            completed,
            pts,
            seeded,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DemandConfig;
    use crate::engine::DemandEngine;

    fn node(cp: &ConstraintProgram, name: &str) -> NodeId {
        cp.node_ids()
            .find(|&n| cp.display_node(n) == name)
            .unwrap_or_else(|| panic!("no node named {name}"))
    }

    #[test]
    fn slot_addressing_round_trips() {
        for n in 0..16u32 {
            for goal in [
                Goal::Pts(NodeId::from_u32(n)),
                Goal::Ptb(NodeId::from_u32(n)),
            ] {
                assert_eq!(goal_of(slot_of(goal)), goal);
            }
        }
    }

    #[test]
    fn solves_copy_chain_like_sequential() {
        let cp = ddpa_constraints::parse_constraints("p = &o\nq = p\nr = q\n").expect("parses");
        for workers in 1..=4 {
            for policy in [SchedPolicy::Dfs, SchedPolicy::Bfs] {
                let sched = Scheduler::new(
                    &cp,
                    DemandConfig::new()
                        .with_workers(workers)
                        .with_sched_policy(policy),
                );
                let out = sched.solve(Goal::Pts(node(&cp, "r")));
                let names: Vec<String> = out.pts.iter().map(|&n| cp.display_node(n)).collect();
                assert_eq!(names, vec!["o"], "{policy:?} × {workers}");
                assert!(!out.seeded);
                assert!(!out.completed.is_empty());
            }
        }
    }

    #[test]
    fn matches_sequential_on_loads_stores_and_cycles() {
        let src = "p = &o\nx = &t\n*p = x\ny = *p\na = b\nb = a\na = &g\nb = &h\n";
        let cp = ddpa_constraints::parse_constraints(src).expect("parses");
        for name in ["y", "a", "b", "o"] {
            let mut engine = DemandEngine::new(&cp, DemandConfig::default());
            let expected = engine.points_to(node(&cp, name));
            let sched = Scheduler::new(&cp, DemandConfig::new().with_workers(3));
            let got = sched.solve(Goal::Pts(node(&cp, name)));
            assert_eq!(got.pts, expected.pts, "pts({name})");
        }
    }

    #[test]
    fn parallel_work_equals_sequential_collapse_off_work() {
        let src = "p = &o\nx = &t\n*p = x\ny = *p\nq = p\nr = q\ns = r\n";
        let cp = ddpa_constraints::parse_constraints(src).expect("parses");
        let mut engine = DemandEngine::new(&cp, DemandConfig::new().without_cycle_collapsing());
        let seq = engine.points_to(node(&cp, "y"));
        let sched = Scheduler::new(&cp, DemandConfig::new().with_workers(4));
        let par = sched.solve(Goal::Pts(node(&cp, "y")));
        assert_eq!(par.pts, seq.pts);
        assert_eq!(
            par.stats.work, seq.work,
            "same fire multiset ⇒ identical work"
        );
    }

    #[test]
    fn shared_memo_seeds_and_receives_fixpoints() {
        let cp = ddpa_constraints::parse_constraints("p = &o\nq = p\nr = q\n").expect("parses");
        let shared = Arc::new(SharedMemo::new());
        let sched = Scheduler::new(&cp, DemandConfig::new().with_workers(2))
            .with_shared(Arc::clone(&shared), shared.generation());
        let first = sched.solve(Goal::Pts(node(&cp, "r")));
        for (goal, entry) in &first.completed {
            shared.publish(shared.generation(), *goal, entry.clone());
        }
        // A second scheduler answers the root from the table without
        // stepping the subtree.
        let sched2 = Scheduler::new(&cp, DemandConfig::new().with_workers(2))
            .with_shared(Arc::clone(&shared), shared.generation());
        let second = sched2.solve(Goal::Pts(node(&cp, "r")));
        assert_eq!(second.pts, first.pts);
        assert!(second.stats.share_hits >= 1);
        assert_eq!(second.stats.work, 0, "published fixpoint costs no work");
    }
}
