//! Demand-driven pointer analysis — the reproduction of the PLDI 2001
//! system.
//!
//! Instead of solving the whole program, the analysis answers individual
//! *queries*:
//!
//! * [`DemandEngine::points_to`] — what may `v` point to? (`pts(v)`)
//! * [`DemandEngine::pointed_to_by`] — which pointers may point to `o`?
//!   (`ptb(o)`, the inverse relation the paper needs to resolve stores)
//! * [`DemandEngine::call_targets`] — which functions may this call site
//!   invoke? (the paper's motivating client)
//! * [`DemandEngine::may_alias`] — may two pointers alias?
//!
//! A query performs goal-directed evaluation of Andersen's deduction rules
//! (see [`engine`] for the rule set): only the subgoals transitively
//! relevant to the query are activated, subgoal results are **memoized**
//! across queries, recursive subgoal cycles converge by local fixpoint,
//! and a per-query **budget** caps the work — on exhaustion the query
//! reports itself unresolved and a later query (or a retry with a larger
//! budget) *resumes* where it stopped.
//!
//! The answers of fully resolved queries are bit-identical to the
//! exhaustive analysis in [`ddpa-anders`](../ddpa_anders/index.html)
//! (verified by differential and property tests).
//!
//! # Examples
//!
//! ```
//! use ddpa_demand::{DemandConfig, DemandEngine};
//!
//! let program = ddpa_ir::parse("int g; void main() { int *p = &g; int *q = p; }")?;
//! let cp = ddpa_constraints::lower(&program)?;
//! let q = cp.node_ids().find(|&n| cp.display_node(n) == "main::q").expect("q exists");
//!
//! let mut engine = DemandEngine::new(&cp, DemandConfig::default());
//! let result = engine.points_to(q);
//! assert!(result.complete);
//! assert_eq!(result.pts.len(), 1);
//! assert_eq!(cp.display_node(result.pts[0]), "g");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod budget;
pub mod config;
pub mod cycles;
pub mod engine;
pub mod goal;
pub mod inspect;
pub mod ladder;
pub mod parallel;
pub mod pool;
pub mod qtrace;
pub mod query;
pub mod rules;
pub mod sched;
pub mod share;
pub mod stats;
pub mod trace;

pub use budget::Budget;
pub use config::{DemandConfig, SchedPolicy};
pub use cycles::CopyGraph;
pub use engine::{DemandEngine, EditStats};
pub use inspect::{display_goal, CriticalPath, GoalGraph, GoalProfile};
pub use ladder::BudgetLadder;
pub use parallel::{points_to_on_pool, points_to_parallel};
pub use pool::{StealQueue, ThreadPool};
pub use qtrace::{QueryTrace, TraceReport};
pub use query::{AliasResult, CallTargets, QueryResult};
pub use sched::{SchedStats, Scheduler, SolveOutcome};
pub use share::{dirty_closure, CompletedGoal, SharedMemo};
pub use stats::EngineStats;
pub use trace::{Explanation, Origin, TraceStep};
