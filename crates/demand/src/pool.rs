//! A reusable fixed-size worker thread pool.
//!
//! [`points_to_parallel`](crate::points_to_parallel) used to spawn fresh
//! scoped threads per call; both it and the `ddpa-serve` query server now
//! share this pool so long-lived processes pay thread start-up once.
//!
//! Two submission modes:
//!
//! * [`ThreadPool::execute`] — fire-and-forget `'static` jobs;
//! * [`ThreadPool::scoped`] — a *batch* of borrowing jobs; the call blocks
//!   until every job of the batch has finished, which is what makes the
//!   lifetime erasure inside sound (the borrowed data outlives the wait).
//!
//! Jobs that panic do not kill workers: the panic is caught and the first
//! payload is re-raised verbatim (`resume_unwind`) from the submitting
//! side ([`ThreadPool::scoped`] / [`ThreadPool::join`]), preserving both
//! the old spawn-per-call behaviour where a worker panic propagated out
//! of the driver *and* the original panic message — a later `.expect`
//! or test assertion sees `"boom"`, not an anonymous count.
//!
//! The pool itself carries no analysis state: each worker job constructs
//! its own [`DemandEngine`](crate::DemandEngine) from a configuration the
//! *driver* clones in (so settings like cycle collapsing and its
//! threshold are inherited per worker, never shared — a worker's
//! union-find over merged goals is private to its engine).

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A caught panic payload, carried back to the submitting side.
type Payload = Box<dyn Any + Send + 'static>;

#[derive(Default)]
struct Queue {
    jobs: VecDeque<Job>,
    /// Jobs currently running on a worker.
    active: usize,
    /// First panic payload since the last [`ThreadPool::join`] (later
    /// ones are dropped — resuming can only re-raise one).
    panic_payload: Option<Payload>,
    shutdown: bool,
}

#[derive(Default)]
struct Shared {
    queue: Mutex<Queue>,
    /// Wakes workers when jobs arrive or shutdown is requested.
    available: Condvar,
    /// Wakes `join`/`scoped` waiters when a job finishes.
    done: Condvar,
}

/// A fixed-size pool of worker threads processing a shared job queue.
///
/// Dropping the pool drains the queue: remaining jobs still run, then the
/// workers exit and are joined.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use ddpa_demand::ThreadPool;
///
/// let pool = ThreadPool::new(4);
/// let sum = AtomicU64::new(0);
/// pool.scoped((0..100).map(|i| {
///     let sum = &sum;
///     Box::new(move || {
///         sum.fetch_add(i, Ordering::Relaxed);
///     }) as Box<dyn FnOnce() + Send + '_>
/// }));
/// assert_eq!(sum.load(Ordering::Relaxed), 4950);
/// ```
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.workers.len())
            .finish()
    }
}

impl ThreadPool {
    /// Starts a pool of `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        let shared = Arc::new(Shared::default());
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ddpa-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a fire-and-forget job.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        let mut q = self.shared.queue.lock().expect("pool queue poisoned");
        q.jobs.push_back(Box::new(job));
        drop(q);
        self.shared.available.notify_one();
    }

    /// Blocks until the queue is empty and no job is running.
    ///
    /// # Panics
    ///
    /// If any job panicked since the last `join`, re-raises the first
    /// such panic's original payload.
    pub fn join(&self) {
        let mut q = self.shared.queue.lock().expect("pool queue poisoned");
        while !q.jobs.is_empty() || q.active > 0 {
            q = self.shared.done.wait(q).expect("pool queue poisoned");
        }
        let payload = q.panic_payload.take();
        drop(q);
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Runs a batch of borrowing jobs to completion.
    ///
    /// The jobs may borrow from the caller's stack: this call does not
    /// return until every job of the batch has run, so the borrows cannot
    /// outlive their owners. Concurrent `scoped` batches from different
    /// threads interleave safely — each batch waits only on its own jobs.
    ///
    /// # Panics
    ///
    /// If any job of the batch panicked, re-raises the first such
    /// panic's original payload.
    pub fn scoped<'env>(&self, jobs: impl IntoIterator<Item = Box<dyn FnOnce() + Send + 'env>>) {
        struct Batch {
            remaining: Mutex<usize>,
            /// First panic payload of the batch.
            panicked: Mutex<Option<Payload>>,
            finished: Condvar,
        }
        let batch = Arc::new(Batch {
            remaining: Mutex::new(0),
            panicked: Mutex::new(None),
            finished: Condvar::new(),
        });

        let mut submitted = 0usize;
        {
            let mut q = self.shared.queue.lock().expect("pool queue poisoned");
            for job in jobs {
                // SAFETY: the job only needs to live until this function
                // returns, and we block below until `remaining` reaches
                // zero — i.e. until every erased job has finished running
                // — so the 'env borrows are never used after free.
                let job: Box<dyn FnOnce() + Send + 'static> = unsafe {
                    std::mem::transmute::<
                        Box<dyn FnOnce() + Send + 'env>,
                        Box<dyn FnOnce() + Send + 'static>,
                    >(job)
                };
                let batch = Arc::clone(&batch);
                q.jobs.push_back(Box::new(move || {
                    let outcome = catch_unwind(AssertUnwindSafe(job));
                    let mut remaining = batch.remaining.lock().expect("batch poisoned");
                    *remaining -= 1;
                    if let Err(payload) = outcome {
                        let mut first = batch.panicked.lock().expect("batch poisoned");
                        first.get_or_insert(payload);
                    }
                    batch.finished.notify_all();
                }));
                submitted += 1;
            }
            *batch.remaining.lock().expect("batch poisoned") = submitted;
        }
        self.shared.available.notify_all();

        let mut remaining = batch.remaining.lock().expect("batch poisoned");
        while *remaining > 0 {
            remaining = batch.finished.wait(remaining).expect("batch poisoned");
        }
        drop(remaining);
        let payload = batch.panicked.lock().expect("batch poisoned").take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("pool queue poisoned");
            q.shutdown = true;
        }
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    q.active += 1;
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = shared.available.wait(q).expect("pool queue poisoned");
            }
        };
        let outcome = catch_unwind(AssertUnwindSafe(job));
        let mut q = shared.queue.lock().expect("pool queue poisoned");
        q.active -= 1;
        if let Err(payload) = outcome {
            q.panic_payload.get_or_insert(payload);
        }
        drop(q);
        shared.done.notify_all();
    }
}

/// One worker's stealable deque (see [`crate::sched`]).
///
/// The owner pushes and pops at the *back* (LIFO, depth-first) or pops at
/// the *front* (FIFO, breadth-first); thieves always [`steal`] from the
/// front, so under the depth-first policy they take the owner's oldest —
/// coarsest — frames, the classic work-stealing granularity argument.
/// A `Mutex<VecDeque>` rather than a lock-free Chase–Lev deque: frames
/// are coarse units of work (a whole goal-step), so the queue is touched
/// orders of magnitude less often than facts are published, and the
/// uncontended-lock cost is noise next to a frame step.
///
/// [`steal`]: StealQueue::steal
#[derive(Debug, Default)]
pub struct StealQueue<T> {
    items: Mutex<VecDeque<T>>,
}

impl<T> StealQueue<T> {
    /// An empty deque.
    pub fn new() -> Self {
        StealQueue {
            items: Mutex::new(VecDeque::new()),
        }
    }

    /// Owner: enqueues at the back.
    pub fn push(&self, item: T) {
        self.items
            .lock()
            .expect("steal queue poisoned")
            .push_back(item);
    }

    /// Owner, depth-first: pops the newest item.
    pub fn pop_back(&self) -> Option<T> {
        self.items.lock().expect("steal queue poisoned").pop_back()
    }

    /// Owner, breadth-first: pops the oldest item.
    pub fn pop_front(&self) -> Option<T> {
        self.items.lock().expect("steal queue poisoned").pop_front()
    }

    /// Thief: takes the oldest item.
    pub fn steal(&self) -> Option<T> {
        self.items.lock().expect("steal queue poisoned").pop_front()
    }

    /// Number of queued items (racy under concurrency — a hint only).
    pub fn len(&self) -> usize {
        self.items.lock().expect("steal queue poisoned").len()
    }

    /// Whether the deque is empty (racy under concurrency — a hint only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn executes_static_jobs() {
        let pool = ThreadPool::new(3);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let hits = Arc::clone(&hits);
            pool.execute(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.join();
        assert_eq!(hits.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn scoped_jobs_borrow_stack_data() {
        let pool = ThreadPool::new(4);
        let inputs: Vec<usize> = (0..32).collect();
        let outputs: Vec<AtomicUsize> = (0..32).map(|_| AtomicUsize::new(0)).collect();
        pool.scoped(inputs.iter().map(|&i| {
            let outputs = &outputs;
            Box::new(move || {
                outputs[i].store(i * i, Ordering::Relaxed);
            }) as Box<dyn FnOnce() + Send + '_>
        }));
        for (i, o) in outputs.iter().enumerate() {
            assert_eq!(o.load(Ordering::Relaxed), i * i);
        }
    }

    #[test]
    fn scoped_empty_batch_returns_immediately() {
        let pool = ThreadPool::new(1);
        pool.scoped(std::iter::empty());
    }

    #[test]
    fn sequential_scoped_batches_reuse_workers() {
        let pool = ThreadPool::new(2);
        let count = AtomicUsize::new(0);
        for _ in 0..10 {
            pool.scoped((0..4).map(|_| {
                let count = &count;
                Box::new(move || {
                    count.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            }));
        }
        assert_eq!(count.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn panicking_job_propagates_and_pool_survives() {
        let pool = ThreadPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.scoped([Box::new(|| panic!("boom")) as Box<dyn FnOnce() + Send + '_>]);
        }));
        assert!(caught.is_err(), "scoped re-raises job panics");
        // The worker that ran the panicking job is still alive.
        let ran = AtomicUsize::new(0);
        pool.scoped((0..4).map(|_| {
            let ran = &ran;
            Box::new(move || {
                ran.fetch_add(1, Ordering::Relaxed);
            }) as Box<dyn FnOnce() + Send + '_>
        }));
        assert_eq!(ran.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn scoped_preserves_the_panic_payload() {
        let pool = ThreadPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.scoped([Box::new(|| panic!("boom")) as Box<dyn FnOnce() + Send + '_>]);
        }));
        let payload = caught.expect_err("scoped re-raises job panics");
        let msg = payload.downcast_ref::<&str>().copied();
        assert_eq!(msg, Some("boom"), "original payload, not a count");
    }

    #[test]
    fn join_preserves_the_first_panic_payload() {
        let pool = ThreadPool::new(1);
        pool.execute(|| panic!("first"));
        pool.execute(|| panic!("second"));
        let caught = catch_unwind(AssertUnwindSafe(|| pool.join()));
        let payload = caught.expect_err("join re-raises job panics");
        // One worker runs the jobs in order, so "first" is the payload
        // that is kept; "second" was dropped, not re-raised.
        assert_eq!(payload.downcast_ref::<&str>().copied(), Some("first"));
        // The pool is healthy afterwards: a clean join succeeds.
        pool.execute(|| {});
        pool.join();
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let _ = ThreadPool::new(0);
    }

    #[test]
    fn drop_drains_pending_jobs() {
        let hits = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(1);
            for _ in 0..20 {
                let hits = Arc::clone(&hits);
                pool.execute(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        }
        assert_eq!(hits.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn steal_queue_orders_owner_and_thief_ends() {
        let q = StealQueue::new();
        assert!(q.is_empty());
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop_back(), Some(3), "owner DFS pops newest");
        assert_eq!(q.steal(), Some(1), "thief takes oldest");
        assert_eq!(q.pop_front(), Some(2), "owner BFS pops oldest");
        assert_eq!(q.pop_back(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn steal_queue_is_safe_across_threads() {
        let q = Arc::new(StealQueue::new());
        for i in 0..1000 {
            q.push(i);
        }
        let taken = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let q = Arc::clone(&q);
                let taken = Arc::clone(&taken);
                s.spawn(move || {
                    while q.steal().is_some() {
                        taken.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(taken.load(Ordering::Relaxed), 1000, "every item taken once");
    }
}
