//! The deduction rules, factored out of the engine loop.
//!
//! Both evaluators — the sequential tabled engine
//! ([`DemandEngine`](crate::DemandEngine)) and the frame scheduler's
//! workers ([`crate::sched`]) — run the *same* rule system: the static
//! rule installation for a goal ([ADDR]/[COPY]/[LOAD]/[STORE]/[FIELD]/
//! [PARAM]/[RET] and their `ptb` inverses) and the per-element firing of
//! each [`Watcher`] variant. This trait is that rule system. An evaluator
//! provides three primitives — the program, "add this fact to that goal",
//! and "install this watcher on that goal" — and inherits every rule body
//! as a default method, so the two evaluators cannot drift apart: a rule
//! changed here changes for both, which is what keeps parallel answers
//! bit-identical to sequential ones.
//!
//! The bodies use index-based loops (`for i in 0..cp.xxx().len()`) rather
//! than iterator borrows because `add`/`subscribe` take `&mut self` while
//! the program slices are borrowed from `self.cp()` — the `'p` lifetime
//! makes the program reference independent of the evaluator borrow, but
//! the slices themselves must be re-fetched per element.

use ddpa_constraints::{CalleeRef, ConstraintProgram, NodeId, NodeKind};

use crate::goal::{Goal, Watcher};
use crate::trace::Origin;

/// One evaluator of the demand deduction system.
///
/// Implementors supply fact storage and watcher bookkeeping; the trait
/// supplies the rules (as default methods). See the module docs.
pub trait Deduce<'p> {
    /// The program being analyzed. The `'p` lifetime outlives `self`, so
    /// rule bodies can hold program slices across `add`/`subscribe` calls.
    fn cp(&self) -> &'p ConstraintProgram;

    /// Adds `value` to `goal`'s set (activating the goal if needed),
    /// scheduling dependent work when the fact is new.
    fn add(&mut self, goal: Goal, value: u32, origin: Origin);

    /// Installs `watcher` on `goal` (idempotent), starting from the first
    /// element. Implementations must suppress a `CopyTo` that targets the
    /// subscribed goal's own state (a self copy is the identity).
    fn subscribe(&mut self, goal: Goal, watcher: Watcher);

    /// Records that deriving `goal` read the program rows of `node`, so an
    /// edit changing those rows must dirty `goal`. The default is a no-op:
    /// evaluators that don't track incremental support sets ignore it.
    fn note_support(&mut self, _goal: Goal, _node: NodeId) {}

    /// Records that deriving `goal` scanned the global indirect-callsite
    /// list, so *any* edit touching indirect calls must dirty `goal`.
    fn note_indirect(&mut self, _goal: Goal) {}

    /// Installs the static `pts` rules for `x`.
    fn install_pts(&mut self, x: NodeId) {
        let cp = self.cp();
        // The static rules read every row of x's program slice.
        self.note_support(Goal::Pts(x), x);
        // [ADDR]
        for i in 0..cp.addr_objs_of(x).len() {
            let o = cp.addr_objs_of(x)[i];
            self.add(Goal::Pts(x), o.as_u32(), Origin::Base);
        }
        // [COPY]
        for i in 0..cp.copy_srcs_of(x).len() {
            let s = cp.copy_srcs_of(x)[i];
            self.subscribe(Goal::Pts(s), Watcher::CopyTo { dst: x });
        }
        // [LOAD]
        for i in 0..cp.load_ptrs_of(x).len() {
            let p = cp.load_ptrs_of(x)[i];
            self.subscribe(Goal::Pts(p), Watcher::LoadDst { dst: x });
        }
        // [STORE] — only pointable locations can be written through pointers.
        if cp.is_address_taken(x) {
            self.subscribe(Goal::Ptb(x), Watcher::StoreInto { obj: x });
        }
        // [FIELD] — x = &base->field
        for i in 0..cp.field_addrs_of(x).len() {
            let (base, field) = cp.field_addrs_of(x)[i];
            self.subscribe(Goal::Pts(base), Watcher::FieldOf { dst: x, field });
        }
        // [PARAM]
        if let NodeKind::Formal { func, index } = cp.node(x).kind {
            let func_obj = cp.func(func).object;
            // Reads the callee's callsite rows (folded into the function
            // object's signature) and scans every indirect callsite.
            self.note_support(Goal::Pts(x), func_obj);
            self.note_indirect(Goal::Pts(x));
            for i in 0..cp.direct_callsites_of(func).len() {
                let cs = cp.direct_callsites_of(func)[i];
                if let Some(Some(a)) = cp.callsite(cs).args.get(index as usize) {
                    let a = *a;
                    self.subscribe(Goal::Pts(a), Watcher::CopyTo { dst: x });
                }
            }
            for i in 0..cp.indirect_callsites().len() {
                let cs = cp.indirect_callsites()[i];
                let site = cp.callsite(cs);
                if let CalleeRef::Indirect(fp) = site.callee {
                    if let Some(Some(a)) = site.args.get(index as usize) {
                        let a = *a;
                        self.subscribe(
                            Goal::Pts(fp),
                            Watcher::CallFormal {
                                func_obj,
                                formal: x,
                                arg: a,
                            },
                        );
                    }
                }
            }
        }
        // [RET]
        for i in 0..cp.ret_dst_uses_of(x).len() {
            let cs = cp.ret_dst_uses_of(x)[i];
            match cp.callsite(cs).callee {
                CalleeRef::Direct(f) => {
                    let ret = cp.func(f).ret;
                    self.subscribe(Goal::Pts(ret), Watcher::CopyTo { dst: x });
                }
                CalleeRef::Indirect(fp) => {
                    self.subscribe(Goal::Pts(fp), Watcher::CallRet { dst: x });
                }
            }
        }
    }

    /// Installs the static `ptb` rules for `o`.
    fn install_ptb(&mut self, o: NodeId) {
        let cp = self.cp();
        // The static rules read o's addr-inverse row and node kind.
        self.note_support(Goal::Ptb(o), o);
        // [ADDR⁻¹]
        for i in 0..cp.addr_dsts_of(o).len() {
            let d = cp.addr_dsts_of(o)[i];
            self.add(Goal::Ptb(o), d.as_u32(), Origin::Base);
        }
        // [FIELD⁻¹] — a field node is pointed to by the destinations of
        // field-address constraints whose base points at its parent.
        if let NodeKind::Field { parent, field } = cp.node(o).kind {
            self.subscribe(Goal::Ptb(parent), Watcher::FieldPtb { obj: o, field });
        }
        // Rules (a)–(e) fire per element via self-subscription.
        self.subscribe(Goal::Ptb(o), Watcher::FwdProp { obj: o });
    }

    /// Fires one watcher on one element.
    fn fire(&mut self, src: Goal, watcher: Watcher, elem: u32) {
        let cp = self.cp();
        let origin = Origin::Rule { watcher, src, elem };
        match watcher {
            Watcher::CopyTo { dst } => {
                self.add(Goal::Pts(dst), elem, origin);
            }
            Watcher::LoadDst { dst } => {
                let o = NodeId::from_u32(elem);
                self.subscribe(Goal::Pts(o), Watcher::CopyTo { dst });
            }
            Watcher::StoreInto { obj } => {
                let w = NodeId::from_u32(elem);
                // Reads w's store row on behalf of pts(obj).
                self.note_support(Goal::Pts(obj), w);
                for i in 0..cp.store_srcs_of(w).len() {
                    let s = cp.store_srcs_of(w)[i];
                    self.subscribe(Goal::Pts(s), Watcher::CopyTo { dst: obj });
                }
            }
            Watcher::CallFormal {
                func_obj,
                formal,
                arg,
            } => {
                if elem == func_obj.as_u32() {
                    self.subscribe(Goal::Pts(arg), Watcher::CopyTo { dst: formal });
                }
            }
            Watcher::CallRet { dst } => {
                if let Some(f) = cp.node(NodeId::from_u32(elem)).as_func() {
                    let ret = cp.func(f).ret;
                    self.subscribe(Goal::Pts(ret), Watcher::CopyTo { dst });
                }
            }
            Watcher::FwdProp { obj } => {
                self.fwd_prop(obj, NodeId::from_u32(elem), origin);
            }
            Watcher::StoreSpread { obj } => {
                self.add(Goal::Ptb(obj), elem, origin);
            }
            Watcher::LoadSpread { obj } => {
                let q = NodeId::from_u32(elem);
                // Reads q's load row on behalf of ptb(obj).
                self.note_support(Goal::Ptb(obj), q);
                for i in 0..cp.load_dsts_of(q).len() {
                    let d = cp.load_dsts_of(q)[i];
                    self.add(Goal::Ptb(obj), d.as_u32(), origin);
                }
            }
            Watcher::ArgSpread { obj, pos } => {
                if let Some(f) = cp.node(NodeId::from_u32(elem)).as_func() {
                    if let Some(&formal) = cp.func(f).formals.get(pos as usize) {
                        self.add(Goal::Ptb(obj), formal.as_u32(), origin);
                    }
                }
            }
            Watcher::RetSpread {
                obj,
                func_obj,
                ret_dst,
            } => {
                if elem == func_obj.as_u32() {
                    self.add(Goal::Ptb(obj), ret_dst.as_u32(), origin);
                }
            }
            Watcher::FieldOf { dst, field } => {
                // Reads elem's field declarations on behalf of pts(dst).
                self.note_support(Goal::Pts(dst), NodeId::from_u32(elem));
                if let Some(fld) = cp.field_of(NodeId::from_u32(elem), field) {
                    self.add(Goal::Pts(dst), fld.as_u32(), origin);
                }
            }
            Watcher::FieldPtb { obj, field } => {
                let base = NodeId::from_u32(elem);
                // Reads base's field-addr row on behalf of ptb(obj).
                self.note_support(Goal::Ptb(obj), base);
                for i in 0..cp.field_addrs_from(base).len() {
                    let (f, dst) = cp.field_addrs_from(base)[i];
                    if f == field {
                        self.add(Goal::Ptb(obj), dst.as_u32(), origin);
                    }
                }
            }
        }
    }

    /// Rules (a)–(e): forward-propagates the new pointer `w ∈ ptb(obj)`.
    fn fwd_prop(&mut self, obj: NodeId, w: NodeId, origin: Origin) {
        let cp = self.cp();
        // Rules (a)-(d) read w's copy/store/arg rows on behalf of ptb(obj).
        self.note_support(Goal::Ptb(obj), w);
        // (a) copies d = w
        for i in 0..cp.copy_dsts_of(w).len() {
            let d = cp.copy_dsts_of(w)[i];
            self.add(Goal::Ptb(obj), d.as_u32(), origin);
        }
        // (b) stores *p = w: everything p points to gains obj
        for i in 0..cp.store_ptrs_of(w).len() {
            let p = cp.store_ptrs_of(w)[i];
            self.subscribe(Goal::Pts(p), Watcher::StoreSpread { obj });
        }
        // (c) w may itself be pointed to; loads through such pointers
        //     propagate obj onward
        if cp.is_address_taken(w) {
            self.subscribe(Goal::Ptb(w), Watcher::LoadSpread { obj });
        }
        // (d) w passed as an argument
        for i in 0..cp.arg_uses_of(w).len() {
            let (cs, pos) = cp.arg_uses_of(w)[i];
            match cp.callsite(cs).callee {
                CalleeRef::Direct(f) => {
                    if let Some(&formal) = cp.func(f).formals.get(pos as usize) {
                        self.add(Goal::Ptb(obj), formal.as_u32(), origin);
                    }
                }
                CalleeRef::Indirect(fp) => {
                    self.subscribe(Goal::Pts(fp), Watcher::ArgSpread { obj, pos });
                }
            }
        }
        // (e) w is a return slot: flows to every caller's result
        if let NodeKind::Ret { func } = cp.node(w).kind {
            // Reads the function's callsite rows (folded into the function
            // object's signature) and scans every indirect callsite.
            self.note_support(Goal::Ptb(obj), cp.func(func).object);
            self.note_indirect(Goal::Ptb(obj));
            for i in 0..cp.direct_callsites_of(func).len() {
                let cs = cp.direct_callsites_of(func)[i];
                if let Some(d) = cp.callsite(cs).ret_dst {
                    self.add(Goal::Ptb(obj), d.as_u32(), origin);
                }
            }
            let func_obj = cp.func(func).object;
            for i in 0..cp.indirect_callsites().len() {
                let cs = cp.indirect_callsites()[i];
                let site = cp.callsite(cs);
                if let (CalleeRef::Indirect(fp), Some(d)) = (site.callee, site.ret_dst) {
                    self.subscribe(
                        Goal::Pts(fp),
                        Watcher::RetSpread {
                            obj,
                            func_obj,
                            ret_dst: d,
                        },
                    );
                }
            }
        }
    }
}
