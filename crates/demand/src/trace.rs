//! Derivation provenance: answering *why* a points-to fact holds.
//!
//! With [`crate::DemandConfig::trace`] enabled, the engine records, for
//! every derived fact, the rule instance and premise fact that first
//! produced it. [`crate::DemandEngine::explain_points_to`] then walks this
//! provenance back to a base fact (`x = &o`), yielding a derivation chain
//! like the ones the paper writes out by hand:
//!
//! ```text
//! o ∈ pts(r)   by [COPY]  r = q
//! o ∈ pts(q)   by [COPY]  q = p
//! o ∈ pts(p)   by [ADDR]  p = &o
//! ```

use ddpa_constraints::{ConstraintProgram, NodeId};

use crate::goal::{Goal, Watcher};

/// Why a fact entered a goal's set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Origin {
    /// A base fact from an `x = &o` constraint (or its inverse).
    Base,
    /// Derived by firing `watcher` on premise `(src, elem)`.
    Rule {
        /// The rule instance that fired.
        watcher: Watcher,
        /// The goal the premise was read from.
        src: Goal,
        /// The premise element.
        elem: u32,
    },
}

/// One step of a derivation, leaf (base fact) last.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceStep {
    /// The goal the fact belongs to.
    pub goal: Goal,
    /// The fact (a node id).
    pub elem: u32,
    /// How it was derived.
    pub origin: Origin,
}

/// A full derivation chain for one fact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Explanation {
    /// Steps from the queried fact down to a base fact.
    pub steps: Vec<TraceStep>,
}

impl Explanation {
    /// Renders the chain with human-readable node names.
    pub fn render(&self, cp: &ConstraintProgram) -> String {
        let mut out = String::new();
        for step in &self.steps {
            let fact = match step.goal {
                Goal::Pts(v) => format!(
                    "{} ∈ pts({})",
                    cp.display_node(NodeId::from_u32(step.elem)),
                    cp.display_node(v)
                ),
                Goal::Ptb(o) => format!(
                    "{} ∈ ptb({})",
                    cp.display_node(NodeId::from_u32(step.elem)),
                    cp.display_node(o)
                ),
            };
            let why = match step.origin {
                Origin::Base => "by [ADDR] (base fact)".to_owned(),
                Origin::Rule { watcher, .. } => format!("by {}", describe_watcher(&watcher, cp)),
            };
            out.push_str(&format!("{fact}   {why}\n"));
        }
        out
    }
}

/// A short human-readable description of a rule instance.
pub fn describe_watcher(watcher: &Watcher, cp: &ConstraintProgram) -> String {
    match watcher {
        Watcher::CopyTo { dst } => format!("[COPY→{}]", cp.display_node(*dst)),
        Watcher::LoadDst { dst } => format!("[LOAD→{}]", cp.display_node(*dst)),
        Watcher::StoreInto { obj } => format!("[STORE→{}]", cp.display_node(*obj)),
        Watcher::CallFormal { formal, .. } => {
            format!("[PARAM→{}]", cp.display_node(*formal))
        }
        Watcher::CallRet { dst } => format!("[RET→{}]", cp.display_node(*dst)),
        Watcher::FwdProp { obj } => format!("[PTB-FWD {}]", cp.display_node(*obj)),
        Watcher::StoreSpread { obj } => format!("[PTB-STORE {}]", cp.display_node(*obj)),
        Watcher::LoadSpread { obj } => format!("[PTB-LOAD {}]", cp.display_node(*obj)),
        Watcher::ArgSpread { obj, .. } => format!("[PTB-ARG {}]", cp.display_node(*obj)),
        Watcher::RetSpread { obj, .. } => format!("[PTB-RET {}]", cp.display_node(*obj)),
        Watcher::FieldOf { dst, field } => {
            format!("[FIELD .f{field}→{}]", cp.display_node(*dst))
        }
        Watcher::FieldPtb { obj, field } => {
            format!("[PTB-FIELD .f{field} {}]", cp.display_node(*obj))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_names_facts() {
        let cp = ddpa_constraints::parse_constraints("p = &o\n").expect("parses");
        let p = cp
            .node_ids()
            .find(|&n| cp.display_node(n) == "p")
            .expect("p");
        let o = cp
            .node_ids()
            .find(|&n| cp.display_node(n) == "o")
            .expect("o");
        let e = Explanation {
            steps: vec![TraceStep {
                goal: Goal::Pts(p),
                elem: o.as_u32(),
                origin: Origin::Base,
            }],
        };
        let text = e.render(&cp);
        assert!(text.contains("o ∈ pts(p)"));
        assert!(text.contains("[ADDR]"));
    }
}
