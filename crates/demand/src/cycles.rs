//! Online cycle detection over the goal-level copy graph.
//!
//! Heintze & Tardieu collapse the nodes of a discovered copy cycle so the
//! cycle's points-to set is deduced once instead of once per member. The
//! demand engine reproduces that optimization at the *goal* level: every
//! [`crate::goal::Watcher::CopyTo`] subscription installed on a `Pts` goal
//! is an edge `pts(src) ⊆ pts(dst)` of the copy graph, and a strongly
//! connected component of that graph is a family of goals whose sets are
//! provably equal at fixpoint — so the engine may merge their
//! [`crate::goal::GoalState`]s into one representative.
//!
//! [`CopyGraph`] owns the bookkeeping: a [`UnionFind`] over the engine's
//! dense goal indices (kept in lockstep with the goal table via
//! [`CopyGraph::push`]), the list of discovered copy edges, and a pending
//! counter that triggers a periodic SCC pass ([`CopyGraph::components`],
//! iterative Tarjan from `ddpa_support::scc`) once enough new edges have
//! accumulated. The engine routes every goal-index lookup through
//! [`CopyGraph::find`], so merged-away goals transparently resolve to
//! their representative.
//!
//! Edges are monotonic — a `CopyTo` subscription is never retracted while
//! the memo table lives — which is what makes merging sound: once a cycle
//! exists in the discovered subgraph it exists in the program, and every
//! member's final set equals the representative's. [`CopyGraph`] stores
//! edge *destinations* as [`NodeId`]s rather than goal indices because the
//! destination goal may not be activated yet when the subscription is
//! installed; resolution to an index happens lazily in
//! [`CopyGraph::components`], and edges whose destination never activates
//! simply cannot close a cycle (an unactivated goal has no outgoing
//! subscriptions).

use ddpa_constraints::NodeId;
use ddpa_support::{scc, UnionFind};

/// The copy-subscription graph and goal-merging union-find.
#[derive(Debug)]
pub struct CopyGraph {
    enabled: bool,
    threshold: u32,
    uf: UnionFind,
    /// Discovered `pts(src_goal) ⊆ pts(dst_node)` subscriptions. Sources
    /// are goal indices (the goal carrying the watcher necessarily
    /// exists); destinations stay symbolic until the SCC pass.
    edges: Vec<(u32, NodeId)>,
    /// Edges recorded since the last SCC pass.
    pending: u32,
    /// Engine work units ([`CopyGraph::tick`]) since the last SCC pass.
    /// A cycle's closing edge typically arrives at the *end* of the
    /// activation cascade, with most propagation still ahead — counting
    /// work keeps a pass coming even when no further edges appear.
    ticks: u32,
}

impl CopyGraph {
    /// An empty graph. `threshold` is the number of newly discovered copy
    /// edges that triggers an SCC pass (clamped to at least 1); `enabled`
    /// gates edge recording entirely, so a disabled graph costs one
    /// identity `find` per lookup and nothing else.
    pub fn new(enabled: bool, threshold: u32) -> Self {
        CopyGraph {
            enabled,
            threshold: threshold.max(1),
            uf: UnionFind::new(0),
            edges: Vec::new(),
            pending: 0,
            ticks: 0,
        }
    }

    /// Whether edge recording (and thus collapsing) is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Registers a fresh goal slot; must be called exactly once per goal
    /// activation so the union-find stays aligned with the goal table.
    pub fn push(&mut self) -> u32 {
        self.uf.push()
    }

    /// The representative goal index for `gi` (path-compressing).
    pub fn find(&mut self, gi: u32) -> u32 {
        self.uf.find(gi)
    }

    /// The representative goal index for `gi` without mutation (for
    /// `&self` entry points like explanation lookup).
    pub fn find_readonly(&self, gi: u32) -> u32 {
        self.uf.find_readonly(gi)
    }

    /// Records the copy edge `pts(goal src) ⊆ pts(node dst)`.
    pub fn record_edge(&mut self, src: u32, dst: NodeId) {
        if !self.enabled {
            return;
        }
        self.edges.push((src, dst));
        self.pending += 1;
    }

    /// Number of copy edges discovered so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Records one unit of engine work (a rule firing) toward the next
    /// SCC pass.
    pub fn tick(&mut self) {
        if self.enabled {
            self.ticks = self.ticks.saturating_add(1);
        }
    }

    /// `true` once at least one new edge exists and enough events (new
    /// edges + work ticks) accumulated to warrant an SCC pass.
    pub fn due(&self) -> bool {
        self.enabled
            && self.pending >= 1
            && self.pending.saturating_add(self.ticks) >= self.threshold
    }

    /// Runs SCC detection over the discovered copy graph and returns the
    /// non-trivial components, each as a sorted list of *current
    /// representative* goal indices. `resolve` maps an edge's destination
    /// node to its goal index, or `None` if `Pts(dst)` was never
    /// activated (such edges cannot participate in a cycle).
    ///
    /// Resets the pending counter, so the next pass only runs after
    /// another `threshold` edges. Deterministic: edges are canonicalized,
    /// sorted and deduplicated before Tarjan runs, so component contents
    /// and ordering do not depend on hash-map iteration order.
    pub fn components(&mut self, resolve: impl Fn(NodeId) -> Option<u32>) -> Vec<Vec<u32>> {
        self.pending = 0;
        self.ticks = 0;
        // Canonicalize onto current representatives. Self-edges (already
        // merged pairs) drop out here.
        let edges = std::mem::take(&mut self.edges);
        let mut canon: Vec<(u32, u32)> = Vec::with_capacity(edges.len());
        for &(s, d) in &edges {
            let Some(di) = resolve(d) else { continue };
            let rs = self.uf.find(s);
            let rd = self.uf.find(di);
            if rs != rd {
                canon.push((rs, rd));
            }
        }
        self.edges = edges;
        canon.sort_unstable();
        canon.dedup();
        if canon.is_empty() {
            return Vec::new();
        }
        // Compact the touched representatives to 0..m for Tarjan.
        let mut nodes: Vec<u32> = canon.iter().flat_map(|&(a, b)| [a, b]).collect();
        nodes.sort_unstable();
        nodes.dedup();
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); nodes.len()];
        for &(a, b) in &canon {
            let ca = nodes.binary_search(&a).expect("source was collected") as u32;
            let cb = nodes.binary_search(&b).expect("dest was collected") as u32;
            adj[ca as usize].push(cb);
        }
        let r = scc::tarjan(nodes.len(), |v, out| out.extend(&adj[v as usize]));
        let mut comps: Vec<Vec<u32>> = vec![Vec::new(); r.count as usize];
        for (i, &c) in r.component.iter().enumerate() {
            comps[c as usize].push(nodes[i]);
        }
        comps.retain(|c| c.len() > 1);
        comps
    }

    /// Unions every goal in `comp` into one set and returns the
    /// representative index (one of `comp`'s members).
    pub fn union_all(&mut self, comp: &[u32]) -> u32 {
        debug_assert!(!comp.is_empty());
        for w in comp.windows(2) {
            self.uf.union(w[0], w[1]);
        }
        self.uf.find(comp[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(n: u32) -> NodeId {
        NodeId::from_u32(n)
    }

    #[test]
    fn disabled_graph_records_nothing() {
        let mut g = CopyGraph::new(false, 1);
        g.push();
        g.push();
        g.record_edge(0, nid(1));
        assert_eq!(g.edge_count(), 0);
        assert!(!g.due());
        assert_eq!(g.find(1), 1);
    }

    #[test]
    fn due_after_threshold_edges() {
        let mut g = CopyGraph::new(true, 2);
        for _ in 0..3 {
            g.push();
        }
        g.record_edge(0, nid(1));
        assert!(!g.due());
        g.record_edge(1, nid(2));
        assert!(g.due());
        // Running the pass resets the pending counter.
        let comps = g.components(|d| Some(d.as_u32()));
        assert!(comps.is_empty(), "a path is not a cycle");
        assert!(!g.due());
    }

    #[test]
    fn detects_and_merges_a_ring() {
        let mut g = CopyGraph::new(true, 1);
        for _ in 0..4 {
            g.push();
        }
        // 0 -> 1 -> 2 -> 0, plus a tail 2 -> 3.
        g.record_edge(0, nid(1));
        g.record_edge(1, nid(2));
        g.record_edge(2, nid(0));
        g.record_edge(2, nid(3));
        let comps = g.components(|d| Some(d.as_u32()));
        assert_eq!(comps, vec![vec![0, 1, 2]]);
        let rep = g.union_all(&comps[0]);
        assert_eq!(g.find(0), rep);
        assert_eq!(g.find(1), rep);
        assert_eq!(g.find(2), rep);
        assert_ne!(g.find(3), rep);
        // A later pass sees only canonical self-edges: no components.
        assert!(g.components(|d| Some(d.as_u32())).is_empty());
    }

    #[test]
    fn unresolved_destinations_cannot_close_cycles() {
        let mut g = CopyGraph::new(true, 1);
        g.push();
        g.push();
        g.record_edge(0, nid(1));
        g.record_edge(1, nid(0));
        // Node 1's goal "does not exist": the back edge is ignored.
        let comps = g.components(|d| if d.as_u32() == 0 { Some(0) } else { None });
        assert!(comps.is_empty());
    }

    #[test]
    fn merges_nested_components_across_passes() {
        let mut g = CopyGraph::new(true, 1);
        for _ in 0..4 {
            g.push();
        }
        g.record_edge(0, nid(1));
        g.record_edge(1, nid(0));
        let first = g.components(|d| Some(d.as_u32()));
        assert_eq!(first.len(), 1);
        let rep01 = g.union_all(&first[0]);
        // A second ring through the merged pair: 2 -> 3 -> 0, 1 -> 2.
        g.record_edge(2, nid(3));
        g.record_edge(3, nid(0));
        g.record_edge(1, nid(2));
        let second = g.components(|d| Some(d.as_u32()));
        assert_eq!(second.len(), 1);
        let mut members = second[0].clone();
        members.sort_unstable();
        assert_eq!(members, vec![rep01, 2, 3]);
        let rep = g.union_all(&second[0]);
        for i in 0..4 {
            assert_eq!(g.find(i), rep);
        }
    }
}
