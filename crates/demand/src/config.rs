//! Demand-engine configuration.

/// Order in which a scheduler worker drains its own deque
/// (see [`crate::sched`]).
///
/// Depth-first (the default) pops the most recently scheduled frame —
/// the sequential engine's natural order, which keeps a worker inside
/// one deduction subtree and its caches hot. Breadth-first pops the
/// oldest frame, fanning out across the goal graph sooner. Answers are
/// bit-identical under either policy (and any worker count); only the
/// discovery order — and thus steal/park behavior — changes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SchedPolicy {
    /// Pop newest first (LIFO own-deque order).
    #[default]
    Dfs,
    /// Pop oldest first (FIFO own-deque order).
    Bfs,
}

impl SchedPolicy {
    /// The CLI / config-file spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            SchedPolicy::Dfs => "dfs",
            SchedPolicy::Bfs => "bfs",
        }
    }
}

impl std::str::FromStr for SchedPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "dfs" => Ok(SchedPolicy::Dfs),
            "bfs" => Ok(SchedPolicy::Bfs),
            other => Err(format!("unknown scheduler policy '{other}' (want dfs|bfs)")),
        }
    }
}

/// Configuration for a [`crate::DemandEngine`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DemandConfig {
    /// Per-query work budget (rule firings); `None` = unlimited.
    pub budget: Option<u64>,
    /// Memoize subgoal results across queries (the paper's caching; on by
    /// default). When off, every query starts from scratch — the ablation
    /// baseline for the caching experiment. Also gates an attached
    /// [`crate::SharedMemo`]: a no-caching engine neither consults nor
    /// feeds the shared table.
    pub caching: bool,
    /// Record derivation provenance so
    /// [`crate::DemandEngine::explain_points_to`] can reconstruct why a
    /// fact holds (off by default; costs one map entry per derived fact).
    pub trace: bool,
    /// Merge the goals of discovered copy cycles into one representative
    /// (the paper's cycle-collapsing rule; on by default). Answers are
    /// identical either way — this is purely a work/memory optimization.
    pub collapse_cycles: bool,
    /// Number of newly discovered copy edges between SCC passes. Lower
    /// values collapse cycles sooner at the cost of more frequent passes.
    pub collapse_threshold: u32,
    /// Record structured engine events into the deduction flight recorder
    /// (on by default — the ring is bounded and rule firings are sampled,
    /// so the cost is a few percent at worst; see `docs/OBSERVABILITY.md`).
    /// Recording never feeds back into deduction, so answers are
    /// bit-identical either way.
    pub flight: bool,
    /// Flight-recorder ring capacity in events (rounded up to a power of
    /// two, minimum 8).
    pub flight_capacity: usize,
    /// Flight-recorder fire-sampling stride: every `N`-th rule firing is
    /// recorded (structural events are always recorded; clamped to ≥ 1).
    pub flight_sample: u32,
    /// Worker threads for a single query. `1` (the default) runs the
    /// classic sequential drain; `> 1` dispatches eligible queries to the
    /// frame scheduler ([`crate::sched`]) with this many workers. Queries
    /// with a budget or with tracing on always run sequentially.
    pub workers: usize,
    /// Own-deque drain order for scheduler workers (ignored when
    /// `workers == 1`).
    pub sched_policy: SchedPolicy,
}

impl Default for DemandConfig {
    fn default() -> Self {
        DemandConfig {
            budget: None,
            caching: true,
            trace: false,
            collapse_cycles: true,
            collapse_threshold: 32,
            flight: true,
            flight_capacity: 8192,
            flight_sample: 64,
            workers: 1,
            sched_policy: SchedPolicy::default(),
        }
    }
}

impl DemandConfig {
    /// Unlimited budget, caching on.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the per-query budget.
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Disables cross-query memoization.
    pub fn without_caching(mut self) -> Self {
        self.caching = false;
        self
    }

    /// Enables derivation tracing.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Disables online cycle collapsing (the ablation baseline for the
    /// T6 experiment).
    pub fn without_cycle_collapsing(mut self) -> Self {
        self.collapse_cycles = false;
        self
    }

    /// Sets the copy-edge count between SCC passes (clamped to ≥ 1).
    pub fn with_collapse_threshold(mut self, threshold: u32) -> Self {
        self.collapse_threshold = threshold.max(1);
        self
    }

    /// Disables the deduction flight recorder (the overhead-measurement
    /// baseline for the T9 experiment).
    pub fn without_flight_recorder(mut self) -> Self {
        self.flight = false;
        self
    }

    /// Sets the flight-recorder ring capacity and fire-sampling stride.
    pub fn with_flight(mut self, capacity: usize, sample: u32) -> Self {
        self.flight = true;
        self.flight_capacity = capacity;
        self.flight_sample = sample;
        self
    }

    /// Sets the per-query worker count (clamped to ≥ 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the scheduler's own-deque drain order.
    pub fn with_sched_policy(mut self, policy: SchedPolicy) -> Self {
        self.sched_policy = policy;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods() {
        let c = DemandConfig::new().with_budget(100).without_caching();
        assert_eq!(c.budget, Some(100));
        assert!(!c.caching);
        let d = DemandConfig::default();
        assert_eq!(d.budget, None);
        assert!(d.caching);
        assert!(d.collapse_cycles, "collapsing defaults to on");
    }

    #[test]
    fn collapse_builders() {
        let c = DemandConfig::new().without_cycle_collapsing();
        assert!(!c.collapse_cycles);
        let t = DemandConfig::new().with_collapse_threshold(0);
        assert_eq!(t.collapse_threshold, 1, "threshold clamps to 1");
    }

    #[test]
    fn sched_builders() {
        let d = DemandConfig::default();
        assert_eq!(d.workers, 1, "sequential by default");
        assert_eq!(d.sched_policy, SchedPolicy::Dfs);
        let c = DemandConfig::new()
            .with_workers(0)
            .with_sched_policy(SchedPolicy::Bfs);
        assert_eq!(c.workers, 1, "workers clamp to 1");
        assert_eq!(c.sched_policy, SchedPolicy::Bfs);
        assert_eq!("dfs".parse::<SchedPolicy>().unwrap(), SchedPolicy::Dfs);
        assert_eq!("bfs".parse::<SchedPolicy>().unwrap(), SchedPolicy::Bfs);
        assert!("steepest".parse::<SchedPolicy>().is_err());
        assert_eq!(SchedPolicy::Bfs.as_str(), "bfs");
    }

    #[test]
    fn flight_builders() {
        let d = DemandConfig::default();
        assert!(d.flight, "flight recorder defaults to on");
        let off = DemandConfig::new().without_flight_recorder();
        assert!(!off.flight);
        let sized = DemandConfig::new().with_flight(1024, 16);
        assert!(sized.flight);
        assert_eq!(sized.flight_capacity, 1024);
        assert_eq!(sized.flight_sample, 16);
    }
}
