//! Demand-engine configuration.

/// Configuration for a [`crate::DemandEngine`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DemandConfig {
    /// Per-query work budget (rule firings); `None` = unlimited.
    pub budget: Option<u64>,
    /// Memoize subgoal results across queries (the paper's caching; on by
    /// default). When off, every query starts from scratch — the ablation
    /// baseline for the caching experiment. Also gates an attached
    /// [`crate::SharedMemo`]: a no-caching engine neither consults nor
    /// feeds the shared table.
    pub caching: bool,
    /// Record derivation provenance so
    /// [`crate::DemandEngine::explain_points_to`] can reconstruct why a
    /// fact holds (off by default; costs one map entry per derived fact).
    pub trace: bool,
    /// Merge the goals of discovered copy cycles into one representative
    /// (the paper's cycle-collapsing rule; on by default). Answers are
    /// identical either way — this is purely a work/memory optimization.
    pub collapse_cycles: bool,
    /// Number of newly discovered copy edges between SCC passes. Lower
    /// values collapse cycles sooner at the cost of more frequent passes.
    pub collapse_threshold: u32,
    /// Record structured engine events into the deduction flight recorder
    /// (on by default — the ring is bounded and rule firings are sampled,
    /// so the cost is a few percent at worst; see `docs/OBSERVABILITY.md`).
    /// Recording never feeds back into deduction, so answers are
    /// bit-identical either way.
    pub flight: bool,
    /// Flight-recorder ring capacity in events (rounded up to a power of
    /// two, minimum 8).
    pub flight_capacity: usize,
    /// Flight-recorder fire-sampling stride: every `N`-th rule firing is
    /// recorded (structural events are always recorded; clamped to ≥ 1).
    pub flight_sample: u32,
}

impl Default for DemandConfig {
    fn default() -> Self {
        DemandConfig {
            budget: None,
            caching: true,
            trace: false,
            collapse_cycles: true,
            collapse_threshold: 32,
            flight: true,
            flight_capacity: 8192,
            flight_sample: 64,
        }
    }
}

impl DemandConfig {
    /// Unlimited budget, caching on.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the per-query budget.
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Disables cross-query memoization.
    pub fn without_caching(mut self) -> Self {
        self.caching = false;
        self
    }

    /// Enables derivation tracing.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Disables online cycle collapsing (the ablation baseline for the
    /// T6 experiment).
    pub fn without_cycle_collapsing(mut self) -> Self {
        self.collapse_cycles = false;
        self
    }

    /// Sets the copy-edge count between SCC passes (clamped to ≥ 1).
    pub fn with_collapse_threshold(mut self, threshold: u32) -> Self {
        self.collapse_threshold = threshold.max(1);
        self
    }

    /// Disables the deduction flight recorder (the overhead-measurement
    /// baseline for the T9 experiment).
    pub fn without_flight_recorder(mut self) -> Self {
        self.flight = false;
        self
    }

    /// Sets the flight-recorder ring capacity and fire-sampling stride.
    pub fn with_flight(mut self, capacity: usize, sample: u32) -> Self {
        self.flight = true;
        self.flight_capacity = capacity;
        self.flight_sample = sample;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods() {
        let c = DemandConfig::new().with_budget(100).without_caching();
        assert_eq!(c.budget, Some(100));
        assert!(!c.caching);
        let d = DemandConfig::default();
        assert_eq!(d.budget, None);
        assert!(d.caching);
        assert!(d.collapse_cycles, "collapsing defaults to on");
    }

    #[test]
    fn collapse_builders() {
        let c = DemandConfig::new().without_cycle_collapsing();
        assert!(!c.collapse_cycles);
        let t = DemandConfig::new().with_collapse_threshold(0);
        assert_eq!(t.collapse_threshold, 1, "threshold clamps to 1");
    }

    #[test]
    fn flight_builders() {
        let d = DemandConfig::default();
        assert!(d.flight, "flight recorder defaults to on");
        let off = DemandConfig::new().without_flight_recorder();
        assert!(!off.flight);
        let sized = DemandConfig::new().with_flight(1024, 16);
        assert!(sized.flight);
        assert_eq!(sized.flight_capacity, 1024);
        assert_eq!(sized.flight_sample, 16);
    }
}
