//! Demand-engine configuration.

/// Configuration for a [`crate::DemandEngine`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DemandConfig {
    /// Per-query work budget (rule firings); `None` = unlimited.
    pub budget: Option<u64>,
    /// Memoize subgoal results across queries (the paper's caching; on by
    /// default). When off, every query starts from scratch — the ablation
    /// baseline for the caching experiment.
    pub caching: bool,
    /// Record derivation provenance so
    /// [`crate::DemandEngine::explain_points_to`] can reconstruct why a
    /// fact holds (off by default; costs one map entry per derived fact).
    pub trace: bool,
}

impl Default for DemandConfig {
    fn default() -> Self {
        DemandConfig {
            budget: None,
            caching: true,
            trace: false,
        }
    }
}

impl DemandConfig {
    /// Unlimited budget, caching on.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the per-query budget.
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Disables cross-query memoization.
    pub fn without_caching(mut self) -> Self {
        self.caching = false;
        self
    }

    /// Enables derivation tracing.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods() {
        let c = DemandConfig::new().with_budget(100).without_caching();
        assert_eq!(c.budget, Some(100));
        assert!(!c.caching);
        let d = DemandConfig::default();
        assert_eq!(d.budget, None);
        assert!(d.caching);
    }
}
