//! Budget ladders: multi-stage query escalation.
//!
//! Interactive clients (the paper's IDE setting) want most queries
//! answered instantly and are willing to spend more only on the few that
//! need it. A [`BudgetLadder`] runs a query through increasing budgets,
//! stopping at the first stage that resolves it; thanks to the engine's
//! resumption semantics, earlier stages' work is never wasted — each stage
//! *continues* the previous one.

use ddpa_constraints::NodeId;

use crate::engine::DemandEngine;
use crate::query::QueryResult;

/// A sequence of per-stage budgets to escalate through.
///
/// # Examples
///
/// ```
/// use ddpa_demand::{BudgetLadder, DemandConfig, DemandEngine};
///
/// let cp = ddpa_constraints::parse_constraints("p = &o\nq = p\nr = q\n")?;
/// let r = cp.node_ids().find(|&n| cp.display_node(n) == "r").expect("r exists");
/// let mut engine = DemandEngine::new(&cp, DemandConfig::default());
/// let ladder = BudgetLadder::new(vec![2, 20, 200]);
/// let (result, stage) = ladder.points_to(&mut engine, r);
/// assert!(result.complete);
/// assert!(stage < 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BudgetLadder {
    stages: Vec<u64>,
}

impl BudgetLadder {
    /// A ladder with the given per-stage budgets.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty.
    pub fn new(stages: Vec<u64>) -> Self {
        assert!(!stages.is_empty(), "a ladder needs at least one stage");
        BudgetLadder { stages }
    }

    /// The default interactive ladder: 100 → 10k → 1M firings.
    pub fn interactive() -> Self {
        BudgetLadder::new(vec![100, 10_000, 1_000_000])
    }

    /// The per-stage budgets.
    pub fn stages(&self) -> &[u64] {
        &self.stages
    }

    /// Runs `pts(node)` through the ladder on `engine`.
    ///
    /// Returns the final result and the index of the stage that produced
    /// it (== `stages().len() - 1` if even the last stage failed). The
    /// result's `work` is the total across all stages run. The engine's
    /// own per-query budget is restored afterwards.
    pub fn points_to(&self, engine: &mut DemandEngine<'_>, node: NodeId) -> (QueryResult, usize) {
        let saved = engine.config().clone();
        let mut total_work = 0;
        let mut last = None;
        let mut stage_used = self.stages.len() - 1;
        for (i, &budget) in self.stages.iter().enumerate() {
            engine.set_budget(Some(budget));
            let r = engine.points_to(node);
            total_work += r.work;
            let complete = r.complete;
            last = Some(r);
            if complete {
                stage_used = i;
                break;
            }
        }
        engine.set_config(saved);
        let mut result = last.expect("at least one stage ran");
        result.work = total_work;
        (result, stage_used)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DemandConfig;
    use ddpa_constraints::ConstraintBuilder;

    fn chain(n: usize) -> ddpa_constraints::ConstraintProgram {
        let mut b = ConstraintBuilder::new();
        let o = b.var("obj");
        let first = b.var("v0");
        b.addr_of(first, o);
        let mut prev = first;
        for i in 1..n {
            let v = b.var(&format!("v{i}"));
            b.copy(v, prev);
            prev = v;
        }
        b.build()
    }

    fn last_node(cp: &ddpa_constraints::ConstraintProgram, n: usize) -> NodeId {
        let name = format!("v{}", n - 1);
        cp.node_ids()
            .find(|&x| cp.display_node(x) == name)
            .expect("last chain node")
    }

    #[test]
    fn cheap_query_resolves_at_first_stage() {
        let cp = chain(3);
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        let (r, stage) = BudgetLadder::interactive().points_to(&mut engine, last_node(&cp, 3));
        assert!(r.complete);
        assert_eq!(stage, 0);
    }

    #[test]
    fn expensive_query_escalates() {
        let cp = chain(500);
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        let ladder = BudgetLadder::new(vec![10, 100, 100_000]);
        let (r, stage) = ladder.points_to(&mut engine, last_node(&cp, 500));
        assert!(r.complete);
        assert!(stage > 0, "10 firings cannot resolve a 500-copy chain");
        assert!(r.work >= 500);
    }

    #[test]
    fn failed_ladder_reports_last_stage() {
        let cp = chain(500);
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        let ladder = BudgetLadder::new(vec![1, 2, 3]);
        let (r, stage) = ladder.points_to(&mut engine, last_node(&cp, 500));
        assert!(!r.complete);
        assert_eq!(stage, 2);
    }

    #[test]
    fn restores_engine_config() {
        let cp = chain(3);
        let config = DemandConfig::default().with_budget(12345);
        let mut engine = DemandEngine::new(&cp, config.clone());
        let _ = BudgetLadder::interactive().points_to(&mut engine, last_node(&cp, 3));
        assert_eq!(engine.config(), &config);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_ladder_panics() {
        let _ = BudgetLadder::new(vec![]);
    }
}
