//! Cumulative engine statistics.

/// Counters accumulated by a [`crate::DemandEngine`] across queries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Queries issued.
    pub queries: u64,
    /// Queries fully resolved within budget.
    pub complete_queries: u64,
    /// Queries answered entirely from the memo table (zero work).
    pub cache_hits: u64,
    /// Total rule firings.
    pub fires: u64,
    /// Subgoals activated.
    pub goals_activated: u64,
    /// Total work units charged (fires + goal initializations).
    pub work: u64,
}

impl EngineStats {
    /// Fraction of queries fully resolved (1.0 when no queries were run).
    pub fn resolution_rate(&self) -> f64 {
        if self.queries == 0 {
            1.0
        } else {
            self.complete_queries as f64 / self.queries as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_rate_handles_zero() {
        assert_eq!(EngineStats::default().resolution_rate(), 1.0);
        let s = EngineStats { queries: 4, complete_queries: 3, ..Default::default() };
        assert!((s.resolution_rate() - 0.75).abs() < 1e-12);
    }
}
