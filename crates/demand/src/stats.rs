//! Cumulative engine statistics.
//!
//! [`EngineStats`] is a point-in-time snapshot of the engine's counters,
//! which live in a [`ddpa_obs::Registry`] (see [`crate::DemandEngine::obs`]).
//! The struct keeps its original field-access API so existing callers and
//! tests work unchanged.

/// Counters accumulated by a [`crate::DemandEngine`] across queries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Queries issued.
    pub queries: u64,
    /// Queries fully resolved within budget.
    pub complete_queries: u64,
    /// Queries answered entirely from the memo table (zero work).
    pub cache_hits: u64,
    /// Total rule firings.
    pub fires: u64,
    /// Subgoals activated.
    pub goals_activated: u64,
    /// Total work units charged (fires + goal initializations).
    pub work: u64,
    /// SCC passes run over the discovered copy graph.
    pub cycle_runs: u64,
    /// Copy cycles collapsed into a representative goal.
    pub cycles_collapsed: u64,
    /// Goals merged away into a representative (excludes the
    /// representatives themselves).
    pub merged_goals: u64,
    /// Goals installed from an attached [`crate::SharedMemo`] (each one
    /// a whole subtree of rule firings saved).
    pub share_hits: u64,
    /// Shared-table lookups that found no entry.
    pub share_misses: u64,
    /// Completed goals this engine published into the shared table.
    pub share_publishes: u64,
    /// Stale (old-generation) shared entries lazily evicted by this
    /// engine's lookups and publishes.
    pub share_evictions: u64,
    /// Events recorded into the deduction flight recorder
    /// (see [`crate::DemandEngine::flight_recorder`]).
    pub flight_events: u64,
    /// Scheduler frames parked awaiting new facts (parallel queries).
    pub sched_parked: u64,
    /// Scheduler steps of a previously stepped frame (parallel queries).
    pub sched_resumed: u64,
    /// Frames stolen between scheduler workers (parallel queries).
    pub sched_steals: u64,
    /// Parked frames rescheduled by new facts/watchers (parallel queries).
    pub sched_wakeups: u64,
}

impl EngineStats {
    /// Fraction of queries fully resolved, or `None` when no queries have
    /// been run — callers must not mistake "no data" for "all resolved".
    pub fn resolution_rate(&self) -> Option<f64> {
        if self.queries == 0 {
            None
        } else {
            Some(self.complete_queries as f64 / self.queries as f64)
        }
    }

    /// The fieldwise difference `self − before`, saturating at zero.
    ///
    /// Counters are monotone, so with snapshots taken around a request
    /// this is exactly the work that request caused (plus any concurrent
    /// engine activity sharing the registry). Saturation guards against
    /// snapshots taken out of order.
    pub fn delta_since(&self, before: &EngineStats) -> EngineStats {
        EngineStats {
            queries: self.queries.saturating_sub(before.queries),
            complete_queries: self
                .complete_queries
                .saturating_sub(before.complete_queries),
            cache_hits: self.cache_hits.saturating_sub(before.cache_hits),
            fires: self.fires.saturating_sub(before.fires),
            goals_activated: self.goals_activated.saturating_sub(before.goals_activated),
            work: self.work.saturating_sub(before.work),
            cycle_runs: self.cycle_runs.saturating_sub(before.cycle_runs),
            cycles_collapsed: self
                .cycles_collapsed
                .saturating_sub(before.cycles_collapsed),
            merged_goals: self.merged_goals.saturating_sub(before.merged_goals),
            share_hits: self.share_hits.saturating_sub(before.share_hits),
            share_misses: self.share_misses.saturating_sub(before.share_misses),
            share_publishes: self.share_publishes.saturating_sub(before.share_publishes),
            share_evictions: self.share_evictions.saturating_sub(before.share_evictions),
            flight_events: self.flight_events.saturating_sub(before.flight_events),
            sched_parked: self.sched_parked.saturating_sub(before.sched_parked),
            sched_resumed: self.sched_resumed.saturating_sub(before.sched_resumed),
            sched_steals: self.sched_steals.saturating_sub(before.sched_steals),
            sched_wakeups: self.sched_wakeups.saturating_sub(before.sched_wakeups),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_rate_distinguishes_no_data() {
        assert_eq!(EngineStats::default().resolution_rate(), None);
        let s = EngineStats {
            queries: 4,
            complete_queries: 3,
            ..Default::default()
        };
        let rate = s.resolution_rate().expect("has queries");
        assert!((rate - 0.75).abs() < 1e-12);
    }

    #[test]
    fn delta_since_subtracts_fieldwise_and_saturates() {
        let before = EngineStats {
            queries: 2,
            fires: 100,
            work: 150,
            share_hits: 5,
            ..Default::default()
        };
        let after = EngineStats {
            queries: 3,
            fires: 140,
            work: 210,
            share_hits: 5,
            ..Default::default()
        };
        let d = after.delta_since(&before);
        assert_eq!(d.queries, 1);
        assert_eq!(d.fires, 40);
        assert_eq!(d.work, 60);
        assert_eq!(d.share_hits, 0);
        // Out-of-order snapshots saturate to zero rather than wrapping.
        let backwards = before.delta_since(&after);
        assert_eq!(backwards.fires, 0);
        assert_eq!(backwards.queries, 0);
    }
}
