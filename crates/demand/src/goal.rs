//! Subgoals and rule-instance watchers — the tabled deduction state.
//!
//! A query activates a [`Goal`]; its deduction rules are installed as
//! [`Watcher`]s subscribed to other goals. Each watcher keeps a *cursor*
//! into its source goal's element list, so delivery is incremental,
//! budget-abortable, and resumable: a watcher installed later simply
//! starts its cursor at zero and replays the memoized elements.

use std::collections::HashSet;

use ddpa_support::HybridSet;

use ddpa_constraints::NodeId;

/// A tabled subgoal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Goal {
    /// `pts(v)` — the set of locations `v` may point to.
    Pts(NodeId),
    /// `ptb(o)` — the set of locations that may point to `o` (the inverse
    /// relation; needed to find the stores that may write a location).
    Ptb(NodeId),
}

impl Goal {
    /// The node this goal is about.
    pub fn node(self) -> NodeId {
        match self {
            Goal::Pts(n) | Goal::Ptb(n) => n,
        }
    }
}

/// A rule instance subscribed to a goal; fired once per (watcher, element).
///
/// Each variant documents the deduction rule it implements, writing `Δ` for
/// the newly delivered element of the subscribed goal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Watcher {
    /// On `pts(src)`: `dst = src  ∧  Δ ∈ pts(src)  ⇒  Δ ∈ pts(dst)`.
    /// Also used as the materialized edge of resolved loads, stores and
    /// calls.
    CopyTo {
        /// Destination `pts` goal.
        dst: NodeId,
    },
    /// On `pts(p)` for a load `dst = *p`:
    /// `Δ ∈ pts(p) ⇒ pts(dst) ⊇ pts(Δ)` — installs `CopyTo{dst}` on
    /// `pts(Δ)`.
    LoadDst {
        /// The load's destination.
        dst: NodeId,
    },
    /// On `ptb(obj)` (for the `pts(obj)` goal of an address-taken `obj`):
    /// `Δ ∈ ptb(obj) ∧ *Δ = src ⇒ pts(obj) ⊇ pts(src)` — installs
    /// `CopyTo{obj}` on `pts(src)` for every store through `Δ`.
    StoreInto {
        /// The queried object.
        obj: NodeId,
    },
    /// On `pts(fp)` of an indirect call site, for a formal-parameter goal:
    /// `Δ = @fn ⇒ pts(formal) ⊇ pts(arg)`.
    CallFormal {
        /// The function object that must appear for the edge to be real.
        func_obj: NodeId,
        /// The callee's formal being queried.
        formal: NodeId,
        /// The call site's actual argument at the matching position.
        arg: NodeId,
    },
    /// On `pts(fp)` of an indirect call site, for a return-value goal:
    /// `Δ = @fn f ⇒ pts(dst) ⊇ pts(f::ret)`.
    CallRet {
        /// The call's result destination.
        dst: NodeId,
    },
    /// On `ptb(obj)` itself: forward-propagates each new pointer `Δ`
    /// through copies, stores, loads and calls (rules a–f in
    /// [`crate::engine`]).
    FwdProp {
        /// The object whose `ptb` goal this is.
        obj: NodeId,
    },
    /// On `pts(p)` for a store `*p = w` with `w ∈ ptb(obj)`:
    /// `Δ ∈ pts(p) ⇒ Δ ∈ ptb(obj)`.
    StoreSpread {
        /// The object being tracked.
        obj: NodeId,
    },
    /// On `ptb(z)` for an object `z ∈ ptb(obj)`:
    /// `Δ ∈ ptb(z) ∧ d = *Δ ⇒ d ∈ ptb(obj)`.
    LoadSpread {
        /// The object being tracked.
        obj: NodeId,
    },
    /// On `pts(fp)` of an indirect call site whose argument at `pos` is in
    /// `ptb(obj)`: `Δ = @fn f ⇒ f::arg_pos ∈ ptb(obj)`.
    ArgSpread {
        /// The object being tracked.
        obj: NodeId,
        /// Argument position.
        pos: u32,
    },
    /// On `pts(fp)` of an indirect call site, when `f::ret ∈ ptb(obj)`:
    /// `Δ = func_obj ⇒ ret_dst ∈ ptb(obj)`.
    RetSpread {
        /// The object being tracked.
        obj: NodeId,
        /// The function object whose return is in `ptb(obj)`.
        func_obj: NodeId,
        /// The call site's result destination.
        ret_dst: NodeId,
    },
    /// On `pts(base)` for `dst = &base->field` (field-sensitive
    /// extension): `Δ ∈ pts(base), Δ has field ⇒ Δ.field ∈ pts(dst)`.
    FieldOf {
        /// The pointer receiving the field address.
        dst: NodeId,
        /// The field index.
        field: u32,
    },
    /// On `ptb(parent)` for a field-node goal `ptb(parent.field)`:
    /// `Δ ∈ ptb(parent), dst = &Δ->field ⇒ dst ∈ ptb(parent.field)`.
    FieldPtb {
        /// The field node being tracked.
        obj: NodeId,
        /// The field index.
        field: u32,
    },
}

impl Watcher {
    /// Metric-friendly names of the variants, indexed by [`Watcher::kind_index`].
    pub const KIND_NAMES: [&'static str; 12] = [
        "copy_to",
        "load_dst",
        "store_into",
        "call_formal",
        "call_ret",
        "fwd_prop",
        "store_spread",
        "load_spread",
        "arg_spread",
        "ret_spread",
        "field_of",
        "field_ptb",
    ];

    /// The variant's index into [`Watcher::KIND_NAMES`] (declaration order).
    pub fn kind_index(&self) -> usize {
        match self {
            Watcher::CopyTo { .. } => 0,
            Watcher::LoadDst { .. } => 1,
            Watcher::StoreInto { .. } => 2,
            Watcher::CallFormal { .. } => 3,
            Watcher::CallRet { .. } => 4,
            Watcher::FwdProp { .. } => 5,
            Watcher::StoreSpread { .. } => 6,
            Watcher::LoadSpread { .. } => 7,
            Watcher::ArgSpread { .. } => 8,
            Watcher::RetSpread { .. } => 9,
            Watcher::FieldOf { .. } => 10,
            Watcher::FieldPtb { .. } => 11,
        }
    }

    /// The variant's metric-friendly name.
    pub fn kind_name(&self) -> &'static str {
        Self::KIND_NAMES[self.kind_index()]
    }

    /// The goal this rule instance delivers facts *into* — the consumer
    /// side of the dependency edge `producer → consumer` the watcher
    /// realizes. The producer is the goal the watcher is installed on,
    /// so a goal's watcher list *is* its outgoing dependency edges; the
    /// introspection layer ([`crate::inspect`]) walks exactly this
    /// mapping to reconstruct the goal graph post-hoc.
    pub fn consumer(&self) -> Goal {
        match *self {
            Watcher::CopyTo { dst } => Goal::Pts(dst),
            Watcher::LoadDst { dst } => Goal::Pts(dst),
            Watcher::StoreInto { obj } => Goal::Pts(obj),
            Watcher::CallFormal { formal, .. } => Goal::Pts(formal),
            Watcher::CallRet { dst } => Goal::Pts(dst),
            Watcher::FwdProp { obj } => Goal::Ptb(obj),
            Watcher::StoreSpread { obj } => Goal::Ptb(obj),
            Watcher::LoadSpread { obj } => Goal::Ptb(obj),
            Watcher::ArgSpread { obj, .. } => Goal::Ptb(obj),
            Watcher::RetSpread { obj, .. } => Goal::Ptb(obj),
            Watcher::FieldOf { dst, .. } => Goal::Pts(dst),
            Watcher::FieldPtb { obj, .. } => Goal::Ptb(obj),
        }
    }
}

/// The table entry for one goal.
#[derive(Debug)]
pub struct GoalState {
    /// Membership set (query answers read this).
    pub members: HybridSet,
    /// Elements in insertion order — watchers index into this.
    pub elems: Vec<u32>,
    /// Installed rule instances.
    pub watchers: Vec<Watcher>,
    /// `cursors[i]` = how many of `elems` watcher `i` has consumed.
    pub cursors: Vec<u32>,
    /// Deduplicates watcher installation.
    pub registered: HashSet<Watcher>,
    /// Static rules not yet installed.
    pub needs_init: bool,
    /// All rules installed and every fact fully propagated — the memoized
    /// result is final and reusable.
    pub complete: bool,
    /// Currently queued for processing.
    pub on_list: bool,
    /// This state was merged into a cycle representative and is now an
    /// empty shell; all lookups route to the representative via the
    /// engine's union-find (see [`crate::cycles::CopyGraph`]).
    pub merged: bool,
    /// Keys of goals merged *into* this state. Provenance entries recorded
    /// before the merge live under these keys, so explanation lookup tries
    /// them after the canonical key.
    pub aliases: Vec<Goal>,
    /// Support set: nodes whose program rows this goal's fixpoint read.
    /// An edit that changes any of these rows dirties the goal; an edit
    /// that changes none of them (and no dirty producer, see `deps`)
    /// leaves the memoized result valid for the new program.
    pub support: HybridSet,
    /// Producer goals this goal consumed facts from (the reverse of the
    /// watcher edges): transitive dirtying follows these edges forward,
    /// from a dirty producer to every consumer.
    pub deps: Vec<Goal>,
    /// The fixpoint scanned the global indirect-callsite list ([PARAM] /
    /// fwd-prop rule (e)), so any edit adding an indirect call dirties it.
    pub reads_indirect: bool,
}

impl GoalState {
    /// A freshly activated, uninitialized goal.
    pub fn new() -> Self {
        GoalState {
            members: HybridSet::new(),
            elems: Vec::new(),
            watchers: Vec::new(),
            cursors: Vec::new(),
            registered: HashSet::new(),
            needs_init: true,
            complete: false,
            on_list: false,
            merged: false,
            aliases: Vec::new(),
            support: HybridSet::new(),
            deps: Vec::new(),
            reads_indirect: false,
        }
    }

    /// Records a producer goal this state consumed facts from.
    pub fn add_dep(&mut self, producer: Goal) {
        if !self.deps.contains(&producer) {
            self.deps.push(producer);
        }
    }

    /// Adds `value`; returns `true` if new.
    pub fn add(&mut self, value: u32) -> bool {
        if self.members.insert(value) {
            self.elems.push(value);
            true
        } else {
            false
        }
    }

    /// Returns `true` if every watcher has consumed every element and the
    /// static rules are installed.
    pub fn quiescent(&self) -> bool {
        !self.needs_init && self.cursors.iter().all(|&c| c as usize == self.elems.len())
    }
}

impl Default for GoalState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_deduplicates_and_orders() {
        let mut g = GoalState::new();
        assert!(g.add(5));
        assert!(g.add(3));
        assert!(!g.add(5));
        assert_eq!(g.elems, vec![5, 3]);
        assert_eq!(g.members.len(), 2);
    }

    #[test]
    fn quiescence_tracks_cursors() {
        let mut g = GoalState::new();
        g.needs_init = false;
        assert!(g.quiescent());
        g.add(1);
        g.watchers.push(Watcher::CopyTo {
            dst: NodeId::from_u32(0),
        });
        g.cursors.push(0);
        assert!(!g.quiescent());
        g.cursors[0] = 1;
        assert!(g.quiescent());
    }

    #[test]
    fn goal_node_accessor() {
        let n = NodeId::from_u32(9);
        assert_eq!(Goal::Pts(n).node(), n);
        assert_eq!(Goal::Ptb(n).node(), n);
    }
}
