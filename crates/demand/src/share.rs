//! A shared, concurrent subgoal cache — concurrent tabling.
//!
//! The sequential engine memoizes completed goals in a private table, so
//! N parallel workers redo the subgoals a single cached engine computes
//! once (the caching/parallelism trade-off recorded in `EXPERIMENTS.md`
//! §A2). [`SharedMemo`] closes that hole: a sharded, mutex-protected map
//! from [`Goal`] to its published fixpoint that many engines consult and
//! feed concurrently. Attach one table to several engines via
//! [`DemandEngine::with_shared_memo`](crate::DemandEngine::with_shared_memo);
//! each engine then
//!
//! * *consults* the table when it activates a goal it has not tabled —
//!   a hit installs the published member set as a completed local goal,
//!   costing zero rule firings for that entire subtree; and
//! * *publishes* every newly completed goal after a successful drain —
//!   at global fixpoint a tabled set is the least-model answer, so any
//!   engine over the same program may reuse it verbatim.
//!
//! # Generations
//!
//! Entries are stamped with the table's *generation*, an atomic counter
//! bumped by [`DemandEngine::invalidate`](crate::DemandEngine::invalidate)
//! / [`reload`](crate::DemandEngine::reload) when the underlying program
//! changes. Both [`SharedMemo::lookup`] and [`SharedMemo::publish`] take
//! the generation the caller's state was computed under and refuse to
//! cross generations, so a stale entry can never be served and a
//! late-publishing engine can never pollute the new generation. Stale
//! entries are evicted lazily: the first operation to touch a shard after
//! a bump sweeps that shard's dead entries.
//!
//! # Determinism
//!
//! Published member sets are sorted snapshots ([`HybridSet`]
//! (ddpa_support::HybridSet) iterates in ascending order), and a goal's
//! fixpoint under a fixed program is unique — whichever engine publishes
//! first, every reader installs the same bits, so answers are
//! bit-identical to a private-memo engine and to the exhaustive solver.
//!
//! Everything here is `std`-only, matching the repo's zero-dependency
//! rule: 64 shards of `Mutex<HashMap>` rather than a lock-free map.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use ddpa_constraints::ProgramDiff;

use crate::goal::Goal;
use crate::trace::Origin;

/// Number of independently locked shards; a power of two so the shard
/// pick is a mask. 64 keeps contention negligible for any plausible
/// worker count while costing ~3 KiB of empty maps.
const SHARDS: usize = 64;

/// A completed goal's published fixpoint.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CompletedGoal {
    /// Member node ids, sorted ascending — the canonical snapshot order.
    pub elems: Vec<u32>,
    /// `(member, first derivation)` pairs; populated only when the
    /// publishing engine ran with tracing on, empty otherwise.
    pub provenance: Vec<(u32, Origin)>,
    /// Support set: node ids whose program rows this fixpoint read,
    /// sorted ascending. An empty support on a published entry means
    /// "unknown provenance" and is treated as always-dirty by
    /// [`dirty_closure`](crate::dirty_closure).
    pub support: Vec<u32>,
    /// Producer goals this fixpoint consumed facts from, in canonical
    /// order (`Pts` before `Ptb`, then by node id). Transitive dirtying
    /// follows these edges from producer to consumer.
    pub deps: Vec<Goal>,
    /// Whether the fixpoint scanned the global indirect-callsite list.
    pub reads_indirect: bool,
}

#[derive(Debug)]
struct Entry {
    generation: u64,
    result: CompletedGoal,
}

#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<Goal, Entry>,
    /// Generation this shard last swept stale entries at. Eviction is
    /// lazy: the first lookup/publish to observe a newer table
    /// generation retains only current-generation entries.
    swept_at: u64,
}

impl Shard {
    /// Drops entries from generations older than `current`; returns how
    /// many were evicted.
    fn sweep(&mut self, current: u64) -> u64 {
        if self.swept_at == current {
            return 0;
        }
        let before = self.entries.len();
        self.entries.retain(|_, e| e.generation == current);
        self.swept_at = current;
        (before - self.entries.len()) as u64
    }
}

/// A sharded, generation-stamped cache of completed goals shared across
/// engines (and threads).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use ddpa_demand::{DemandConfig, DemandEngine, SharedMemo};
///
/// let cp = ddpa_constraints::parse_constraints("p = &g\nq = p\n")?;
/// let q = cp.node_ids().find(|&n| cp.display_node(n) == "q").expect("q exists");
/// let shared = Arc::new(SharedMemo::new());
///
/// let mut warm = DemandEngine::new(&cp, DemandConfig::default())
///     .with_shared_memo(Arc::clone(&shared));
/// let full = warm.points_to(q); // computes, then publishes
///
/// let mut cold = DemandEngine::new(&cp, DemandConfig::default())
///     .with_shared_memo(Arc::clone(&shared));
/// let reused = cold.points_to(q); // served from the shared table
/// assert_eq!(full.pts, reused.pts);
/// assert_eq!(reused.work, 0); // zero rule firings
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct SharedMemo {
    shards: Vec<Mutex<Shard>>,
    generation: AtomicU64,
}

impl Default for SharedMemo {
    fn default() -> Self {
        SharedMemo::new()
    }
}

impl SharedMemo {
    /// Creates an empty table at generation 0.
    pub fn new() -> Self {
        SharedMemo {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            generation: AtomicU64::new(0),
        }
    }

    /// The current generation.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Bumps the generation, logically invalidating every entry, and
    /// returns the new value. Physical eviction happens lazily per shard.
    pub fn bump_generation(&self) -> u64 {
        self.generation.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Looks up `goal` among entries of generation `generation`.
    ///
    /// Returns `(hit, evicted)`: the entry if one exists *and*
    /// `generation` is still current (a caller whose state predates a
    /// bump must recompute, never reuse), plus the number of stale
    /// entries the touched shard lazily evicted.
    pub fn lookup(&self, generation: u64, goal: Goal) -> (Option<CompletedGoal>, u64) {
        let current = self.generation();
        let mut shard = self.shard(goal);
        let evicted = shard.sweep(current);
        if generation != current {
            return (None, evicted);
        }
        let hit = shard
            .entries
            .get(&goal)
            .filter(|e| e.generation == generation)
            .map(|e| e.result.clone());
        (hit, evicted)
    }

    /// Publishes `result` as the fixpoint of `goal`, computed under
    /// `generation`.
    ///
    /// Returns `(published, evicted)`: `published` is `false` when the
    /// table has moved on to a newer generation (the stale result is
    /// discarded rather than allowed to pollute the new one) or when
    /// another engine already published this goal (first writer wins —
    /// fixpoints are unique, so the loser's copy is redundant).
    pub fn publish(&self, generation: u64, goal: Goal, result: CompletedGoal) -> (bool, u64) {
        let current = self.generation();
        let mut shard = self.shard(goal);
        let evicted = shard.sweep(current);
        if generation != current {
            return (false, evicted);
        }
        let mut inserted = false;
        shard.entries.entry(goal).or_insert_with(|| {
            inserted = true;
            Entry { generation, result }
        });
        (inserted, evicted)
    }

    /// Removes exactly the `dirty` goals from the *current* generation —
    /// per-entry dirtying for incremental edits, in contrast to
    /// [`bump_generation`](Self::bump_generation), which logically evicts
    /// everything. Also eagerly sweeps stale generations from every shard
    /// so dirtied entries stop accumulating lazily.
    ///
    /// Returns `(removed, compacted)`: current-generation entries dropped
    /// because they were dirty, and stale-generation entries swept.
    pub fn invalidate_entries(&self, dirty: &HashSet<Goal>) -> (u64, u64) {
        let current = self.generation();
        let mut removed = 0u64;
        let mut compacted = 0u64;
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            compacted += shard.sweep(current);
            let before = shard.entries.len();
            shard.entries.retain(|g, _| !dirty.contains(g));
            removed += (before - shard.entries.len()) as u64;
        }
        (removed, compacted)
    }

    /// Eagerly sweeps every shard, dropping all entries from generations
    /// older than the current one; returns how many were evicted.
    ///
    /// Normally eviction is lazy (the first touch of a shard after a
    /// [`bump_generation`](Self::bump_generation) sweeps it), which is
    /// fine for serving but wrong for persistence: a snapshot taken from
    /// a half-swept table would serialize dead generations.
    /// [`export_completed`](Self::export_completed) calls this first.
    pub fn compact(&self) -> u64 {
        let current = self.generation();
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).sweep(current))
            .sum()
    }

    /// Exports every current-generation fixpoint as a deterministically
    /// sorted list of `(goal, result)` pairs.
    ///
    /// Compacts first, so the export never contains stale generations.
    /// The order is canonical (all `Pts` goals by node id, then all
    /// `Ptb`), making exports byte-stable for snapshotting regardless of
    /// which worker published which entry.
    pub fn export_completed(&self) -> Vec<(Goal, CompletedGoal)> {
        self.compact();
        let mut out: Vec<(Goal, CompletedGoal)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            out.extend(
                shard
                    .entries
                    .iter()
                    .map(|(goal, entry)| (*goal, entry.result.clone())),
            );
        }
        out.sort_by_key(|&(goal, _)| match goal {
            Goal::Pts(n) => (0u8, n.as_u32()),
            Goal::Ptb(n) => (1u8, n.as_u32()),
        });
        out
    }

    /// Bulk-installs fixpoints at the table's *current* generation;
    /// returns how many were newly inserted.
    ///
    /// This is the restore half of [`export_completed`](Self::export_completed).
    /// First-writer-wins semantics are preserved: entries already
    /// published (e.g. by a worker that raced the restore) are left
    /// untouched — fixpoints under a fixed program are unique, so the
    /// copies agree. The caller is responsible for checking that the
    /// imported entries were computed over the *same program* (snapshot
    /// restore verifies the program hash before calling this).
    pub fn import<I>(&self, entries: I) -> usize
    where
        I: IntoIterator<Item = (Goal, CompletedGoal)>,
    {
        let generation = self.generation();
        let mut installed = 0;
        for (goal, result) in entries {
            if self.publish(generation, goal, result).0 {
                installed += 1;
            }
        }
        installed
    }

    /// Number of entries currently stored (including not-yet-evicted
    /// stale ones).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).entries.len())
            .sum()
    }

    /// Whether the table stores no entries at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Locks and returns the shard responsible for `goal`. A poisoned
    /// shard is recovered (`into_inner`): entries are only ever inserted
    /// or removed whole, so the map is valid after any panic.
    fn shard(&self, goal: Goal) -> std::sync::MutexGuard<'_, Shard> {
        let mut h = DefaultHasher::new();
        goal.hash(&mut h);
        let i = (h.finish() as usize) & (SHARDS - 1);
        self.shards[i].lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Computes the transitively dirtied subset of `entries` under `diff`.
///
/// An entry is *seed-dirty* when its support set intersects the edit's
/// changed nodes, when it scanned the indirect-callsite list and that
/// list changed, when its support is empty (unknown provenance — e.g. an
/// entry published by a pre-support-set engine), or when it depends on a
/// producer goal with no entry of its own. Dirt then propagates forward
/// along the recorded dependency edges, dirty producer → consumer, until
/// fixpoint — the demanded-dirtying rule of *Demanded Abstract
/// Interpretation* applied to the goal graph.
///
/// Returns the dirty goal set and the number of dependency edges the
/// propagation traversed.
pub fn dirty_closure(
    entries: &[(Goal, CompletedGoal)],
    diff: &ProgramDiff,
) -> (HashSet<Goal>, u64) {
    let index: HashMap<Goal, usize> = entries
        .iter()
        .enumerate()
        .map(|(i, &(g, _))| (g, i))
        .collect();
    // consumers[i] = entries that consumed facts produced by entry i.
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); entries.len()];
    let mut dirty = vec![false; entries.len()];
    let mut queue: Vec<usize> = Vec::new();
    for (i, (_, cg)) in entries.iter().enumerate() {
        let mut seed = (cg.reads_indirect && diff.indirect_changed)
            || cg.support.is_empty()
            || cg.support.iter().any(|&n| diff.is_changed(n));
        for p in &cg.deps {
            match index.get(p) {
                Some(&pi) if pi != i => consumers[pi].push(i),
                Some(_) => {}
                None => seed = true,
            }
        }
        if seed {
            dirty[i] = true;
            queue.push(i);
        }
    }
    let mut edges = 0u64;
    while let Some(i) = queue.pop() {
        for &c in &consumers[i] {
            edges += 1;
            if !dirty[c] {
                dirty[c] = true;
                queue.push(c);
            }
        }
    }
    let set = entries
        .iter()
        .enumerate()
        .filter(|&(i, _)| dirty[i])
        .map(|(_, &(g, _))| g)
        .collect();
    (set, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddpa_constraints::NodeId;

    fn goal(n: u32) -> Goal {
        Goal::Pts(NodeId::from_u32(n))
    }

    fn entry(elems: &[u32]) -> CompletedGoal {
        CompletedGoal {
            elems: elems.to_vec(),
            ..CompletedGoal::default()
        }
    }

    #[test]
    fn publish_then_lookup_round_trips() {
        let memo = SharedMemo::new();
        let (published, _) = memo.publish(0, goal(1), entry(&[3, 7]));
        assert!(published);
        let (hit, _) = memo.lookup(0, goal(1));
        assert_eq!(hit.expect("hit").elems, vec![3, 7]);
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn first_writer_wins() {
        let memo = SharedMemo::new();
        assert!(memo.publish(0, goal(1), entry(&[3])).0);
        assert!(!memo.publish(0, goal(1), entry(&[3])).0);
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn bump_hides_and_lazily_evicts_stale_entries() {
        let memo = SharedMemo::new();
        for n in 0..100 {
            memo.publish(0, goal(n), entry(&[n]));
        }
        assert_eq!(memo.len(), 100);
        assert_eq!(memo.bump_generation(), 1);
        // Old-generation reads miss, whichever generation they ask for.
        assert!(memo.lookup(0, goal(5)).0.is_none());
        assert!(memo.lookup(1, goal(6)).0.is_none());
        // Each touched shard swept its stale entries exactly once.
        let (_, evicted_now) = memo.lookup(1, goal(5));
        assert_eq!(evicted_now, 0, "second touch of a swept shard is free");
        // Publishing at the new generation works; at the old one it is
        // refused.
        assert!(memo.publish(1, goal(5), entry(&[9])).0);
        assert!(!memo.publish(0, goal(6), entry(&[9])).0);
        assert_eq!(memo.lookup(1, goal(5)).0.expect("hit").elems, vec![9]);
    }

    #[test]
    fn eviction_counts_sum_to_the_stale_population() {
        let memo = SharedMemo::new();
        for n in 0..256 {
            memo.publish(0, goal(n), entry(&[n]));
        }
        memo.bump_generation();
        // First touch of each shard sweeps it and reports its stale
        // count; touching every goal therefore accounts for all 256.
        let evicted: u64 = (0..256).map(|n| memo.lookup(1, goal(n)).1).sum();
        assert_eq!(evicted, 256);
        assert_eq!(memo.len(), 0);
        let resweep: u64 = (0..256).map(|n| memo.lookup(1, goal(n)).1).sum();
        assert_eq!(resweep, 0);
    }

    #[test]
    fn compact_reports_every_stale_entry_exactly_once() {
        let memo = SharedMemo::new();
        for n in 0..256 {
            memo.publish(0, goal(n), entry(&[n]));
        }
        // Nothing is stale yet, so compaction is a no-op.
        assert_eq!(memo.compact(), 0);
        memo.bump_generation();
        // One lookup lazily sweeps a single shard; compact must account
        // for everything else and must not double-count that shard.
        let (_, swept_early) = memo.lookup(1, goal(0));
        assert_eq!(memo.compact() + swept_early, 256);
        assert_eq!(memo.len(), 0);
        assert_eq!(memo.compact(), 0, "second compact finds nothing");
    }

    #[test]
    fn export_is_sorted_skips_stale_and_round_trips_through_import() {
        let memo = SharedMemo::new();
        memo.publish(0, Goal::Ptb(NodeId::from_u32(2)), entry(&[9]));
        memo.publish(0, goal(7), entry(&[1, 4]));
        memo.publish(0, goal(3), entry(&[2]));
        let exported = memo.export_completed();
        let order: Vec<Goal> = exported.iter().map(|&(g, _)| g).collect();
        assert_eq!(
            order,
            vec![goal(3), goal(7), Goal::Ptb(NodeId::from_u32(2))],
            "canonical order: Pts by node, then Ptb"
        );

        // Import into a fresh table: everything lands, answers intact.
        let fresh = SharedMemo::new();
        assert_eq!(fresh.import(exported.clone()), 3);
        assert_eq!(fresh.lookup(0, goal(7)).0.expect("hit").elems, vec![1, 4]);
        // Re-import is first-writer-wins: nothing new.
        assert_eq!(fresh.import(exported), 0);

        // A bump makes the old entries stale; export must not see them.
        memo.bump_generation();
        memo.publish(1, goal(11), entry(&[5]));
        let after = memo.export_completed();
        assert_eq!(after.len(), 1);
        assert_eq!(after[0].0, goal(11));
    }

    #[test]
    fn import_lands_at_the_current_generation() {
        let source = SharedMemo::new();
        source.publish(0, goal(1), entry(&[8]));
        let exported = source.export_completed();

        let target = SharedMemo::new();
        target.bump_generation();
        target.bump_generation();
        assert_eq!(target.import(exported), 1);
        // Visible at the target's own generation, not the source's.
        assert_eq!(target.lookup(2, goal(1)).0.expect("hit").elems, vec![8]);
        assert!(target.lookup(0, goal(1)).0.is_none());
    }

    #[test]
    fn concurrent_publish_and_lookup() {
        use std::sync::Arc;
        let memo = Arc::new(SharedMemo::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let memo = Arc::clone(&memo);
                std::thread::spawn(move || {
                    for n in 0..200u32 {
                        memo.publish(0, goal(n), entry(&[n, n + 1]));
                        if let (Some(hit), _) = memo.lookup(0, goal(n)) {
                            assert_eq!(hit.elems, vec![n, n + 1], "worker {t} read torn entry");
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("worker");
        }
        assert_eq!(memo.len(), 200);
    }
}
