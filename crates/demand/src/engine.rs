//! The demand-driven deduction engine.
//!
//! # The deduction system
//!
//! Two mutually recursive judgments are tabled as [`Goal`]s:
//! `o ∈ pts(v)` (what may `v` point to) and `w ∈ ptb(o)` (what may point
//! to `o`). Writing the four assignment forms as in the paper, the `pts`
//! rules are:
//!
//! ```text
//! [ADDR]   x = &o                       ⊢ o ∈ pts(x)
//! [COPY]   x = s,  o ∈ pts(s)           ⊢ o ∈ pts(x)
//! [LOAD]   x = *p, z ∈ pts(p), o ∈ pts(z)
//!                                       ⊢ o ∈ pts(x)
//! [STORE]  *w = s, w ∈ ptb(x), o ∈ pts(s)
//!                                       ⊢ o ∈ pts(x)
//! [PARAM]  f(..aᵢ..) at cs, cs may call f, o ∈ pts(aᵢ)
//!                                       ⊢ o ∈ pts(formalᵢ(f))
//! [RET]    r = call(cs), cs may call f, o ∈ pts(ret(f))
//!                                       ⊢ o ∈ pts(r)
//! ```
//!
//! and the inverse `ptb` rules ([`Watcher::FwdProp`] a–f):
//!
//! ```text
//! [ADDR⁻¹]  x = &o                      ⊢ x ∈ ptb(o)
//! (a)       d = w,  w ∈ ptb(o)          ⊢ d ∈ ptb(o)
//! (b)       *p = w, w ∈ ptb(o), z ∈ pts(p)
//!                                       ⊢ z ∈ ptb(o)
//! (c)       d = *q, z ∈ ptb(o), q ∈ ptb(z)
//!                                       ⊢ d ∈ ptb(o)
//! (d)       w arg at cs, cs may call f, w ∈ ptb(o)
//!                                       ⊢ formal(f) ∈ ptb(o)
//! (e)       ret(f) ∈ ptb(o), cs may call f, r = call(cs)
//!                                       ⊢ r ∈ ptb(o)
//! ```
//!
//! "`cs` may call `f`" is itself resolved on demand: a direct call site
//! names `f`; an indirect one requires `@fn_f ∈ pts(fp)`, computed
//! recursively — the on-the-fly call graph.
//!
//! # Evaluation strategy
//!
//! Each rule premise becomes a [`Watcher`] subscribed to the goal it reads,
//! with a cursor into that goal's element list. The engine repeatedly pops
//! a goal and advances all its watcher cursors; firing a watcher may add
//! facts or install further subscriptions, but never recurses — the loop is
//! flat, so a budget can abort it *between any two firings* and a later
//! query resumes exactly where it stopped. When the queue drains, every
//! activated goal is at fixpoint and is memoized as complete.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use ddpa_constraints::{CalleeRef, ConstraintProgram, FuncId, NodeId};
use ddpa_obs::{Counter, FlightConfig, FlightEventKind, FlightRecorder, Obs};

use crate::budget::Budget;
use crate::config::DemandConfig;
use crate::cycles::CopyGraph;
use crate::goal::{Goal, GoalState, Watcher};
use crate::query::{AliasResult, CallTargets, QueryResult};
use crate::rules::Deduce;
use crate::sched::{EngineView, Scheduler};
use crate::share::{CompletedGoal, SharedMemo};
use crate::stats::EngineStats;
use crate::trace::{Explanation, Origin, TraceStep};

/// The demand-driven pointer analysis engine.
///
/// Holds the memo table; keep one engine alive across queries to benefit
/// from caching (see [`DemandConfig::caching`]).
///
/// # Examples
///
/// ```
/// use ddpa_demand::{DemandConfig, DemandEngine};
///
/// let cp = ddpa_constraints::parse_constraints("p = &g\nq = p\n")?;
/// let q = cp.node_ids().find(|&n| cp.display_node(n) == "q").expect("q exists");
/// let mut engine = DemandEngine::new(&cp, DemandConfig::default());
/// let result = engine.points_to(q);
/// assert!(result.complete);
/// assert_eq!(result.pts.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct DemandEngine<'p> {
    cp: &'p ConstraintProgram,
    config: DemandConfig,
    pub(crate) goals: Vec<GoalState>,
    pub(crate) keys: Vec<Goal>,
    pub(crate) index: HashMap<Goal, u32>,
    queue: VecDeque<u32>,
    obs: Obs,
    counters: EngineCounters,
    provenance: HashMap<(Goal, u32), Origin>,
    generation: u64,
    /// Copy-graph edges and the goal-merging union-find; every goal-index
    /// lookup routes through [`CopyGraph::find`].
    pub(crate) cycles: CopyGraph,
    /// Cross-engine memo table, when attached
    /// ([`DemandEngine::with_shared_memo`]); ignored while
    /// [`DemandConfig::caching`] is off.
    shared: Option<Arc<SharedMemo>>,
    /// The [`SharedMemo`] generation this engine's tabled state was
    /// computed under; lookups and publishes against any other
    /// generation are refused by the table.
    shared_gen: u64,
    /// Goals already published to (or installed from) the shared table,
    /// so a drain never re-publishes the whole table.
    published: HashSet<Goal>,
    /// The deduction flight recorder, when enabled
    /// ([`DemandConfig::flight`]). Recording is append-only and never
    /// feeds back into deduction, so answers are identical either way.
    pub(crate) flight: Option<Arc<FlightRecorder>>,
    /// Per-goal attribution, parallel to `goals`: how much work and how
    /// many rule firings each goal's processing consumed. Folded into the
    /// representative when a cycle merges. Drives the top-k "hottest
    /// goals" view and the critical-path analyzer ([`crate::inspect`]).
    pub(crate) costs: Vec<GoalCost>,
    /// Whether the most recent query dispatched to the frame scheduler.
    /// Hosts that request parallel execution read this to report a
    /// sequential fallback honestly instead of implying parallelism.
    last_parallel: bool,
}

/// What an incremental edit ([`DemandEngine::reload_incremental`]) did
/// to the memoized state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EditStats {
    /// Completed entries dropped because the edit transitively dirtied
    /// them (or, on the full path, every completed entry).
    pub invalidated: usize,
    /// Completed entries kept warm and re-installed.
    pub retained: usize,
    /// Dependency edges the dirty propagation traversed.
    pub dirty_edges: u64,
    /// `true` when the engine fell back to full invalidation
    /// (incompatible diff or caching off).
    pub full: bool,
}

/// Work/fires attributed to one goal (see [`crate::inspect`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct GoalCost {
    /// Work ticks charged while processing this goal (init + firings).
    pub work: u64,
    /// Rule firings delivered while processing this goal.
    pub fires: u64,
}

/// Pre-resolved counter handles — the hot path never does a name lookup.
#[derive(Debug)]
struct EngineCounters {
    queries: Counter,
    complete_queries: Counter,
    cache_hits: Counter,
    fires: Counter,
    goals_activated: Counter,
    work: Counter,
    cycles_runs: Counter,
    cycles_collapsed: Counter,
    cycles_merged_goals: Counter,
    share_hits: Counter,
    share_misses: Counter,
    share_publishes: Counter,
    share_evictions: Counter,
    flight_events: Counter,
    sched_parked: Counter,
    sched_resumed: Counter,
    sched_steals: Counter,
    sched_wakeups: Counter,
    /// Per-[`Watcher`] variant fire counts, indexed by
    /// [`Watcher::kind_index`].
    fires_by_kind: [Counter; 12],
}

impl EngineCounters {
    fn new(obs: &Obs) -> Self {
        EngineCounters {
            queries: obs.counter("demand.queries"),
            complete_queries: obs.counter("demand.queries.complete"),
            cache_hits: obs.counter("demand.cache_hits"),
            fires: obs.counter("demand.fires"),
            goals_activated: obs.counter("demand.goals_activated"),
            work: obs.counter("demand.work"),
            cycles_runs: obs.counter("demand.cycles.runs"),
            cycles_collapsed: obs.counter("demand.cycles.collapsed"),
            cycles_merged_goals: obs.counter("demand.cycles.merged_goals"),
            share_hits: obs.counter("demand.share.hits"),
            share_misses: obs.counter("demand.share.misses"),
            share_publishes: obs.counter("demand.share.publishes"),
            share_evictions: obs.counter("demand.share.evictions"),
            flight_events: obs.counter("demand.flight.events"),
            sched_parked: obs.counter("demand.sched.parked"),
            sched_resumed: obs.counter("demand.sched.resumed"),
            sched_steals: obs.counter("demand.sched.steals"),
            sched_wakeups: obs.counter("demand.sched.wakeups"),
            fires_by_kind: std::array::from_fn(|i| {
                obs.counter(&format!("demand.fires.{}", Watcher::KIND_NAMES[i]))
            }),
        }
    }
}

impl<'p> DemandEngine<'p> {
    /// Creates an engine over `cp` with a private [`Obs`] (profiling off).
    pub fn new(cp: &'p ConstraintProgram, config: DemandConfig) -> Self {
        DemandEngine::with_obs(cp, config, Obs::new())
    }

    /// Creates an engine publishing metrics and spans into `obs` — share
    /// one [`Obs`] across engines and solvers to aggregate a whole run.
    pub fn with_obs(cp: &'p ConstraintProgram, config: DemandConfig, obs: Obs) -> Self {
        let counters = EngineCounters::new(&obs);
        let cycles = CopyGraph::new(config.collapse_cycles, config.collapse_threshold);
        let flight = config.flight.then(|| {
            Arc::new(FlightRecorder::new(FlightConfig {
                capacity: config.flight_capacity,
                sample: config.flight_sample,
            }))
        });
        DemandEngine {
            cp,
            config,
            goals: Vec::new(),
            keys: Vec::new(),
            index: HashMap::new(),
            queue: VecDeque::new(),
            obs,
            counters,
            provenance: HashMap::new(),
            generation: 0,
            cycles,
            shared: None,
            shared_gen: 0,
            published: HashSet::new(),
            flight,
            costs: Vec::new(),
            last_parallel: false,
        }
    }

    /// Whether the most recent query ran on the frame scheduler
    /// ([`crate::sched`]) rather than the sequential drain. False for
    /// cache hits and for queries the engine pinned to the sequential
    /// path (budgeted, traced, or resuming suspended work).
    pub fn last_query_parallel(&self) -> bool {
        self.last_parallel
    }

    /// The deduction flight recorder, when enabled
    /// ([`DemandConfig::flight`]). Snapshot it at any time to reconstruct
    /// recent engine activity; see `docs/OBSERVABILITY.md`.
    pub fn flight_recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.flight.as_ref()
    }

    /// Records one flight event (no-op when the recorder is off).
    #[inline]
    fn flight_record(&self, kind: FlightEventKind, a: u32, b: u32, work: u32) {
        if let Some(flight) = &self.flight {
            flight.record(kind, a, b, work);
            self.counters.flight_events.inc();
        }
    }

    /// Attaches a shared cross-engine memo table (concurrent tabling).
    ///
    /// On activating a goal it has not tabled, the engine first consults
    /// `shared`: a hit installs the published member set as a completed
    /// local goal, costing zero rule firings for that whole subtree. On
    /// every successful drain the engine publishes its newly completed
    /// goals, so engines attached to the same table do each subgoal's
    /// work once between them. Gated on [`DemandConfig::caching`]: with
    /// caching off every query clears local state and the shared table
    /// is ignored entirely.
    ///
    /// [`DemandEngine::invalidate`] / [`DemandEngine::reload`] bump the
    /// table's generation, so entries computed against the old program
    /// are never served again (see [`SharedMemo`]). Attach the table at
    /// construction time, before issuing queries.
    pub fn with_shared_memo(mut self, shared: Arc<SharedMemo>) -> Self {
        self.shared_gen = shared.generation();
        self.shared = Some(shared);
        self
    }

    /// The shared memo table this engine consults, if one is attached.
    pub fn shared_memo(&self) -> Option<&Arc<SharedMemo>> {
        self.shared.as_ref()
    }

    /// The observability hub this engine publishes into.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The program being analyzed.
    pub fn program(&self) -> &'p ConstraintProgram {
        self.cp
    }

    /// The current configuration.
    pub fn config(&self) -> &DemandConfig {
        &self.config
    }

    /// Replaces the configuration (used by [`crate::BudgetLadder`]).
    pub fn set_config(&mut self, config: DemandConfig) {
        self.config = config;
    }

    /// Adjusts only the per-query budget.
    pub fn set_budget(&mut self, budget: Option<u64>) {
        self.config.budget = budget;
    }

    /// Adjusts only the per-query worker count (clamped to ≥ 1). Used by
    /// hosts that toggle intra-query parallelism per request.
    pub fn set_workers(&mut self, workers: usize) {
        self.config.workers = workers.max(1);
    }

    /// Adjusts the scheduler policy used by parallel queries.
    pub fn set_sched_policy(&mut self, policy: crate::config::SchedPolicy) {
        self.config.sched_policy = policy;
    }

    /// A snapshot of the cumulative statistics across all queries so far.
    ///
    /// Counts reflect only this engine unless the [`Obs`] passed to
    /// [`DemandEngine::with_obs`] is shared with other engines.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            queries: self.counters.queries.get(),
            complete_queries: self.counters.complete_queries.get(),
            cache_hits: self.counters.cache_hits.get(),
            fires: self.counters.fires.get(),
            goals_activated: self.counters.goals_activated.get(),
            work: self.counters.work.get(),
            cycle_runs: self.counters.cycles_runs.get(),
            cycles_collapsed: self.counters.cycles_collapsed.get(),
            merged_goals: self.counters.cycles_merged_goals.get(),
            share_hits: self.counters.share_hits.get(),
            share_misses: self.counters.share_misses.get(),
            share_publishes: self.counters.share_publishes.get(),
            share_evictions: self.counters.share_evictions.get(),
            flight_events: self.counters.flight_events.get(),
            sched_parked: self.counters.sched_parked.get(),
            sched_resumed: self.counters.sched_resumed.get(),
            sched_steals: self.counters.sched_steals.get(),
            sched_wakeups: self.counters.sched_wakeups.get(),
        }
    }

    /// Opens a per-request trace bracket: snapshots the counters and
    /// starts the clock. Close it with [`crate::QueryTrace::finish`] to
    /// get the request's counter deltas and wall time. `id` is the
    /// host-minted trace/request ID, echoed back in the report.
    pub fn begin_trace(&self, id: impl Into<String>) -> crate::QueryTrace {
        crate::QueryTrace::begin(id, self)
    }

    /// Number of subgoals currently tabled.
    pub fn tabled_goals(&self) -> usize {
        self.goals.len()
    }

    /// Drops all memoized state (used between queries when caching is off).
    ///
    /// Also rebuilds the cycle union-find: merged representatives are
    /// meaningless once the goal table is gone, and a stale union-find
    /// would silently fuse unrelated goals of the next table.
    pub fn clear(&mut self) {
        self.goals.clear();
        self.keys.clear();
        self.index.clear();
        self.queue.clear();
        self.provenance.clear();
        self.published.clear();
        self.costs.clear();
        self.cycles = CopyGraph::new(self.config.collapse_cycles, self.config.collapse_threshold);
    }

    /// The invalidation generation: starts at 0 and increments on every
    /// [`DemandEngine::invalidate`] / [`DemandEngine::reload`]. Answers
    /// computed under one generation must not be mixed with answers from
    /// another — long-lived hosts (the `ddpa-serve` sessions) stamp every
    /// response with this value.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Invalidates every tabled goal and bumps the generation.
    ///
    /// Use after the underlying program changed semantically (e.g. via
    /// [`DemandEngine::reload`]): completed memo entries from the old
    /// program would otherwise be served as stale cache hits.
    pub fn invalidate(&mut self) {
        self.clear();
        self.generation += 1;
        // The program this engine answers for has changed, so entries in
        // an attached shared table are stale for every engine sharing it:
        // bump its generation and adopt the new one.
        if let Some(shared) = &self.shared {
            self.shared_gen = shared.bump_generation();
        }
    }

    /// Swaps in an updated constraint program and invalidates all memoized
    /// state, so the next query deduces against `cp` from scratch.
    ///
    /// This is the incremental-edit hook: grow the program (append
    /// constraints, rebuild) and reload — queries issued afterwards see
    /// the new edges and never a stale memo.
    pub fn reload(&mut self, cp: &'p ConstraintProgram) {
        self.cp = cp;
        self.invalidate();
    }

    /// Swaps in an updated program, invalidating *only* the transitively
    /// dirtied fixpoints and keeping everything else warm — the
    /// incremental counterpart of [`reload`](Self::reload).
    ///
    /// `diff` must be `diff_programs(old, cp)` for this engine's current
    /// program `old`. Entries whose support set misses the edit (and
    /// whose producers all survive) are bit-identical fixpoints under
    /// `cp`, so they are re-installed as completed goals; the rest — plus
    /// any entry with no recorded support, conservatively — are dropped
    /// and re-derived on demand. An attached [`SharedMemo`] gets the same
    /// treatment via [`SharedMemo::invalidate_entries`]: per-entry
    /// removal *without* a generation bump, so surviving entries keep
    /// serving other engines that move to the new program.
    ///
    /// Falls back to full invalidation ([`reload`](Self::reload)) when
    /// the diff is incompatible (old node ids don't survive into `cp`) or
    /// caching is off; `EditStats::full` reports which path ran. The
    /// engine generation is bumped either way — retention is invisible to
    /// generation-stamped protocols except as less work.
    pub fn reload_incremental(
        &mut self,
        cp: &'p ConstraintProgram,
        diff: &ddpa_constraints::ProgramDiff,
    ) -> EditStats {
        if !diff.compatible || !self.config.caching {
            let dropped = self
                .goals
                .iter()
                .filter(|s| !s.merged && s.complete)
                .count();
            self.reload(cp);
            return EditStats {
                invalidated: dropped,
                retained: 0,
                dirty_edges: 0,
                full: true,
            };
        }
        // Candidates: the local completed table plus anything other
        // workers published to the shared table that this engine never
        // tabled itself.
        let mut entries = self.export_local_completed();
        if let Some(shared) = &self.shared {
            let seen: HashSet<Goal> = entries.iter().map(|&(g, _)| g).collect();
            for (g, e) in shared.export_completed() {
                if !seen.contains(&g) {
                    entries.push((g, e));
                }
            }
        }
        let (dirty, dirty_edges) = crate::share::dirty_closure(&entries, diff);
        let retained: Vec<(Goal, CompletedGoal)> = entries
            .into_iter()
            .filter(|(g, _)| !dirty.contains(g))
            .collect();
        self.clear();
        self.generation += 1;
        self.cp = cp;
        if let Some(shared) = &self.shared {
            let shared = Arc::clone(shared);
            let (_removed, compacted) = shared.invalidate_entries(&dirty);
            if compacted > 0 {
                self.counters.share_evictions.add(compacted);
            }
            // No generation bump: survivors stay valid for the new
            // program, and this engine keeps publishing under the same
            // shared generation.
            self.shared_gen = shared.generation();
        }
        for (g, e) in &retained {
            self.install_completed(*g, e);
        }
        EditStats {
            invalidated: dirty.len(),
            retained: retained.len(),
            dirty_edges,
            full: false,
        }
    }

    /// Computes `pts(node)` on demand.
    pub fn points_to(&mut self, node: NodeId) -> QueryResult {
        self.run(Goal::Pts(node))
    }

    /// Computes `ptb(node)` — the pointers that may point to `node`.
    pub fn pointed_to_by(&mut self, node: NodeId) -> QueryResult {
        self.run(Goal::Ptb(node))
    }

    /// Resolves the callee set of call site `cs` on demand.
    ///
    /// Direct calls are free. For indirect calls the engine queries the
    /// function pointer; if the budget runs out, the result falls back to
    /// every address-taken function (sound) with `resolved = false`.
    pub fn call_targets(&mut self, cs: ddpa_constraints::CallSiteId) -> CallTargets {
        match self.cp.callsite(cs).callee {
            CalleeRef::Direct(f) => CallTargets {
                targets: vec![f],
                resolved: true,
                work: 0,
            },
            CalleeRef::Indirect(fp) => {
                let r = self.points_to(fp);
                if r.complete {
                    let mut targets: Vec<FuncId> = r
                        .pts
                        .iter()
                        .filter_map(|&n| self.cp.node(n).as_func())
                        .collect();
                    targets.sort_unstable();
                    CallTargets {
                        targets,
                        resolved: true,
                        work: r.work,
                    }
                } else {
                    CallTargets {
                        targets: self.cp.address_taken_funcs(),
                        resolved: false,
                        work: r.work,
                    }
                }
            }
        }
    }

    /// Answers "may `a` and `b` alias?" on demand.
    ///
    /// Conservative: if either query is unresolved and no intersection was
    /// found in the partial sets, the answer is `may_alias = true` with
    /// `resolved = false`.
    pub fn may_alias(&mut self, a: NodeId, b: NodeId) -> AliasResult {
        let ra = self.points_to(a);
        let rb = self.points_to(b);
        let intersects = intersect_sorted(&ra.pts, &rb.pts);
        let resolved = intersects || (ra.complete && rb.complete);
        AliasResult {
            may_alias: intersects || !(ra.complete && rb.complete),
            resolved,
            work: ra.work + rb.work,
        }
    }

    /// Explains why `target ∈ pts(node)`, as a derivation chain ending in
    /// a base `x = &o` fact.
    ///
    /// Returns `None` if tracing is disabled ([`DemandConfig::trace`]), the
    /// fact has not been derived (query it first), or the fact is false.
    pub fn explain_points_to(&self, node: NodeId, target: NodeId) -> Option<Explanation> {
        if !self.config.trace {
            return None;
        }
        let mut steps = Vec::new();
        let mut current = (Goal::Pts(node), target.as_u32());
        // Cycle collapsing can leave a fact recorded under any member of
        // a merged goal family, so lookup may fall back from the exact
        // key to the representative's key and its aliases. The visited
        // set keeps those fallbacks from revisiting an entry; each loop
        // iteration consumes a fresh entry, so the walk terminates.
        let mut visited: HashSet<(Goal, u32)> = HashSet::new();
        loop {
            let (entry_key, origin) = self.lookup_provenance(current.0, current.1, &visited)?;
            visited.insert((entry_key, current.1));
            steps.push(TraceStep {
                goal: current.0,
                elem: current.1,
                origin,
            });
            match origin {
                Origin::Base => return Some(Explanation { steps }),
                Origin::Rule { src, elem, .. } => current = (src, elem),
            }
        }
    }

    /// Finds the provenance entry proving `value ∈ goal`: the exact key
    /// first, then — when `goal` belongs to a collapsed cycle — the
    /// representative's key and every merged-in alias. Entries already in
    /// `visited` are skipped.
    fn lookup_provenance(
        &self,
        goal: Goal,
        value: u32,
        visited: &HashSet<(Goal, u32)>,
    ) -> Option<(Goal, Origin)> {
        let try_key = |key: Goal| -> Option<(Goal, Origin)> {
            if visited.contains(&(key, value)) {
                return None;
            }
            self.provenance.get(&(key, value)).map(|&o| (key, o))
        };
        if let Some(hit) = try_key(goal) {
            return Some(hit);
        }
        let &gi = self.index.get(&goal)?;
        let rep = self.cycles.find_readonly(gi);
        let rep_key = self.keys[rep as usize];
        if rep_key != goal {
            if let Some(hit) = try_key(rep_key) {
                return Some(hit);
            }
        }
        for &alias in &self.goals[rep as usize].aliases {
            if alias == goal {
                continue;
            }
            if let Some(hit) = try_key(alias) {
                return Some(hit);
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Tabling machinery
    // ------------------------------------------------------------------

    /// Activates `goal` and returns the index of the state holding it —
    /// the *representative* index when the goal was merged into a cycle.
    fn activate(&mut self, goal: Goal) -> u32 {
        if let Some(&gi) = self.index.get(&goal) {
            return self.cycles.find(gi);
        }
        let gi = self.goals.len() as u32;
        self.goals.push(GoalState::new());
        self.keys.push(goal);
        self.index.insert(goal, gi);
        self.costs.push(GoalCost::default());
        let slot = self.cycles.push();
        debug_assert_eq!(slot, gi, "union-find aligned with goal table");
        self.counters.goals_activated.inc();
        self.flight_record(FlightEventKind::Activated, gi, 0, 0);
        if let Some(hit) = self.shared_lookup(goal) {
            // Install the published fixpoint as a completed goal: no
            // static rules, no enqueue — the whole subtree below `goal`
            // costs zero firings. Later subscribers replay `elems` from
            // cursor 0, exactly as with a locally completed goal.
            let state = &mut self.goals[gi as usize];
            for &v in &hit.elems {
                state.members.insert(v);
                state.elems.push(v);
            }
            for &n in &hit.support {
                state.support.insert(n);
            }
            state.deps = hit.deps.clone();
            state.reads_indirect = hit.reads_indirect;
            state.needs_init = false;
            state.complete = true;
            if self.config.trace {
                for &(v, origin) in &hit.provenance {
                    self.provenance.insert((goal, v), origin);
                }
            }
            self.published.insert(goal);
            self.flight_record(FlightEventKind::MemoHit, gi, 1, 0);
            return gi;
        }
        self.enqueue(gi);
        gi
    }

    /// Consults the attached shared memo table for `goal`, counting the
    /// hit or miss and any stale entries the touched shard evicted.
    fn shared_lookup(&self, goal: Goal) -> Option<CompletedGoal> {
        let shared = self.shared.as_ref()?;
        if !self.config.caching {
            return None;
        }
        let _span = self.obs.span("demand.share.lookup");
        let (hit, evicted) = shared.lookup(self.shared_gen, goal);
        if evicted > 0 {
            self.counters.share_evictions.add(evicted);
        }
        if hit.is_some() {
            self.counters.share_hits.inc();
        } else {
            self.counters.share_misses.inc();
        }
        hit
    }

    /// Publishes every newly completed goal into the attached shared
    /// table. Called at global fixpoint: a completed set is the unique
    /// least-model answer for this generation, so any engine may reuse
    /// it. Merged cycle members share one fixpoint — the representative's
    /// set is published under its own key and every alias key.
    fn shared_publish_completed(&mut self) {
        let Some(shared) = &self.shared else {
            return;
        };
        if !self.config.caching {
            return;
        }
        let shared = Arc::clone(shared);
        for gi in 0..self.goals.len() {
            let state = &self.goals[gi];
            if state.merged || !state.complete {
                continue;
            }
            let key = self.keys[gi];
            if self.published.contains(&key) && state.aliases.is_empty() {
                continue;
            }
            let mut entry: Option<CompletedGoal> = None;
            for target in std::iter::once(key).chain(state.aliases.iter().copied()) {
                if !self.published.insert(target) {
                    continue;
                }
                let entry = entry.get_or_insert_with(|| self.completed_entry(gi, key));
                let (published, evicted) = shared.publish(self.shared_gen, target, entry.clone());
                if evicted > 0 {
                    self.counters.share_evictions.add(evicted);
                }
                if published {
                    self.counters.share_publishes.inc();
                }
            }
        }
    }

    /// Materializes the publishable [`CompletedGoal`] for the complete
    /// goal at `gi` (provenance looked up under `key`). Member, support,
    /// and dep orders are canonical, so entries are byte-stable
    /// regardless of derivation order.
    fn completed_entry(&self, gi: usize, key: Goal) -> CompletedGoal {
        let state = &self.goals[gi];
        let elems: Vec<u32> = state.members.iter().collect();
        let provenance = if self.config.trace {
            elems
                .iter()
                .filter_map(|&v| self.provenance.get(&(key, v)).map(|&origin| (v, origin)))
                .collect()
        } else {
            Vec::new()
        };
        let support: Vec<u32> = state.support.iter().collect();
        let mut deps = state.deps.clone();
        deps.sort_by_key(|g| match *g {
            Goal::Pts(n) => (0u8, n.as_u32()),
            Goal::Ptb(n) => (1u8, n.as_u32()),
        });
        CompletedGoal {
            elems,
            provenance,
            support,
            deps,
            reads_indirect: state.reads_indirect,
        }
    }

    /// Every completed, non-merged local fixpoint as `(goal, entry)`
    /// pairs — one entry per canonical key *and* per merged-in alias, so
    /// the list is keyed exactly like the shared table.
    fn export_local_completed(&self) -> Vec<(Goal, CompletedGoal)> {
        let mut out = Vec::new();
        for gi in 0..self.goals.len() {
            let state = &self.goals[gi];
            if state.merged || !state.complete {
                continue;
            }
            let key = self.keys[gi];
            let entry = self.completed_entry(gi, key);
            for target in std::iter::once(key).chain(state.aliases.iter().copied()) {
                out.push((target, entry.clone()));
            }
        }
        out
    }

    /// Installs a completed fixpoint as a tabled, complete goal without
    /// deriving it — the warm-start path used by snapshot restore
    /// ([`ddpa-snap`](../../ddpa_snap/index.html)). Equivalent to the
    /// shared-memo hit branch of `activate`: the whole subtree below
    /// `goal` costs zero rule firings, and later subscribers replay
    /// `elems` from cursor 0 exactly as with a locally completed goal.
    ///
    /// Returns `false` (and installs nothing) when the goal is already
    /// tabled locally — a warm start must never overwrite live deduction
    /// state — or when caching is disabled.
    ///
    /// The caller is responsible for only installing fixpoints computed
    /// over the *same program*; snapshot restore verifies the program
    /// hash first.
    pub fn install_completed(&mut self, goal: Goal, result: &CompletedGoal) -> bool {
        if !self.config.caching || self.index.contains_key(&goal) {
            return false;
        }
        let gi = self.goals.len() as u32;
        self.goals.push(GoalState::new());
        self.keys.push(goal);
        self.index.insert(goal, gi);
        self.costs.push(GoalCost::default());
        let slot = self.cycles.push();
        debug_assert_eq!(slot, gi, "union-find aligned with goal table");
        self.counters.goals_activated.inc();
        self.flight_record(FlightEventKind::Activated, gi, 0, 0);
        let state = &mut self.goals[gi as usize];
        for &v in &result.elems {
            state.members.insert(v);
            state.elems.push(v);
        }
        for &n in &result.support {
            state.support.insert(n);
        }
        state.deps = result.deps.clone();
        state.reads_indirect = result.reads_indirect;
        state.needs_init = false;
        state.complete = true;
        if self.config.trace {
            for &(v, origin) in &result.provenance {
                self.provenance.insert((goal, v), origin);
            }
        }
        self.published.insert(goal);
        true
    }

    /// Bulk [`install_completed`](Self::install_completed); returns how
    /// many goals were actually installed.
    pub fn warm_start<'e, I>(&mut self, entries: I) -> usize
    where
        I: IntoIterator<Item = &'e (Goal, CompletedGoal)>,
    {
        entries
            .into_iter()
            .filter(|(goal, result)| self.install_completed(*goal, result))
            .count()
    }

    fn enqueue(&mut self, gi: u32) {
        let state = &mut self.goals[gi as usize];
        if !state.on_list {
            state.on_list = true;
            self.queue.push_back(gi);
        }
    }

    fn requeue_front(&mut self, gi: u32) {
        let state = &mut self.goals[gi as usize];
        if !state.on_list {
            state.on_list = true;
            self.queue.push_front(gi);
        }
    }

    /// Adds `value` to `goal`'s set, recording its derivation when
    /// tracing is enabled. (The [`Deduce`] impl routes rule-produced
    /// facts here.)
    fn add_fact(&mut self, goal: Goal, value: u32, origin: Origin) {
        let gi = self.activate(goal);
        let state = &mut self.goals[gi as usize];
        let inserted = state.add(value);
        debug_assert!(
            !(inserted && state.complete),
            "fact added to a completed goal {goal:?}"
        );
        if inserted {
            if self.config.trace {
                // Record under the canonical key so lookups after further
                // merges still resolve (see `lookup_provenance`).
                let key = self.keys[gi as usize];
                self.provenance.insert((key, value), origin);
            }
            self.enqueue(gi);
        }
    }

    /// Installs `watcher` on `goal` (idempotent), starting from the first
    /// element. `CopyTo` subscriptions double as edges of the copy graph
    /// ([`CopyGraph::record_edge`]); one that targets the subscribed
    /// goal's own state — a self copy, or a copy inside an already
    /// collapsed cycle — is the identity and is suppressed.
    fn subscribe_watcher(&mut self, goal: Goal, watcher: Watcher) {
        let gi = self.activate(goal);
        // The consumer's fixpoint reads the producer's set: record the
        // dependency edge so an edit dirtying the producer transitively
        // dirties the consumer (see `reload_incremental`). Recorded even
        // for suppressed/duplicate subscriptions — `add_dep` dedups, and
        // a same-family edge (consumer routed to `gi` itself) is skipped.
        if let Some(&ci) = self.index.get(&watcher.consumer()) {
            let ci = self.cycles.find(ci);
            if ci != gi {
                self.goals[ci as usize].add_dep(goal);
            }
        }
        if let Watcher::CopyTo { dst } = watcher {
            if let Some(&di) = self.index.get(&Goal::Pts(dst)) {
                if self.cycles.find(di) == gi {
                    self.goals[gi as usize].registered.insert(watcher);
                    return;
                }
            }
        }
        let state = &mut self.goals[gi as usize];
        if state.registered.insert(watcher) {
            state.watchers.push(watcher);
            state.cursors.push(0);
            if let Watcher::CopyTo { dst } = watcher {
                self.cycles.record_edge(gi, dst);
            }
            if self.flight.is_some() {
                // The consumer goal now blocks on new elements of `gi`.
                let consumer = self
                    .index
                    .get(&watcher.consumer())
                    .map(|&ci| self.cycles.find_readonly(ci))
                    .unwrap_or(u32::MAX);
                self.flight_record(FlightEventKind::Blocked, gi, consumer, 0);
            }
            self.enqueue(gi);
        }
    }

    /// Processes one goal to quiescence. Returns `false` on budget
    /// exhaustion (the goal is re-queued at the front for resumption).
    fn process(&mut self, gi: u32, budget: &mut Budget) -> bool {
        if self.goals[gi as usize].needs_init {
            if !budget.charge(1) {
                self.requeue_front(gi);
                self.flight_record(FlightEventKind::Resumed, gi, 0, 0);
                return false;
            }
            self.counters.work.inc();
            self.costs[gi as usize].work += 1;
            self.goals[gi as usize].needs_init = false;
            let _span = self.obs.span("demand.query.goal_init");
            match self.keys[gi as usize] {
                Goal::Pts(x) => self.install_pts(x),
                Goal::Ptb(o) => self.install_ptb(o),
            }
        }
        loop {
            let mut progressed = false;
            let mut wi = 0;
            while wi < self.goals[gi as usize].watchers.len() {
                loop {
                    let state = &self.goals[gi as usize];
                    let cursor = state.cursors[wi] as usize;
                    if cursor >= state.elems.len() {
                        break;
                    }
                    if !budget.charge(1) {
                        self.requeue_front(gi);
                        self.flight_record(FlightEventKind::Resumed, gi, 0, 0);
                        return false;
                    }
                    let elem = state.elems[cursor];
                    let watcher = state.watchers[wi];
                    self.goals[gi as usize].cursors[wi] = (cursor + 1) as u32;
                    self.counters.fires.inc();
                    self.counters.fires_by_kind[watcher.kind_index()].inc();
                    self.counters.work.inc();
                    {
                        let cost = &mut self.costs[gi as usize];
                        cost.work += 1;
                        cost.fires += 1;
                    }
                    if let Some(flight) = &self.flight {
                        if flight.maybe_record_fire(gi, watcher.kind_index() as u32) {
                            self.counters.flight_events.inc();
                        }
                    }
                    self.cycles.tick();
                    let src = self.keys[gi as usize];
                    self.fire(src, watcher, elem);
                    progressed = true;
                }
                wi += 1;
            }
            if !progressed {
                return true;
            }
        }
    }

    /// Drains the queue. Returns `true` when everything reached fixpoint.
    fn drain(&mut self, budget: &mut Budget) -> bool {
        while let Some(gi) = self.queue.pop_front() {
            if self.cycles.due() {
                self.collapse_now();
            }
            if self.cycles.find(gi) != gi {
                // Merged away while queued: the representative carries
                // this goal's pending work and was re-enqueued by the
                // merge, so the stale entry is simply dropped.
                continue;
            }
            self.goals[gi as usize].on_list = false;
            if !self.process(gi, budget) {
                return false;
            }
        }
        // Global fixpoint: memoize everything as complete. Merged shells
        // hold no state of their own — their representative does.
        for gi in 0..self.goals.len() {
            let state = &mut self.goals[gi];
            if state.merged {
                continue;
            }
            debug_assert!(state.quiescent(), "drained queue but goal not quiescent");
            if state.complete {
                continue;
            }
            state.complete = true;
            if self.flight.is_some() {
                let elems = self.goals[gi].elems.len().min(u32::MAX as usize) as u32;
                let work = self.costs[gi].work.min(u32::MAX as u64) as u32;
                self.flight_record(FlightEventKind::Completed, gi as u32, elems, work);
            }
        }
        self.shared_publish_completed();
        true
    }

    /// Runs an SCC pass over the discovered copy graph and merges every
    /// non-trivial component that is still in flux.
    fn collapse_now(&mut self) {
        let _span = self.obs.span("demand.cycles.collapse");
        self.counters.cycles_runs.inc();
        let index = &self.index;
        let comps = self
            .cycles
            .components(|dst| index.get(&Goal::Pts(dst)).copied());
        for comp in comps {
            // A completed goal is a frozen memo entry at fixpoint; at
            // fixpoint the complete set is closed under deduction, so a
            // component can only contain completed goals if it contains
            // nothing else — and then there is no work left to save.
            if comp.iter().any(|&g| self.goals[g as usize].complete) {
                continue;
            }
            // Install static rules for members the queue has not reached
            // yet: their subscriptions (including intra-cycle copies that
            // the merge folds away) must exist before states move.
            for &g in &comp {
                if self.goals[g as usize].needs_init {
                    self.goals[g as usize].needs_init = false;
                    self.counters.work.inc();
                    self.costs[g as usize].work += 1;
                    match self.keys[g as usize] {
                        Goal::Pts(x) => self.install_pts(x),
                        Goal::Ptb(o) => self.install_ptb(o),
                    }
                }
            }
            let rep = self.cycles.union_all(&comp);
            self.counters.cycles_collapsed.inc();
            self.counters.cycles_merged_goals.add(comp.len() as u64 - 1);
            self.flight_record(
                FlightEventKind::CycleMerged,
                rep,
                comp.len().min(u32::MAX as usize) as u32,
                0,
            );
            self.merge_component(&comp, rep);
        }
    }

    /// Folds every goal of `comp` into the state at `rep` (which
    /// [`CopyGraph::union_all`] made the representative): one shared
    /// member set, a deduplicated watcher list, and intra-cycle copy
    /// edges dropped. Carried-over watchers rescan from element zero —
    /// firing is idempotent, so the rescan is a bounded one-time cost.
    fn merge_component(&mut self, comp: &[u32], rep: u32) {
        let mut merged = std::mem::take(&mut self.goals[rep as usize]);
        for &g in comp {
            if g == rep {
                continue;
            }
            let state = std::mem::take(&mut self.goals[g as usize]);
            let shell = &mut self.goals[g as usize];
            shell.merged = true;
            shell.needs_init = false;
            // Attribution follows the state into the representative.
            let cost = std::mem::take(&mut self.costs[g as usize]);
            self.costs[rep as usize].work += cost.work;
            self.costs[rep as usize].fires += cost.fires;
            merged.aliases.push(self.keys[g as usize]);
            merged.aliases.extend(state.aliases.iter().copied());
            for &v in &state.elems {
                if merged.members.insert(v) {
                    merged.elems.push(v);
                }
            }
            for &w in &state.watchers {
                if merged.registered.insert(w) {
                    merged.watchers.push(w);
                    merged.cursors.push(0);
                }
            }
            // Suppressed registrations (identity copies) must keep
            // deduplicating future subscriptions.
            for w in state.registered {
                merged.registered.insert(w);
            }
            // The merged fixpoint read everything its members read: the
            // representative's support/deps must cover them all, or an
            // edit touching one member's rows would fail to dirty the
            // family's shared entry.
            for n in state.support.iter() {
                merged.support.insert(n);
            }
            for dep in state.deps {
                merged.add_dep(dep);
            }
            merged.reads_indirect |= state.reads_indirect;
        }
        // Copy edges that now point inside the merged family are the
        // identity: drop them from the active list. They stay
        // `registered`, so re-subscription attempts still dedup.
        let mut watchers = Vec::with_capacity(merged.watchers.len());
        let mut cursors = Vec::with_capacity(merged.cursors.len());
        for (&w, &c) in merged.watchers.iter().zip(&merged.cursors) {
            let internal = match w {
                Watcher::CopyTo { dst } => self
                    .index
                    .get(&Goal::Pts(dst))
                    .is_some_and(|&di| self.cycles.find_readonly(di) == rep),
                _ => false,
            };
            if !internal {
                watchers.push(w);
                cursors.push(c);
            }
        }
        merged.watchers = watchers;
        merged.cursors = cursors;
        merged.needs_init = false;
        merged.on_list = false;
        self.goals[rep as usize] = merged;
        self.enqueue(rep);
    }

    fn run(&mut self, goal: Goal) -> QueryResult {
        let _span = self.obs.span("demand.query");
        self.last_parallel = false;
        if !self.config.caching {
            self.clear();
        }
        self.counters.queries.inc();
        // Parallel dispatch, decided *before* activation touches the
        // queue: eligible queries are unbudgeted (frames cannot abort
        // mid-step deterministically), untraced (no cross-thread
        // provenance map), and start from a drained queue (no suspended
        // sequential work to interleave with). Already-answered goals
        // fall through to the sequential cache-hit path.
        if self.config.workers > 1
            && self.config.budget.is_none()
            && !self.config.trace
            && self.queue.is_empty()
        {
            let cached = self
                .index
                .get(&goal)
                .map(|&gi| self.cycles.find_readonly(gi))
                .is_some_and(|gi| self.goals[gi as usize].complete);
            if !cached {
                return self.run_parallel(goal);
            }
        }
        let gi = self.activate(goal);
        if self.goals[gi as usize].complete {
            self.counters.cache_hits.inc();
            self.counters.complete_queries.inc();
            self.flight_record(FlightEventKind::MemoHit, gi, 0, 0);
            return QueryResult {
                pts: self.snapshot(gi),
                complete: true,
                work: 0,
            };
        }
        let mut budget = Budget::new(self.config.budget);
        let drained = {
            let _span = self.obs.span("demand.query.drain");
            self.drain(&mut budget)
        };
        if drained {
            self.counters.complete_queries.inc();
        }
        // The goal may have merged into a cycle representative mid-drain.
        let gi = self.cycles.find(gi);
        QueryResult {
            pts: self.snapshot(gi),
            complete: self.goals[gi as usize].complete,
            work: budget.used(),
        }
    }

    /// Answers `goal` with the frame scheduler ([`crate::sched`]) on
    /// [`DemandConfig::workers`] threads, seeding frames from this
    /// engine's completed goals, then folds the scheduler's counters and
    /// newly completed fixpoints back into the engine (and the attached
    /// [`SharedMemo`], when caching). Answers are bit-identical to the
    /// sequential drain — see the module docs of [`crate::sched`].
    fn run_parallel(&mut self, goal: Goal) -> QueryResult {
        let _span = self.obs.span("demand.query.parallel");
        self.last_parallel = true;
        let mut sched = Scheduler::new(self.cp, self.config.clone()).with_obs(self.obs.clone());
        if let Some(flight) = &self.flight {
            sched = sched.with_flight(Arc::clone(flight));
        }
        if self.config.caching {
            if let Some(shared) = &self.shared {
                sched = sched.with_shared(Arc::clone(shared), self.shared_gen);
            }
        }
        let outcome = {
            let view = EngineView {
                goals: &self.goals,
                index: &self.index,
                cycles: &self.cycles,
            };
            sched.solve_seeded(goal, Some(&view))
        };
        let stats = &outcome.stats;
        self.counters.work.add(stats.work);
        self.counters.fires.add(stats.fires);
        for (i, &n) in stats.fires_by_kind.iter().enumerate() {
            if n > 0 {
                self.counters.fires_by_kind[i].add(n);
            }
        }
        self.counters.share_hits.add(stats.share_hits);
        self.counters.share_misses.add(stats.share_misses);
        self.counters.share_evictions.add(stats.share_evictions);
        self.counters.sched_parked.add(stats.parked);
        self.counters.sched_resumed.add(stats.resumed);
        self.counters.sched_steals.add(stats.steals);
        self.counters.sched_wakeups.add(stats.wakeups);
        self.counters.flight_events.add(stats.flight_events);
        let work = stats.work;
        if self.config.caching {
            if let Some(shared) = &self.shared {
                let shared = Arc::clone(shared);
                for (g, entry) in &outcome.completed {
                    if self.published.contains(g) {
                        continue;
                    }
                    let (published, evicted) = shared.publish(self.shared_gen, *g, entry.clone());
                    if evicted > 0 {
                        self.counters.share_evictions.add(evicted);
                    }
                    if published {
                        self.counters.share_publishes.inc();
                    }
                }
            }
            // Table the fixpoints locally so later queries (parallel or
            // sequential) answer from the memo. Goals the engine already
            // tables (e.g. incomplete from an old budgeted query) are
            // left untouched.
            for (g, entry) in &outcome.completed {
                self.install_completed(*g, entry);
            }
        } else {
            self.counters.goals_activated.add(stats.activated);
        }
        self.counters.complete_queries.inc();
        QueryResult {
            pts: outcome.pts,
            complete: true,
            work,
        }
    }

    fn snapshot(&self, gi: u32) -> Vec<NodeId> {
        self.goals[gi as usize]
            .members
            .iter()
            .map(NodeId::from_u32)
            .collect()
    }
}

/// The sequential engine evaluates the shared rule system
/// ([`crate::rules`]) against its tabled goal states; the scheduler's
/// workers ([`crate::sched`]) implement the same trait against frames.
impl<'p> Deduce<'p> for DemandEngine<'p> {
    fn cp(&self) -> &'p ConstraintProgram {
        self.cp
    }

    fn add(&mut self, goal: Goal, value: u32, origin: Origin) {
        self.add_fact(goal, value, origin);
    }

    fn subscribe(&mut self, goal: Goal, watcher: Watcher) {
        self.subscribe_watcher(goal, watcher);
    }

    fn note_support(&mut self, goal: Goal, node: NodeId) {
        if let Some(&gi) = self.index.get(&goal) {
            let gi = self.cycles.find(gi);
            self.goals[gi as usize].support.insert(node.as_u32());
        }
    }

    fn note_indirect(&mut self, goal: Goal) {
        if let Some(&gi) = self.index.get(&goal) {
            let gi = self.cycles.find(gi);
            self.goals[gi as usize].reads_indirect = true;
        }
    }
}

fn intersect_sorted(a: &[NodeId], b: &[NodeId]) -> bool {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddpa_constraints::ConstraintBuilder;

    fn names(cp: &ConstraintProgram, nodes: &[NodeId]) -> Vec<String> {
        nodes.iter().map(|&n| cp.display_node(n)).collect()
    }

    fn node(cp: &ConstraintProgram, name: &str) -> NodeId {
        cp.node_ids()
            .find(|&n| cp.display_node(n) == name)
            .unwrap_or_else(|| panic!("no node named {name}"))
    }

    #[test]
    fn answers_copy_chain() {
        let cp = ddpa_constraints::parse_constraints("p = &o\nq = p\nr = q\n").expect("parses");
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        let r = engine.points_to(node(&cp, "r"));
        assert!(r.complete);
        assert_eq!(names(&cp, &r.pts), vec!["o"]);
    }

    #[test]
    fn answers_load_store() {
        // p = &o; x = &t; *p = x; y = *p  ⇒  pts(y) = {t}
        let cp = ddpa_constraints::parse_constraints("p = &o\nx = &t\n*p = x\ny = *p\n")
            .expect("parses");
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        let y = engine.points_to(node(&cp, "y"));
        assert!(y.complete);
        assert_eq!(names(&cp, &y.pts), vec!["t"]);
        // And the object's own points-to set.
        let o = engine.points_to(node(&cp, "o"));
        assert_eq!(names(&cp, &o.pts), vec!["t"]);
    }

    #[test]
    fn pointed_to_by_inverse() {
        let cp = ddpa_constraints::parse_constraints("p = &o\nq = p\nr = &o2\n").expect("parses");
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        let ptb = engine.pointed_to_by(node(&cp, "o"));
        assert!(ptb.complete);
        assert_eq!(names(&cp, &ptb.pts), vec!["p", "q"]);
    }

    #[test]
    fn resolves_indirect_call_on_demand() {
        let cp = ddpa_constraints::parse_constraints(
            "fun f/1\n\
             f::ret = f::arg0\n\
             fp = &f\n\
             x = &o\n\
             icall fp(x) -> r\n",
        )
        .expect("parses");
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        let r = engine.points_to(node(&cp, "r"));
        assert!(r.complete);
        assert_eq!(names(&cp, &r.pts), vec!["o"]);
        let cs = cp.callsites().indices().next().expect("callsite");
        let targets = engine.call_targets(cs);
        assert!(targets.resolved);
        assert_eq!(targets.targets.len(), 1);
    }

    #[test]
    fn warm_start_installs_fixpoints_and_answers_with_zero_work() {
        let cp = ddpa_constraints::parse_constraints("p = &o\nq = p\nr = q\n").expect("parses");
        // Derive the fixpoints once, capture the export.
        let shared = std::sync::Arc::new(crate::SharedMemo::new());
        let mut warm = DemandEngine::new(&cp, DemandConfig::default())
            .with_shared_memo(std::sync::Arc::clone(&shared));
        let full = warm.points_to(node(&cp, "r"));
        let exported = shared.export_completed();
        assert!(!exported.is_empty());

        // A fresh engine (no shared table at all) warm-starts from them.
        let mut cold = DemandEngine::new(&cp, DemandConfig::default());
        let installed = cold.warm_start(&exported);
        assert_eq!(installed, exported.len());
        // Re-installing is a no-op: the goals are already tabled.
        assert_eq!(cold.warm_start(&exported), 0);
        let reused = cold.points_to(node(&cp, "r"));
        assert_eq!(reused.pts, full.pts);
        assert_eq!(reused.work, 0, "restored answer costs zero rule firings");
        // And the memo keeps working for queries beyond the snapshot.
        let o = cold.points_to(node(&cp, "o"));
        assert!(o.complete);
    }

    #[test]
    fn value_flow_cycle_reaches_fixpoint() {
        // x and y copy into each other; both see both objects.
        let cp =
            ddpa_constraints::parse_constraints("x = y\ny = x\nx = &a\ny = &b\n").expect("parses");
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        let x = engine.points_to(node(&cp, "x"));
        assert!(x.complete);
        assert_eq!(names(&cp, &x.pts), vec!["a", "b"]);
    }

    #[test]
    fn budget_exhaustion_reports_incomplete_and_resumes() {
        // A long copy chain so any small budget fails.
        let mut b = ConstraintBuilder::new();
        let o = b.var("obj");
        let first = b.var("v0");
        b.addr_of(first, o);
        let mut prev = first;
        for i in 1..200 {
            let v = b.var(&format!("v{i}"));
            b.copy(v, prev);
            prev = v;
        }
        let cp = b.build();
        let last = node(&cp, "v199");

        let mut engine = DemandEngine::new(&cp, DemandConfig::default().with_budget(10));
        let r1 = engine.points_to(last);
        assert!(!r1.complete);

        // Retrying with the same small budget makes gradual progress and
        // eventually completes thanks to resumption.
        let mut attempts = 0;
        loop {
            attempts += 1;
            assert!(attempts < 1000, "resumption failed to converge");
            let r = engine.points_to(last);
            if r.complete {
                assert_eq!(names(&cp, &r.pts), vec!["obj"]);
                break;
            }
        }
        assert!(engine.stats().queries > 2);
    }

    #[test]
    fn partial_result_is_subset_of_full() {
        let cp = ddpa_constraints::parse_constraints("p = &a\np = &b\nq = p\n*q = p\nr = *q\n")
            .expect("parses");
        let full = {
            let mut e = DemandEngine::new(&cp, DemandConfig::default());
            e.points_to(node(&cp, "r"))
        };
        assert!(full.complete);
        for budget in [1u64, 2, 4, 8, 16, 32] {
            let mut e = DemandEngine::new(&cp, DemandConfig::default().with_budget(budget));
            let partial = e.points_to(node(&cp, "r"));
            for n in &partial.pts {
                assert!(
                    full.pts.contains(n),
                    "partial exceeded full at budget {budget}"
                );
            }
        }
    }

    #[test]
    fn caching_answers_second_query_for_free() {
        let cp = ddpa_constraints::parse_constraints("p = &o\nq = p\n").expect("parses");
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        let first = engine.points_to(node(&cp, "q"));
        assert!(first.work > 0);
        let second = engine.points_to(node(&cp, "q"));
        assert_eq!(second.work, 0);
        assert_eq!(engine.stats().cache_hits, 1);
        // A different-but-overlapping query reuses the tabled subgoal.
        let p = engine.points_to(node(&cp, "p"));
        assert!(p.complete);
        assert_eq!(
            p.work, 0,
            "pts(p) was already tabled while answering pts(q)"
        );
    }

    #[test]
    fn no_caching_redoes_work() {
        let cp = ddpa_constraints::parse_constraints("p = &o\nq = p\n").expect("parses");
        let mut engine = DemandEngine::new(&cp, DemandConfig::default().without_caching());
        let first = engine.points_to(node(&cp, "q"));
        let second = engine.points_to(node(&cp, "q"));
        assert!(first.work > 0);
        assert_eq!(first.work, second.work);
        assert_eq!(engine.stats().cache_hits, 0);
    }

    #[test]
    fn reload_after_adding_constraints_sees_new_edge() {
        // The "incremental edit" scenario ddpa-serve drives: answer a
        // query, append a constraint, reload, and the same query must see
        // the new edge instead of the stale memoized answer.
        let before = ddpa_constraints::parse_constraints("p = &o\nq = p\n").expect("parses");
        let after =
            ddpa_constraints::parse_constraints("p = &o\nq = p\np = &o2\n").expect("parses");
        let mut engine = DemandEngine::new(&before, DemandConfig::default());
        assert_eq!(engine.generation(), 0);

        let r1 = engine.points_to(node(&before, "q"));
        assert!(r1.complete);
        assert_eq!(names(&before, &r1.pts), vec!["o"]);
        assert!(engine.tabled_goals() > 0);

        engine.reload(&after);
        assert_eq!(engine.generation(), 1);
        assert_eq!(engine.tabled_goals(), 0, "memo table dropped");

        let r2 = engine.points_to(node(&after, "q"));
        assert!(r2.complete);
        assert_eq!(
            names(&after, &r2.pts),
            vec!["o", "o2"],
            "the added p = &o2 edge is visible, not the stale memo"
        );
        assert!(r2.work > 0, "answer was re-deduced, not cache-served");
    }

    #[test]
    fn incremental_reload_keeps_untouched_goals_warm() {
        // Two independent chains; editing one must not evict the other.
        let before =
            ddpa_constraints::parse_constraints("p = &o\nq = p\nr = &u\n").expect("parses");
        let after =
            ddpa_constraints::parse_constraints("p = &o\nq = p\nr = &u\ns = r\n").expect("parses");
        let mut engine = DemandEngine::new(&before, DemandConfig::default());
        assert!(engine.points_to(node(&before, "q")).complete);
        assert!(engine.points_to(node(&before, "r")).complete);

        let diff = ddpa_constraints::diff_programs(&before, &after);
        let stats = engine.reload_incremental(&after, &diff);
        assert!(!stats.full);
        assert!(stats.retained > 0, "the p/q chain survives the edit");
        assert!(stats.invalidated > 0, "r's row changed, so pts(r) is dirty");
        assert_eq!(engine.generation(), 1, "edits still bump the generation");

        let q = engine.points_to(node(&after, "q"));
        assert_eq!(names(&after, &q.pts), vec!["o"]);
        assert_eq!(q.work, 0, "untouched goal answers from the warm table");
        let s = engine.points_to(node(&after, "s"));
        assert_eq!(names(&after, &s.pts), vec!["u"], "new edge is visible");
    }

    #[test]
    fn incremental_reload_dirties_transitive_consumers() {
        // pts(q) depends on pts(p); editing p's addr row must dirty both.
        let before = ddpa_constraints::parse_constraints("p = &o\nq = p\n").expect("parses");
        let after =
            ddpa_constraints::parse_constraints("p = &o\nq = p\np = &o2\n").expect("parses");
        let mut engine = DemandEngine::new(&before, DemandConfig::default());
        assert_eq!(
            names(&before, &engine.points_to(node(&before, "q")).pts),
            vec!["o"]
        );

        let diff = ddpa_constraints::diff_programs(&before, &after);
        let stats = engine.reload_incremental(&after, &diff);
        assert!(!stats.full);
        assert!(stats.invalidated > 0);

        let q = engine.points_to(node(&after, "q"));
        assert_eq!(
            names(&after, &q.pts),
            vec!["o", "o2"],
            "consumer of the edited goal was re-derived"
        );
        assert!(
            q.work > 0,
            "dirtied answer was re-deduced, not cache-served"
        );
    }

    #[test]
    fn incremental_reload_falls_back_on_incompatible_diff() {
        let before = ddpa_constraints::parse_constraints("p = &o\nq = p\n").expect("parses");
        let after = ddpa_constraints::parse_constraints("z = &w\np = z\n").expect("parses");
        let mut engine = DemandEngine::new(&before, DemandConfig::default());
        assert!(engine.points_to(node(&before, "q")).complete);

        let diff = ddpa_constraints::diff_programs(&before, &after);
        assert!(!diff.compatible);
        let stats = engine.reload_incremental(&after, &diff);
        assert!(
            stats.full,
            "incompatible node spaces force full invalidation"
        );
        assert_eq!(stats.retained, 0);
        assert_eq!(engine.tabled_goals(), 0);
    }

    #[test]
    fn incremental_reload_keeps_shared_survivors_without_generation_bump() {
        let before =
            ddpa_constraints::parse_constraints("p = &o\nq = p\nr = &u\n").expect("parses");
        let after =
            ddpa_constraints::parse_constraints("p = &o\nq = p\nr = &u\ns = r\n").expect("parses");
        let shared = std::sync::Arc::new(crate::SharedMemo::new());
        let mut engine = DemandEngine::new(&before, DemandConfig::default())
            .with_shared_memo(std::sync::Arc::clone(&shared));
        assert!(engine.points_to(node(&before, "q")).complete);
        assert!(engine.points_to(node(&before, "r")).complete);
        let gen_before = shared.generation();

        let diff = ddpa_constraints::diff_programs(&before, &after);
        let stats = engine.reload_incremental(&after, &diff);
        assert!(!stats.full);
        assert_eq!(
            shared.generation(),
            gen_before,
            "per-entry invalidation must not bump the shared generation"
        );
        // Survivors are still served; dirtied entries are gone.
        let kept = shared.export_completed();
        assert!(kept.iter().any(|(g, _)| *g == Goal::Pts(node(&after, "q"))));
        assert!(!kept.iter().any(|(g, _)| *g == Goal::Pts(node(&after, "r"))));
    }

    #[test]
    fn invalidate_bumps_generation_and_redoes_work() {
        let cp = ddpa_constraints::parse_constraints("p = &o\nq = p\n").expect("parses");
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        let q = node(&cp, "q");
        let first = engine.points_to(q);
        assert!(first.work > 0);
        let cached = engine.points_to(q);
        assert_eq!(cached.work, 0);

        engine.invalidate();
        assert_eq!(engine.generation(), 1);
        let redone = engine.points_to(q);
        assert_eq!(redone.pts, first.pts, "same answer after invalidation");
        assert_eq!(redone.work, first.work, "fully re-deduced");
        assert_eq!(
            engine.stats().cache_hits,
            1,
            "only the pre-invalidation repeat hit the cache"
        );

        engine.invalidate();
        assert_eq!(engine.generation(), 2);
    }

    #[test]
    fn may_alias_detects_overlap() {
        let cp =
            ddpa_constraints::parse_constraints("p = &o\nq = p\nr = &other\n").expect("parses");
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        let pq = engine.may_alias(node(&cp, "p"), node(&cp, "q"));
        assert!(pq.may_alias);
        assert!(pq.resolved);
        let pr = engine.may_alias(node(&cp, "p"), node(&cp, "r"));
        assert!(!pr.may_alias);
        assert!(pr.resolved);
    }

    #[test]
    fn unresolved_call_falls_back_to_address_taken() {
        // fp flows through a long chain; a tiny budget cannot resolve it.
        let mut b = ConstraintBuilder::new();
        let f = b.func("f", 0);
        let g = b.func("g", 0);
        let f_obj = b.func_info(f).object;
        let _ = g;
        let first = b.var("fp0");
        b.addr_of(first, f_obj);
        let mut prev = first;
        for i in 1..100 {
            let v = b.var(&format!("fp{i}"));
            b.copy(v, prev);
            prev = v;
        }
        let cs = b.call_indirect(prev, vec![], None);
        let cp = b.build();
        let mut engine = DemandEngine::new(&cp, DemandConfig::default().with_budget(5));
        let targets = engine.call_targets(cs);
        assert!(!targets.resolved);
        // Fallback: only f is address-taken.
        assert_eq!(targets.targets, vec![f]);
    }
}

#[cfg(test)]
mod cycle_tests {
    use super::*;
    use ddpa_constraints::ConstraintBuilder;

    fn node(cp: &ConstraintProgram, name: &str) -> NodeId {
        cp.node_ids()
            .find(|&n| cp.display_node(n) == name)
            .unwrap_or_else(|| panic!("no node named {name}"))
    }

    /// A ring of `len` copy-related vars seeded with `objs` address-of
    /// constraints spread around it, plus a tail var reading from the
    /// ring. Every ring member's final set is all `objs` objects.
    fn ring_program(len: usize, objs: usize) -> ConstraintProgram {
        let mut b = ConstraintBuilder::new();
        let objects: Vec<_> = (0..objs).map(|j| b.var(&format!("obj_{j}"))).collect();
        let vars: Vec<_> = (0..len).map(|i| b.var(&format!("r{i}"))).collect();
        for i in 1..len {
            b.copy(vars[i], vars[i - 1]);
        }
        b.copy(vars[0], vars[len - 1]);
        for (j, &o) in objects.iter().enumerate() {
            b.addr_of(vars[j * len / objs], o);
        }
        let tail = b.var("tail");
        b.copy(tail, vars[len / 3]);
        b.build()
    }

    #[test]
    fn ring_collapses_to_one_representative() {
        let cp = ring_program(8, 2);
        let mut engine = DemandEngine::new(&cp, DemandConfig::default().with_collapse_threshold(1));
        let r = engine.points_to(node(&cp, "tail"));
        assert!(r.complete);
        let names: Vec<String> = r.pts.iter().map(|&n| cp.display_node(n)).collect();
        assert_eq!(names, vec!["obj_0", "obj_1"]);
        let stats = engine.stats();
        assert!(stats.cycle_runs >= 1, "SCC pass ran");
        assert!(stats.cycles_collapsed >= 1, "the ring was collapsed");
        assert_eq!(stats.merged_goals, 7, "eight goals fused into one");
    }

    #[test]
    fn collapsing_matches_uncollapsed_answers() {
        // Every query form, on vs off, on a program mixing a ring with
        // loads and stores through it.
        let cp = ddpa_constraints::parse_constraints(
            "x = y\ny = z\nz = x\nx = &a\nz = &b\n\
             p = &x\n*p = z\nw = *p\nq = x\n",
        )
        .expect("parses");
        let mut on = DemandEngine::new(&cp, DemandConfig::default().with_collapse_threshold(1));
        let mut off = DemandEngine::new(&cp, DemandConfig::default().without_cycle_collapsing());
        for n in cp.node_ids() {
            assert_eq!(on.points_to(n).pts, off.points_to(n).pts, "pts diverged");
            assert_eq!(
                on.pointed_to_by(n).pts,
                off.pointed_to_by(n).pts,
                "ptb diverged"
            );
        }
        assert!(on.stats().cycles_collapsed >= 1, "collapse actually ran");
    }

    #[test]
    fn collapsing_reduces_work_on_rings() {
        let cp = ring_program(64, 16);
        let work_of = |config: DemandConfig| {
            let mut e = DemandEngine::new(&cp, config);
            let r = e.points_to(node(&cp, "tail"));
            assert!(r.complete);
            (e.stats().work, e.stats().fires, r.pts)
        };
        let (work_on, fires_on, pts_on) =
            work_of(DemandConfig::default().with_collapse_threshold(8));
        let (work_off, fires_off, pts_off) =
            work_of(DemandConfig::default().without_cycle_collapsing());
        assert_eq!(pts_on, pts_off, "answers bit-identical");
        assert!(
            work_on * 2 <= work_off,
            "expected ≥2× work reduction, got {work_on} vs {work_off}"
        );
        assert!(
            fires_on * 2 <= fires_off,
            "expected ≥2× fire reduction, got {fires_on} vs {fires_off}"
        );
    }

    #[test]
    fn collapsed_goals_are_cached_complete() {
        let cp = ring_program(8, 2);
        let mut engine = DemandEngine::new(&cp, DemandConfig::default().with_collapse_threshold(1));
        let first = engine.points_to(node(&cp, "r3"));
        assert!(first.complete && first.work > 0);
        // Every ring member now answers from the shared memo entry.
        for i in 0..8 {
            let r = engine.points_to(node(&cp, &format!("r{i}")));
            assert!(r.complete);
            assert_eq!(r.work, 0, "r{i} served from the merged memo");
            assert_eq!(r.pts, first.pts);
        }
        assert_eq!(engine.stats().cache_hits, 8);
    }

    #[test]
    fn budget_resumption_with_collapsing() {
        let cp = ring_program(32, 4);
        let mut engine = DemandEngine::new(
            &cp,
            DemandConfig::default()
                .with_collapse_threshold(4)
                .with_budget(10),
        );
        let tail = node(&cp, "tail");
        let mut attempts = 0;
        loop {
            attempts += 1;
            assert!(attempts < 1000, "resumption failed to converge");
            let r = engine.points_to(tail);
            for n in &r.pts {
                let name = cp.display_node(*n);
                assert!(name.starts_with("obj_"), "partial stayed sound: {name}");
            }
            if r.complete {
                assert_eq!(r.pts.len(), 4);
                break;
            }
        }
        assert!(attempts > 1, "budget 10 cannot finish a 32-ring at once");
    }

    #[test]
    fn reload_resets_union_find() {
        // First program: x, y, z form a cycle and collapse. Second
        // program: the cycle is broken (z no longer feeds x) — a stale
        // union-find would keep serving the merged set.
        let before = ddpa_constraints::parse_constraints("x = y\ny = z\nz = x\nx = &a\nz = &b\n")
            .expect("parses");
        let after =
            ddpa_constraints::parse_constraints("x = y\ny = z\nz = &b\nx = &a\n").expect("parses");
        let mut engine =
            DemandEngine::new(&before, DemandConfig::default().with_collapse_threshold(1));
        let r1 = engine.points_to(node(&before, "x"));
        assert_eq!(r1.pts.len(), 2, "cycle: x sees both objects");
        assert!(engine.stats().cycles_collapsed >= 1);

        engine.reload(&after);
        let z = engine.points_to(node(&after, "z"));
        assert_eq!(
            z.pts
                .iter()
                .map(|&n| after.display_node(n))
                .collect::<Vec<_>>(),
            vec!["b"],
            "broken cycle: z no longer sees a"
        );
        let x = engine.points_to(node(&after, "x"));
        assert_eq!(x.pts.len(), 2, "x still reads z through the chain");
    }

    #[test]
    fn self_copy_is_suppressed() {
        let cp = ddpa_constraints::parse_constraints("x = x\nx = &o\n").expect("parses");
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        let r = engine.points_to(node(&cp, "x"));
        assert!(r.complete);
        assert_eq!(r.pts.len(), 1);
    }

    #[test]
    fn explanation_survives_merging() {
        let cp = ring_program(8, 2);
        let mut engine = DemandEngine::new(
            &cp,
            DemandConfig::default()
                .with_collapse_threshold(1)
                .with_trace(),
        );
        let obj_a = node(&cp, "obj_0");
        let obj_b = node(&cp, "obj_1");
        assert!(engine.points_to(node(&cp, "tail")).complete);
        assert!(engine.stats().cycles_collapsed >= 1, "merge happened");
        // Every merged member (and the tail) can still explain both facts.
        let mut queries: Vec<NodeId> = (0..8).map(|i| node(&cp, &format!("r{i}"))).collect();
        queries.push(node(&cp, "tail"));
        for v in queries {
            for o in [obj_a, obj_b] {
                let e = engine
                    .explain_points_to(v, o)
                    .unwrap_or_else(|| panic!("no explanation for {}", cp.display_node(v)));
                assert_eq!(e.steps.last().expect("nonempty").origin, Origin::Base);
            }
        }
    }

    #[test]
    fn stats_stay_zero_when_disabled() {
        let cp = ring_program(8, 2);
        let mut engine = DemandEngine::new(&cp, DemandConfig::default().without_cycle_collapsing());
        let r = engine.points_to(node(&cp, "tail"));
        assert!(r.complete);
        let stats = engine.stats();
        assert_eq!(stats.cycle_runs, 0);
        assert_eq!(stats.cycles_collapsed, 0);
        assert_eq!(stats.merged_goals, 0);
    }
}

#[cfg(test)]
mod field_tests {
    use super::*;

    fn node(cp: &ConstraintProgram, name: &str) -> NodeId {
        cp.node_ids()
            .find(|&n| cp.display_node(n) == name)
            .unwrap_or_else(|| panic!("no node named {name}"))
    }

    #[test]
    fn field_addresses_resolve_per_object() {
        // Two structs; each pointer reaches only its own object's field.
        let cp = ddpa_constraints::parse_constraints(
            "field s1.0\n\
             field s2.0\n\
             p1 = &s1\n\
             p2 = &s2\n\
             f1 = &p1->0\n\
             f2 = &p2->0\n\
             x = &val\n\
             *f1 = x\n\
             r1 = *f1\n\
             r2 = *f2\n",
        )
        .expect("parses");
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        let r1 = engine.points_to(node(&cp, "r1"));
        assert!(r1.complete);
        assert_eq!(r1.pts.len(), 1);
        assert_eq!(cp.display_node(r1.pts[0]), "val");
        // Field-sensitivity: s2.f0 was never written.
        let r2 = engine.points_to(node(&cp, "r2"));
        assert!(r2.complete);
        assert!(
            r2.pts.is_empty(),
            "fields of distinct objects stay distinct"
        );
    }

    #[test]
    fn field_ptb_finds_field_pointers() {
        let cp = ddpa_constraints::parse_constraints(
            "field s.0\n\
             p = &s\n\
             q = p\n\
             f1 = &p->0\n\
             f2 = &q->0\n",
        )
        .expect("parses");
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        let s = node(&cp, "s");
        let fld = cp.field_of(s, 0).expect("field node");
        let ptb = engine.pointed_to_by(fld);
        assert!(ptb.complete);
        let names: Vec<String> = ptb.pts.iter().map(|&n| cp.display_node(n)).collect();
        assert_eq!(names, vec!["f1", "f2"]);
    }

    #[test]
    fn objects_without_the_field_are_skipped() {
        let cp = ddpa_constraints::parse_constraints(
            "field s.0\n\
             p = &s\n\
             p = &plain\n\
             f = &p->0\n",
        )
        .expect("parses");
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        let f = engine.points_to(node(&cp, "f"));
        assert!(f.complete);
        assert_eq!(f.pts.len(), 1);
        assert_eq!(cp.display_node(f.pts[0]), "s.f0");
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::trace::Origin;

    fn node(cp: &ConstraintProgram, name: &str) -> NodeId {
        cp.node_ids()
            .find(|&n| cp.display_node(n) == name)
            .unwrap_or_else(|| panic!("no node named {name}"))
    }

    #[test]
    fn explains_copy_chain_back_to_base() {
        let cp = ddpa_constraints::parse_constraints("p = &o\nq = p\nr = q\n").expect("parses");
        let mut engine = DemandEngine::new(&cp, DemandConfig::default().with_trace());
        let r = node(&cp, "r");
        let o = node(&cp, "o");
        assert!(engine.points_to(r).contains(o));
        let explanation = engine.explain_points_to(r, o).expect("traced");
        assert_eq!(explanation.steps.len(), 3);
        assert_eq!(
            explanation.steps.last().expect("base step").origin,
            Origin::Base
        );
        let text = explanation.render(&cp);
        assert!(text.contains("o ∈ pts(r)"), "{text}");
        assert!(text.contains("o ∈ pts(p)"), "{text}");
        assert!(text.contains("[ADDR]"), "{text}");
    }

    #[test]
    fn explains_through_loads_and_stores() {
        let cp = ddpa_constraints::parse_constraints("p = &o\nx = &t\n*p = x\ny = *p\n")
            .expect("parses");
        let mut engine = DemandEngine::new(&cp, DemandConfig::default().with_trace());
        let y = node(&cp, "y");
        let t = node(&cp, "t");
        assert!(engine.points_to(y).contains(t));
        let explanation = engine.explain_points_to(y, t).expect("traced");
        // The chain ends at x = &t.
        assert_eq!(explanation.steps.last().expect("base").origin, Origin::Base);
        assert!(explanation.steps.len() >= 2);
    }

    #[test]
    fn no_trace_without_flag_or_fact() {
        let cp = ddpa_constraints::parse_constraints("p = &o\nq = &o2\n").expect("parses");
        let (p, o, o2) = (node(&cp, "p"), node(&cp, "o"), node(&cp, "o2"));
        // Tracing disabled.
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        let _ = engine.points_to(p);
        assert!(engine.explain_points_to(p, o).is_none());
        // Tracing enabled, but the fact is false.
        let mut engine = DemandEngine::new(&cp, DemandConfig::default().with_trace());
        let _ = engine.points_to(p);
        assert!(engine.explain_points_to(p, o2).is_none());
    }

    #[test]
    fn tracing_does_not_change_answers() {
        let cp = ddpa_constraints::parse_constraints(
            "p = &a\nq = p\n*q = p\nr = *q\nx = y\ny = x\nx = &b\n",
        )
        .expect("parses");
        let mut plain = DemandEngine::new(&cp, DemandConfig::default());
        let mut traced = DemandEngine::new(&cp, DemandConfig::default().with_trace());
        for n in cp.node_ids() {
            assert_eq!(plain.points_to(n).pts, traced.points_to(n).pts);
        }
    }
}
