//! Query results.

use ddpa_constraints::{FuncId, NodeId};

/// The answer to a points-to or pointed-to-by query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryResult {
    /// The computed set, sorted by node id.
    ///
    /// When [`complete`](Self::complete) is `false` this is a sound
    /// *under*-approximation of the facts derived so far — clients must
    /// fall back to a conservative answer instead of using it as-is.
    pub pts: Vec<NodeId>,
    /// `true` if the query was fully resolved within budget; the set then
    /// equals the exhaustive (whole-program) answer.
    pub complete: bool,
    /// Work units (rule firings) consumed by this query.
    pub work: u64,
}

impl QueryResult {
    /// Returns `true` if `target` is in the computed set.
    pub fn contains(&self, target: NodeId) -> bool {
        self.pts.binary_search(&target).is_ok()
    }
}

/// The answer to a call-target query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallTargets {
    /// Possible callees, sorted.
    pub targets: Vec<FuncId>,
    /// `true` if computed precisely on demand; `false` if the budget ran
    /// out and `targets` is the conservative fallback (every
    /// address-taken function).
    pub resolved: bool,
    /// Work units consumed.
    pub work: u64,
}

/// The answer to a may-alias query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AliasResult {
    /// `true` if the two pointers may alias. Conservative: an unresolved
    /// query reports `true`.
    pub may_alias: bool,
    /// `true` if the answer is exact (both points-to queries resolved, or
    /// an intersection was already found in the partial sets).
    pub resolved: bool,
    /// Work units consumed.
    pub work: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_uses_sorted_set() {
        let r = QueryResult {
            pts: vec![NodeId::from_u32(1), NodeId::from_u32(4)],
            complete: true,
            work: 3,
        };
        assert!(r.contains(NodeId::from_u32(4)));
        assert!(!r.contains(NodeId::from_u32(2)));
    }
}
