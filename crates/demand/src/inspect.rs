//! Goal-graph introspection and critical-path analysis.
//!
//! The engine attributes work and rule firings to the goal being
//! processed ([`crate::engine::GoalCost`]); this module turns that
//! attribution plus the live watcher lists into three post-hoc views:
//!
//! * **Goal profiles** ([`DemandEngine::goal_profiles`] /
//!   [`DemandEngine::hottest_goals`]) — per-goal work/fires, the "top"
//!   view of where a query's budget went;
//! * **The goal dependency graph** ([`DemandEngine::goal_graph`]) —
//!   one node per live (non-merged) goal, one edge per watcher from the
//!   *producer* goal it is installed on to the *consumer* goal it
//!   delivers into ([`Watcher::consumer`]), exportable as Graphviz DOT
//!   or JSON;
//! * **The critical path** ([`DemandEngine::critical_path`]) — total
//!   work `W`, span `S` (the heaviest dependency chain, computed over
//!   the SCC condensation of the goal graph since `pts`/`ptb` recursion
//!   makes it cyclic), and the parallelism-headroom bound `W/S`: no
//!   scheduler can beat `W/S`-fold speedup on this workload, which is
//!   exactly the number ROADMAP item 1 needs before building one.
//!
//! Everything here reads engine state without mutating it, so
//! introspection never perturbs deduction.

use std::collections::HashMap;
use std::fmt::Write as _;

use ddpa_constraints::ConstraintProgram;
use ddpa_obs::JsonValue;

use crate::engine::DemandEngine;
use crate::goal::{Goal, Watcher};

/// `pts(name)` / `ptb(name)` for human-facing output.
pub fn display_goal(cp: &ConstraintProgram, goal: Goal) -> String {
    match goal {
        Goal::Pts(n) => format!("pts({})", cp.display_node(n)),
        Goal::Ptb(n) => format!("ptb({})", cp.display_node(n)),
    }
}

/// Escapes a label for the dot format.
fn esc(label: &str) -> String {
    label.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Work/fires attribution for one live goal.
#[derive(Clone, Copy, Debug)]
pub struct GoalProfile {
    /// The goal's canonical key.
    pub goal: Goal,
    /// Work ticks charged while processing this goal (cycle members fold
    /// into their representative).
    pub work: u64,
    /// Rule firings delivered while processing this goal.
    pub fires: u64,
    /// Whether the goal reached its final fixpoint.
    pub complete: bool,
    /// Elements in the goal's member set.
    pub elems: usize,
    /// Installed watchers (outgoing dependency edges).
    pub watchers: usize,
}

/// One node of the exported goal graph.
#[derive(Clone, Copy, Debug)]
pub struct GoalGraphNode {
    /// The goal's canonical key.
    pub goal: Goal,
    /// Attributed work ticks.
    pub work: u64,
    /// Attributed rule firings.
    pub fires: u64,
    /// Whether the goal is at its final fixpoint.
    pub complete: bool,
}

/// One dependency edge: `nodes[from]` produces elements that
/// `nodes[to]`'s watcher consumes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GoalEdge {
    /// Producer index into [`GoalGraph::nodes`].
    pub from: usize,
    /// Consumer index into [`GoalGraph::nodes`].
    pub to: usize,
    /// The watcher kind realizing the edge ([`Watcher::kind_name`]).
    pub kind: &'static str,
}

/// The goal dependency graph: who feeds whom, weighted by attribution.
///
/// Self-loops (a goal subscribed to itself, e.g. the `FwdProp`
/// self-subscription every `ptb` goal carries) are omitted — they are
/// vacuous for scheduling and clutter the render.
#[derive(Clone, Debug, Default)]
pub struct GoalGraph {
    /// Live (non-merged) goals.
    pub nodes: Vec<GoalGraphNode>,
    /// Deduplicated dependency edges between distinct nodes.
    pub edges: Vec<GoalEdge>,
}

impl GoalGraph {
    /// Renders the graph as a Graphviz digraph (same idioms as
    /// `ddpa_constraints::to_dot`): ellipses for `pts` goals, boxes for
    /// `ptb` goals, completed goals filled, labels carrying the work
    /// attribution.
    pub fn to_dot(&self, cp: &ConstraintProgram) -> String {
        let mut out = String::from("digraph goals {\n  rankdir=LR;\n  node [fontsize=10];\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let shape = match n.goal {
                Goal::Pts(_) => "shape=ellipse",
                Goal::Ptb(_) => "shape=box",
            };
            let fill = if n.complete {
                ", style=filled, fillcolor=honeydew"
            } else {
                ", style=dashed"
            };
            let _ = writeln!(
                out,
                "  g{} [label=\"{}\\nw={} f={}\", {}{}];",
                i,
                esc(&display_goal(cp, n.goal)),
                n.work,
                n.fires,
                shape,
                fill
            );
        }
        for e in &self.edges {
            let _ = writeln!(
                out,
                "  g{} -> g{} [label=\"{}\", fontsize=8];",
                e.from, e.to, e.kind
            );
        }
        out.push_str("}\n");
        out
    }

    /// The graph as a JSON object: `{"nodes":[...],"edges":[...]}` with
    /// goal names resolved against `cp`.
    pub fn to_json(&self, cp: &ConstraintProgram) -> JsonValue {
        let nodes = self
            .nodes
            .iter()
            .map(|n| {
                JsonValue::Object(vec![
                    ("goal".to_owned(), JsonValue::str(display_goal(cp, n.goal))),
                    ("work".to_owned(), JsonValue::U64(n.work)),
                    ("fires".to_owned(), JsonValue::U64(n.fires)),
                    ("complete".to_owned(), JsonValue::Bool(n.complete)),
                ])
            })
            .collect();
        let edges = self
            .edges
            .iter()
            .map(|e| {
                JsonValue::Object(vec![
                    ("from".to_owned(), JsonValue::U64(e.from as u64)),
                    ("to".to_owned(), JsonValue::U64(e.to as u64)),
                    ("kind".to_owned(), JsonValue::str(e.kind)),
                ])
            })
            .collect();
        JsonValue::Object(vec![
            ("nodes".to_owned(), JsonValue::Array(nodes)),
            ("edges".to_owned(), JsonValue::Array(edges)),
        ])
    }
}

/// The work/span profile of the tabled goal graph.
#[derive(Clone, Debug)]
pub struct CriticalPath {
    /// Total attributed work `W` across all live goals.
    pub work: u64,
    /// Span `S`: the heaviest chain of dependent work (computed over the
    /// SCC condensation, each component weighing the sum of its members).
    pub span: u64,
    /// The parallelism-headroom bound `W/S` (1.0 when there is no work).
    /// An ideal scheduler with unlimited workers finishes in `S`, so no
    /// intra-query parallelization can beat `W/S`-fold speedup.
    pub headroom: f64,
    /// Live goals considered.
    pub goals: usize,
    /// Dependency edges between distinct condensation components.
    pub edges: usize,
    /// The chain achieving `S`, source to sink: the heaviest goal of each
    /// component along the critical path.
    pub path: Vec<Goal>,
}

impl CriticalPath {
    /// The profile as a JSON object (stable schema, see
    /// `docs/OBSERVABILITY.md`).
    pub fn to_json(&self, cp: &ConstraintProgram) -> JsonValue {
        JsonValue::Object(vec![
            ("work".to_owned(), JsonValue::U64(self.work)),
            ("span".to_owned(), JsonValue::U64(self.span)),
            ("headroom".to_owned(), JsonValue::F64(self.headroom)),
            ("goals".to_owned(), JsonValue::U64(self.goals as u64)),
            ("edges".to_owned(), JsonValue::U64(self.edges as u64)),
            (
                "path".to_owned(),
                JsonValue::Array(
                    self.path
                        .iter()
                        .map(|&g| JsonValue::str(display_goal(cp, g)))
                        .collect(),
                ),
            ),
        ])
    }
}

impl<'p> DemandEngine<'p> {
    /// Live (non-merged) goal indices, in table order.
    fn live_goals(&self) -> Vec<u32> {
        (0..self.goals.len() as u32)
            .filter(|&gi| !self.goals[gi as usize].merged)
            .collect()
    }

    /// Per-goal work/fires attribution for every live goal, in table
    /// order. Merged cycle members are folded into their representative.
    pub fn goal_profiles(&self) -> Vec<GoalProfile> {
        self.live_goals()
            .into_iter()
            .map(|gi| {
                let state = &self.goals[gi as usize];
                let cost = self.costs[gi as usize];
                GoalProfile {
                    goal: self.keys[gi as usize],
                    work: cost.work,
                    fires: cost.fires,
                    complete: state.complete,
                    elems: state.elems.len(),
                    watchers: state.watchers.len(),
                }
            })
            .collect()
    }

    /// The `k` goals that consumed the most work, hottest first (ties
    /// broken by fires, then table order for determinism).
    pub fn hottest_goals(&self, k: usize) -> Vec<GoalProfile> {
        let mut profiles = self.goal_profiles();
        profiles.sort_by_key(|p| std::cmp::Reverse((p.work, p.fires)));
        profiles.truncate(k);
        profiles
    }

    /// The goal dependency graph over the live goals: an edge per watcher
    /// from its producer goal to its consumer ([`Watcher::consumer`]),
    /// deduplicated, self-loops omitted.
    pub fn goal_graph(&self) -> GoalGraph {
        let live = self.live_goals();
        let node_of: HashMap<u32, usize> =
            live.iter().enumerate().map(|(i, &gi)| (gi, i)).collect();
        let nodes = live
            .iter()
            .map(|&gi| {
                let state = &self.goals[gi as usize];
                let cost = self.costs[gi as usize];
                GoalGraphNode {
                    goal: self.keys[gi as usize],
                    work: cost.work,
                    fires: cost.fires,
                    complete: state.complete,
                }
            })
            .collect();
        let mut seen = std::collections::HashSet::new();
        let mut edges = Vec::new();
        for (from, &gi) in live.iter().enumerate() {
            for watcher in &self.goals[gi as usize].watchers {
                let Some(to) = self.consumer_node(watcher, &node_of) else {
                    continue;
                };
                if to == from {
                    continue;
                }
                let edge = GoalEdge {
                    from,
                    to,
                    kind: watcher.kind_name(),
                };
                if seen.insert(edge) {
                    edges.push(edge);
                }
            }
        }
        GoalGraph { nodes, edges }
    }

    /// Resolves a watcher's consumer goal to a live-node index: tabled
    /// goals route through the cycle union-find to their representative;
    /// untabled consumers (the watcher was installed speculatively) have
    /// no node. Tolerant by construction — a half-built table just yields
    /// fewer edges.
    fn consumer_node(&self, watcher: &Watcher, node_of: &HashMap<u32, usize>) -> Option<usize> {
        let &ci = self.index.get(&watcher.consumer())?;
        node_of.get(&self.cycles.find_readonly(ci)).copied()
    }

    /// Computes the work/span profile of the current goal table: total
    /// work `W`, span `S` (heaviest dependency chain over the SCC
    /// condensation of [`DemandEngine::goal_graph`]), and the `W/S`
    /// parallelism-headroom bound.
    pub fn critical_path(&self) -> CriticalPath {
        let graph = self.goal_graph();
        let n = graph.nodes.len();
        let mut adj = vec![Vec::new(); n];
        for e in &graph.edges {
            adj[e.from].push(e.to);
        }
        let (comp, ncomps) = condense(n, &adj);

        let mut weight = vec![0u64; ncomps];
        // The heaviest member represents its component in the reported path.
        let mut rep = vec![usize::MAX; ncomps];
        for (v, node) in graph.nodes.iter().enumerate() {
            let c = comp[v];
            weight[c] += node.work;
            if rep[c] == usize::MAX || graph.nodes[rep[c]].work < node.work {
                rep[c] = v;
            }
        }
        let work: u64 = weight.iter().sum();

        // Tarjan emits components in reverse topological order: an edge
        // u → v with comp[u] ≠ comp[v] always has comp[v] < comp[u]. So a
        // single sweep from high ids to low relaxes every inter-component
        // edge after its source's distance is final.
        let mut comp_edges = std::collections::HashSet::new();
        for e in &graph.edges {
            let (cu, cv) = (comp[e.from], comp[e.to]);
            if cu != cv {
                debug_assert!(cv < cu, "condensation order violated");
                comp_edges.insert((cu, cv));
            }
        }
        let mut dist = weight.clone();
        let mut prev: Vec<Option<usize>> = vec![None; ncomps];
        let mut by_source: Vec<Vec<usize>> = vec![Vec::new(); ncomps];
        for &(cu, cv) in &comp_edges {
            by_source[cu].push(cv);
        }
        for cu in (0..ncomps).rev() {
            for &cv in &by_source[cu] {
                let through = dist[cu] + weight[cv];
                if through > dist[cv] {
                    dist[cv] = through;
                    prev[cv] = Some(cu);
                }
            }
        }
        let (span, sink) = dist
            .iter()
            .enumerate()
            .map(|(c, &d)| (d, c))
            .max()
            .unwrap_or((0, 0));

        let mut path = Vec::new();
        if n > 0 && span > 0 {
            let mut at = Some(sink);
            while let Some(c) = at {
                path.push(graph.nodes[rep[c]].goal);
                at = prev[c];
            }
            path.reverse();
        }
        let headroom = if span == 0 {
            1.0
        } else {
            work as f64 / span as f64
        };
        CriticalPath {
            work,
            span,
            headroom,
            goals: n,
            edges: comp_edges.len(),
            path,
        }
    }

    /// The flight recorder's current contents rendered as JSONL-ready
    /// objects (`"kind":"flight"` lines), newest last, with goal indices
    /// resolved to names. Indices outside the current table (recorded
    /// before a `clear`/`reload`) render as `goal#N` — reconstruction
    /// tolerates gaps and generation skew. Returns an empty vec when the
    /// recorder is off.
    pub fn flight_events_json(&self, limit: usize) -> Vec<JsonValue> {
        let Some(flight) = self.flight_recorder() else {
            return Vec::new();
        };
        let snap = flight.snapshot();
        let cp = self.program();
        let name_of = |gi: u32| -> String {
            self.keys
                .get(gi as usize)
                .map(|&g| display_goal(cp, g))
                .unwrap_or_else(|| format!("goal#{gi}"))
        };
        let skip = snap.events.len().saturating_sub(limit);
        snap.events
            .iter()
            .skip(skip)
            .map(|e| {
                use ddpa_obs::FlightEventKind as K;
                let mut fields = vec![
                    ("kind".to_owned(), JsonValue::str("flight")),
                    ("seq".to_owned(), JsonValue::U64(e.seq)),
                    ("event".to_owned(), JsonValue::str(e.kind.as_str())),
                ];
                // Scheduler events address frame *slots* (a stable
                // program-node encoding), not this table's goal indices —
                // report them raw instead of resolving to a wrong name.
                match e.kind {
                    K::Parked | K::Stolen | K::Woken => {
                        fields.push(("slot".to_owned(), JsonValue::U64(e.a as u64)));
                    }
                    _ => fields.push(("goal".to_owned(), JsonValue::str(name_of(e.a)))),
                }
                match e.kind {
                    K::Blocked => {
                        let consumer = if e.b == u32::MAX {
                            "?".to_owned()
                        } else {
                            name_of(e.b)
                        };
                        fields.push(("consumer".to_owned(), JsonValue::str(consumer)));
                    }
                    K::Fire => {
                        let kind = Watcher::KIND_NAMES
                            .get(e.b as usize)
                            .copied()
                            .unwrap_or("?");
                        fields.push(("watcher".to_owned(), JsonValue::str(kind)));
                        fields.push(("stride".to_owned(), JsonValue::U64(e.work as u64)));
                    }
                    K::MemoHit => {
                        fields.push(("shared".to_owned(), JsonValue::Bool(e.b == 1)));
                    }
                    K::Completed => {
                        fields.push(("elems".to_owned(), JsonValue::U64(e.b as u64)));
                        fields.push(("work".to_owned(), JsonValue::U64(e.work as u64)));
                    }
                    K::CycleMerged => {
                        fields.push(("members".to_owned(), JsonValue::U64(e.b as u64)));
                    }
                    K::Parked | K::Woken => {
                        fields.push(("worker".to_owned(), JsonValue::U64(e.b as u64)));
                    }
                    K::Stolen => {
                        fields.push(("thief".to_owned(), JsonValue::U64(e.b as u64)));
                    }
                    K::Activated | K::Resumed => {}
                }
                JsonValue::Object(fields)
            })
            .collect()
    }
}

/// Iterative Tarjan SCC over `adj`; returns (component id per node,
/// component count). Component ids come out in reverse topological order
/// of the condensation: every inter-component edge points from a higher
/// id to a lower one.
fn condense(n: usize, adj: &[Vec<usize>]) -> (Vec<usize>, usize) {
    const UNSEEN: usize = usize::MAX;
    let mut index = vec![UNSEEN; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp = vec![UNSEEN; n];
    let mut next = 0usize;
    let mut ncomps = 0usize;
    let mut call: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if index[start] != UNSEEN {
            continue;
        }
        call.push((start, 0));
        while let Some(&(v, ci)) = call.last() {
            if ci == 0 && index[v] == UNSEEN {
                index[v] = next;
                low[v] = next;
                next += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if ci < adj[v].len() {
                call.last_mut().expect("frame exists").1 = ci + 1;
                let w = adj[v][ci];
                if index[w] == UNSEEN {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("scc stack non-empty");
                        on_stack[w] = false;
                        comp[w] = ncomps;
                        if w == v {
                            break;
                        }
                    }
                    ncomps += 1;
                }
                if let Some(&(p, _)) = call.last() {
                    low[p] = low[p].min(low[v]);
                }
            }
        }
    }
    (comp, ncomps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DemandConfig;
    use ddpa_constraints::NodeId;

    fn node(cp: &ConstraintProgram, name: &str) -> NodeId {
        cp.node_ids()
            .find(|&n| cp.display_node(n) == name)
            .unwrap_or_else(|| panic!("no node named {name}"))
    }

    #[test]
    fn condense_finds_sccs_in_reverse_topo_order() {
        // 0 → 1 ⇄ 2 → 3; SCCs: {0}, {1,2}, {3}.
        let adj = vec![vec![1], vec![2], vec![1, 3], vec![]];
        let (comp, ncomps) = condense(4, &adj);
        assert_eq!(ncomps, 3);
        assert_eq!(comp[1], comp[2]);
        assert_ne!(comp[0], comp[1]);
        assert_ne!(comp[1], comp[3]);
        // Reverse topological: every inter-component edge decreases id.
        assert!(comp[0] > comp[1], "0→1 edge points to a smaller comp id");
        assert!(comp[2] > comp[3], "2→3 edge points to a smaller comp id");
    }

    #[test]
    fn chain_has_headroom_one() {
        // Pure copy chain: every goal depends on the previous one, so the
        // span is the whole work — nothing to parallelize.
        let cp = ddpa_constraints::parse_constraints("p = &o\nq = p\nr = q\n").expect("parses");
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        let r = engine.points_to(node(&cp, "r"));
        assert!(r.complete);
        let profile = engine.critical_path();
        assert!(profile.work > 0);
        assert_eq!(profile.span, profile.work, "chain is fully sequential");
        assert!((profile.headroom - 1.0).abs() < 1e-9);
        assert!(!profile.path.is_empty());
        // The per-goal attribution sums to the engine's work counter.
        assert_eq!(profile.work, engine.stats().work);
    }

    #[test]
    fn independent_chains_have_headroom_near_two() {
        let cp = ddpa_constraints::parse_constraints(
            "a1 = &o1\na2 = a1\na3 = a2\nb1 = &o2\nb2 = b1\nb3 = b2\n",
        )
        .expect("parses");
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        assert!(engine.points_to(node(&cp, "a3")).complete);
        assert!(engine.points_to(node(&cp, "b3")).complete);
        let profile = engine.critical_path();
        assert!(
            profile.span < profile.work,
            "independent chains overlap: span {} < work {}",
            profile.span,
            profile.work
        );
        assert!(profile.headroom > 1.5, "headroom {}", profile.headroom);
    }

    #[test]
    fn hottest_goals_sorted_by_work() {
        let cp =
            ddpa_constraints::parse_constraints("p = &a\np = &b\nq = p\nr = q\n").expect("parses");
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        assert!(engine.points_to(node(&cp, "r")).complete);
        let hot = engine.hottest_goals(2);
        assert_eq!(hot.len(), 2);
        assert!(hot[0].work >= hot[1].work);
        let all = engine.goal_profiles();
        assert!(all.len() >= hot.len());
        let max_work = all.iter().map(|p| p.work).max().expect("goals exist");
        assert_eq!(hot[0].work, max_work);
    }

    #[test]
    fn goal_graph_exports_dot_and_json() {
        let cp = ddpa_constraints::parse_constraints("p = &o\nq = p\n").expect("parses");
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        assert!(engine.points_to(node(&cp, "q")).complete);
        let graph = engine.goal_graph();
        assert!(!graph.nodes.is_empty());
        assert!(
            graph.edges.iter().any(|e| e.kind == "copy_to"),
            "q = p materializes a copy_to edge"
        );
        let dot = graph.to_dot(&cp);
        assert!(dot.starts_with("digraph goals {"));
        assert!(dot.ends_with("}\n"));
        assert!(dot.contains("pts(q)"));
        let json = graph.to_json(&cp).to_string();
        ddpa_obs::validate_jsonl_line(&json).expect("graph json is one valid object");
        let parsed = ddpa_obs::parse_json(&json).expect("parses");
        assert_eq!(
            parsed
                .get("nodes")
                .and_then(JsonValue::as_array)
                .map(<[_]>::len),
            Some(graph.nodes.len())
        );
    }

    #[test]
    fn collapsed_cycles_condense_into_one_node() {
        let cp =
            ddpa_constraints::parse_constraints("x = y\ny = x\nx = &a\ny = &b\n").expect("parses");
        let mut engine = DemandEngine::new(&cp, DemandConfig::default().with_collapse_threshold(1));
        assert!(engine.points_to(node(&cp, "x")).complete);
        let graph = engine.goal_graph();
        let pts_nodes = graph
            .nodes
            .iter()
            .filter(|n| matches!(n.goal, Goal::Pts(_)))
            .count();
        assert_eq!(pts_nodes, 1, "x/y merged into one representative node");
        let profile = engine.critical_path();
        assert_eq!(profile.work, engine.stats().work, "merged costs preserved");
    }

    #[test]
    fn flight_events_render_with_names_and_tolerate_unknown_indices() {
        let cp = ddpa_constraints::parse_constraints("p = &o\nq = p\n").expect("parses");
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        assert!(engine.points_to(node(&cp, "q")).complete);
        let lines = engine.flight_events_json(1000);
        assert!(!lines.is_empty());
        for line in &lines {
            let text = line.to_string();
            ddpa_obs::validate_metrics_line(&text).expect("flight line validates");
            assert_eq!(line.get("kind").and_then(JsonValue::as_str), Some("flight"));
        }
        assert!(
            lines
                .iter()
                .any(|l| l.get("goal").and_then(JsonValue::as_str) == Some("pts(q)")),
            "goal indices resolve to names"
        );
        // An index past the table renders as goal#N instead of panicking.
        engine.flight_recorder().expect("recorder on").record(
            ddpa_obs::FlightEventKind::Activated,
            9999,
            0,
            0,
        );
        let lines = engine.flight_events_json(1000);
        assert!(lines
            .iter()
            .any(|l| l.get("goal").and_then(JsonValue::as_str) == Some("goal#9999")));
        // A limit keeps only the newest events.
        let limited = engine.flight_events_json(3);
        assert_eq!(limited.len(), 3);
        let all = engine.flight_events_json(usize::MAX);
        assert_eq!(
            limited.last().and_then(|l| l.get("seq").cloned()),
            all.last().and_then(|l| l.get("seq").cloned()),
        );
    }

    #[test]
    fn engine_wraps_tiny_ring_dropping_oldest_first() {
        // A copy chain long enough to overflow a capacity-8 ring many
        // times over, with every rule firing recorded (stride 1).
        let mut src = String::from("p0 = &o\n");
        for i in 1..40 {
            src.push_str(&format!("p{i} = p{}\n", i - 1));
        }
        let cp = ddpa_constraints::parse_constraints(&src).expect("parses");
        let mut engine = DemandEngine::new(&cp, DemandConfig::default().with_flight(8, 1));
        let answer = engine.points_to(node(&cp, "p39"));
        assert!(answer.complete);
        let flight = engine.flight_recorder().expect("recorder on").clone();
        assert!(flight.recorded() > 8, "ring overflowed");
        assert_eq!(
            flight.dropped(),
            flight.recorded() - 8,
            "drop counter is exact"
        );
        let snap = flight.snapshot();
        assert_eq!(snap.events.len(), 8, "only the newest window survives");
        let oldest = flight.recorded() - 8;
        for (i, e) in snap.events.iter().enumerate() {
            assert_eq!(e.seq, oldest + i as u64, "oldest dropped first, order kept");
        }
        // Same query under a huge sampling stride: structural events
        // remain but only the first rule firing makes it into the ring.
        let mut sparse =
            DemandEngine::new(&cp, DemandConfig::default().with_flight(1 << 12, u32::MAX));
        let sparse_answer = sparse.points_to(node(&cp, "p39"));
        assert_eq!(
            answer.pts, sparse_answer.pts,
            "sampling never changes answers"
        );
        let sparse_snap = sparse.flight_recorder().expect("recorder on").snapshot();
        assert!(!sparse_snap.events.is_empty());
        let fires = sparse_snap
            .events
            .iter()
            .filter(|e| e.kind == ddpa_obs::FlightEventKind::Fire)
            .count();
        assert_eq!(fires, 1, "stride u32::MAX keeps only the first firing");
        assert!(flight.fires_seen() > 1, "the chain fired many rules");
        assert_eq!(
            flight.fires_seen(),
            sparse.flight_recorder().expect("recorder on").fires_seen(),
            "both engines saw the same firings; only the kept fraction differs"
        );
    }

    #[test]
    fn recorder_off_yields_no_events_and_identical_answers() {
        let cp = ddpa_constraints::parse_constraints("p = &a\np = &b\nq = p\nr = *q\n*q = p\n")
            .expect("parses");
        let mut on = DemandEngine::new(&cp, DemandConfig::default());
        let mut off = DemandEngine::new(&cp, DemandConfig::default().without_flight_recorder());
        let r_on = on.points_to(node(&cp, "r"));
        let r_off = off.points_to(node(&cp, "r"));
        assert_eq!(r_on.pts, r_off.pts, "answers bit-identical on/off");
        assert_eq!(r_on.work, r_off.work, "work identical on/off");
        assert!(on.flight_recorder().is_some());
        assert!(off.flight_recorder().is_none());
        assert!(off.flight_events_json(100).is_empty());
        assert!(on.stats().flight_events > 0);
        assert_eq!(off.stats().flight_events, 0);
    }
}
