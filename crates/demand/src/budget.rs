//! Per-query work budgets.
//!
//! The unit of work is one *rule firing* — delivering one points-to /
//! pointed-by fact across one deduction-rule instance, the demand-driven
//! analogue of traversing one value-flow edge. Budgets bound a query's
//! latency in interactive settings; an exhausted query is reported
//! unresolved and the client falls back to a sound over-approximation.

/// A decrementing work budget.
///
/// # Examples
///
/// ```
/// use ddpa_demand::Budget;
///
/// let mut b = Budget::limited(2);
/// assert!(b.charge(1));
/// assert!(b.charge(1));
/// assert!(!b.charge(1));
/// assert!(b.exhausted());
/// assert_eq!(b.used(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct Budget {
    limit: Option<u64>,
    used: u64,
    exhausted: bool,
}

impl Budget {
    /// An unlimited budget (still counts work).
    pub fn unlimited() -> Self {
        Budget {
            limit: None,
            used: 0,
            exhausted: false,
        }
    }

    /// A budget of `limit` work units.
    pub fn limited(limit: u64) -> Self {
        Budget {
            limit: Some(limit),
            used: 0,
            exhausted: false,
        }
    }

    /// Creates a budget from an optional limit.
    pub fn new(limit: Option<u64>) -> Self {
        Budget {
            limit,
            used: 0,
            exhausted: false,
        }
    }

    /// Tries to consume `amount` units. Returns `false` (and marks the
    /// budget exhausted) if the limit would be exceeded.
    ///
    /// Overflowing the `u64` work counter is treated as exhaustion, never
    /// as wrap-around: a budget that has already counted near-`u64::MAX`
    /// work must not suddenly appear fresh.
    #[inline]
    pub fn charge(&mut self, amount: u64) -> bool {
        let Some(next) = self.used.checked_add(amount) else {
            self.exhausted = true;
            return false;
        };
        if let Some(limit) = self.limit {
            if next > limit {
                self.exhausted = true;
                return false;
            }
        }
        self.used = next;
        true
    }

    /// Work consumed so far.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Returns `true` once a charge has failed.
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// The configured limit, if any.
    pub fn limit(&self) -> Option<u64> {
        self.limit
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let mut b = Budget::unlimited();
        for _ in 0..10_000 {
            assert!(b.charge(1));
        }
        assert!(!b.exhausted());
        assert_eq!(b.used(), 10_000);
    }

    #[test]
    fn limited_stops_at_limit() {
        let mut b = Budget::limited(5);
        assert!(b.charge(3));
        assert!(b.charge(2));
        assert!(!b.charge(1));
        assert!(b.exhausted());
        assert_eq!(b.used(), 5);
    }

    #[test]
    fn over_charge_rejected_whole() {
        let mut b = Budget::limited(5);
        assert!(!b.charge(6));
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn new_from_option() {
        assert!(Budget::new(None).limit().is_none());
        assert_eq!(Budget::new(Some(7)).limit(), Some(7));
    }

    #[test]
    fn counter_overflow_is_exhaustion_not_wraparound() {
        // An unlimited budget near u64::MAX: the next large charge would
        // overflow the work counter. It must fail and mark exhaustion —
        // not wrap and report the budget fresh.
        let mut b = Budget::unlimited();
        assert!(b.charge(u64::MAX - 1));
        assert!(!b.charge(2));
        assert!(b.exhausted());
        assert_eq!(b.used(), u64::MAX - 1);
        // The last representable unit can still be charged exactly.
        let mut c = Budget::unlimited();
        assert!(c.charge(u64::MAX));
        assert_eq!(c.used(), u64::MAX);
        assert!(!c.charge(1));

        // A limited budget with the same near-MAX usage: the overflowing
        // comparison `used + amount > limit` must not wrap either.
        let mut d = Budget::limited(u64::MAX);
        assert!(d.charge(u64::MAX - 1));
        assert!(!d.charge(3));
        assert!(d.exhausted());
        assert_eq!(d.used(), u64::MAX - 1);
    }
}
