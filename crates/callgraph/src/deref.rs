//! Dereference-site auditing.
//!
//! For every load `x = *p` and store `*p = x`, the pointer `p` should point
//! somewhere. An empty points-to set means the dereference can only go
//! through an uninitialized or null pointer (a *wild* dereference) — a
//! useful lint, and a client whose query load is "one query per
//! dereference site", much denser than the call-graph client.

use ddpa_constraints::{ConstraintProgram, NodeId};
use ddpa_demand::DemandEngine;

/// What kind of memory access a site is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DerefKind {
    /// `dst = *ptr`
    Load,
    /// `*ptr = src`
    Store,
}

/// One audited dereference.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DerefSite {
    /// Load or store.
    pub kind: DerefKind,
    /// The dereferenced pointer.
    pub ptr: NodeId,
    /// Size of `pts(ptr)`; 0 flags a wild dereference.
    pub targets: usize,
    /// `false` if the query ran out of budget (the site is then *not*
    /// flagged — partial sets cannot prove emptiness).
    pub resolved: bool,
    /// Work consumed by the query.
    pub work: u64,
}

/// The audit report over all dereference sites of a program.
#[derive(Clone, Debug, Default)]
pub struct DerefAudit {
    /// One entry per load/store, in program order (loads first).
    pub sites: Vec<DerefSite>,
}

impl DerefAudit {
    /// Audits every dereference site of `engine`'s program on demand.
    pub fn run(engine: &mut DemandEngine<'_>) -> Self {
        let cp = engine.program();
        let mut sites = Vec::new();
        let audit = |kind: DerefKind, ptr: NodeId, engine: &mut DemandEngine<'_>| {
            let r = engine.points_to(ptr);
            DerefSite {
                kind,
                ptr,
                targets: r.pts.len(),
                resolved: r.complete,
                work: r.work,
            }
        };
        let loads: Vec<NodeId> = cp.loads().iter().map(|l| l.ptr).collect();
        let stores: Vec<NodeId> = cp.stores().iter().map(|s| s.ptr).collect();
        for ptr in loads {
            sites.push(audit(DerefKind::Load, ptr, engine));
        }
        for ptr in stores {
            sites.push(audit(DerefKind::Store, ptr, engine));
        }
        DerefAudit { sites }
    }

    /// Sites proven to dereference a pointer that points nowhere.
    pub fn wild(&self) -> Vec<&DerefSite> {
        self.sites
            .iter()
            .filter(|s| s.resolved && s.targets == 0)
            .collect()
    }

    /// Sites with exactly one target (strong-update candidates for more
    /// precise analyses).
    pub fn singletons(&self) -> Vec<&DerefSite> {
        self.sites
            .iter()
            .filter(|s| s.resolved && s.targets == 1)
            .collect()
    }

    /// Total work consumed by the audit.
    pub fn total_work(&self) -> u64 {
        self.sites.iter().map(|s| s.work).sum()
    }

    /// A one-line rendering of a site for reports.
    pub fn describe(&self, cp: &ConstraintProgram, site: &DerefSite) -> String {
        let op = match site.kind {
            DerefKind::Load => "load",
            DerefKind::Store => "store",
        };
        format!(
            "{op} through `{}`: {} target(s){}",
            cp.display_node(site.ptr),
            site.targets,
            if site.resolved { "" } else { " (unresolved)" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddpa_demand::DemandConfig;

    #[test]
    fn flags_wild_dereference() {
        // `q` is never initialized: loading through it is wild.
        let cp = ddpa_constraints::parse_constraints("p = &o\nx = *p\ny = *q\n*p = x\n")
            .expect("parses");
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        let audit = DerefAudit::run(&mut engine);
        assert_eq!(audit.sites.len(), 3);
        let wild = audit.wild();
        assert_eq!(wild.len(), 1);
        assert_eq!(cp.display_node(wild[0].ptr), "q");
        assert_eq!(wild[0].kind, DerefKind::Load);
        let described = audit.describe(&cp, wild[0]);
        assert!(described.contains("load through `q`"));
    }

    #[test]
    fn counts_singletons() {
        let cp = ddpa_constraints::parse_constraints("p = &a\nq = &a\nq = &b\nx = *p\ny = *q\n")
            .expect("parses");
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        let audit = DerefAudit::run(&mut engine);
        assert_eq!(audit.singletons().len(), 1);
        assert!(audit.wild().is_empty());
    }

    #[test]
    fn unresolved_sites_are_not_flagged() {
        let cp = ddpa_constraints::parse_constraints("y = *q\n").expect("parses");
        let mut engine = DemandEngine::new(&cp, DemandConfig::default().with_budget(0));
        let audit = DerefAudit::run(&mut engine);
        assert_eq!(audit.sites.len(), 1);
        assert!(!audit.sites[0].resolved);
        assert!(audit.wild().is_empty());
    }
}
