//! Call-graph construction — the paper's motivating client.
//!
//! A compiler needs the targets of every call site. Direct calls are free;
//! indirect calls need the points-to set of the function-pointer
//! expression. The exhaustive route solves the whole program first; the
//! demand route issues one query per indirect call site, which is exactly
//! the query load the paper's evaluation measures.

use ddpa_support::{IndexVec, Summary};

use ddpa_anders::Solution;
use ddpa_constraints::{CallSiteId, CalleeRef, ConstraintProgram, FuncId};
use ddpa_demand::DemandEngine;

/// A resolved call graph: the callee set of every call site.
#[derive(Clone, Debug)]
pub struct CallGraph {
    targets: IndexVec<CallSiteId, Vec<FuncId>>,
}

/// Work statistics from demand-driven call-graph construction.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CallGraphStats {
    /// Indirect call sites fully resolved within budget.
    pub indirect_resolved: usize,
    /// Indirect call sites that fell back to all address-taken functions.
    pub indirect_fallback: usize,
    /// Work (rule firings) per indirect call-site query, in site order.
    pub work_per_query: Vec<u64>,
}

impl CallGraphStats {
    /// Total work across all queries.
    pub fn total_work(&self) -> u64 {
        self.work_per_query.iter().sum()
    }

    /// Distribution summary of per-query work.
    pub fn work_summary(&self) -> Summary {
        let mut samples = self.work_per_query.clone();
        Summary::of(&mut samples)
    }

    /// Fraction of indirect sites resolved precisely, or `None` when the
    /// program has no indirect sites — callers must not mistake "no data"
    /// for "all resolved".
    pub fn resolution_rate(&self) -> Option<f64> {
        let total = self.indirect_resolved + self.indirect_fallback;
        if total == 0 {
            None
        } else {
            Some(self.indirect_resolved as f64 / total as f64)
        }
    }
}

impl CallGraph {
    /// Builds the call graph from an exhaustive solution.
    pub fn from_exhaustive(cp: &ConstraintProgram, solution: &Solution) -> Self {
        let mut targets = IndexVec::with_capacity(cp.callsites().len());
        for cs in cp.callsites().indices() {
            targets.push(solution.call_targets(cs).to_vec());
        }
        CallGraph { targets }
    }

    /// Builds the call graph on demand: one query per indirect call site.
    ///
    /// Unresolved sites (budget exhausted) conservatively target every
    /// address-taken function and are counted in
    /// [`CallGraphStats::indirect_fallback`].
    pub fn from_demand(engine: &mut DemandEngine<'_>) -> (Self, CallGraphStats) {
        let cp = engine.program();
        let mut targets = IndexVec::with_capacity(cp.callsites().len());
        let mut stats = CallGraphStats::default();
        for cs in cp.callsites().indices() {
            let result = engine.call_targets(cs);
            if cp.callsite(cs).is_indirect() {
                stats.work_per_query.push(result.work);
                if result.resolved {
                    stats.indirect_resolved += 1;
                } else {
                    stats.indirect_fallback += 1;
                }
            }
            targets.push(result.targets);
        }
        (CallGraph { targets }, stats)
    }

    /// The callee set of `cs` (sorted).
    pub fn targets(&self, cs: CallSiteId) -> &[FuncId] {
        &self.targets[cs]
    }

    /// Total (call site → callee) edges.
    pub fn num_edges(&self) -> usize {
        self.targets.iter().map(Vec::len).sum()
    }

    /// Function-level edges `(caller, callee)` for call sites whose caller
    /// is known, sorted and deduplicated.
    pub fn func_edges(&self, cp: &ConstraintProgram) -> Vec<(FuncId, FuncId)> {
        let mut edges = Vec::new();
        for (cs, callees) in self.targets.iter_enumerated() {
            if let Some(caller) = cp.callsite(cs).caller {
                for &callee in callees {
                    edges.push((caller, callee));
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        edges
    }

    /// Returns `true` if both graphs resolve every call site identically.
    pub fn same_as(&self, other: &CallGraph) -> bool {
        self.targets == other.targets
    }

    /// Average number of targets per indirect call site (the precision
    /// metric the paper reports for the client).
    pub fn avg_indirect_targets(&self, cp: &ConstraintProgram) -> f64 {
        let mut count = 0usize;
        let mut sum = 0usize;
        for (cs, callees) in self.targets.iter_enumerated() {
            if matches!(cp.callsite(cs).callee, CalleeRef::Indirect(_)) {
                count += 1;
                sum += callees.len();
            }
        }
        if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddpa_demand::DemandConfig;

    fn program() -> ConstraintProgram {
        ddpa_constraints::parse_constraints(
            "fun main/0\n\
             fun a/0\n\
             fun b/0\n\
             fun unused/0\n\
             fp = &a\n\
             fp = &b\n\
             taken = &unused\n\
             icall fp() in main\n\
             call a() in main\n",
        )
        .expect("parses")
    }

    #[test]
    fn demand_matches_exhaustive() {
        let cp = program();
        let exhaustive = CallGraph::from_exhaustive(&cp, &ddpa_anders::solve(&cp));
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        let (demand, stats) = CallGraph::from_demand(&mut engine);
        assert!(demand.same_as(&exhaustive));
        assert_eq!(stats.indirect_resolved, 1);
        assert_eq!(stats.indirect_fallback, 0);
        assert_eq!(stats.resolution_rate(), Some(1.0));
    }

    #[test]
    fn indirect_targets_and_edges() {
        let cp = program();
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        let (cg, _) = CallGraph::from_demand(&mut engine);
        let icall = cp.indirect_callsites()[0];
        assert_eq!(cg.targets(icall).len(), 2);
        assert_eq!(cg.avg_indirect_targets(&cp), 2.0);
        // Deduplicated function edges: main → a and main → b.
        assert_eq!(cg.func_edges(&cp).len(), 2);
        assert_eq!(cg.num_edges(), 3);
    }

    #[test]
    fn no_indirect_sites_is_no_data() {
        let cp = ddpa_constraints::parse_constraints("p = &o\ncall f() in f\nfun f/0\n")
            .unwrap_or_else(|_| ddpa_constraints::parse_constraints("p = &o\n").expect("parses"));
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        let (_, stats) = CallGraph::from_demand(&mut engine);
        assert_eq!(stats.indirect_resolved + stats.indirect_fallback, 0);
        assert_eq!(stats.resolution_rate(), None, "no sites is not a 100% rate");
    }

    #[test]
    fn zero_budget_falls_back() {
        let cp = program();
        let mut engine = DemandEngine::new(&cp, DemandConfig::default().with_budget(0));
        let (cg, stats) = CallGraph::from_demand(&mut engine);
        assert_eq!(stats.indirect_fallback, 1);
        let icall = cp.indirect_callsites()[0];
        // Fallback = all address-taken functions (a, b, unused).
        assert_eq!(cg.targets(icall).len(), 3);
        assert!(stats.resolution_rate().expect("has an indirect site") < 1.0);
    }
}
