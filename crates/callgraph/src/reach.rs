//! Function reachability over a resolved call graph.
//!
//! A linker-style client: starting from the roots (typically `main`),
//! which functions can ever run? Functions outside the reachable set are
//! dead code. Precision of the underlying pointer analysis translates
//! directly into smaller reachable sets (fewer spurious indirect-call
//! edges).

use std::collections::VecDeque;

use ddpa_support::IndexVec;

use ddpa_constraints::{ConstraintProgram, FuncId};

use crate::callgraph::CallGraph;

/// The reachable-function analysis result.
#[derive(Clone, Debug)]
pub struct Reachability {
    reachable: IndexVec<FuncId, bool>,
}

impl Reachability {
    /// Computes the functions reachable from `roots` via `cg`.
    ///
    /// Call sites with an unknown caller (global initializers) are treated
    /// as always executed: their callees are roots too.
    pub fn compute(cp: &ConstraintProgram, cg: &CallGraph, roots: &[FuncId]) -> Self {
        let mut reachable = IndexVec::from_elem(false, cp.funcs().len());
        let mut queue: VecDeque<FuncId> = VecDeque::new();

        let visit =
            |f: FuncId, reachable: &mut IndexVec<FuncId, bool>, queue: &mut VecDeque<FuncId>| {
                if !reachable[f] {
                    reachable[f] = true;
                    queue.push_back(f);
                }
            };

        for &root in roots {
            visit(root, &mut reachable, &mut queue);
        }
        for cs in cp.callsites().indices() {
            if cp.callsite(cs).caller.is_none() {
                for &f in cg.targets(cs) {
                    visit(f, &mut reachable, &mut queue);
                }
            }
        }

        while let Some(f) = queue.pop_front() {
            for cs in cp.callsites().indices() {
                if cp.callsite(cs).caller == Some(f) {
                    for &callee in cg.targets(cs) {
                        visit(callee, &mut reachable, &mut queue);
                    }
                }
            }
        }

        Reachability { reachable }
    }

    /// Returns `true` if `f` is reachable.
    pub fn is_reachable(&self, f: FuncId) -> bool {
        self.reachable[f]
    }

    /// Number of reachable functions.
    pub fn count(&self) -> usize {
        self.reachable.iter().filter(|&&r| r).count()
    }

    /// Functions never reached (dead code candidates), sorted.
    pub fn dead(&self) -> Vec<FuncId> {
        self.reachable
            .iter_enumerated()
            .filter(|(_, &r)| !r)
            .map(|(f, _)| f)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use ddpa_demand::{DemandConfig, DemandEngine};

    #[test]
    fn dead_function_detection() {
        let cp = ddpa_constraints::parse_constraints(
            "fun main/0\n\
             fun live_direct/0\n\
             fun live_indirect/0\n\
             fun dead/0\n\
             fp = &live_indirect\n\
             call live_direct() in main\n\
             icall fp() in main\n",
        )
        .expect("parses");
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        let (cg, _) = CallGraph::from_demand(&mut engine);
        let main = cp
            .funcs()
            .iter_enumerated()
            .find(|(_, i)| cp.interner().resolve(i.name) == "main")
            .map(|(id, _)| id)
            .expect("main exists");
        let reach = Reachability::compute(&cp, &cg, &[main]);
        assert_eq!(reach.count(), 3);
        let dead: Vec<String> = reach
            .dead()
            .iter()
            .map(|&f| cp.interner().resolve(cp.func(f).name).to_owned())
            .collect();
        assert_eq!(dead, vec!["dead"]);
    }

    #[test]
    fn global_initializer_calls_are_roots() {
        let cp = ddpa_constraints::parse_constraints(
            "fun init/0\n\
             fun main/0\n\
             call init()\n",
        )
        .expect("parses");
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        let (cg, _) = CallGraph::from_demand(&mut engine);
        let reach = Reachability::compute(&cp, &cg, &[]);
        assert_eq!(reach.count(), 1); // init, not main (no roots given)
    }

    #[test]
    fn transitive_reachability() {
        let cp = ddpa_constraints::parse_constraints(
            "fun a/0\nfun b/0\nfun c/0\n\
             call b() in a\n\
             call c() in b\n",
        )
        .expect("parses");
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        let (cg, _) = CallGraph::from_demand(&mut engine);
        let a = cp.funcs().indices().next().expect("a exists");
        let reach = Reachability::compute(&cp, &cg, &[a]);
        assert_eq!(reach.count(), 3);
        assert!(reach.dead().is_empty());
    }
}
