//! Stack-return detection: functions that may return a pointer into their
//! own stack frame.
//!
//! `return &local;` hands the caller a pointer that dangles as soon as the
//! frame pops — a classic C bug. On demand, the check is one points-to
//! query per function (`pts(f::ret)`), flagging any target that is a stack
//! object owned by `f` itself. Heap objects allocated in `f` are fine
//! (they outlive the frame), as are the caller's objects arriving through
//! parameters.

use ddpa_constraints::{ConstraintProgram, FuncId, NodeId, NodeKind};
use ddpa_demand::DemandEngine;

/// One flagged function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StackReturn {
    /// The offending function.
    pub func: FuncId,
    /// Stack objects of `func` that its return value may point to.
    pub objects: Vec<NodeId>,
}

/// The report over all functions of a program.
#[derive(Clone, Debug, Default)]
pub struct StackReturnAudit {
    /// Flagged functions, in id order.
    pub findings: Vec<StackReturn>,
    /// Functions whose return query ran out of budget (not flagged;
    /// partial sets cannot prove anything either way).
    pub unresolved: Vec<FuncId>,
}

/// Returns `true` if `node` is stack storage (a variable or array
/// storage object, possibly via field nodes — not heap, not a function).
fn is_stack_object(cp: &ConstraintProgram, node: NodeId) -> bool {
    match cp.node(node).kind {
        NodeKind::Var { .. } | NodeKind::Formal { .. } => true,
        NodeKind::Field { parent, .. } => is_stack_object(cp, parent),
        NodeKind::Heap { .. }
        | NodeKind::Func { .. }
        | NodeKind::Temp { .. }
        | NodeKind::Ret { .. } => false,
    }
}

impl StackReturnAudit {
    /// Audits every function of `engine`'s program.
    pub fn run(engine: &mut DemandEngine<'_>) -> Self {
        let cp = engine.program();
        let mut audit = StackReturnAudit::default();
        for (func, info) in cp.funcs().iter_enumerated() {
            let r = engine.points_to(info.ret);
            if !r.complete {
                audit.unresolved.push(func);
                continue;
            }
            let objects: Vec<NodeId> = r
                .pts
                .into_iter()
                .filter(|&o| cp.owner_of(o) == Some(func) && is_stack_object(cp, o))
                .collect();
            if !objects.is_empty() {
                audit.findings.push(StackReturn { func, objects });
            }
        }
        audit
    }

    /// A one-line rendering of a finding.
    pub fn describe(&self, cp: &ConstraintProgram, finding: &StackReturn) -> String {
        let names: Vec<String> = finding
            .objects
            .iter()
            .map(|&o| cp.display_node(o))
            .collect();
        format!(
            "`{}` may return a pointer to its own stack: {{{}}}",
            cp.interner().resolve(cp.func(finding.func).name),
            names.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddpa_demand::DemandConfig;

    fn audit(src: &str) -> (ddpa_constraints::ConstraintProgram, StackReturnAudit) {
        let program = ddpa_ir::parse(src).expect("parses");
        ddpa_ir::check(&program).expect("checks");
        let cp = ddpa_constraints::lower(&program).expect("lowers");
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        let report = StackReturnAudit::run(&mut engine);
        (cp, report)
    }

    fn flagged_names(
        cp: &ddpa_constraints::ConstraintProgram,
        a: &StackReturnAudit,
    ) -> Vec<String> {
        a.findings
            .iter()
            .map(|f| cp.interner().resolve(cp.func(f.func).name).to_owned())
            .collect()
    }

    #[test]
    fn flags_direct_stack_return() {
        let (cp, report) = audit(
            "int *bad() { int local; return &local; } \
             void main() { int *p = bad(); }",
        );
        assert_eq!(flagged_names(&cp, &report), vec!["bad"]);
        let text = report.describe(&cp, &report.findings[0]);
        assert!(text.contains("bad::local"), "{text}");
    }

    #[test]
    fn heap_and_parameter_returns_are_fine() {
        let (cp, report) = audit(
            "int g; \
             int *heap_ok() { int *p = malloc(); return p; } \
             int *param_ok(int *q) { return q; } \
             int *global_ok() { return &g; } \
             void main() { int *a = heap_ok(); a = param_ok(a); a = global_ok(); }",
        );
        assert!(flagged_names(&cp, &report).is_empty(), "{report:?}");
    }

    #[test]
    fn flags_indirect_stack_return_through_helper() {
        // The pointer escapes through an out-parameter store, then returns.
        let (cp, report) = audit(
            "void save(int **slot, int *v) { *slot = v; } \
             int *bad() { int local; int *tmp; save(&tmp, &local); return tmp; } \
             void main() { int *p = bad(); }",
        );
        assert_eq!(flagged_names(&cp, &report), vec!["bad"]);
    }

    #[test]
    fn flags_array_storage_returns() {
        let (cp, report) = audit(
            "int *bad() { int buf[8]; int *p = buf; return p; } \
             void main() { int *x = bad(); }",
        );
        assert_eq!(flagged_names(&cp, &report), vec!["bad"]);
    }

    #[test]
    fn unresolved_functions_are_not_flagged() {
        let program = ddpa_ir::parse(
            "int *bad() { int local; return &local; } void main() { int *p = bad(); }",
        )
        .expect("parses");
        let cp = ddpa_constraints::lower(&program).expect("lowers");
        let mut engine = DemandEngine::new(&cp, DemandConfig::default().with_budget(0));
        let report = StackReturnAudit::run(&mut engine);
        assert!(report.findings.is_empty());
        assert_eq!(report.unresolved.len(), cp.funcs().len());
    }
}
