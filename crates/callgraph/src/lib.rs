//! Clients of the pointer analyses.
//!
//! The PLDI 2001 paper motivates demand-driven analysis with a concrete
//! compiler client: **resolving indirect function calls** to build a
//! precise call graph, where only the function-pointer expressions at
//! indirect call sites need points-to information. This crate implements
//! that client against both engines, plus two further clients that consume
//! the call graph and per-pointer queries:
//!
//! * [`callgraph`] — call-graph construction ([`CallGraph`]), from the
//!   exhaustive solution or on demand with a per-query budget;
//! * [`reach`] — function reachability / dead-function detection over a
//!   call graph (a linker's whole-program view);
//! * [`mod@deref`] — dereference-site auditing: call sites of loads/stores
//!   whose pointer has an empty (wild) or singleton points-to set;
//! * [`stackret`] — stack-return detection: functions that may return a
//!   pointer into their own (popped) stack frame.
//!
//! # Examples
//!
//! ```
//! use ddpa_demand::{DemandConfig, DemandEngine};
//!
//! let src = r#"
//!     void a() { }
//!     void b() { }
//!     void main(int x) {
//!         void *fp;
//!         if (x == 0) fp = a; else fp = b;
//!         (*fp)();
//!     }
//! "#;
//! let cp = ddpa_constraints::lower(&ddpa_ir::parse(src)?)?;
//! let mut engine = DemandEngine::new(&cp, DemandConfig::default());
//! let (cg, stats) = ddpa_callgraph::CallGraph::from_demand(&mut engine);
//! assert_eq!(stats.indirect_resolved, 1);
//! let cs = cp.indirect_callsites()[0];
//! assert_eq!(cg.targets(cs).len(), 2); // a and b
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod callgraph;
pub mod deref;
pub mod reach;
pub mod stackret;

pub use callgraph::{CallGraph, CallGraphStats};
pub use deref::{DerefAudit, DerefKind, DerefSite};
pub use reach::Reachability;
pub use stackret::{StackReturn, StackReturnAudit};
