//! `ddpa` — a reproduction of *Demand-Driven Pointer Analysis* (PLDI 2001)
//! in Rust.
//!
//! This facade crate re-exports the whole workspace as one dependency:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`ir`] | `ddpa-ir` | MiniC frontend: lexer, parser, checker, printer |
//! | [`constraints`] | `ddpa-constraints` | abstract locations, primitive constraints, lowering, text format |
//! | [`anders`] | `ddpa-anders` | exhaustive (whole-program) Andersen baseline |
//! | [`demand`] | `ddpa-demand` | **the paper**: goal-directed demand-driven analysis with memoization and budgets |
//! | [`clients`] | `ddpa-callgraph` | call-graph, reachability, dereference-audit clients |
//! | [`gen`] | `ddpa-gen` | deterministic workload generators and the benchmark suite |
//! | [`cxt`] | `ddpa-cxt` | context-sensitivity via bounded call-string cloning |
//! | [`snap`] | `ddpa-snap` | durable memo snapshots: versioned binary format, warm-start restore |
//! | [`support`] | `ddpa-support` | sets, indices, interner, SCC, union-find |
//!
//! # Quick start
//!
//! ```
//! use ddpa::demand::{DemandConfig, DemandEngine};
//!
//! // 1. Parse a C-like program.
//! let source = r#"
//!     int g;
//!     int *id(int *p) { return p; }
//!     void main() {
//!         int *x = &g;
//!         int *y = id(x);
//!     }
//! "#;
//! let program = ddpa::ir::parse(source)?;
//! ddpa::ir::check(&program)?;
//!
//! // 2. Lower to primitive pointer constraints.
//! let cp = ddpa::constraints::lower(&program)?;
//!
//! // 3. Ask a single points-to query on demand.
//! let y = cp.node_ids().find(|&n| cp.display_node(n) == "main::y").expect("y exists");
//! let mut engine = DemandEngine::new(&cp, DemandConfig::default());
//! let answer = engine.points_to(y);
//! assert!(answer.complete);
//! assert_eq!(cp.display_node(answer.pts[0]), "g");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

/// MiniC frontend (re-export of `ddpa-ir`).
pub use ddpa_ir as ir;

/// Constraint model and lowering (re-export of `ddpa-constraints`).
pub use ddpa_constraints as constraints;

/// Exhaustive Andersen baseline (re-export of `ddpa-anders`).
pub use ddpa_anders as anders;

/// Demand-driven analysis (re-export of `ddpa-demand`).
pub use ddpa_demand as demand;

/// Analysis clients (re-export of `ddpa-callgraph`).
pub use ddpa_callgraph as clients;

/// Workload generators (re-export of `ddpa-gen`).
pub use ddpa_gen as gen;

/// Context-sensitivity via call-string cloning (re-export of `ddpa-cxt`).
pub use ddpa_cxt as cxt;

/// Foundation data structures (re-export of `ddpa-support`).
pub use ddpa_support as support;

/// Metrics, span profiling and JSONL export (re-export of `ddpa-obs`).
pub use ddpa_obs as obs;

/// Persistent demand-query server and client (re-export of `ddpa-serve`).
pub use ddpa_serve as serve;

/// Durable memo snapshots and warm-start restore (re-export of `ddpa-snap`).
pub use ddpa_snap as snap;

/// Convenience: parse MiniC source, check it, and lower to constraints.
///
/// # Errors
///
/// Returns the first parse, check, or lowering error as a boxed error.
///
/// # Examples
///
/// ```
/// let cp = ddpa::compile("int g; void main() { int *p = &g; }")?;
/// assert_eq!(cp.addr_ofs().len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn compile(source: &str) -> Result<constraints::ConstraintProgram, Box<dyn std::error::Error>> {
    let program = ir::parse(source)?;
    ir::check(&program)?;
    Ok(constraints::lower(&program)?)
}

#[cfg(test)]
mod tests {
    #[test]
    fn compile_pipeline() {
        let cp = crate::compile("int g; void main() { int *p = &g; }").expect("compiles");
        assert_eq!(cp.num_constraints(), 1);
    }

    #[test]
    fn compile_reports_check_errors() {
        let err = crate::compile("void main() { x = null; }").expect_err("undeclared");
        assert!(err.to_string().contains("undeclared"));
    }
}
