//! Durable memo snapshots — persisting demand fixpoints across process
//! lifetimes.
//!
//! Every server restart starts cold: the [`SharedMemo`] of completed
//! fixpoints is process-local and dies with it, so each deploy re-derives
//! answers that were already at fixpoint. This crate turns the table into
//! a durable artifact: [`Snapshot`] captures the completed `(goal,
//! fixpoint)` pairs of the current generation together with the canonical
//! program text, and [`write_file`]/[`read_file`] persist it in a
//! versioned, checksummed binary format with atomic
//! write-temp-then-rename semantics. A fresh process restores the file
//! into its own table ([`Snapshot::install`]) or directly into an engine
//! ([`DemandEngine::warm_start`](ddpa_demand::DemandEngine::warm_start)),
//! and the first query over each restored goal is a shared-memo hit —
//! zero rule firings.
//!
//! # Format
//!
//! Little-endian throughout. The header is 16 bytes:
//!
//! ```text
//! offset  size  field
//!      0     8  magic  "DDPASNAP"
//!      8     4  format version (currently 2)
//!     12     4  CRC-32 (IEEE) over the payload (bytes 16..end)
//! ```
//!
//! followed by the payload:
//!
//! ```text
//! u64  generation the table was at when exported (informational)
//! u64  FNV-1a 64 hash of the program text (the consistency token)
//! u64  program text byte length, then that many UTF-8 bytes
//! u64  entry count, then per entry:
//!        u8   goal tag (0 = pts, 1 = ptb)
//!        u32  node id
//!        u32  element count
//!        u32× elements, strictly ascending
//!        u32  support count
//!        u32× support node ids, strictly ascending
//!        u32  dep count, then per dep:
//!               u8   goal tag (0 = pts, 1 = ptb)
//!               u32  node id
//!        u8   reads_indirect (0 or 1)
//! ```
//!
//! Version 2 added the per-entry support/dependency metadata that makes
//! restored entries *rebindable* after an edit: a host whose program has
//! drifted since the snapshot can diff the two texts and install every
//! entry the edit did not transitively dirty, instead of refusing the
//! whole file. Version 1 files (no metadata) are rejected with
//! [`SnapError::Version`] — their entries could only ever be restored
//! wholesale, and silently treating "no recorded support" as "empty
//! support" would rebind entries whose provenance is unknown.
//!
//! # Consistency rules
//!
//! * The magic, version and CRC are checked before anything is parsed;
//!   a truncated, corrupted or foreign file is rejected with
//!   [`SnapError::Corrupt`] / [`SnapError::Version`], never a panic.
//! * The stored program hash must match the FNV-1a hash of the stored
//!   text (a second corruption check), and — at install time — the hash
//!   of the *live* program ([`Snapshot::verify_program`]). Fixpoints are
//!   only valid over the exact constraint program they were derived
//!   from, so a mismatch is [`SnapError::ProgramMismatch`].
//! * Element lists must be strictly ascending (the canonical snapshot
//!   order [`SharedMemo`] exports); violations are treated as corruption.
//! * The stored generation is informational: [`Snapshot::install`]
//!   publishes at the *target* table's current generation. The program
//!   hash, not the generation counter, is the cross-process consistency
//!   token — generation counters are process-local.
//! * Hashes are hand-rolled (FNV-1a, CRC-32) rather than
//!   `DefaultHasher`, whose keys are randomized per process and
//!   therefore useless for persistence. Everything here is `std`-only.
//!
//! Provenance (`CompletedGoal::provenance`) is deliberately **not**
//! persisted: traces reference watcher identities that are only
//! meaningful to the deriving engine, and a restored goal answers
//! `explain` queries by re-deriving on demand.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use ddpa_demand::{DemandConfig, DemandEngine, SharedMemo};
//! use ddpa_snap::Snapshot;
//!
//! let text = "p = &g\nq = p\n";
//! let cp = ddpa_constraints::parse_constraints(text)?;
//! let canonical = ddpa_constraints::print_constraints(&cp);
//! let q = cp.node_ids().find(|&n| cp.display_node(n) == "q").expect("q exists");
//!
//! // Warm an engine, then capture its shared table.
//! let shared = Arc::new(SharedMemo::new());
//! let mut warm = DemandEngine::new(&cp, DemandConfig::default())
//!     .with_shared_memo(Arc::clone(&shared));
//! let full = warm.points_to(q);
//! let snap = Snapshot::of_memo(&shared, canonical.clone());
//!
//! // A fresh process round-trips through bytes and warm-starts.
//! let restored = Snapshot::from_bytes(&snap.to_bytes())?;
//! restored.verify_program(&canonical)?;
//! let fresh = Arc::new(SharedMemo::new());
//! restored.install(&fresh);
//! let mut cold = DemandEngine::new(&cp, DemandConfig::default())
//!     .with_shared_memo(Arc::clone(&fresh));
//! let reused = cold.points_to(q);
//! assert_eq!(full.pts, reused.pts);
//! assert_eq!(reused.work, 0); // zero rule firings
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

use ddpa_constraints::NodeId;
use ddpa_demand::goal::Goal;
use ddpa_demand::{CompletedGoal, SharedMemo};

/// First 8 bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"DDPASNAP";

/// Current format version; bumped on any layout change. Readers reject
/// other versions outright rather than guessing.
pub const FORMAT_VERSION: u32 = 2;

/// Header bytes before the payload: magic + version + crc.
const HEADER_LEN: usize = 16;

/// Why a snapshot could not be written or restored.
#[derive(Debug)]
pub enum SnapError {
    /// Filesystem-level failure.
    Io(io::Error),
    /// The bytes are not a well-formed snapshot (bad magic, checksum
    /// mismatch, truncation, malformed section). The message says which.
    Corrupt(String),
    /// A well-formed snapshot of a format this build does not speak.
    Version {
        /// Version stamped in the file.
        found: u32,
    },
    /// The snapshot was taken over a different constraint program, so
    /// its fixpoints are meaningless here.
    ProgramMismatch {
        /// Hash of the live program.
        expected: u64,
        /// Hash stored in the snapshot.
        found: u64,
    },
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            SnapError::Version { found } => write!(
                f,
                "unsupported snapshot format version {found} (this build speaks {FORMAT_VERSION})"
            ),
            SnapError::ProgramMismatch { expected, found } => write!(
                f,
                "snapshot was taken over a different program \
                 (live hash {expected:#018x}, snapshot hash {found:#018x})"
            ),
        }
    }
}

impl std::error::Error for SnapError {}

impl From<io::Error> for SnapError {
    fn from(e: io::Error) -> Self {
        SnapError::Io(e)
    }
}

/// FNV-1a 64-bit hash — the snapshot's program-identity hash.
///
/// Deliberately hand-rolled: `DefaultHasher` seeds differ per process,
/// so its output can never be compared across a write and a later read.
pub fn program_hash(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in text.as_bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc: u32 = !0;
    for &byte in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xff) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// An in-memory snapshot: the completed fixpoints of one generation of a
/// [`SharedMemo`], plus the canonical text of the program they were
/// derived over.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Table generation at export time. Informational — see the module
    /// docs; the program hash is the consistency token.
    pub generation: u64,
    /// Canonical program text (`ddpa_constraints::print_constraints`).
    pub program_text: String,
    /// Completed fixpoints, in the canonical export order.
    pub entries: Vec<(Goal, CompletedGoal)>,
}

impl Snapshot {
    /// Builds a snapshot from parts.
    pub fn new(
        generation: u64,
        program_text: impl Into<String>,
        entries: Vec<(Goal, CompletedGoal)>,
    ) -> Self {
        Snapshot {
            generation,
            program_text: program_text.into(),
            entries,
        }
    }

    /// Captures `memo`'s current generation: compacts stale entries,
    /// exports the completed fixpoints in canonical order, and stamps
    /// the snapshot with the (canonical) program text.
    pub fn of_memo(memo: &SharedMemo, program_text: impl Into<String>) -> Self {
        Snapshot {
            generation: memo.generation(),
            program_text: program_text.into(),
            entries: memo.export_completed(),
        }
    }

    /// The FNV-1a hash of the stored program text — what gets written to
    /// (and must match in) the file.
    pub fn program_hash(&self) -> u64 {
        program_hash(&self.program_text)
    }

    /// Checks that this snapshot was taken over exactly `live_text`.
    pub fn verify_program(&self, live_text: &str) -> Result<(), SnapError> {
        let expected = program_hash(live_text);
        let found = self.program_hash();
        if expected != found {
            return Err(SnapError::ProgramMismatch { expected, found });
        }
        Ok(())
    }

    /// Installs every entry into `memo` at its current generation;
    /// returns how many were newly inserted. Callers must
    /// [`verify_program`](Self::verify_program) first.
    pub fn install(&self, memo: &SharedMemo) -> usize {
        memo.import(self.entries.iter().cloned())
    }

    /// Serializes to the on-disk byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        SnapshotWriter::encode(self)
    }

    /// Parses and fully validates a snapshot from bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapError> {
        SnapshotReader::new(bytes)?.finish()
    }
}

/// Encoder for the snapshot byte format. [`Snapshot::to_bytes`] is the
/// usual entry point; the writer is exposed for tests and tooling.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    payload: Vec<u8>,
}

impl SnapshotWriter {
    /// Encodes `snapshot` into a complete file image (header + payload).
    pub fn encode(snapshot: &Snapshot) -> Vec<u8> {
        let mut w = SnapshotWriter::default();
        w.u64(snapshot.generation);
        w.u64(snapshot.program_hash());
        w.u64(snapshot.program_text.len() as u64);
        w.payload
            .extend_from_slice(snapshot.program_text.as_bytes());
        w.u64(snapshot.entries.len() as u64);
        for (goal, result) in &snapshot.entries {
            let (tag, node) = match goal {
                Goal::Pts(n) => (0u8, n.as_u32()),
                Goal::Ptb(n) => (1u8, n.as_u32()),
            };
            w.payload.push(tag);
            w.u32(node);
            w.u32(result.elems.len() as u32);
            for &elem in &result.elems {
                w.u32(elem);
            }
            w.u32(result.support.len() as u32);
            for &node in &result.support {
                w.u32(node);
            }
            w.u32(result.deps.len() as u32);
            for dep in &result.deps {
                let (tag, node) = match dep {
                    Goal::Pts(n) => (0u8, n.as_u32()),
                    Goal::Ptb(n) => (1u8, n.as_u32()),
                };
                w.payload.push(tag);
                w.u32(node);
            }
            w.payload.push(result.reads_indirect as u8);
        }
        let mut out = Vec::with_capacity(HEADER_LEN + w.payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&crc32(&w.payload).to_le_bytes());
        out.extend_from_slice(&w.payload);
        out
    }

    fn u32(&mut self, v: u32) {
        self.payload.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.payload.extend_from_slice(&v.to_le_bytes());
    }
}

/// Decoder for the snapshot byte format, with every read bounds-checked
/// so corrupt input fails with [`SnapError::Corrupt`], never a panic.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    payload: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// Validates the header (magic, version, checksum) of a complete
    /// file image and positions the reader at the payload.
    pub fn new(bytes: &'a [u8]) -> Result<Self, SnapError> {
        if bytes.len() < HEADER_LEN {
            return Err(SnapError::Corrupt(format!(
                "file is {} bytes, shorter than the {HEADER_LEN}-byte header",
                bytes.len()
            )));
        }
        if bytes[..8] != MAGIC {
            return Err(SnapError::Corrupt("bad magic".to_string()));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(SnapError::Version { found: version });
        }
        let stored_crc = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
        let payload = &bytes[HEADER_LEN..];
        let actual_crc = crc32(payload);
        if stored_crc != actual_crc {
            return Err(SnapError::Corrupt(format!(
                "checksum mismatch (stored {stored_crc:#010x}, computed {actual_crc:#010x})"
            )));
        }
        Ok(SnapshotReader { payload, pos: 0 })
    }

    /// Parses the payload into a [`Snapshot`], consuming the reader.
    pub fn finish(mut self) -> Result<Snapshot, SnapError> {
        let generation = self.u64("generation")?;
        let stored_hash = self.u64("program hash")?;
        let text_len = self.len_field("program text length")?;
        let text_bytes = self.take(text_len, "program text")?;
        let program_text = std::str::from_utf8(text_bytes)
            .map_err(|e| SnapError::Corrupt(format!("program text is not UTF-8: {e}")))?
            .to_string();
        if program_hash(&program_text) != stored_hash {
            return Err(SnapError::Corrupt(
                "stored program hash does not match stored program text".to_string(),
            ));
        }
        let count = self.u64("entry count")?;
        let mut entries = Vec::new();
        for i in 0..count {
            let tag = self.u8("goal tag")?;
            let node = NodeId::from_u32(self.u32("node id")?);
            let goal = match tag {
                0 => Goal::Pts(node),
                1 => Goal::Ptb(node),
                other => {
                    return Err(SnapError::Corrupt(format!(
                        "entry {i}: unknown goal tag {other}"
                    )))
                }
            };
            let elem_count = self.u32("element count")? as usize;
            if elem_count
                .checked_mul(4)
                .is_none_or(|b| b > self.remaining())
            {
                return Err(SnapError::Corrupt(format!(
                    "entry {i}: claims {elem_count} elements but only {} payload bytes remain",
                    self.remaining()
                )));
            }
            let mut elems = Vec::with_capacity(elem_count);
            for _ in 0..elem_count {
                let elem = self.u32("element")?;
                if let Some(&prev) = elems.last() {
                    if elem <= prev {
                        return Err(SnapError::Corrupt(format!(
                            "entry {i}: elements not strictly ascending ({prev} then {elem})"
                        )));
                    }
                }
                elems.push(elem);
            }
            let support_count = self.u32("support count")? as usize;
            if support_count
                .checked_mul(4)
                .is_none_or(|b| b > self.remaining())
            {
                return Err(SnapError::Corrupt(format!(
                    "entry {i}: claims {support_count} support nodes but only {} payload bytes remain",
                    self.remaining()
                )));
            }
            let mut support = Vec::with_capacity(support_count);
            for _ in 0..support_count {
                let node = self.u32("support node")?;
                if let Some(&prev) = support.last() {
                    if node <= prev {
                        return Err(SnapError::Corrupt(format!(
                            "entry {i}: support not strictly ascending ({prev} then {node})"
                        )));
                    }
                }
                support.push(node);
            }
            let dep_count = self.u32("dep count")? as usize;
            if dep_count
                .checked_mul(5)
                .is_none_or(|b| b > self.remaining())
            {
                return Err(SnapError::Corrupt(format!(
                    "entry {i}: claims {dep_count} deps but only {} payload bytes remain",
                    self.remaining()
                )));
            }
            let mut deps = Vec::with_capacity(dep_count);
            for _ in 0..dep_count {
                let tag = self.u8("dep goal tag")?;
                let node = NodeId::from_u32(self.u32("dep node id")?);
                deps.push(match tag {
                    0 => Goal::Pts(node),
                    1 => Goal::Ptb(node),
                    other => {
                        return Err(SnapError::Corrupt(format!(
                            "entry {i}: unknown dep goal tag {other}"
                        )))
                    }
                });
            }
            let reads_indirect = match self.u8("reads_indirect flag")? {
                0 => false,
                1 => true,
                other => {
                    return Err(SnapError::Corrupt(format!(
                        "entry {i}: reads_indirect flag is {other}, expected 0 or 1"
                    )))
                }
            };
            entries.push((
                goal,
                CompletedGoal {
                    elems,
                    provenance: Vec::new(),
                    support,
                    deps,
                    reads_indirect,
                },
            ));
        }
        if self.remaining() != 0 {
            return Err(SnapError::Corrupt(format!(
                "{} trailing bytes after the last entry",
                self.remaining()
            )));
        }
        Ok(Snapshot {
            generation,
            program_text,
            entries,
        })
    }

    fn remaining(&self) -> usize {
        self.payload.len() - self.pos
    }

    fn take(&mut self, len: usize, what: &str) -> Result<&'a [u8], SnapError> {
        if len > self.remaining() {
            return Err(SnapError::Corrupt(format!(
                "truncated {what}: need {len} bytes, have {}",
                self.remaining()
            )));
        }
        let slice = &self.payload[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8, SnapError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, what: &str) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    /// A u64 length field that must also fit in `usize` and in the
    /// remaining payload (guards against huge allocations on corrupt
    /// input).
    fn len_field(&mut self, what: &str) -> Result<usize, SnapError> {
        let v = self.u64(what)?;
        let v = usize::try_from(v)
            .map_err(|_| SnapError::Corrupt(format!("{what} {v} overflows this platform")))?;
        if v > self.remaining() {
            return Err(SnapError::Corrupt(format!(
                "{what} {v} exceeds the {} remaining payload bytes",
                self.remaining()
            )));
        }
        Ok(v)
    }
}

/// Atomically persists `snapshot` at `path`: the bytes are written to a
/// temporary file in the same directory, fsynced, then renamed into
/// place, so readers only ever observe a complete file. Returns the
/// byte count written. Parent directories are created as needed.
pub fn write_file(snapshot: &Snapshot, path: impl AsRef<Path>) -> Result<usize, SnapError> {
    let path = path.as_ref();
    let bytes = snapshot.to_bytes();
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    fs::create_dir_all(dir)?;
    let file_name = path.file_name().ok_or_else(|| {
        SnapError::Io(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("snapshot path {path:?} has no file name"),
        ))
    })?;
    let tmp = dir.join(format!(
        ".{}.tmp.{}",
        file_name.to_string_lossy(),
        std::process::id()
    ));
    let result = (|| -> Result<(), SnapError> {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, path)?;
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result.map(|()| bytes.len())
}

/// Reads and fully validates a snapshot file.
pub fn read_file(path: impl AsRef<Path>) -> Result<Snapshot, SnapError> {
    let bytes = fs::read(path.as_ref())?;
    Snapshot::from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn goal(n: u32) -> Goal {
        Goal::Pts(NodeId::from_u32(n))
    }

    fn entry(elems: &[u32]) -> CompletedGoal {
        CompletedGoal {
            elems: elems.to_vec(),
            support: elems.to_vec(),
            ..CompletedGoal::default()
        }
    }

    fn sample() -> Snapshot {
        Snapshot::new(
            3,
            "p = &g\nq = p\n",
            vec![
                (goal(1), entry(&[4, 9, 200])),
                (goal(2), entry(&[])),
                (
                    Goal::Ptb(NodeId::from_u32(5)),
                    CompletedGoal {
                        elems: vec![0],
                        support: vec![5],
                        deps: vec![goal(1), Goal::Ptb(NodeId::from_u32(2))],
                        reads_indirect: true,
                        ..CompletedGoal::default()
                    },
                ),
            ],
        )
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ddpa-snap-test-{}-{tag}.snap", std::process::id()))
    }

    #[test]
    fn bytes_round_trip() {
        let snap = sample();
        let decoded = Snapshot::from_bytes(&snap.to_bytes()).expect("round trip");
        assert_eq!(decoded, snap);
    }

    #[test]
    fn file_round_trip_is_atomic() {
        let snap = sample();
        let path = temp_path("round-trip");
        let written = write_file(&snap, &path).expect("write");
        assert_eq!(written, snap.to_bytes().len());
        assert_eq!(read_file(&path).expect("read"), snap);
        // No temp droppings next to the file.
        let dir = path.parent().expect("parent");
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .expect("read dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("ddpa-snap-test"))
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "leftover temp files: {leftovers:?}");
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn every_truncation_is_rejected_without_panicking() {
        let bytes = sample().to_bytes();
        for len in 0..bytes.len() {
            match Snapshot::from_bytes(&bytes[..len]) {
                Err(SnapError::Corrupt(_)) => {}
                other => panic!("truncation to {len} bytes not rejected: {other:?}"),
            }
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] ^= 0xff;
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapError::Corrupt(msg)) if msg.contains("magic")
        ));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[8] = 99;
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapError::Version { found: 99 })
        ));
    }

    #[test]
    fn flipped_payload_byte_fails_the_checksum() {
        let mut bytes = sample().to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapError::Corrupt(msg)) if msg.contains("checksum")
        ));
    }

    #[test]
    fn support_and_deps_round_trip() {
        let snap = sample();
        let decoded = Snapshot::from_bytes(&snap.to_bytes()).expect("round trip");
        let (_, e) = &decoded.entries[2];
        assert_eq!(e.support, vec![5]);
        assert_eq!(e.deps, vec![goal(1), Goal::Ptb(NodeId::from_u32(2))]);
        assert!(e.reads_indirect);
        let (_, plain) = &decoded.entries[1];
        assert!(plain.deps.is_empty());
        assert!(!plain.reads_indirect);
    }

    #[test]
    fn v1_files_are_rejected_as_unsupported() {
        // A v1 file is byte-identical up to the version field; readers
        // must reject it before attempting to parse the (shorter) entry
        // layout.
        let mut bytes = sample().to_bytes();
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapError::Version { found: 1 })
        ));
    }

    #[test]
    fn unsorted_support_is_rejected() {
        let snap = Snapshot::new(
            0,
            "x = &y\n",
            vec![(
                goal(1),
                CompletedGoal {
                    elems: vec![3],
                    support: vec![5, 2],
                    ..CompletedGoal::default()
                },
            )],
        );
        assert!(matches!(
            Snapshot::from_bytes(&snap.to_bytes()),
            Err(SnapError::Corrupt(msg)) if msg.contains("support")
        ));
    }

    #[test]
    fn unsorted_elements_are_rejected() {
        let snap = Snapshot::new(0, "x = &y\n", vec![(goal(1), entry(&[5, 3]))]);
        assert!(matches!(
            Snapshot::from_bytes(&snap.to_bytes()),
            Err(SnapError::Corrupt(msg)) if msg.contains("ascending")
        ));
    }

    #[test]
    fn duplicate_elements_are_rejected() {
        let snap = Snapshot::new(0, "x = &y\n", vec![(goal(1), entry(&[3, 3]))]);
        assert!(matches!(
            Snapshot::from_bytes(&snap.to_bytes()),
            Err(SnapError::Corrupt(_))
        ));
    }

    #[test]
    fn program_mismatch_is_reported_with_both_hashes() {
        let snap = sample();
        snap.verify_program(&snap.program_text).expect("same text");
        match snap.verify_program("something else\n") {
            Err(SnapError::ProgramMismatch { expected, found }) => {
                assert_eq!(expected, program_hash("something else\n"));
                assert_eq!(found, snap.program_hash());
            }
            other => panic!("expected ProgramMismatch, got {other:?}"),
        }
    }

    #[test]
    fn program_hash_is_stable_across_runs() {
        // FNV-1a 64 known-answer test: the whole point is that the hash
        // is identical across processes and platforms.
        assert_eq!(program_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(program_hash("a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn crc32_known_answers() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn memo_capture_and_install_round_trip() {
        let memo = SharedMemo::new();
        memo.publish(0, goal(1), entry(&[2, 8]));
        memo.publish(0, Goal::Ptb(NodeId::from_u32(4)), entry(&[1]));
        let snap = Snapshot::of_memo(&memo, "x = &y\n");
        assert_eq!(snap.entries.len(), 2);
        assert_eq!(snap.generation, 0);

        let fresh = SharedMemo::new();
        assert_eq!(snap.install(&fresh), 2);
        assert_eq!(fresh.lookup(0, goal(1)).0.expect("hit").elems, vec![2, 8]);
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample().to_bytes();
        // Append garbage *and* fix up the crc so only the structural
        // check can catch it.
        bytes.extend_from_slice(&[1, 2, 3]);
        let crc = crc32(&bytes[HEADER_LEN..]);
        bytes[12..16].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapError::Corrupt(msg)) if msg.contains("trailing")
        ));
    }
}
