//! Differential suite: a snapshot round-trip must be answer-preserving.
//!
//! For a spread of random generator programs, every query answered by a
//! warm-started engine (fresh process state + snapshot) must be
//! bit-identical to both the live demand engine that produced the
//! snapshot and the exhaustive Andersen solver — the paper's ground
//! truth. Also exercises the file-level negative paths: truncation,
//! checksum damage, version skew, and cross-program restores.

use std::sync::Arc;

use ddpa_constraints::{print_constraints, ConstraintProgram, NodeId};
use ddpa_demand::{DemandConfig, DemandEngine, SharedMemo};
use ddpa_gen::{generate_random, RandomConfig};
use ddpa_snap::{read_file, write_file, SnapError, Snapshot, FORMAT_VERSION};

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ddpa-snap-differential");
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name)
}

/// Every node of the program, the query load for the differential runs.
fn all_nodes(cp: &ConstraintProgram) -> Vec<NodeId> {
    cp.node_ids().collect()
}

/// Warms a shared-memo engine over `nodes`, returning the live answers.
fn warm_live(
    cp: &ConstraintProgram,
    nodes: &[NodeId],
) -> (Arc<SharedMemo>, Vec<(NodeId, Vec<NodeId>)>) {
    let shared = Arc::new(SharedMemo::new());
    let mut engine =
        DemandEngine::new(cp, DemandConfig::default()).with_shared_memo(Arc::clone(&shared));
    let answers = nodes
        .iter()
        .map(|&n| {
            let r = engine.points_to(n);
            assert!(r.complete, "unbudgeted query must resolve");
            (n, r.pts)
        })
        .collect();
    (shared, answers)
}

#[test]
fn warm_start_matches_live_engine_and_exhaustive_solver() {
    for (seed, size) in [(1u64, 120usize), (7, 300), (42, 600), (1234, 900)] {
        let cp = generate_random(&RandomConfig::sized(seed, size));
        let text = print_constraints(&cp);
        let nodes = all_nodes(&cp);
        let (shared, live) = warm_live(&cp, &nodes);

        // Round-trip the completed fixpoints through the binary format
        // and the filesystem.
        let snapshot = Snapshot::of_memo(&shared, text.clone());
        assert!(
            !snapshot.entries.is_empty(),
            "seed {seed}: warm run produced fixpoints"
        );
        let path = temp_path(&format!("diff-{seed}-{size}.snap"));
        write_file(&snapshot, &path).expect("write");
        let restored = read_file(&path).expect("read back");
        assert_eq!(restored.entries.len(), snapshot.entries.len());
        restored.verify_program(&text).expect("same program");

        // A fresh engine (no shared table, no prior state) warm-starts
        // from the restored snapshot.
        let mut cold = DemandEngine::new(&cp, DemandConfig::default());
        let installed = cold.warm_start(&restored.entries);
        assert_eq!(installed, restored.entries.len(), "seed {seed}");

        // Ground truth: the exhaustive Andersen solution.
        let exhaustive = ddpa_anders::solve(&cp);

        for (node, live_pts) in &live {
            let r = cold.points_to(*node);
            assert_eq!(
                &r.pts,
                live_pts,
                "seed {seed}: pts({}) diverged from the live engine",
                cp.display_node(*node)
            );
            assert_eq!(
                r.pts,
                exhaustive.pts_nodes(*node),
                "seed {seed}: pts({}) diverged from the wave solver",
                cp.display_node(*node)
            );
        }
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn warm_start_preserves_ptb_and_alias_answers() {
    let cp = generate_random(&RandomConfig::sized(9, 400));
    let text = print_constraints(&cp);
    let nodes = all_nodes(&cp);

    // Live run answers both directions plus alias probes.
    let shared = Arc::new(SharedMemo::new());
    let mut live =
        DemandEngine::new(&cp, DemandConfig::default()).with_shared_memo(Arc::clone(&shared));
    let live_pts: Vec<_> = nodes.iter().map(|&n| live.points_to(n).pts).collect();
    let live_ptb: Vec<_> = nodes.iter().map(|&n| live.pointed_to_by(n).pts).collect();
    let probes: Vec<(NodeId, NodeId)> = nodes
        .iter()
        .zip(nodes.iter().rev())
        .map(|(&a, &b)| (a, b))
        .take(64)
        .collect();
    let live_alias: Vec<bool> = probes
        .iter()
        .map(|&(a, b)| live.may_alias(a, b).may_alias)
        .collect();

    // Round-trip and warm-start a fresh engine.
    let snapshot = Snapshot::of_memo(&shared, text);
    let bytes = snapshot.to_bytes();
    let restored = Snapshot::from_bytes(&bytes).expect("decode");
    let mut cold = DemandEngine::new(&cp, DemandConfig::default());
    cold.warm_start(&restored.entries);

    for (i, &n) in nodes.iter().enumerate() {
        assert_eq!(cold.points_to(n).pts, live_pts[i]);
        assert_eq!(cold.pointed_to_by(n).pts, live_ptb[i]);
    }
    for (i, &(a, b)) in probes.iter().enumerate() {
        assert_eq!(cold.may_alias(a, b).may_alias, live_alias[i]);
    }
}

#[test]
fn file_level_truncation_is_rejected() {
    let cp = generate_random(&RandomConfig::sized(3, 150));
    let (shared, _) = warm_live(&cp, &all_nodes(&cp));
    let snapshot = Snapshot::of_memo(&shared, print_constraints(&cp));
    let path = temp_path("truncated.snap");
    write_file(&snapshot, &path).expect("write");
    let full = std::fs::read(&path).expect("read");

    for keep in [0, 1, 7, 8, 12, 16, full.len() / 2, full.len() - 1] {
        std::fs::write(&path, &full[..keep]).expect("truncate");
        match read_file(&path) {
            Err(SnapError::Corrupt(_)) => {}
            other => panic!("prefix of {keep} bytes: expected Corrupt, got {other:?}"),
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn file_level_bit_flips_break_the_checksum() {
    let cp = generate_random(&RandomConfig::sized(4, 150));
    let (shared, _) = warm_live(&cp, &all_nodes(&cp));
    let snapshot = Snapshot::of_memo(&shared, print_constraints(&cp));
    let path = temp_path("bitflip.snap");
    write_file(&snapshot, &path).expect("write");
    let full = std::fs::read(&path).expect("read");

    // Flip one byte in several payload positions; each must be caught.
    for pos in [16, 24, full.len() / 2, full.len() - 1] {
        let mut damaged = full.clone();
        damaged[pos] ^= 0x40;
        std::fs::write(&path, &damaged).expect("damage");
        assert!(
            matches!(read_file(&path), Err(SnapError::Corrupt(_))),
            "flip at {pos} slipped through"
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn file_level_version_skew_is_rejected() {
    let cp = generate_random(&RandomConfig::sized(5, 100));
    let (shared, _) = warm_live(&cp, &all_nodes(&cp));
    let snapshot = Snapshot::of_memo(&shared, print_constraints(&cp));
    let path = temp_path("version.snap");
    write_file(&snapshot, &path).expect("write");
    let mut bytes = std::fs::read(&path).expect("read");

    let future = (FORMAT_VERSION + 1).to_le_bytes();
    bytes[8..12].copy_from_slice(&future);
    std::fs::write(&path, &bytes).expect("rewrite");
    match read_file(&path) {
        Err(SnapError::Version { found }) => assert_eq!(found, FORMAT_VERSION + 1),
        other => panic!("expected Version error, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn file_level_cross_program_restore_is_rejected() {
    let a = generate_random(&RandomConfig::sized(11, 200));
    let b = generate_random(&RandomConfig::sized(12, 200));
    let (shared, _) = warm_live(&a, &all_nodes(&a));
    let snapshot = Snapshot::of_memo(&shared, print_constraints(&a));
    let path = temp_path("crossprog.snap");
    write_file(&snapshot, &path).expect("write");

    let restored = read_file(&path).expect("reads fine");
    match restored.verify_program(&print_constraints(&b)) {
        Err(SnapError::ProgramMismatch { .. }) => {}
        other => panic!("expected ProgramMismatch, got {other:?}"),
    }
    restored
        .verify_program(&print_constraints(&a))
        .expect("the real program still verifies");
    let _ = std::fs::remove_file(&path);
}
