//! Tokens and source spans for MiniC.

use std::fmt;

/// A half-open byte range into the source, with 1-based line/column of its
/// start for diagnostics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
    /// 1-based source line of `start`.
    pub line: u32,
    /// 1-based source column of `start`.
    pub col: u32,
}

impl Span {
    /// A span covering nothing, for synthesized nodes.
    pub const DUMMY: Span = Span {
        start: 0,
        end: 0,
        line: 0,
        col: 0,
    };

    /// Creates a span.
    pub fn new(start: u32, end: u32, line: u32, col: u32) -> Self {
        Span {
            start,
            end,
            line,
            col,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// The kind of a MiniC token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier (owned; interning happens in the parser).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// `int`
    KwInt,
    /// `struct`
    KwStruct,
    /// `void`
    KwVoid,
    /// `return`
    KwReturn,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `while`
    KwWhile,
    /// `malloc`
    KwMalloc,
    /// `null`
    KwNull,
    /// `*`
    Star,
    /// `&`
    Amp,
    /// `=`
    Eq,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `->`
    Arrow,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short human-readable description for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(name) => format!("identifier `{name}`"),
            TokenKind::Int(v) => format!("integer `{v}`"),
            TokenKind::KwInt => "`int`".into(),
            TokenKind::KwStruct => "`struct`".into(),
            TokenKind::KwVoid => "`void`".into(),
            TokenKind::KwReturn => "`return`".into(),
            TokenKind::KwIf => "`if`".into(),
            TokenKind::KwElse => "`else`".into(),
            TokenKind::KwWhile => "`while`".into(),
            TokenKind::KwMalloc => "`malloc`".into(),
            TokenKind::KwNull => "`null`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::Amp => "`&`".into(),
            TokenKind::Eq => "`=`".into(),
            TokenKind::EqEq => "`==`".into(),
            TokenKind::NotEq => "`!=`".into(),
            TokenKind::Semi => "`;`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Dot => "`.`".into(),
            TokenKind::Arrow => "`->`".into(),
            TokenKind::LBracket => "`[`".into(),
            TokenKind::RBracket => "`]`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::LBrace => "`{`".into(),
            TokenKind::RBrace => "`}`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// A token with its source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_display() {
        let s = Span::new(0, 3, 2, 5);
        assert_eq!(format!("{s}"), "2:5");
    }

    #[test]
    fn describe_is_nonempty() {
        for kind in [
            TokenKind::Ident("x".into()),
            TokenKind::Int(3),
            TokenKind::Star,
            TokenKind::Eof,
        ] {
            assert!(!kind.describe().is_empty());
        }
    }
}
