//! MiniC — the simplified C-like input language for the `ddpa` analyses.
//!
//! The PLDI 2001 demand-driven pointer analysis abstracts C programs into
//! primitive pointer assignments. This crate provides the *frontend* for
//! that abstraction: a small but genuine language with functions, globals,
//! pointers of arbitrary depth, address-of, dereference chains, `malloc`,
//! and both direct and function-pointer calls. Control flow (`if`/`while`)
//! is parsed and checked but — as in any flow-insensitive analysis — has no
//! effect on the extracted assignments.
//!
//! Pipeline position:
//!
//! ```text
//! MiniC source --[lexer+parser]--> ast::Program --[check]--> checked AST
//!              --[ddpa-constraints::lower]--> constraint program
//! ```
//!
//! # Grammar (informal)
//!
//! ```text
//! program  := (struct | global | function)*
//! struct   := "struct" IDENT "{" (type IDENT ";")* "}" ";"
//! global   := type IDENT ("[" INT "]")? ("=" expr)? ";"
//! function := type IDENT "(" params? ")" block
//! type     := ("int" | "void" | "struct" IDENT) "*"*
//! block    := "{" stmt* "}"
//! stmt     := type IDENT ("[" INT "]")? ("=" expr)? ";"  // declaration
//!           | "*"* IDENT "=" expr ";"             // assignment
//!           | IDENT "[" index "]" "=" expr ";"    // array element store
//!           | IDENT ("." | "->") IDENT "=" expr ";"  // field assignment
//!           | expr ";"                            // call statement
//!           | "return" expr? ";"
//!           | "if" "(" cond ")" stmt ("else" stmt)?
//!           | "while" "(" cond ")" stmt
//!           | block
//! expr     := "&" IDENT (("." | "->") IDENT)?     // address-of (a field)
//!           | "*"* IDENT                          // variable / loads
//!           | IDENT ("." | "->") IDENT            // field read
//!           | IDENT "[" index "]"                 // array element load
//!           | call | "malloc" "(" ")" | "null" | INT
//! call     := IDENT "(" args? ")"
//!           | "(" "*"* IDENT ")" "(" args? ")"    // via function pointer
//! index    := INT | IDENT                        // validated, then discarded
//! cond     := expr (("==" | "!=") expr)?
//! ```
//!
//! Arrays are **monolithic** (as in the 2001 analysis): `tab` declares one
//! storage object, the name decays to its address, and `tab[i]` reads or
//! writes the whole object regardless of `i` — which is why indices are
//! restricted to side-effect-free forms and discarded.
//!
//! Struct values are never copied, passed, or returned whole (use
//! pointers); field selections do not chain (`p->f->g` is rejected) and do
//! not mix with dereferences (`*p->f` is rejected) — introduce a
//! temporary instead, as the lowering itself would.
//!
//! # Examples
//!
//! ```
//! let source = r#"
//!     int g;
//!     int *id(int *p) { return p; }
//!     void main() {
//!         int *x = &g;
//!         int *y = id(x);
//!     }
//! "#;
//! let program = ddpa_ir::parse(source)?;
//! ddpa_ir::check(&program)?;
//! assert_eq!(program.functions().count(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod ast;
pub mod builder;
pub mod check;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod token;

pub use ast::Program;
pub use builder::ProgramBuilder;
pub use check::{check, CheckError, CheckErrors};
pub use parser::{parse, ParseError};
pub use pretty::pretty;
