//! Hand-written lexer for MiniC.
//!
//! Supports `//` line comments and `/* ... */` block comments. Produces a
//! terminating [`TokenKind::Eof`] token so the parser never runs off the
//! end.

use crate::token::{Span, Token, TokenKind};

/// An error produced while lexing, with its location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Location of the offending character.
    pub span: Span,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lex error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for LexError {}

/// Lexes `source` into a token stream ending in `Eof`.
///
/// # Errors
///
/// Returns [`LexError`] on an unexpected character, an unterminated block
/// comment, or an integer literal that overflows `i64`.
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn here(&self) -> (u32, u32, u32) {
        (self.pos as u32, self.line, self.col)
    }

    fn push(&mut self, kind: TokenKind, start: (u32, u32, u32)) {
        let (start_pos, line, col) = start;
        self.tokens.push(Token {
            kind,
            span: Span::new(start_pos, self.pos as u32, line, col),
        });
    }

    fn error(&self, message: impl Into<String>, start: (u32, u32, u32)) -> LexError {
        let (start_pos, line, col) = start;
        LexError {
            message: message.into(),
            span: Span::new(start_pos, self.pos as u32, line, col),
        }
    }

    fn run(mut self) -> Result<Vec<Token>, LexError> {
        loop {
            // Skip whitespace and comments.
            loop {
                match self.peek() {
                    Some(c) if c.is_ascii_whitespace() => {
                        self.bump();
                    }
                    Some(b'/') if self.peek2() == Some(b'/') => {
                        while let Some(c) = self.peek() {
                            if c == b'\n' {
                                break;
                            }
                            self.bump();
                        }
                    }
                    Some(b'/') if self.peek2() == Some(b'*') => {
                        let start = self.here();
                        self.bump();
                        self.bump();
                        let mut closed = false;
                        while let Some(c) = self.bump() {
                            if c == b'*' && self.peek() == Some(b'/') {
                                self.bump();
                                closed = true;
                                break;
                            }
                        }
                        if !closed {
                            return Err(self.error("unterminated block comment", start));
                        }
                    }
                    _ => break,
                }
            }

            let start = self.here();
            let Some(c) = self.peek() else {
                self.push(TokenKind::Eof, start);
                return Ok(self.tokens);
            };

            match c {
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                    let word_start = self.pos;
                    while let Some(c) = self.peek() {
                        if c.is_ascii_alphanumeric() || c == b'_' {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    let word = std::str::from_utf8(&self.src[word_start..self.pos])
                        .expect("ascii identifier");
                    let kind = match word {
                        "int" => TokenKind::KwInt,
                        "struct" => TokenKind::KwStruct,
                        "void" => TokenKind::KwVoid,
                        "return" => TokenKind::KwReturn,
                        "if" => TokenKind::KwIf,
                        "else" => TokenKind::KwElse,
                        "while" => TokenKind::KwWhile,
                        "malloc" => TokenKind::KwMalloc,
                        "null" | "NULL" => TokenKind::KwNull,
                        _ => TokenKind::Ident(word.to_owned()),
                    };
                    self.push(kind, start);
                }
                b'0'..=b'9' => {
                    let num_start = self.pos;
                    while let Some(c) = self.peek() {
                        if c.is_ascii_digit() {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    let text =
                        std::str::from_utf8(&self.src[num_start..self.pos]).expect("ascii digits");
                    let value: i64 = text.parse().map_err(|_| {
                        self.error(format!("integer literal `{text}` overflows"), start)
                    })?;
                    self.push(TokenKind::Int(value), start);
                }
                b'*' => {
                    self.bump();
                    self.push(TokenKind::Star, start);
                }
                b'&' => {
                    self.bump();
                    self.push(TokenKind::Amp, start);
                }
                b'=' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        self.push(TokenKind::EqEq, start);
                    } else {
                        self.push(TokenKind::Eq, start);
                    }
                }
                b'!' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        self.push(TokenKind::NotEq, start);
                    } else {
                        return Err(self.error("expected `=` after `!`", start));
                    }
                }
                b';' => {
                    self.bump();
                    self.push(TokenKind::Semi, start);
                }
                b'.' => {
                    self.bump();
                    self.push(TokenKind::Dot, start);
                }
                b'-' => {
                    self.bump();
                    if self.peek() == Some(b'>') {
                        self.bump();
                        self.push(TokenKind::Arrow, start);
                    } else {
                        return Err(self.error("expected `>` after `-`", start));
                    }
                }
                b',' => {
                    self.bump();
                    self.push(TokenKind::Comma, start);
                }
                b'[' => {
                    self.bump();
                    self.push(TokenKind::LBracket, start);
                }
                b']' => {
                    self.bump();
                    self.push(TokenKind::RBracket, start);
                }
                b'(' => {
                    self.bump();
                    self.push(TokenKind::LParen, start);
                }
                b')' => {
                    self.bump();
                    self.push(TokenKind::RParen, start);
                }
                b'{' => {
                    self.bump();
                    self.push(TokenKind::LBrace, start);
                }
                b'}' => {
                    self.bump();
                    self.push(TokenKind::RBrace, start);
                }
                other => {
                    self.bump();
                    return Err(
                        self.error(format!("unexpected character `{}`", other as char), start)
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .expect("lexes")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_simple_declaration() {
        assert_eq!(
            kinds("int *x = &y;"),
            vec![
                TokenKind::KwInt,
                TokenKind::Star,
                TokenKind::Ident("x".into()),
                TokenKind::Eq,
                TokenKind::Amp,
                TokenKind::Ident("y".into()),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(
            kinds("intx int returnval malloc"),
            vec![
                TokenKind::Ident("intx".into()),
                TokenKind::KwInt,
                TokenKind::Ident("returnval".into()),
                TokenKind::KwMalloc,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("x // line\n /* block\n comment */ y"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Ident("y".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("a == b != c = d"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::EqEq,
                TokenKind::Ident("b".into()),
                TokenKind::NotEq,
                TokenKind::Ident("c".into()),
                TokenKind::Eq,
                TokenKind::Ident("d".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn tracks_line_numbers() {
        let tokens = lex("a\n  b").expect("lexes");
        assert_eq!(tokens[0].span.line, 1);
        assert_eq!(tokens[1].span.line, 2);
        assert_eq!(tokens[1].span.col, 3);
    }

    #[test]
    fn rejects_unknown_character() {
        let err = lex("a $ b").expect_err("rejects");
        assert!(err.message.contains('$'));
    }

    #[test]
    fn rejects_unterminated_block_comment() {
        assert!(lex("/* never closed").is_err());
    }

    #[test]
    fn rejects_bare_bang() {
        assert!(lex("!x").is_err());
    }

    #[test]
    fn empty_input_is_just_eof() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
    }
}
