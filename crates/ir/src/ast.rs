//! The MiniC abstract syntax tree.
//!
//! Names are interned [`Symbol`]s; the owning [`Program`] carries the
//! interner so the tree is self-contained.

use ddpa_support::{Interner, Symbol};

use crate::token::Span;

/// A complete MiniC translation unit.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Interner resolving every [`Symbol`] in the tree.
    pub interner: Interner,
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves a symbol to its source text.
    pub fn name(&self, sym: Symbol) -> &str {
        self.interner.resolve(sym)
    }

    /// Iterates over the functions in source order.
    pub fn functions(&self) -> impl Iterator<Item = &Function> {
        self.items.iter().filter_map(|item| match item {
            Item::Function(f) => Some(f),
            _ => None,
        })
    }

    /// Iterates over the globals in source order.
    pub fn globals(&self) -> impl Iterator<Item = &Global> {
        self.items.iter().filter_map(|item| match item {
            Item::Global(g) => Some(g),
            _ => None,
        })
    }

    /// Iterates over the struct declarations in source order.
    pub fn structs(&self) -> impl Iterator<Item = &StructDecl> {
        self.items.iter().filter_map(|item| match item {
            Item::Struct(s) => Some(s),
            _ => None,
        })
    }

    /// Finds a function by source name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        let sym = self.interner.lookup(name)?;
        self.functions().find(|f| f.name == sym)
    }
}

/// A top-level item.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Item {
    /// A struct declaration.
    Struct(StructDecl),
    /// A global variable.
    Global(Global),
    /// A function definition.
    Function(Function),
}

/// A global variable declaration, possibly initialized.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Global {
    /// The variable name.
    pub name: Symbol,
    /// Its declared (element) type.
    pub ty: Ty,
    /// `Some(n)` declares an array of `n` elements, treated monolithically
    /// by the analysis (the name decays to the storage object's address).
    pub array: Option<u32>,
    /// Optional initializer expression.
    pub init: Option<Expr>,
    /// Source location.
    pub span: Span,
}

/// A function definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Function {
    /// The function name.
    pub name: Symbol,
    /// Return type.
    pub ret: Ty,
    /// Formal parameters in order.
    pub params: Vec<Param>,
    /// The body.
    pub body: Block,
    /// Source location of the signature.
    pub span: Span,
}

/// A formal parameter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Param {
    /// The parameter name.
    pub name: Symbol,
    /// Its declared type.
    pub ty: Ty,
    /// Source location.
    pub span: Span,
}

/// A brace-delimited statement sequence.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Block {
    /// The statements in order.
    pub stmts: Vec<Stmt>,
}

/// A statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// A local declaration, possibly initialized.
    Decl(Decl),
    /// `place = expr;`
    Assign {
        /// Left-hand side.
        lhs: Place,
        /// Right-hand side.
        rhs: Expr,
        /// Source location.
        span: Span,
    },
    /// An expression statement (a call whose result is discarded).
    Expr(Expr),
    /// `return expr?;`
    Return {
        /// The returned value, if any.
        value: Option<Expr>,
        /// Source location.
        span: Span,
    },
    /// `if (cond) stmt (else stmt)?`
    If {
        /// Branch condition.
        cond: Cond,
        /// Taken when the condition holds.
        then_branch: Box<Stmt>,
        /// Taken otherwise, if present.
        else_branch: Option<Box<Stmt>>,
        /// Source location.
        span: Span,
    },
    /// `while (cond) stmt`
    While {
        /// Loop condition.
        cond: Cond,
        /// Loop body.
        body: Box<Stmt>,
        /// Source location.
        span: Span,
    },
    /// A nested block.
    Block(Block),
}

/// A local variable declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Decl {
    /// The variable name.
    pub name: Symbol,
    /// Its declared (element) type.
    pub ty: Ty,
    /// `Some(n)` declares an array of `n` elements, treated monolithically
    /// by the analysis (the name decays to the storage object's address).
    pub array: Option<u32>,
    /// Optional initializer.
    pub init: Option<Expr>,
    /// Source location.
    pub span: Span,
}

/// A field selection suffix: `.f` on a struct value, `->f` through a
/// struct pointer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FieldSel {
    /// `true` for `->`, `false` for `.`.
    pub arrow: bool,
    /// The field name.
    pub name: Symbol,
}

/// An assignable place: zero or more dereferences of a variable
/// (`x`, `*x`, `**x`), or a field selection (`x.f`, `p->f`).
///
/// Dereferences and field selections do not mix (`*p->f` is rejected by
/// the parser); chains (`p->f->g`) are not supported.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Place {
    /// Number of leading `*`s (0 when `field` is present).
    pub derefs: u8,
    /// The base variable.
    pub name: Symbol,
    /// Optional field selection.
    pub field: Option<FieldSel>,
    /// Source location.
    pub span: Span,
}

/// An expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// `&x`, `&x.f`, `&p->f`
    AddrOf {
        /// The variable whose address is taken.
        name: Symbol,
        /// Optional field whose address is taken instead.
        field: Option<FieldSel>,
        /// Source location.
        span: Span,
    },
    /// `x`, `*x`, `**x` — a variable read through `derefs` loads — or a
    /// field read `x.f` / `p->f` (`derefs` is 0 when `field` is present).
    Path {
        /// Number of leading `*`s.
        derefs: u8,
        /// The base variable.
        name: Symbol,
        /// Optional field selection.
        field: Option<FieldSel>,
        /// Source location.
        span: Span,
    },
    /// A call used as a value.
    Call(Call),
    /// `malloc()` — a fresh heap allocation site.
    Malloc {
        /// Source location (identifies the allocation site).
        span: Span,
    },
    /// `null`
    Null {
        /// Source location.
        span: Span,
    },
    /// An integer literal (irrelevant to pointer analysis, kept for realism).
    Int {
        /// The literal value.
        value: i64,
        /// Source location.
        span: Span,
    },
}

impl Expr {
    /// The source location of this expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::AddrOf { span, .. }
            | Expr::Path { span, .. }
            | Expr::Malloc { span }
            | Expr::Null { span }
            | Expr::Int { span, .. } => *span,
            Expr::Call(call) => call.span,
        }
    }
}

/// A function call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Call {
    /// What is being called.
    pub callee: Callee,
    /// Actual arguments in order.
    pub args: Vec<Expr>,
    /// Source location (identifies the call site).
    pub span: Span,
}

/// The callee of a [`Call`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Callee {
    /// `f(...)` — may still be indirect if `f` is a function-pointer
    /// variable; resolution happens during lowering.
    Named(Symbol),
    /// `(*fp)(...)`, `(**fpp)(...)` — explicit dereference of a function
    /// pointer.
    Deref {
        /// Number of `*`s inside the parentheses.
        derefs: u8,
        /// The function-pointer variable.
        name: Symbol,
    },
}

/// A branch/loop condition. Conditions do not affect the flow-insensitive
/// analysis but are parsed, checked, and pretty-printed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cond {
    /// Left operand (or the whole condition when `rest` is `None`).
    pub lhs: Expr,
    /// Optional comparison against a right operand.
    pub rest: Option<(CmpOp, Expr)>,
}

/// A comparison operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

/// A MiniC type: a base type behind `depth` levels of pointers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Ty {
    /// The pointee base.
    pub base: BaseTy,
    /// Number of `*`s.
    pub depth: u8,
}

impl Ty {
    /// `int`
    pub const INT: Ty = Ty {
        base: BaseTy::Int,
        depth: 0,
    };
    /// `void`
    pub const VOID: Ty = Ty {
        base: BaseTy::Void,
        depth: 0,
    };

    /// A pointer type `base` + `depth` stars.
    pub fn ptr(base: BaseTy, depth: u8) -> Ty {
        Ty { base, depth }
    }

    /// Returns `true` if values of this type can hold pointers.
    pub fn is_pointer(self) -> bool {
        self.depth > 0
    }
}

impl std::fmt::Display for Ty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.base {
            BaseTy::Int => write!(f, "int")?,
            BaseTy::Void => write!(f, "void")?,
            // Symbols need an interner to resolve; diagnostics that have
            // one use `check`'s formatting instead.
            BaseTy::Struct(sym) => write!(f, "struct#{}", sym.as_u32())?,
        }
        for _ in 0..self.depth {
            write!(f, "*")?;
        }
        Ok(())
    }
}

/// A base type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BaseTy {
    /// `int`
    Int,
    /// `void` (only meaningful as a return type or behind pointers)
    Void,
    /// `struct <name>`
    Struct(Symbol),
}

/// A struct declaration: `struct S { int *f; ... };`
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StructDecl {
    /// The struct's name.
    pub name: Symbol,
    /// Fields in declaration order.
    pub fields: Vec<(Symbol, Ty)>,
    /// Source location.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ty_display() {
        assert_eq!(Ty::INT.to_string(), "int");
        assert_eq!(Ty::ptr(BaseTy::Int, 2).to_string(), "int**");
        assert_eq!(Ty::VOID.to_string(), "void");
    }

    #[test]
    fn ty_pointerness() {
        assert!(!Ty::INT.is_pointer());
        assert!(Ty::ptr(BaseTy::Int, 1).is_pointer());
    }

    #[test]
    fn program_lookup_helpers() {
        let mut p = Program::new();
        let f = p.interner.intern("f");
        p.items.push(Item::Function(Function {
            name: f,
            ret: Ty::VOID,
            params: vec![],
            body: Block::default(),
            span: Span::DUMMY,
        }));
        assert!(p.function("f").is_some());
        assert!(p.function("g").is_none());
        assert_eq!(p.functions().count(), 1);
        assert_eq!(p.globals().count(), 0);
    }

    #[test]
    fn expr_span_accessor() {
        let span = Span::new(1, 2, 3, 4);
        let e = Expr::Malloc { span };
        assert_eq!(e.span(), span);
    }
}
