//! Programmatic construction of MiniC programs.
//!
//! The workload generator and many tests build ASTs directly instead of
//! going through source text; [`ProgramBuilder`] keeps that terse while
//! handling symbol interning.

use ddpa_support::Symbol;

use crate::ast::*;
use crate::token::Span;

/// A builder for [`Program`]s.
///
/// # Examples
///
/// ```
/// use ddpa_ir::ast::Ty;
/// use ddpa_ir::ProgramBuilder;
///
/// let mut b = ProgramBuilder::new();
/// b.global("g", Ty::INT);
/// let mut main = b.function("main", Ty::VOID, &[]);
/// let addr = main.addr_of("g");
/// main.decl("p", Ty::ptr(ddpa_ir::ast::BaseTy::Int, 1), Some(addr));
/// main.finish();
/// let program = b.finish();
/// ddpa_ir::check(&program)?;
/// # Ok::<(), ddpa_ir::check::CheckErrors>(())
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    program: Program,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`.
    pub fn sym(&mut self, name: &str) -> Symbol {
        self.program.interner.intern(name)
    }

    /// Adds an uninitialized global.
    pub fn global(&mut self, name: &str, ty: Ty) -> &mut Self {
        self.global_init(name, ty, None)
    }

    /// Adds a global with an optional initializer.
    pub fn global_init(&mut self, name: &str, ty: Ty, init: Option<Expr>) -> &mut Self {
        let name = self.sym(name);
        self.program.items.push(Item::Global(Global {
            name,
            ty,
            array: None,
            init,
            span: Span::DUMMY,
        }));
        self
    }

    /// Starts a function; call [`FunctionBuilder::finish`] to add it.
    pub fn function<'a>(
        &'a mut self,
        name: &str,
        ret: Ty,
        params: &[(&str, Ty)],
    ) -> FunctionBuilder<'a> {
        let name = self.sym(name);
        let params = params
            .iter()
            .map(|(pname, pty)| Param {
                name: self.program.interner.intern(pname),
                ty: *pty,
                span: Span::DUMMY,
            })
            .collect();
        FunctionBuilder {
            builder: self,
            func: Function {
                name,
                ret,
                params,
                body: Block::default(),
                span: Span::DUMMY,
            },
        }
    }

    /// Adds a struct declaration.
    pub fn struct_decl(&mut self, name: &str, fields: &[(&str, Ty)]) -> &mut Self {
        let name = self.sym(name);
        let fields = fields
            .iter()
            .map(|(fname, fty)| (self.program.interner.intern(fname), *fty))
            .collect();
        self.program.items.push(Item::Struct(StructDecl {
            name,
            fields,
            span: Span::DUMMY,
        }));
        self
    }

    /// Consumes the builder, returning the program.
    pub fn finish(self) -> Program {
        self.program
    }
}

/// Builds one function body; created by [`ProgramBuilder::function`].
#[derive(Debug)]
pub struct FunctionBuilder<'a> {
    builder: &'a mut ProgramBuilder,
    func: Function,
}

impl FunctionBuilder<'_> {
    /// Interns `name`.
    pub fn sym(&mut self, name: &str) -> Symbol {
        self.builder.sym(name)
    }

    /// `&name`
    pub fn addr_of(&mut self, name: &str) -> Expr {
        let name = self.sym(name);
        Expr::AddrOf {
            name,
            field: None,
            span: Span::DUMMY,
        }
    }

    /// `name`
    pub fn var(&mut self, name: &str) -> Expr {
        self.load(0, name)
    }

    /// `*…*name` with `derefs` stars.
    pub fn load(&mut self, derefs: u8, name: &str) -> Expr {
        let name = self.sym(name);
        Expr::Path {
            derefs,
            name,
            field: None,
            span: Span::DUMMY,
        }
    }

    /// `malloc()`
    pub fn malloc(&mut self) -> Expr {
        Expr::Malloc { span: Span::DUMMY }
    }

    /// `null`
    pub fn null(&mut self) -> Expr {
        Expr::Null { span: Span::DUMMY }
    }

    /// `&base.f` (`arrow = false`) or `&base->f` (`arrow = true`).
    pub fn addr_of_field(&mut self, base: &str, arrow: bool, field: &str) -> Expr {
        let name = self.sym(base);
        let field = self.sym(field);
        Expr::AddrOf {
            name,
            field: Some(FieldSel { arrow, name: field }),
            span: Span::DUMMY,
        }
    }

    /// `base.f` (`arrow = false`) or `base->f` (`arrow = true`).
    pub fn field(&mut self, base: &str, arrow: bool, field: &str) -> Expr {
        let name = self.sym(base);
        let field = self.sym(field);
        Expr::Path {
            derefs: 0,
            name,
            field: Some(FieldSel { arrow, name: field }),
            span: Span::DUMMY,
        }
    }

    /// `base.f = rhs;` or `base->f = rhs;`.
    pub fn assign_field(&mut self, base: &str, arrow: bool, field: &str, rhs: Expr) -> &mut Self {
        let name = self.sym(base);
        let field = self.sym(field);
        self.func.body.stmts.push(Stmt::Assign {
            lhs: Place {
                derefs: 0,
                name,
                field: Some(FieldSel { arrow, name: field }),
                span: Span::DUMMY,
            },
            rhs,
            span: Span::DUMMY,
        });
        self
    }

    /// `callee(args…)` as an expression.
    pub fn call(&mut self, callee: &str, args: Vec<Expr>) -> Expr {
        let callee = Callee::Named(self.sym(callee));
        Expr::Call(Call {
            callee,
            args,
            span: Span::DUMMY,
        })
    }

    /// `(*…*fp)(args…)` as an expression.
    pub fn call_indirect(&mut self, derefs: u8, fp: &str, args: Vec<Expr>) -> Expr {
        let callee = Callee::Deref {
            derefs,
            name: self.sym(fp),
        };
        Expr::Call(Call {
            callee,
            args,
            span: Span::DUMMY,
        })
    }

    /// `ty name (= init)?;`
    pub fn decl(&mut self, name: &str, ty: Ty, init: Option<Expr>) -> &mut Self {
        let name = self.sym(name);
        self.func.body.stmts.push(Stmt::Decl(Decl {
            name,
            ty,
            array: None,
            init,
            span: Span::DUMMY,
        }));
        self
    }

    /// `ty name[len];` — a monolithic array declaration.
    pub fn decl_array(&mut self, name: &str, ty: Ty, len: u32) -> &mut Self {
        let name = self.sym(name);
        self.func.body.stmts.push(Stmt::Decl(Decl {
            name,
            ty,
            array: Some(len),
            init: None,
            span: Span::DUMMY,
        }));
        self
    }

    /// `*…*name = rhs;` with `derefs` stars.
    pub fn assign(&mut self, derefs: u8, name: &str, rhs: Expr) -> &mut Self {
        let name = self.sym(name);
        self.func.body.stmts.push(Stmt::Assign {
            lhs: Place {
                derefs,
                name,
                field: None,
                span: Span::DUMMY,
            },
            rhs,
            span: Span::DUMMY,
        });
        self
    }

    /// An expression statement (a call).
    pub fn expr_stmt(&mut self, expr: Expr) -> &mut Self {
        self.func.body.stmts.push(Stmt::Expr(expr));
        self
    }

    /// `return value?;`
    pub fn ret(&mut self, value: Option<Expr>) -> &mut Self {
        self.func.body.stmts.push(Stmt::Return {
            value,
            span: Span::DUMMY,
        });
        self
    }

    /// Appends an arbitrary statement.
    pub fn stmt(&mut self, stmt: Stmt) -> &mut Self {
        self.func.body.stmts.push(stmt);
        self
    }

    /// Finishes the function, adding it to the program.
    pub fn finish(self) {
        self.builder.program.items.push(Item::Function(self.func));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BaseTy;
    use crate::{check, pretty};

    #[test]
    fn builds_checkable_program() {
        let mut b = ProgramBuilder::new();
        b.global("g", Ty::INT);
        let mut f = b.function(
            "take",
            Ty::ptr(BaseTy::Int, 1),
            &[("p", Ty::ptr(BaseTy::Int, 1))],
        );
        let p = f.var("p");
        f.ret(Some(p));
        f.finish();
        let mut main = b.function("main", Ty::VOID, &[]);
        let addr = main.addr_of("g");
        main.decl("x", Ty::ptr(BaseTy::Int, 1), Some(addr));
        let x = main.var("x");
        let call = main.call("take", vec![x]);
        main.decl("y", Ty::ptr(BaseTy::Int, 1), Some(call));
        main.finish();
        let program = b.finish();
        check(&program).expect("checks");
        let text = pretty(&program);
        assert!(text.contains("int *take(int *p)"), "got:\n{text}");
        let reparsed = crate::parse(&text).expect("reparses");
        check(&reparsed).expect("reparsed checks");
    }

    #[test]
    fn builds_indirect_calls() {
        let mut b = ProgramBuilder::new();
        let mut f = b.function("f", Ty::VOID, &[]);
        f.ret(None);
        f.finish();
        let mut main = b.function("main", Ty::VOID, &[]);
        let fref = main.var("f");
        main.decl("fp", Ty::ptr(BaseTy::Void, 1), Some(fref));
        let call = main.call_indirect(1, "fp", vec![]);
        main.expr_stmt(call);
        main.finish();
        let program = b.finish();
        check(&program).expect("checks");
    }
}
