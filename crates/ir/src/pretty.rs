//! Pretty-printer for MiniC.
//!
//! [`pretty`] produces source text that re-parses to an equivalent program;
//! `parse ∘ pretty` is the identity on ASTs up to spans (checked by a
//! property test in the integration suite).

use std::fmt::Write as _;

use crate::ast::*;

/// Renders `program` as MiniC source.
///
/// # Examples
///
/// ```
/// let program = ddpa_ir::parse("int g; void main() { g = 1; }")?;
/// let text = ddpa_ir::pretty(&program);
/// assert!(text.contains("int g;"));
/// let again = ddpa_ir::parse(&text)?;
/// assert_eq!(again.items.len(), program.items.len());
/// # Ok::<(), ddpa_ir::ParseError>(())
/// ```
pub fn pretty(program: &Program) -> String {
    let mut printer = Printer {
        program,
        out: String::new(),
        indent: 0,
    };
    for item in &program.items {
        printer.item(item);
    }
    printer.out
}

struct Printer<'a> {
    program: &'a Program,
    out: String,
    indent: usize,
}

impl Printer<'_> {
    fn line_start(&mut self) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
    }

    /// Prints `int **name` style (stars attached to the name, C-style).
    fn typed_name(&mut self, ty: Ty, sym: ddpa_support::Symbol) {
        match ty.base {
            BaseTy::Int => self.out.push_str("int"),
            BaseTy::Void => self.out.push_str("void"),
            BaseTy::Struct(s) => {
                self.out.push_str("struct ");
                self.out.push_str(self.program.name(s));
            }
        }
        self.out.push(' ');
        for _ in 0..ty.depth {
            self.out.push('*');
        }
        self.out.push_str(self.program.name(sym));
    }

    fn field_sel(&mut self, field: &Option<FieldSel>) {
        if let Some(sel) = field {
            self.out.push_str(if sel.arrow { "->" } else { "." });
            self.out.push_str(self.program.name(sel.name));
        }
    }

    fn item(&mut self, item: &Item) {
        match item {
            Item::Struct(decl) => {
                self.out.push_str("struct ");
                self.out.push_str(self.program.name(decl.name));
                self.out.push_str(" {\n");
                self.indent += 1;
                for (fname, fty) in &decl.fields {
                    self.line_start();
                    self.typed_name(*fty, *fname);
                    self.out.push_str(";\n");
                }
                self.indent -= 1;
                self.out.push_str("};\n");
            }
            Item::Global(g) => {
                self.typed_name(g.ty, g.name);
                if let Some(len) = g.array {
                    let _ = write!(self.out, "[{len}]");
                }
                if let Some(init) = &g.init {
                    self.out.push_str(" = ");
                    self.expr(init);
                }
                self.out.push_str(";\n");
            }
            Item::Function(f) => {
                self.typed_name(f.ret, f.name);
                self.out.push('(');
                for (i, p) in f.params.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.typed_name(p.ty, p.name);
                }
                self.out.push_str(") ");
                self.block(&f.body);
                self.out.push('\n');
            }
        }
    }

    fn block(&mut self, block: &Block) {
        self.out.push_str("{\n");
        self.indent += 1;
        for stmt in &block.stmts {
            self.stmt(stmt);
        }
        self.indent -= 1;
        self.line_start();
        self.out.push('}');
    }

    fn stmt(&mut self, stmt: &Stmt) {
        self.line_start();
        match stmt {
            Stmt::Decl(d) => {
                self.typed_name(d.ty, d.name);
                if let Some(len) = d.array {
                    let _ = write!(self.out, "[{len}]");
                }
                if let Some(init) = &d.init {
                    self.out.push_str(" = ");
                    self.expr(init);
                }
                self.out.push_str(";\n");
            }
            Stmt::Assign { lhs, rhs, .. } => {
                for _ in 0..lhs.derefs {
                    self.out.push('*');
                }
                self.out.push_str(self.program.name(lhs.name));
                let field = lhs.field;
                self.field_sel(&field);
                self.out.push_str(" = ");
                self.expr(rhs);
                self.out.push_str(";\n");
            }
            Stmt::Expr(e) => {
                self.expr(e);
                self.out.push_str(";\n");
            }
            Stmt::Return { value, .. } => {
                self.out.push_str("return");
                if let Some(v) = value {
                    self.out.push(' ');
                    self.expr(v);
                }
                self.out.push_str(";\n");
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                self.out.push_str("if (");
                self.cond(cond);
                self.out.push_str(") ");
                self.nested(then_branch);
                if let Some(e) = else_branch {
                    self.line_start();
                    self.out.push_str("else ");
                    self.nested(e);
                }
            }
            Stmt::While { cond, body, .. } => {
                self.out.push_str("while (");
                self.cond(cond);
                self.out.push_str(") ");
                self.nested(body);
            }
            Stmt::Block(b) => {
                self.block(b);
                self.out.push('\n');
            }
        }
    }

    /// Prints a statement in a branch/body position: blocks stay inline,
    /// other statements go on their own indented line.
    fn nested(&mut self, stmt: &Stmt) {
        if let Stmt::Block(b) = stmt {
            self.block(b);
            self.out.push('\n');
        } else {
            self.out.push_str("{\n");
            self.indent += 1;
            self.stmt(stmt);
            self.indent -= 1;
            self.line_start();
            self.out.push_str("}\n");
        }
    }

    fn cond(&mut self, cond: &Cond) {
        self.expr(&cond.lhs);
        if let Some((op, rhs)) = &cond.rest {
            self.out.push_str(match op {
                CmpOp::Eq => " == ",
                CmpOp::Ne => " != ",
            });
            self.expr(rhs);
        }
    }

    fn expr(&mut self, expr: &Expr) {
        match expr {
            Expr::AddrOf { name, field, .. } => {
                self.out.push('&');
                self.out.push_str(self.program.name(*name));
                self.field_sel(field);
            }
            Expr::Path {
                derefs,
                name,
                field,
                ..
            } => {
                for _ in 0..*derefs {
                    self.out.push('*');
                }
                self.out.push_str(self.program.name(*name));
                self.field_sel(field);
            }
            Expr::Call(call) => {
                match &call.callee {
                    Callee::Named(sym) => self.out.push_str(self.program.name(*sym)),
                    Callee::Deref { derefs, name } => {
                        self.out.push('(');
                        for _ in 0..*derefs {
                            self.out.push('*');
                        }
                        self.out.push_str(self.program.name(*name));
                        self.out.push(')');
                    }
                }
                self.out.push('(');
                for (i, arg) in call.args.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(arg);
                }
                self.out.push(')');
            }
            Expr::Malloc { .. } => self.out.push_str("malloc()"),
            Expr::Null { .. } => self.out.push_str("null"),
            Expr::Int { value, .. } => {
                let _ = write!(self.out, "{value}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    /// Strips spans by comparing the pretty forms.
    fn roundtrips(src: &str) {
        let p1 = parse(src).expect("first parse");
        let text1 = pretty(&p1);
        let p2 = parse(&text1).expect("reparse of pretty output");
        let text2 = pretty(&p2);
        assert_eq!(text1, text2, "pretty output is not a fixpoint");
    }

    #[test]
    fn roundtrip_basics() {
        roundtrips("int g; int *h = &g; void main() { h = &g; *h = 1; }");
    }

    #[test]
    fn roundtrip_calls() {
        roundtrips(
            "int *id(int *p) { return p; } \
             void main() { void *fp = id; int *r = (*fp)(null); r = id(r); id(r); }",
        );
    }

    #[test]
    fn roundtrip_control_flow() {
        roundtrips(
            "void main() { int *p; if (p == null) p = malloc(); else { p = null; } \
             while (p != null) { p = null; } { int *q; q = p; } }",
        );
    }

    #[test]
    fn output_is_indented() {
        let p = parse("void main() { int *p; { p = null; } }").expect("parses");
        let text = pretty(&p);
        assert!(text.contains("\n    int *p;"), "got:\n{text}");
        assert!(text.contains("\n        p = null;"), "got:\n{text}");
    }
}
