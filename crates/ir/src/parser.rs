//! Recursive-descent parser for MiniC.

use ddpa_support::Symbol;

use crate::ast::*;
use crate::lexer::{lex, LexError};
use crate::token::{Span, Token, TokenKind};

/// An error produced while parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Location of the offending token.
    pub span: Span,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(err: LexError) -> Self {
        ParseError {
            message: err.message,
            span: err.span,
        }
    }
}

/// Parses MiniC source into a [`Program`].
///
/// # Errors
///
/// Returns [`ParseError`] on the first lexical or syntactic error.
///
/// # Examples
///
/// ```
/// let program = ddpa_ir::parse("int *g; void main() { g = &g; }")?;
/// assert_eq!(program.globals().count(), 1);
/// # Ok::<(), ddpa_ir::ParseError>(())
/// ```
pub fn parse(source: &str) -> Result<Program, ParseError> {
    let tokens = lex(source)?;
    Parser {
        tokens,
        pos: 0,
        program: Program::new(),
    }
    .run()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    program: Program,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, offset: usize) -> &TokenKind {
        let idx = (self.pos + offset).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let token = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        token
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            span: self.span(),
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, ParseError> {
        if self.peek() == kind {
            Ok(self.bump())
        } else {
            Err(self.error(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().describe()
            )))
        }
    }

    fn expect_ident(&mut self) -> Result<(Symbol, Span), ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let span = self.span();
                self.bump();
                Ok((self.program.interner.intern(&name), span))
            }
            other => Err(self.error(format!("expected identifier, found {}", other.describe()))),
        }
    }

    fn run(mut self) -> Result<Program, ParseError> {
        while *self.peek() != TokenKind::Eof {
            let item = self.item()?;
            self.program.items.push(item);
        }
        Ok(self.program)
    }

    fn ty(&mut self) -> Result<Ty, ParseError> {
        let base = match self.peek() {
            TokenKind::KwInt => {
                self.bump();
                BaseTy::Int
            }
            TokenKind::KwVoid => {
                self.bump();
                BaseTy::Void
            }
            TokenKind::KwStruct => {
                self.bump();
                let (name, _) = self.expect_ident()?;
                BaseTy::Struct(name)
            }
            other => {
                return Err(self.error(format!(
                    "expected a type (`int`, `void`, or `struct S`), found {}",
                    other.describe()
                )))
            }
        };
        let mut depth: u8 = 0;
        while *self.peek() == TokenKind::Star {
            self.bump();
            depth = depth
                .checked_add(1)
                .ok_or_else(|| self.error("pointer depth exceeds 255"))?;
        }
        Ok(Ty { base, depth })
    }

    fn item(&mut self) -> Result<Item, ParseError> {
        let span = self.span();
        // `struct S { ... };` is a declaration; `struct S *x;` a global.
        if *self.peek() == TokenKind::KwStruct
            && matches!(self.peek_at(1), TokenKind::Ident(_))
            && *self.peek_at(2) == TokenKind::LBrace
        {
            return self.struct_decl(span).map(Item::Struct);
        }
        let ty = self.ty()?;
        let (name, _) = self.expect_ident()?;
        if *self.peek() == TokenKind::LParen {
            let function = self.function(ty, name, span)?;
            Ok(Item::Function(function))
        } else {
            let array = self.array_suffix()?;
            let init = if *self.peek() == TokenKind::Eq {
                self.bump();
                Some(self.expr()?)
            } else {
                None
            };
            self.expect(&TokenKind::Semi)?;
            Ok(Item::Global(Global {
                name,
                ty,
                array,
                init,
                span,
            }))
        }
    }

    /// Parses an optional `[N]` array suffix on a declaration.
    fn array_suffix(&mut self) -> Result<Option<u32>, ParseError> {
        if *self.peek() != TokenKind::LBracket {
            return Ok(None);
        }
        self.bump();
        let len = match self.peek().clone() {
            TokenKind::Int(v) if v > 0 => {
                self.bump();
                u32::try_from(v).map_err(|_| self.error("array length too large"))?
            }
            other => {
                return Err(self.error(format!(
                    "expected a positive array length, found {}",
                    other.describe()
                )))
            }
        };
        self.expect(&TokenKind::RBracket)?;
        Ok(Some(len))
    }

    /// Consumes a bracketed index (`[expr]`), validating but discarding it:
    /// arrays are analyzed monolithically, so the index value is
    /// irrelevant; only simple indices are allowed so no side effects are
    /// lost.
    fn discard_index(&mut self) -> Result<(), ParseError> {
        self.expect(&TokenKind::LBracket)?;
        match self.peek().clone() {
            TokenKind::Int(_) => {
                self.bump();
            }
            TokenKind::Ident(_) => {
                self.bump();
            }
            other => {
                return Err(self.error(format!(
                    "array index must be an integer or variable                      (monolithic arrays), found {}",
                    other.describe()
                )))
            }
        }
        self.expect(&TokenKind::RBracket)?;
        Ok(())
    }

    fn struct_decl(&mut self, span: Span) -> Result<StructDecl, ParseError> {
        self.expect(&TokenKind::KwStruct)?;
        let (name, _) = self.expect_ident()?;
        self.expect(&TokenKind::LBrace)?;
        let mut fields = Vec::new();
        while *self.peek() != TokenKind::RBrace {
            if *self.peek() == TokenKind::Eof {
                return Err(self.error("unexpected end of input inside struct"));
            }
            let fty = self.ty()?;
            let (fname, _) = self.expect_ident()?;
            self.expect(&TokenKind::Semi)?;
            fields.push((fname, fty));
        }
        self.expect(&TokenKind::RBrace)?;
        self.expect(&TokenKind::Semi)?;
        Ok(StructDecl { name, fields, span })
    }

    fn function(&mut self, ret: Ty, name: Symbol, span: Span) -> Result<Function, ParseError> {
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if *self.peek() != TokenKind::RParen {
            loop {
                let pspan = self.span();
                let pty = self.ty()?;
                let (pname, _) = self.expect_ident()?;
                params.push(Param {
                    name: pname,
                    ty: pty,
                    span: pspan,
                });
                if *self.peek() == TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        let body = self.block()?;
        Ok(Function {
            name,
            ret,
            params,
            body,
            span,
        })
    }

    fn block(&mut self) -> Result<Block, ParseError> {
        self.expect(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while *self.peek() != TokenKind::RBrace {
            if *self.peek() == TokenKind::Eof {
                return Err(self.error("unexpected end of input inside block"));
            }
            stmts.push(self.stmt()?);
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let span = self.span();
        match self.peek() {
            TokenKind::KwInt | TokenKind::KwVoid | TokenKind::KwStruct => {
                let ty = self.ty()?;
                let (name, _) = self.expect_ident()?;
                let array = self.array_suffix()?;
                let init = if *self.peek() == TokenKind::Eq {
                    self.bump();
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Decl(Decl {
                    name,
                    ty,
                    array,
                    init,
                    span,
                }))
            }
            TokenKind::Star => {
                let mut derefs: u8 = 0;
                while *self.peek() == TokenKind::Star {
                    self.bump();
                    derefs = derefs
                        .checked_add(1)
                        .ok_or_else(|| self.error("dereference depth exceeds 255"))?;
                }
                let (name, _) = self.expect_ident()?;
                self.expect(&TokenKind::Eq)?;
                let rhs = self.expr()?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Assign {
                    lhs: Place {
                        derefs,
                        name,
                        field: None,
                        span,
                    },
                    rhs,
                    span,
                })
            }
            TokenKind::Ident(_) => {
                if *self.peek_at(1) == TokenKind::LParen {
                    let expr = self.expr()?;
                    self.expect(&TokenKind::Semi)?;
                    Ok(Stmt::Expr(expr))
                } else {
                    let (name, _) = self.expect_ident()?;
                    // `a[i] = e` is `*a = e` under monolithic arrays.
                    let derefs = if *self.peek() == TokenKind::LBracket {
                        self.discard_index()?;
                        1
                    } else {
                        0
                    };
                    let field = if derefs == 0 { self.field_sel()? } else { None };
                    self.expect(&TokenKind::Eq)?;
                    let rhs = self.expr()?;
                    self.expect(&TokenKind::Semi)?;
                    Ok(Stmt::Assign {
                        lhs: Place {
                            derefs,
                            name,
                            field,
                            span,
                        },
                        rhs,
                        span,
                    })
                }
            }
            TokenKind::LParen => {
                let expr = self.expr()?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Expr(expr))
            }
            TokenKind::KwReturn => {
                self.bump();
                let value = if *self.peek() == TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Return { value, span })
            }
            TokenKind::KwIf => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.cond()?;
                self.expect(&TokenKind::RParen)?;
                let then_branch = Box::new(self.stmt()?);
                let else_branch = if *self.peek() == TokenKind::KwElse {
                    self.bump();
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                    span,
                })
            }
            TokenKind::KwWhile => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.cond()?;
                self.expect(&TokenKind::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::While { cond, body, span })
            }
            TokenKind::LBrace => Ok(Stmt::Block(self.block()?)),
            other => Err(self.error(format!("expected a statement, found {}", other.describe()))),
        }
    }

    /// Parses an optional `.field` / `->field` suffix.
    fn field_sel(&mut self) -> Result<Option<FieldSel>, ParseError> {
        let arrow = match self.peek() {
            TokenKind::Dot => false,
            TokenKind::Arrow => true,
            _ => return Ok(None),
        };
        self.bump();
        let (name, _) = self.expect_ident()?;
        Ok(Some(FieldSel { arrow, name }))
    }

    fn cond(&mut self) -> Result<Cond, ParseError> {
        let lhs = self.expr()?;
        let rest = match self.peek() {
            TokenKind::EqEq => {
                self.bump();
                Some((CmpOp::Eq, self.expr()?))
            }
            TokenKind::NotEq => {
                self.bump();
                Some((CmpOp::Ne, self.expr()?))
            }
            _ => None,
        };
        Ok(Cond { lhs, rest })
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Amp => {
                self.bump();
                let (name, _) = self.expect_ident()?;
                if *self.peek() == TokenKind::LBracket {
                    // `&a[i]` is the (monolithic) array's address — which
                    // is what `a` itself decays to.
                    self.discard_index()?;
                    return Ok(Expr::Path {
                        derefs: 0,
                        name,
                        field: None,
                        span,
                    });
                }
                let field = self.field_sel()?;
                Ok(Expr::AddrOf { name, field, span })
            }
            TokenKind::Star => {
                let mut derefs: u8 = 0;
                while *self.peek() == TokenKind::Star {
                    self.bump();
                    derefs = derefs
                        .checked_add(1)
                        .ok_or_else(|| self.error("dereference depth exceeds 255"))?;
                }
                let (name, _) = self.expect_ident()?;
                Ok(Expr::Path {
                    derefs,
                    name,
                    field: None,
                    span,
                })
            }
            TokenKind::Ident(_) => {
                let (name, _) = self.expect_ident()?;
                if *self.peek() == TokenKind::LParen {
                    let args = self.args()?;
                    Ok(Expr::Call(Call {
                        callee: Callee::Named(name),
                        args,
                        span,
                    }))
                } else if *self.peek() == TokenKind::LBracket {
                    // `a[i]` reads the monolithic array: `*a`.
                    self.discard_index()?;
                    Ok(Expr::Path {
                        derefs: 1,
                        name,
                        field: None,
                        span,
                    })
                } else {
                    let field = self.field_sel()?;
                    Ok(Expr::Path {
                        derefs: 0,
                        name,
                        field,
                        span,
                    })
                }
            }
            TokenKind::LParen => {
                // `(*fp)(args)` — indirect call through an explicit deref.
                self.bump();
                let mut derefs: u8 = 0;
                while *self.peek() == TokenKind::Star {
                    self.bump();
                    derefs = derefs
                        .checked_add(1)
                        .ok_or_else(|| self.error("dereference depth exceeds 255"))?;
                }
                if derefs == 0 {
                    return Err(self.error(
                        "parenthesized expressions are only used for indirect calls: expected `*`",
                    ));
                }
                let (name, _) = self.expect_ident()?;
                self.expect(&TokenKind::RParen)?;
                let args = self.args()?;
                Ok(Expr::Call(Call {
                    callee: Callee::Deref { derefs, name },
                    args,
                    span,
                }))
            }
            TokenKind::KwMalloc => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                // Accept an optional size argument for C flavour: malloc(8).
                if let TokenKind::Int(_) = self.peek() {
                    self.bump();
                }
                self.expect(&TokenKind::RParen)?;
                Ok(Expr::Malloc { span })
            }
            TokenKind::KwNull => {
                self.bump();
                Ok(Expr::Null { span })
            }
            TokenKind::Int(value) => {
                self.bump();
                Ok(Expr::Int { value, span })
            }
            other => Err(self.error(format!(
                "expected an expression, found {}",
                other.describe()
            ))),
        }
    }

    fn args(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        if *self.peek() != TokenKind::RParen {
            loop {
                args.push(self.expr()?);
                if *self.peek() == TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_globals_and_functions() {
        let p = parse("int g; int *h = &g; void main() { }").expect("parses");
        assert_eq!(p.globals().count(), 2);
        assert_eq!(p.functions().count(), 1);
        let h = p.globals().nth(1).expect("h exists");
        assert!(matches!(h.init, Some(Expr::AddrOf { .. })));
    }

    #[test]
    fn parses_pointer_statements() {
        let src = r#"
            void main() {
                int x;
                int *p = &x;
                int **pp = &p;
                *p = 3;
                **pp = 4;
                p = *pp;
            }
        "#;
        let p = parse(src).expect("parses");
        let main = p.function("main").expect("main exists");
        assert_eq!(main.body.stmts.len(), 6);
        match &main.body.stmts[4] {
            Stmt::Assign { lhs, .. } => assert_eq!(lhs.derefs, 2),
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn parses_calls_direct_and_indirect() {
        let src = r#"
            int *id(int *p) { return p; }
            void main() {
                void *fp;
                fp = id;
                int *r = id(null);
                r = (*fp)(r);
                id(r);
            }
        "#;
        let p = parse(src).expect("parses");
        let main = p.function("main").expect("main exists");
        // fp = id is a plain assignment from a Path naming a function.
        match &main.body.stmts[1] {
            Stmt::Assign {
                rhs: Expr::Path { derefs: 0, .. },
                ..
            } => {}
            other => panic!("expected fp = id, got {other:?}"),
        }
        match &main.body.stmts[3] {
            Stmt::Assign {
                rhs: Expr::Call(call),
                ..
            } => {
                assert!(matches!(call.callee, Callee::Deref { derefs: 1, .. }));
            }
            other => panic!("expected indirect call, got {other:?}"),
        }
        assert!(matches!(main.body.stmts[4], Stmt::Expr(Expr::Call(_))));
    }

    #[test]
    fn parses_control_flow() {
        let src = r#"
            void main() {
                int *p;
                if (p == null) { p = malloc(); } else p = malloc(8);
                while (p != null) { p = null; }
            }
        "#;
        let p = parse(src).expect("parses");
        let main = p.function("main").expect("main exists");
        assert!(matches!(main.body.stmts[1], Stmt::If { .. }));
        assert!(matches!(main.body.stmts[2], Stmt::While { .. }));
    }

    #[test]
    fn rejects_missing_semicolon() {
        let err = parse("int g").expect_err("rejects");
        assert!(err.message.contains("`;`"), "message: {}", err.message);
    }

    #[test]
    fn rejects_bare_parenthesized_expr() {
        let err = parse("void main() { int x = (y); }").expect_err("rejects");
        assert!(
            err.message.contains("indirect calls"),
            "message: {}",
            err.message
        );
    }

    #[test]
    fn rejects_statement_starting_with_int_literal() {
        assert!(parse("void main() { 42 = x; }").is_err());
    }

    #[test]
    fn parses_multi_arg_call() {
        let src = "void f(int *a, int *b, int *c) { } void main() { f(null, null, null); }";
        let p = parse(src).expect("parses");
        let f = p.function("f").expect("f exists");
        assert_eq!(f.params.len(), 3);
    }

    #[test]
    fn empty_program_parses() {
        let p = parse("  /* nothing */ ").expect("parses");
        assert!(p.items.is_empty());
    }

    #[test]
    fn error_spans_point_at_token() {
        let err = parse("void main() {\n  $;\n}").expect_err("rejects");
        assert_eq!(err.span.line, 2);
    }
}

#[cfg(test)]
mod struct_tests {
    use super::*;

    #[test]
    fn parses_struct_declaration_and_use() {
        let src = r#"
            struct Node { struct Node *next; int *data; };
            void main() {
                struct Node *p = malloc();
                p->next = null;
                int *d = p->data;
                struct Node **pp = &p;
            }
        "#;
        let p = parse(src).expect("parses");
        let decl = p.structs().next().expect("struct declared");
        assert_eq!(decl.fields.len(), 2);
        let main = p.function("main").expect("main exists");
        match &main.body.stmts[1] {
            Stmt::Assign { lhs, .. } => {
                let sel = lhs.field.expect("field place");
                assert!(sel.arrow);
            }
            other => panic!("expected field assign, got {other:?}"),
        }
    }

    #[test]
    fn parses_dot_access_and_field_address() {
        let src = r#"
            struct Pair { int *a; int *b; };
            int g;
            void main() {
                struct Pair pr;
                pr.a = &g;
                int *x = pr.a;
                int **pa = &pr.b;
            }
        "#;
        let p = parse(src).expect("parses");
        let main = p.function("main").expect("main exists");
        match &main.body.stmts[3] {
            Stmt::Decl(d) => match &d.init {
                Some(Expr::AddrOf {
                    field: Some(sel), ..
                }) => assert!(!sel.arrow),
                other => panic!("expected &pr.b, got {other:?}"),
            },
            other => panic!("expected decl, got {other:?}"),
        }
    }

    #[test]
    fn struct_global_vs_struct_decl_disambiguation() {
        let p = parse("struct S { int *f; }; struct S g; void main() { }").expect("parses");
        assert_eq!(p.structs().count(), 1);
        assert_eq!(p.globals().count(), 1);
    }

    #[test]
    fn struct_typed_function_and_params_parse() {
        let p = parse(
            "struct S { int *f; }; struct S *mk() { return malloc(); } \
             void use(struct S *p) { }",
        )
        .expect("parses");
        assert_eq!(p.functions().count(), 2);
    }

    #[test]
    fn rejects_bare_arrow() {
        assert!(parse("void main() { int x = - 3; }").is_err());
    }

    #[test]
    fn rejects_unterminated_struct() {
        assert!(parse("struct S { int *f;").is_err());
    }
}

#[cfg(test)]
mod array_tests {
    use super::*;

    #[test]
    fn parses_array_declarations_and_indexing() {
        let src = "int *tab[4]; void main() { int *loc[2]; loc[0] = tab[1]; }";
        let p = parse(src).expect("parses");
        let g = p.globals().next().expect("global");
        assert_eq!(g.array, Some(4));
        let main = p.function("main").expect("main");
        match &main.body.stmts[0] {
            Stmt::Decl(d) => assert_eq!(d.array, Some(2)),
            other => panic!("expected array decl, got {other:?}"),
        }
        // loc[0] = tab[1] desugars to *loc = *tab.
        match &main.body.stmts[1] {
            Stmt::Assign { lhs, rhs, .. } => {
                assert_eq!(lhs.derefs, 1);
                assert!(matches!(rhs, Expr::Path { derefs: 1, .. }));
            }
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn element_address_desugars_to_decay() {
        let p = parse("int *tab[2]; void main() { int **q = &tab[0]; }").expect("parses");
        let main = p.function("main").expect("main");
        match &main.body.stmts[0] {
            Stmt::Decl(d) => {
                assert!(matches!(d.init, Some(Expr::Path { derefs: 0, .. })));
            }
            other => panic!("expected decl, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_array_syntax() {
        assert!(parse("int *tab[];").is_err());
        assert!(parse("int *tab[0];").is_err());
        assert!(parse("void main() { int *t[2]; t[f()] = null; }").is_err());
        assert!(
            parse("int *tab[4] = null;").is_ok(),
            "init rejected by checker, not parser"
        );
    }
}
