//! Semantic checking for MiniC.
//!
//! The checker enforces the static rules that the lowering to constraints
//! relies on:
//!
//! * every used name is declared (lexical scoping with shadowing in nested
//!   blocks);
//! * no duplicate definitions in the same scope;
//! * direct calls to known functions pass the right number of arguments;
//! * dereference chains never exceed a variable's declared pointer depth
//!   (so `*x` on an `int` is rejected);
//! * function names are not dereferenced and `return <value>` only occurs
//!   in non-`void` functions;
//! * struct rules: field accesses (`x.f`, `p->f`, `&x.f`, `&p->f`) match
//!   the base's declared struct type and the field exists; whole-struct
//!   values are never copied, passed, or returned (use pointers);
//!   struct-valued *fields* are likewise rejected (use pointers) so every
//!   field is a scalar or pointer slot.
//!
//! The checker collects *all* errors rather than stopping at the first.

use std::collections::HashMap;

use ddpa_support::Symbol;

use crate::ast::*;
use crate::token::Span;

/// A single semantic error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckError {
    /// Human-readable description.
    pub message: String,
    /// Location of the offending construct.
    pub span: Span,
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "check error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for CheckError {}

/// All semantic errors found in a program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckErrors(pub Vec<CheckError>);

impl std::fmt::Display for CheckErrors {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, e) in self.0.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

impl std::error::Error for CheckErrors {}

/// Checks `program`, returning `Ok(())` or every error found.
///
/// # Errors
///
/// Returns [`CheckErrors`] listing each violation of the rules in the
/// module documentation.
///
/// # Examples
///
/// ```
/// let program = ddpa_ir::parse("void main() { x = null; }")?;
/// let errs = ddpa_ir::check(&program).expect_err("x is undeclared");
/// assert!(errs.0[0].message.contains("undeclared"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn check(program: &Program) -> Result<(), CheckErrors> {
    let mut checker = Checker::new(program);
    checker.run();
    if checker.errors.is_empty() {
        Ok(())
    } else {
        Err(CheckErrors(checker.errors))
    }
}

#[derive(Clone, Copy, Debug)]
enum Binding {
    Var(Ty),
    /// A monolithic array; the type is the *decayed* pointer type
    /// (element type one level deeper).
    Array(Ty),
    Func {
        arity: usize,
    },
}

struct Checker<'a> {
    program: &'a Program,
    structs: HashMap<Symbol, Vec<(Symbol, Ty)>>,
    globals: HashMap<Symbol, Binding>,
    scopes: Vec<HashMap<Symbol, Binding>>,
    current_ret: Ty,
    errors: Vec<CheckError>,
}

impl<'a> Checker<'a> {
    fn new(program: &'a Program) -> Self {
        Checker {
            program,
            structs: HashMap::new(),
            globals: HashMap::new(),
            scopes: Vec::new(),
            current_ret: Ty::VOID,
            errors: Vec::new(),
        }
    }

    fn name(&self, sym: Symbol) -> &str {
        self.program.name(sym)
    }

    fn error(&mut self, span: Span, message: impl Into<String>) {
        self.errors.push(CheckError {
            message: message.into(),
            span,
        });
    }

    /// Formats a type with struct names resolved.
    fn ty_str(&self, ty: Ty) -> String {
        let base = match ty.base {
            BaseTy::Int => "int".to_owned(),
            BaseTy::Void => "void".to_owned(),
            BaseTy::Struct(s) => format!("struct {}", self.name(s)),
        };
        format!("{}{}", base, "*".repeat(ty.depth as usize))
    }

    /// Computes a declaration's binding, validating array rules.
    fn declared_binding(
        &mut self,
        name: Symbol,
        ty: Ty,
        array: Option<u32>,
        span: Span,
    ) -> Binding {
        let Some(_) = array else {
            return Binding::Var(ty);
        };
        let n = self.name(name).to_owned();
        if matches!(ty.base, BaseTy::Struct(_)) && ty.depth == 0 {
            self.error(
                span,
                format!("array `{n}`: struct-valued elements are not supported; use pointers"),
            );
        }
        if ty == Ty::VOID {
            self.error(span, format!("array `{n}` cannot have `void` elements"));
        }
        match ty.depth.checked_add(1) {
            Some(depth) => Binding::Array(Ty {
                base: ty.base,
                depth,
            }),
            None => {
                self.error(span, "array element pointer depth exceeds 255");
                Binding::Array(ty)
            }
        }
    }

    /// Checks that a used type names a declared struct.
    fn validate_ty(&mut self, ty: Ty, span: Span) {
        if let BaseTy::Struct(s) = ty.base {
            if !self.structs.contains_key(&s) {
                let n = self.name(s).to_owned();
                self.error(span, format!("unknown struct `{n}`"));
            }
        }
    }

    fn lookup(&self, sym: Symbol) -> Option<Binding> {
        for scope in self.scopes.iter().rev() {
            if let Some(&b) = scope.get(&sym) {
                return Some(b);
            }
        }
        self.globals.get(&sym).copied()
    }

    fn declare_local(&mut self, sym: Symbol, binding: Binding, span: Span) {
        let scope = self.scopes.last_mut().expect("inside a scope");
        if scope.insert(sym, binding).is_some() {
            let name = self.name(sym).to_owned();
            self.error(span, format!("`{name}` is already declared in this scope"));
        }
    }

    fn run(&mut self) {
        // Pass 0: collect struct declarations (forward references work).
        for item in &self.program.items {
            if let Item::Struct(decl) = item {
                if self
                    .structs
                    .insert(decl.name, decl.fields.clone())
                    .is_some()
                {
                    let name = self.name(decl.name).to_owned();
                    self.error(decl.span, format!("struct `{name}` is declared twice"));
                }
            }
        }
        // Validate field types now that all struct names are known.
        for item in &self.program.items {
            if let Item::Struct(decl) = item {
                let mut seen = HashMap::new();
                for (fname, fty) in &decl.fields {
                    if seen.insert(*fname, ()).is_some() {
                        let n = self.name(*fname).to_owned();
                        self.error(decl.span, format!("duplicate field `{n}`"));
                    }
                    self.validate_ty(*fty, decl.span);
                    if matches!(fty.base, BaseTy::Struct(_)) && fty.depth == 0 {
                        let n = self.name(*fname).to_owned();
                        self.error(
                            decl.span,
                            format!("field `{n}`: struct-valued fields are not supported; use a pointer"),
                        );
                    }
                    if *fty == Ty::VOID {
                        let n = self.name(*fname).to_owned();
                        self.error(decl.span, format!("field `{n}` cannot have type `void`"));
                    }
                }
            }
        }

        // Pass 1: collect top-level bindings so forward references work.
        for item in &self.program.items {
            let (sym, binding, span) = match item {
                Item::Struct(_) => continue,
                Item::Global(g) => (
                    g.name,
                    self.declared_binding(g.name, g.ty, g.array, g.span),
                    g.span,
                ),
                Item::Function(f) => (
                    f.name,
                    Binding::Func {
                        arity: f.params.len(),
                    },
                    f.span,
                ),
            };
            if self.globals.insert(sym, binding).is_some() {
                let name = self.name(sym).to_owned();
                self.error(
                    span,
                    format!("`{name}` is defined more than once at top level"),
                );
            }
        }

        // Pass 2: check bodies and initializers.
        for item in &self.program.items {
            match item {
                Item::Struct(_) => {}
                Item::Global(g) => {
                    self.validate_ty(g.ty, g.span);
                    if g.array.is_some() && g.init.is_some() {
                        let n = self.name(g.name).to_owned();
                        self.error(
                            g.span,
                            format!("array `{n}`: initializers are not supported"),
                        );
                    }
                    if g.ty == Ty::VOID && g.array.is_none() {
                        let name = self.name(g.name).to_owned();
                        self.error(g.span, format!("global `{name}` cannot have type `void`"));
                    }
                    if let Some(init) = &g.init {
                        // Globals are initialized in a scope with only globals.
                        self.scopes.push(HashMap::new());
                        self.expr(init);
                        self.scopes.pop();
                    }
                }
                Item::Function(f) => self.function(f),
            }
        }
    }

    fn function(&mut self, f: &Function) {
        self.current_ret = f.ret;
        self.validate_ty(f.ret, f.span);
        if matches!(f.ret.base, BaseTy::Struct(_)) && f.ret.depth == 0 {
            self.error(
                f.span,
                "returning a struct by value is not supported; return a pointer".to_owned(),
            );
        }
        self.scopes.push(HashMap::new());
        for param in &f.params {
            self.validate_ty(param.ty, param.span);
            if matches!(param.ty.base, BaseTy::Struct(_)) && param.ty.depth == 0 {
                let name = self.name(param.name).to_owned();
                self.error(
                    param.span,
                    format!("parameter `{name}`: passing a struct by value is not supported"),
                );
            }
            if param.ty == Ty::VOID {
                let name = self.name(param.name).to_owned();
                self.error(
                    param.span,
                    format!("parameter `{name}` cannot have type `void`"),
                );
            }
            self.declare_local(param.name, Binding::Var(param.ty), param.span);
        }
        self.block(&f.body);
        self.scopes.pop();
    }

    fn block(&mut self, block: &Block) {
        self.scopes.push(HashMap::new());
        for stmt in &block.stmts {
            self.stmt(stmt);
        }
        self.scopes.pop();
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Decl(decl) => {
                self.validate_ty(decl.ty, decl.span);
                if decl.ty == Ty::VOID && decl.array.is_none() {
                    let name = self.name(decl.name).to_owned();
                    self.error(decl.span, format!("local `{name}` cannot have type `void`"));
                }
                if decl.array.is_some() && decl.init.is_some() {
                    let name = self.name(decl.name).to_owned();
                    self.error(
                        decl.span,
                        format!("array `{name}`: initializers are not supported"),
                    );
                }
                if let Some(init) = &decl.init {
                    self.expr(init);
                }
                let binding = self.declared_binding(decl.name, decl.ty, decl.array, decl.span);
                self.declare_local(decl.name, binding, decl.span);
            }
            Stmt::Assign { lhs, rhs, .. } => {
                self.place(lhs);
                self.expr(rhs);
            }
            Stmt::Expr(expr) => {
                if !matches!(expr, Expr::Call(_)) {
                    self.error(expr.span(), "expression statement must be a call");
                }
                self.expr(expr);
            }
            Stmt::Return { value, span } => {
                match (value, self.current_ret) {
                    (Some(_), ty) if ty == Ty::VOID => {
                        self.error(*span, "cannot return a value from a `void` function");
                    }
                    (None, ty) if ty != Ty::VOID => {
                        self.error(*span, "non-`void` function must return a value");
                    }
                    _ => {}
                }
                if let Some(v) = value {
                    self.expr(v);
                }
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                self.cond(cond);
                self.stmt(then_branch);
                if let Some(e) = else_branch {
                    self.stmt(e);
                }
            }
            Stmt::While { cond, body, .. } => {
                self.cond(cond);
                self.stmt(body);
            }
            Stmt::Block(b) => self.block(b),
        }
    }

    fn cond(&mut self, cond: &Cond) {
        self.expr(&cond.lhs);
        if let Some((_, rhs)) = &cond.rest {
            self.expr(rhs);
        }
    }

    fn place(&mut self, place: &Place) {
        if let Some(sel) = place.field {
            debug_assert_eq!(place.derefs, 0, "parser rejects *p->f");
            self.check_field(place.name, sel, place.span);
            return;
        }
        if place.derefs == 0 {
            match self.lookup(place.name) {
                Some(Binding::Func { .. }) => {
                    let n = self.name(place.name).to_owned();
                    self.error(place.span, format!("cannot assign to function `{n}`"));
                    return;
                }
                Some(Binding::Array(_)) => {
                    let n = self.name(place.name).to_owned();
                    self.error(
                        place.span,
                        format!("cannot assign to array `{n}`; index it"),
                    );
                    return;
                }
                _ => {}
            }
        }
        self.check_deref(place.name, place.derefs, place.span);
    }

    /// Checks a field access `base.f` / `base->f`.
    fn check_field(&mut self, base: Symbol, sel: FieldSel, span: Span) {
        let binding = match self.lookup(base) {
            None => {
                let n = self.name(base).to_owned();
                self.error(span, format!("use of undeclared variable `{n}`"));
                return;
            }
            Some(b) => b,
        };
        let ty = match binding {
            Binding::Func { .. } => {
                let n = self.name(base).to_owned();
                self.error(span, format!("function `{n}` has no fields"));
                return;
            }
            Binding::Array(_) => {
                let n = self.name(base).to_owned();
                self.error(span, format!("array `{n}` has no fields; index it first"));
                return;
            }
            Binding::Var(ty) => ty,
        };
        let expected_depth = if sel.arrow { 1 } else { 0 };
        let op = if sel.arrow { "->" } else { "." };
        let struct_sym = match ty.base {
            BaseTy::Struct(s) if ty.depth == expected_depth => s,
            _ => {
                let n = self.name(base).to_owned();
                let t = self.ty_str(ty);
                self.error(
                    span,
                    format!(
                        "`{n}{op}…` requires `{n}` to be a struct{}, but it has type `{t}`",
                        if sel.arrow { " pointer" } else { " value" }
                    ),
                );
                return;
            }
        };
        let fields = match self.structs.get(&struct_sym) {
            Some(f) => f,
            None => return, // unknown struct already reported
        };
        if !fields.iter().any(|(fname, _)| *fname == sel.name) {
            let f = self.name(sel.name).to_owned();
            let st = self.name(struct_sym).to_owned();
            self.error(span, format!("struct `{st}` has no field `{f}`"));
        }
    }

    /// Checks a read/write of `name` through `derefs` dereferences.
    fn check_deref(&mut self, name: Symbol, derefs: u8, span: Span) {
        match self.lookup(name) {
            None => {
                let n = self.name(name).to_owned();
                self.error(span, format!("use of undeclared variable `{n}`"));
            }
            Some(Binding::Func { .. }) => {
                if derefs > 0 {
                    let n = self.name(name).to_owned();
                    self.error(span, format!("cannot dereference function `{n}`"));
                }
            }
            Some(Binding::Array(ty)) | Some(Binding::Var(ty)) => {
                let _ = &ty;
                if matches!(ty.base, BaseTy::Struct(_)) && derefs == ty.depth {
                    let n = self.name(name).to_owned();
                    self.error(
                        span,
                        format!(
                            "cannot use the whole struct value `{}{n}`; access a field or take its address",
                            "*".repeat(derefs as usize)
                        ),
                    );
                    return;
                }
                if derefs > ty.depth {
                    let n = self.name(name).to_owned();
                    self.error(
                        span,
                        format!(
                            "cannot dereference `{n}` {derefs} time(s): its type `{ty}` \
                             has pointer depth {}",
                            ty.depth
                        ),
                    );
                }
            }
        }
    }

    fn expr(&mut self, expr: &Expr) {
        match expr {
            Expr::AddrOf { name, field, span } => {
                if let Some(sel) = field {
                    self.check_field(*name, *sel, *span);
                } else {
                    match self.lookup(*name) {
                        None => {
                            let n = self.name(*name).to_owned();
                            self.error(
                                *span,
                                format!("cannot take the address of undeclared `{n}`"),
                            );
                        }
                        Some(Binding::Array(_)) => {
                            let n = self.name(*name).to_owned();
                            self.error(
                                *span,
                                format!(
                                    "`&{n}` on an array: the name already decays to its address"
                                ),
                            );
                        }
                        _ => {}
                    }
                }
            }
            Expr::Path {
                derefs,
                name,
                field,
                span,
            } => {
                if let Some(sel) = field {
                    debug_assert_eq!(*derefs, 0, "parser rejects *p->f");
                    self.check_field(*name, *sel, *span);
                } else {
                    self.check_deref(*name, *derefs, *span);
                }
            }
            Expr::Call(call) => self.call(call),
            Expr::Malloc { .. } | Expr::Null { .. } | Expr::Int { .. } => {}
        }
    }

    fn call(&mut self, call: &Call) {
        match &call.callee {
            Callee::Named(sym) => match self.lookup(*sym) {
                None => {
                    let n = self.name(*sym).to_owned();
                    self.error(call.span, format!("call to undeclared function `{n}`"));
                }
                Some(Binding::Func { arity }) => {
                    if arity != call.args.len() {
                        let n = self.name(*sym).to_owned();
                        self.error(
                            call.span,
                            format!(
                                "`{n}` takes {arity} argument(s) but {} were supplied",
                                call.args.len()
                            ),
                        );
                    }
                }
                Some(Binding::Array(ty)) | Some(Binding::Var(ty)) => {
                    let _ = &ty;
                    // A call through a function-pointer variable; it must at
                    // least be pointer-typed. Arity is checked dynamically by
                    // the analysis (mismatched targets are filtered).
                    if !ty.is_pointer() {
                        let n = self.name(*sym).to_owned();
                        self.error(
                            call.span,
                            format!("`{n}` has type `{ty}` and cannot be called"),
                        );
                    }
                }
            },
            Callee::Deref { derefs, name } => {
                self.check_deref(*name, *derefs, call.span);
                if self.lookup(*name).is_none() {
                    // already reported by check_deref
                } else if let Some(Binding::Func { .. }) = self.lookup(*name) {
                    let n = self.name(*name).to_owned();
                    self.error(
                        call.span,
                        format!("`(*{n})(...)` dereferences function `{n}`; call it directly"),
                    );
                }
            }
        }
        for arg in &call.args {
            self.expr(arg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn errs(src: &str) -> Vec<String> {
        let program = parse(src).expect("parses");
        match check(&program) {
            Ok(()) => vec![],
            Err(CheckErrors(es)) => es.into_iter().map(|e| e.message).collect(),
        }
    }

    #[test]
    fn accepts_valid_program() {
        let src = r#"
            int g;
            int *get(int *p) { if (p == null) return &g; return p; }
            void main() {
                int *x = get(null);
                int **xx = &x;
                *xx = &g;
            }
        "#;
        assert!(errs(src).is_empty());
    }

    #[test]
    fn rejects_undeclared_use() {
        let es = errs("void main() { x = null; }");
        assert!(es.iter().any(|m| m.contains("undeclared variable `x`")));
    }

    #[test]
    fn rejects_duplicate_in_same_scope_but_allows_shadowing() {
        let es = errs("void main() { int *p; int *p; }");
        assert!(es.iter().any(|m| m.contains("already declared")));
        let es = errs("void main() { int *p; { int *p; p = null; } }");
        assert!(es.is_empty());
    }

    #[test]
    fn rejects_over_dereference() {
        let es = errs("void main() { int x; *x = 3; }");
        assert!(es.iter().any(|m| m.contains("pointer depth 0")));
    }

    #[test]
    fn rejects_wrong_arity() {
        let es = errs("void f(int *a) { } void main() { f(); }");
        assert!(es.iter().any(|m| m.contains("takes 1 argument")));
    }

    #[test]
    fn rejects_return_mismatches() {
        let es = errs("void f() { return null; }");
        assert!(es.iter().any(|m| m.contains("cannot return a value")));
        let es = errs("int *f() { return; }");
        assert!(es.iter().any(|m| m.contains("must return a value")));
    }

    #[test]
    fn rejects_duplicate_top_level() {
        let es = errs("int g; int g;");
        assert!(es.iter().any(|m| m.contains("more than once")));
    }

    #[test]
    fn allows_function_pointer_calls() {
        let src = r#"
            int *id(int *p) { return p; }
            void main() {
                void *fp = id;
                int *r = (*fp)(null);
                r = fp(null);
            }
        "#;
        assert!(errs(src).is_empty(), "{:?}", errs(src));
    }

    #[test]
    fn rejects_dereferencing_a_function() {
        let es = errs("void f() { } void main() { (*f)(); }");
        assert!(es.iter().any(|m| m.contains("call it directly")));
    }

    #[test]
    fn rejects_void_variables() {
        let es = errs("void g; void main() { }");
        assert!(es.iter().any(|m| m.contains("cannot have type `void`")));
        let es = errs("void main() { void x; }");
        assert!(es.iter().any(|m| m.contains("cannot have type `void`")));
    }

    #[test]
    fn rejects_non_call_expression_statement() {
        let src = "void main() { int *p; p; }";
        // `p;` parses as... actually `p` then `;` fails at parse (expects `=` or `(`),
        // so use a form that parses: none exists — this documents the invariant.
        assert!(parse(src).is_err());
    }

    #[test]
    fn collects_multiple_errors() {
        let es = errs("void main() { a = null; b = null; }");
        assert_eq!(es.len(), 2);
    }
}

#[cfg(test)]
mod struct_tests {
    use super::*;
    use crate::parse;

    fn errs(src: &str) -> Vec<String> {
        let program = parse(src).expect("parses");
        match check(&program) {
            Ok(()) => vec![],
            Err(CheckErrors(es)) => es.into_iter().map(|e| e.message).collect(),
        }
    }

    #[test]
    fn accepts_valid_struct_program() {
        let src = r#"
            struct Node { struct Node *next; int *data; };
            int g;
            void main() {
                struct Node n;
                n.data = &g;
                struct Node *p = &n;
                p->next = null;
                int *d = p->data;
                int **pd = &p->data;
                int **nd = &n.data;
            }
        "#;
        assert!(errs(src).is_empty(), "{:?}", errs(src));
    }

    #[test]
    fn rejects_unknown_struct_and_field() {
        let es = errs("struct S { int *f; }; void main() { struct T x; }");
        assert!(es.iter().any(|m| m.contains("unknown struct `T`")));
        let es = errs("struct S { int *f; }; void main() { struct S x; x.g = null; }");
        assert!(es.iter().any(|m| m.contains("no field `g`")));
    }

    #[test]
    fn rejects_wrong_access_shape() {
        // `.` on a pointer, `->` on a value.
        let es = errs("struct S { int *f; }; void main() { struct S *p; p.f = null; }");
        assert!(es.iter().any(|m| m.contains("struct value")), "{es:?}");
        let es = errs("struct S { int *f; }; void main() { struct S x; x->f = null; }");
        assert!(es.iter().any(|m| m.contains("struct pointer")), "{es:?}");
    }

    #[test]
    fn rejects_whole_struct_uses() {
        let es = errs("struct S { int *f; }; void main() { struct S a; struct S b; a = b; }");
        assert!(es.iter().any(|m| m.contains("whole struct")), "{es:?}");
        let es = errs("struct S { int *f; }; void use(struct S v) { }");
        assert!(es.iter().any(|m| m.contains("by value")), "{es:?}");
        let es = errs("struct S { int *f; }; struct S mk() { return null; }");
        assert!(es.iter().any(|m| m.contains("by value")), "{es:?}");
    }

    #[test]
    fn rejects_struct_valued_fields_and_duplicates() {
        let es = errs("struct A { int *x; }; struct B { struct A inner; };");
        assert!(es.iter().any(|m| m.contains("use a pointer")), "{es:?}");
        let es = errs("struct A { int *x; int *x; };");
        assert!(es.iter().any(|m| m.contains("duplicate field")), "{es:?}");
        let es = errs("struct A { int *x; }; struct A { int *y; };");
        assert!(es.iter().any(|m| m.contains("declared twice")), "{es:?}");
    }

    #[test]
    fn rejects_field_access_on_non_struct() {
        let es = errs("void main() { int *p; p->f = null; }");
        assert!(
            es.iter().any(|m| m.contains("requires `p` to be a struct")),
            "{es:?}"
        );
        let es = errs("void f() { } void main() { f.x = null; }");
        assert!(es.iter().any(|m| m.contains("has no fields")), "{es:?}");
    }
}

#[cfg(test)]
mod array_tests {
    use super::*;
    use crate::parse;

    fn errs(src: &str) -> Vec<String> {
        let program = parse(src).expect("parses");
        match check(&program) {
            Ok(()) => vec![],
            Err(CheckErrors(es)) => es.into_iter().map(|e| e.message).collect(),
        }
    }

    #[test]
    fn accepts_valid_array_program() {
        let src = "int g; \
                   void main() { int *tab[4]; tab[0] = &g; int *x = tab[1]; \
                                 int **p = tab; int **q = &tab[2]; **p = 1; }";
        assert!(errs(src).is_empty(), "{:?}", errs(src));
    }

    #[test]
    fn rejects_array_misuse() {
        let es = errs("void main() { int *tab[4]; tab = null; }");
        assert!(
            es.iter().any(|m| m.contains("cannot assign to array")),
            "{es:?}"
        );
        let es = errs("void main() { int *tab[4]; int **p = &tab; }");
        assert!(es.iter().any(|m| m.contains("decays")), "{es:?}");
        let es = errs("struct S { int *f; }; void main() { struct S tab[4]; }");
        assert!(
            es.iter().any(|m| m.contains("struct-valued elements")),
            "{es:?}"
        );
        let es = errs("void main() { int *tab[2]; tab.f = null; }");
        assert!(es.iter().any(|m| m.contains("has no fields")), "{es:?}");
    }

    #[test]
    fn pointer_indexing_is_allowed() {
        // p[i] on a plain pointer is *(p+i), monolithically *p.
        let src = "int g; void main() { int *p = &g; int x = p[3]; }";
        assert!(errs(src).is_empty(), "{:?}", errs(src));
    }
}
