//! Robustness properties of the MiniC frontend: the lexer/parser/checker
//! must never panic, and error spans must stay within the input. Inputs
//! are random strings over frontend-relevant alphabets, drawn from a
//! seeded RNG so every run tests the same corpus.

use ddpa_support::rng::Rng;

use ddpa_ir::lexer::lex;
use ddpa_ir::parse;

/// A random string of length `< max_len` over `alphabet`.
fn soup(rng: &mut Rng, alphabet: &str, max_len: usize) -> String {
    let chars: Vec<char> = alphabet.chars().collect();
    let len = rng.gen_range(0..max_len);
    (0..len)
        .map(|_| chars[rng.gen_range(0..chars.len())])
        .collect()
}

/// Printable ASCII plus newline and tab, like proptest's `[ -~\n\t]`.
fn printable() -> String {
    let mut s: String = (b' '..=b'~').map(char::from).collect();
    s.push('\n');
    s.push('\t');
    s
}

const CASES: usize = 256;

/// The lexer totalizes: any byte soup either lexes or reports a
/// located error — never panics.
#[test]
fn lexer_never_panics() {
    let mut rng = Rng::seed_from_u64(0x1e8_0001);
    let alphabet = printable();
    for _ in 0..CASES {
        let input = soup(&mut rng, &alphabet, 201);
        match lex(&input) {
            Ok(tokens) => {
                assert!(!tokens.is_empty());
                assert_eq!(
                    &tokens.last().expect("eof token").kind,
                    &ddpa_ir::token::TokenKind::Eof
                );
            }
            Err(e) => {
                assert!(e.span.start as usize <= input.len());
            }
        }
    }
}

/// The parser totalizes on arbitrary token-shaped soup.
#[test]
fn parser_never_panics() {
    let mut rng = Rng::seed_from_u64(0x1e8_0002);
    let alphabet = "abcdefghijklmnopqrstuvwxyz0123456789*&=;,(){}! \n";
    for _ in 0..CASES {
        let input = soup(&mut rng, alphabet, 201);
        let _ = parse(&input);
    }
}

/// Any successfully parsed program pretty-prints to something that
/// parses again to the same pretty form.
#[test]
fn accepted_inputs_roundtrip() {
    let mut rng = Rng::seed_from_u64(0x1e8_0003);
    let alphabet = "abcdefghijklmnopqrstuvwxyz*&=;(){} ";
    for _ in 0..CASES {
        let input = soup(&mut rng, alphabet, 81);
        if let Ok(program) = parse(&input) {
            let text1 = ddpa_ir::pretty(&program);
            let reparsed = parse(&text1).expect("pretty output must parse");
            assert_eq!(text1, ddpa_ir::pretty(&reparsed));
        }
    }
}

/// Checker never panics and reports spans within the input.
#[test]
fn checker_never_panics() {
    let mut rng = Rng::seed_from_u64(0x1e8_0004);
    let alphabet = "abcdefghijklmnopqrstuvwxyz0123456789*&=;,(){} \n";
    for _ in 0..CASES {
        let input = soup(&mut rng, alphabet, 201);
        if let Ok(program) = parse(&input) {
            if let Err(errs) = ddpa_ir::check(&program) {
                for e in errs.0 {
                    assert!(e.span.start as usize <= input.len());
                }
            }
        }
    }
}
