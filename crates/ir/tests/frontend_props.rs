//! Robustness properties of the MiniC frontend: the lexer/parser/checker
//! must never panic, and error spans must stay within the input.

use proptest::prelude::*;

use ddpa_ir::lexer::lex;
use ddpa_ir::parse;

proptest! {
    /// The lexer totalizes: any byte soup either lexes or reports a
    /// located error — never panics.
    #[test]
    fn lexer_never_panics(input in "[ -~\n\t]{0,200}") {
        match lex(&input) {
            Ok(tokens) => {
                prop_assert!(!tokens.is_empty());
                prop_assert_eq!(
                    &tokens.last().expect("eof token").kind,
                    &ddpa_ir::token::TokenKind::Eof
                );
            }
            Err(e) => {
                prop_assert!(e.span.start as usize <= input.len());
            }
        }
    }

    /// The parser totalizes on arbitrary token-shaped soup.
    #[test]
    fn parser_never_panics(input in "[a-z0-9*&=;,(){}! \n]{0,200}") {
        let _ = parse(&input);
    }

    /// Any successfully parsed program pretty-prints to something that
    /// parses again to the same pretty form.
    #[test]
    fn accepted_inputs_roundtrip(input in "[a-z*&=;(){} ]{0,80}") {
        if let Ok(program) = parse(&input) {
            let text1 = ddpa_ir::pretty(&program);
            let reparsed = parse(&text1).expect("pretty output must parse");
            prop_assert_eq!(text1, ddpa_ir::pretty(&reparsed));
        }
    }

    /// Checker never panics and reports spans within the input.
    #[test]
    fn checker_never_panics(input in "[a-z0-9*&=;,(){} \n]{0,200}") {
        if let Ok(program) = parse(&input) {
            if let Err(errs) = ddpa_ir::check(&program) {
                for e in errs.0 {
                    prop_assert!(e.span.start as usize <= input.len());
                }
            }
        }
    }
}
