//! Lowering MiniC ASTs to constraint programs.
//!
//! The lowering normalizes MiniC's expression forms into the primitive
//! constraints, introducing temporaries for multi-level dereferences and
//! materialized addresses exactly as a C frontend would:
//!
//! * `x = **p`   becomes `t0 = *p; x = *t0`
//! * `**p = y`   becomes `t0 = *p; *t0 = y`
//! * `f(&g)`     becomes `t0 = &g; call f(t0)`
//! * `p = malloc()` allocates a fresh heap node `h` and emits `p = &h`
//!
//! Struct members lower to the field-sensitive constraint forms:
//!
//! * `&x.f`      is the field node `x.f` itself (created at `x`'s declaration)
//! * `&p->f`     becomes `t0 = &p->f` (a [`crate::FieldAddr`] constraint)
//! * `p->f` (read)  becomes `t0 = &p->f; t1 = *t0`
//! * `p->f = e`     becomes `t0 = &p->f; *t0 = e`
//! * `struct S *p = malloc()` types the heap object, creating its field
//!   nodes, so later `p->f` accesses resolve; mallocs whose struct type
//!   cannot be seen at the assignment get untyped (field-less) objects.
//!
//! Locals are scope-resolved and renamed apart (`main::x`, `main::x.2`, …)
//! so the constraint program needs no scope information. Function
//! designators decay to their function-object address (`fp = f` emits
//! `fp = &@fn_f`), and calls through pointer variables or explicit derefs
//! become indirect call sites resolved during analysis.

use std::collections::HashMap;

use ddpa_ir::ast::{self, BaseTy, Callee, Cond, Expr, FieldSel, Item, Place, Stmt, Ty};
use ddpa_ir::token::Span;

use crate::model::{FuncId, NodeId};
use crate::program::{ConstraintBuilder, ConstraintProgram};

/// An error produced during lowering (usually an unresolved name; running
/// [`ddpa_ir::check()`] first rules these out).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LowerError {
    /// Human-readable description.
    pub message: String,
    /// Location of the offending construct.
    pub span: Span,
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lowering error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for LowerError {}

/// Lowers a MiniC program to its constraint program.
///
/// # Errors
///
/// Returns [`LowerError`] if a name cannot be resolved or a construct is
/// ill-formed; programs accepted by [`ddpa_ir::check()`] always lower.
///
/// # Examples
///
/// ```
/// let program = ddpa_ir::parse("int g; void main() { int *p = &g; *p = 1; }")?;
/// let cp = ddpa_constraints::lower(&program)?;
/// assert_eq!(cp.addr_ofs().len(), 1); // p = &g
/// assert!(cp.stores().is_empty());    // *p = 1 stores no pointer
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn lower(program: &ast::Program) -> Result<ConstraintProgram, LowerError> {
    let mut lowerer = Lowerer::new(program);
    lowerer.run()?;
    Ok(lowerer.builder.build())
}

/// Like [`lower`], but times the pass (span `constraints.lower`) and
/// publishes the resulting program's [`crate::ProgramStats`] as
/// `program.*` gauges in `obs`.
pub fn lower_with_obs(
    program: &ast::Program,
    obs: &ddpa_obs::Obs,
) -> Result<ConstraintProgram, LowerError> {
    let cp = {
        let _span = obs.span("constraints.lower");
        lower(program)?
    };
    crate::ProgramStats::of(&cp).record(&obs.registry);
    Ok(cp)
}

/// The value an expression lowers to.
#[derive(Clone, Copy, Debug)]
enum Value {
    /// No pointer value (null, integers).
    None,
    /// The value held in a node.
    Node(NodeId),
    /// The address of a node (not yet materialized into a temporary).
    Addr(NodeId),
}

/// What a name resolves to.
#[derive(Clone, Copy, Debug)]
enum Slot {
    /// A variable node with its declared type (if known).
    Node(NodeId, Option<Ty>),
    /// A function.
    Func(FuncId),
}

struct Lowerer<'a> {
    ast: &'a ast::Program,
    builder: ConstraintBuilder,
    structs: HashMap<ddpa_support::Symbol, Vec<(ddpa_support::Symbol, Ty)>>,
    globals: HashMap<ddpa_support::Symbol, (NodeId, Ty)>,
    funcs: HashMap<ddpa_support::Symbol, FuncId>,
    /// Lexical scopes of the function currently being lowered.
    scopes: Vec<HashMap<ddpa_support::Symbol, (NodeId, Ty)>>,
    /// Disambiguation counters for shadowed local names.
    local_counts: HashMap<String, u32>,
    /// Source names of declared functions, for qualifying locals.
    func_names: HashMap<FuncId, String>,
    /// Formal parameter types, by formal node.
    current_func: Option<FuncId>,
}

impl<'a> Lowerer<'a> {
    fn new(ast: &'a ast::Program) -> Self {
        Lowerer {
            ast,
            builder: ConstraintBuilder::new(),
            structs: HashMap::new(),
            globals: HashMap::new(),
            funcs: HashMap::new(),
            scopes: Vec::new(),
            local_counts: HashMap::new(),
            func_names: HashMap::new(),
            current_func: None,
        }
    }

    fn err(&self, span: Span, message: impl Into<String>) -> LowerError {
        LowerError {
            message: message.into(),
            span,
        }
    }

    fn run(&mut self) -> Result<(), LowerError> {
        // Pass 0: struct declarations.
        for item in &self.ast.items {
            if let Item::Struct(decl) = item {
                self.structs.insert(decl.name, decl.fields.clone());
            }
        }

        // Pass 1: declare globals and functions so forward references work.
        for item in &self.ast.items {
            match item {
                Item::Struct(_) => {}
                Item::Global(g) => {
                    let name = self.ast.name(g.name).to_owned();
                    let node = self.builder.var(&name);
                    if let Some(_len) = g.array {
                        // Monolithic array: one storage object; the name
                        // decays to its address.
                        let storage = self.builder.var(&format!("{name}[]"));
                        self.builder.addr_of(node, storage);
                        let decayed = Ty {
                            base: g.ty.base,
                            depth: g.ty.depth + 1,
                        };
                        self.globals.insert(g.name, (node, decayed));
                    } else {
                        self.globals.insert(g.name, (node, g.ty));
                        self.declare_fields_if_struct(node, g.ty);
                    }
                }
                Item::Function(f) => {
                    let name = self.ast.name(f.name).to_owned();
                    if self.funcs.contains_key(&f.name) {
                        return Err(self.err(f.span, format!("function `{name}` redefined")));
                    }
                    let id = self.builder.func(&name, f.params.len());
                    self.funcs.insert(f.name, id);
                    self.func_names.insert(id, name);
                }
            }
        }

        // Pass 2: initializers and bodies.
        for item in &self.ast.items {
            match item {
                Item::Struct(_) => {}
                Item::Global(g) => {
                    if let Some(init) = &g.init {
                        let (dst, ty) = self.globals[&g.name];
                        let value = self.expr_expecting(init, Some(ty))?;
                        self.assign_into(dst, value);
                    }
                }
                Item::Function(f) => self.function(f)?,
            }
        }
        Ok(())
    }

    /// If `ty` declares a struct *value*, create its field nodes.
    fn declare_fields_if_struct(&mut self, node: NodeId, ty: Ty) {
        if ty.depth != 0 {
            return;
        }
        if let BaseTy::Struct(s) = ty.base {
            let num_fields = self.structs.get(&s).map_or(0, Vec::len);
            for index in 0..num_fields {
                self.builder.field_node(node, index as u32);
            }
        }
    }

    /// If `ty` is a pointer to a struct, create the pointee's field nodes
    /// on `heap` (typed allocation).
    fn type_heap(&mut self, heap: NodeId, ty: Ty) {
        if ty.depth == 1 {
            self.declare_fields_if_struct(
                heap,
                Ty {
                    base: ty.base,
                    depth: 0,
                },
            );
        }
    }

    /// The index of `field` within struct `s`.
    fn field_index(
        &self,
        s: ddpa_support::Symbol,
        field: ddpa_support::Symbol,
        span: Span,
    ) -> Result<u32, LowerError> {
        let fields = self
            .structs
            .get(&s)
            .ok_or_else(|| self.err(span, format!("unknown struct `{}`", self.ast.name(s))))?;
        fields
            .iter()
            .position(|(fname, _)| *fname == field)
            .map(|i| i as u32)
            .ok_or_else(|| {
                self.err(
                    span,
                    format!(
                        "struct `{}` has no field `{}`",
                        self.ast.name(s),
                        self.ast.name(field)
                    ),
                )
            })
    }

    /// The declared type of `field` within struct `s`.
    fn field_ty(&self, s: ddpa_support::Symbol, field: ddpa_support::Symbol) -> Option<Ty> {
        self.structs
            .get(&s)?
            .iter()
            .find(|(fname, _)| *fname == field)
            .map(|(_, ty)| *ty)
    }

    fn function(&mut self, f: &ast::Function) -> Result<(), LowerError> {
        let id = self.funcs[&f.name];
        self.current_func = Some(id);
        self.local_counts.clear();
        let mut top_scope = HashMap::new();
        let formals = self.builder.func_info(id).formals.clone();
        for (param, node) in f.params.iter().zip(formals) {
            top_scope.insert(param.name, (node, param.ty));
        }
        self.scopes.push(top_scope);
        self.block(&f.body)?;
        self.scopes.pop();
        self.current_func = None;
        Ok(())
    }

    fn block(&mut self, block: &ast::Block) -> Result<(), LowerError> {
        self.scopes.push(HashMap::new());
        for stmt in &block.stmts {
            self.stmt(stmt)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn resolve(&self, sym: ddpa_support::Symbol, span: Span) -> Result<Slot, LowerError> {
        for scope in self.scopes.iter().rev() {
            if let Some(&(node, ty)) = scope.get(&sym) {
                return Ok(Slot::Node(node, Some(ty)));
            }
        }
        if let Some(&(node, ty)) = self.globals.get(&sym) {
            return Ok(Slot::Node(node, Some(ty)));
        }
        if let Some(&func) = self.funcs.get(&sym) {
            return Ok(Slot::Func(func));
        }
        Err(self.err(span, format!("unresolved name `{}`", self.ast.name(sym))))
    }

    fn resolve_node(&self, sym: ddpa_support::Symbol, span: Span) -> Result<NodeId, LowerError> {
        match self.resolve(sym, span)? {
            Slot::Node(n, _) => Ok(n),
            Slot::Func(_) => Err(self.err(
                span,
                format!("`{}` is a function, not a variable", self.ast.name(sym)),
            )),
        }
    }

    /// Resolves a struct field access: returns the base node, the struct
    /// symbol, and the field index.
    fn resolve_field(
        &self,
        base: ddpa_support::Symbol,
        sel: FieldSel,
        span: Span,
    ) -> Result<(NodeId, ddpa_support::Symbol, u32), LowerError> {
        let (node, ty) = match self.resolve(base, span)? {
            Slot::Node(n, Some(ty)) => (n, ty),
            Slot::Node(_, None) => {
                return Err(self.err(span, "field access on value of unknown type"))
            }
            Slot::Func(_) => return Err(self.err(span, "functions have no fields")),
        };
        let expected_depth = if sel.arrow { 1 } else { 0 };
        match ty.base {
            BaseTy::Struct(s) if ty.depth == expected_depth => {
                let idx = self.field_index(s, sel.name, span)?;
                Ok((node, s, idx))
            }
            _ => Err(self.err(
                span,
                format!(
                    "`{}` is not a struct of the right shape",
                    self.ast.name(base)
                ),
            )),
        }
    }

    /// Declares a fresh local, renamed apart from shadowed ones.
    fn declare_local(&mut self, sym: ddpa_support::Symbol, ty: Ty) -> NodeId {
        self.declare_local_named(sym, ty).0
    }

    /// Like [`Self::declare_local`] but also returns the qualified name.
    fn declare_local_named(&mut self, sym: ddpa_support::Symbol, ty: Ty) -> (NodeId, String) {
        let func_name = self
            .current_func
            .and_then(|f| self.func_names.get(&f).cloned())
            .unwrap_or_default();
        let base = format!("{func_name}::{}", self.ast.name(sym));
        let count = self.local_counts.entry(base.clone()).or_insert(0);
        *count += 1;
        let qualified = if *count == 1 {
            base
        } else {
            format!("{base}.{count}")
        };
        let node = self.builder.var(&qualified);
        if let Some(f) = self.current_func {
            self.builder.set_owner(node, f);
        }
        self.declare_fields_if_struct(node, ty);
        self.scopes
            .last_mut()
            .expect("inside a scope")
            .insert(sym, (node, ty));
        (node, qualified)
    }

    /// A fresh temporary owned by the current function.
    fn temp(&mut self) -> NodeId {
        let t = self.builder.temp();
        if let Some(f) = self.current_func {
            self.builder.set_owner(t, f);
        }
        t
    }

    /// A fresh heap site owned by the current function.
    fn heap(&mut self) -> NodeId {
        let h = self.builder.heap();
        if let Some(f) = self.current_func {
            self.builder.set_owner(h, f);
        }
        h
    }

    /// Loads through `node` `count` times, returning the final temporary.
    fn deref_chain(&mut self, mut node: NodeId, count: u8) -> NodeId {
        for _ in 0..count {
            let t = self.temp();
            self.builder.load(t, node);
            node = t;
        }
        node
    }

    /// Materializes a value into a node (for stores and arguments).
    fn materialize(&mut self, value: Value) -> Option<NodeId> {
        match value {
            Value::None => None,
            Value::Node(n) => Some(n),
            Value::Addr(obj) => {
                let t = self.temp();
                self.builder.addr_of(t, obj);
                Some(t)
            }
        }
    }

    /// Emits the constraint for `dst = value`.
    fn assign_into(&mut self, dst: NodeId, value: Value) {
        match value {
            Value::None => {}
            Value::Node(src) => {
                self.builder.copy(dst, src);
            }
            Value::Addr(obj) => {
                self.builder.addr_of(dst, obj);
            }
        }
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), LowerError> {
        match stmt {
            Stmt::Decl(d) => {
                if d.array.is_some() {
                    let decayed = Ty {
                        base: d.ty.base,
                        depth: d.ty.depth + 1,
                    };
                    let (node, qualified) = self.declare_local_named(d.name, decayed);
                    let storage = self.builder.var(&format!("{qualified}[]"));
                    if let Some(f) = self.current_func {
                        self.builder.set_owner(storage, f);
                    }
                    self.builder.addr_of(node, storage);
                    return Ok(());
                }
                let value = match &d.init {
                    Some(init) => Some(self.expr_expecting(init, Some(d.ty))?),
                    None => None,
                };
                let node = self.declare_local(d.name, d.ty);
                if let Some(v) = value {
                    self.assign_into(node, v);
                }
                Ok(())
            }
            Stmt::Assign { lhs, rhs, .. } => {
                let expected = self.place_ty(lhs);
                let value = self.expr_expecting(rhs, expected)?;
                self.assign_place(lhs, value)
            }
            Stmt::Expr(e) => {
                if let Expr::Call(call) = e {
                    self.lower_call(call, false)?;
                }
                Ok(())
            }
            Stmt::Return { value, span } => {
                if let Some(v) = value {
                    let func = self
                        .current_func
                        .ok_or_else(|| self.err(*span, "return outside a function"))?;
                    let ret = self.builder.func_info(func).ret;
                    let value = self.expr(v)?;
                    self.assign_into(ret, value);
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                self.cond(cond)?;
                self.stmt(then_branch)?;
                if let Some(e) = else_branch {
                    self.stmt(e)?;
                }
                Ok(())
            }
            Stmt::While { cond, body, .. } => {
                self.cond(cond)?;
                self.stmt(body)
            }
            Stmt::Block(b) => self.block(b),
        }
    }

    /// The declared type of a place, when statically known (used to type
    /// `malloc()` on the right-hand side).
    fn place_ty(&self, place: &Place) -> Option<Ty> {
        let Ok(Slot::Node(_, Some(ty))) = self.resolve(place.name, place.span) else {
            return None;
        };
        match place.field {
            Some(sel) => match ty.base {
                BaseTy::Struct(s) => self.field_ty(s, sel.name),
                _ => None,
            },
            None => {
                if place.derefs == 0 {
                    Some(ty)
                } else if place.derefs <= ty.depth {
                    Some(Ty {
                        base: ty.base,
                        depth: ty.depth - place.derefs,
                    })
                } else {
                    None
                }
            }
        }
    }

    /// Lowers the side effects of a condition (calls only — reads have no
    /// pointer effects).
    fn cond(&mut self, cond: &Cond) -> Result<(), LowerError> {
        if let Expr::Call(call) = &cond.lhs {
            self.lower_call(call, false)?;
        }
        if let Some((_, Expr::Call(call))) = &cond.rest {
            self.lower_call(call, false)?;
        }
        Ok(())
    }

    /// The address of a field access, as a node holding a pointer to the
    /// field: `.` yields the field node's address, `->` a `FieldAddr`
    /// temporary.
    fn field_place_ptr(
        &mut self,
        base: ddpa_support::Symbol,
        sel: FieldSel,
        span: Span,
    ) -> Result<NodeId, LowerError> {
        let (node, _s, idx) = self.resolve_field(base, sel, span)?;
        if sel.arrow {
            let t = self.temp();
            self.builder.field_addr(t, node, idx);
            Ok(t)
        } else {
            let fld = self.builder.field_node(node, idx);
            let t = self.temp();
            self.builder.addr_of(t, fld);
            Ok(t)
        }
    }

    fn assign_place(&mut self, place: &Place, value: Value) -> Result<(), LowerError> {
        if let Some(sel) = place.field {
            let ptr = self.field_place_ptr(place.name, sel, place.span)?;
            if let Some(src) = self.materialize(value) {
                self.builder.store(ptr, src);
            }
            return Ok(());
        }
        if place.derefs == 0 {
            let dst = self.resolve_node(place.name, place.span)?;
            self.assign_into(dst, value);
        } else {
            let base = self.resolve_node(place.name, place.span)?;
            let ptr = self.deref_chain(base, place.derefs - 1);
            if let Some(src) = self.materialize(value) {
                self.builder.store(ptr, src);
            }
        }
        Ok(())
    }

    fn expr(&mut self, expr: &Expr) -> Result<Value, LowerError> {
        self.expr_expecting(expr, None)
    }

    /// Lowers an expression; `expected` (the destination's declared type,
    /// when known) types heap allocations.
    fn expr_expecting(&mut self, expr: &Expr, expected: Option<Ty>) -> Result<Value, LowerError> {
        match expr {
            Expr::AddrOf {
                name,
                field: Some(sel),
                span,
            } => {
                let (node, _s, idx) = self.resolve_field(*name, *sel, *span)?;
                if sel.arrow {
                    let t = self.temp();
                    self.builder.field_addr(t, node, idx);
                    Ok(Value::Node(t))
                } else {
                    let fld = self.builder.field_node(node, idx);
                    Ok(Value::Addr(fld))
                }
            }
            Expr::AddrOf {
                name,
                field: None,
                span,
            } => match self.resolve(*name, *span)? {
                Slot::Node(n, _) => Ok(Value::Addr(n)),
                Slot::Func(f) => Ok(Value::Addr(self.builder.func_info(f).object)),
            },
            Expr::Path {
                derefs: 0,
                name,
                field: Some(sel),
                span,
            } => {
                // A field read: load through the field's address.
                let ptr = self.field_place_ptr(*name, *sel, *span)?;
                let t = self.temp();
                self.builder.load(t, ptr);
                Ok(Value::Node(t))
            }
            Expr::Path {
                field: Some(_),
                span,
                ..
            } => Err(self.err(*span, "cannot mix dereference and field selection")),
            Expr::Path {
                derefs,
                name,
                field: None,
                span,
            } => {
                match self.resolve(*name, *span)? {
                    Slot::Node(n, _) => {
                        if *derefs == 0 {
                            Ok(Value::Node(n))
                        } else {
                            Ok(Value::Node(self.deref_chain(n, *derefs)))
                        }
                    }
                    Slot::Func(f) => {
                        if *derefs > 0 {
                            Err(self.err(*span, "cannot dereference a function"))
                        } else {
                            // Function designator decays to its address.
                            Ok(Value::Addr(self.builder.func_info(f).object))
                        }
                    }
                }
            }
            Expr::Call(call) => {
                let ret = self.lower_call(call, true)?;
                Ok(match ret {
                    Some(node) => Value::Node(node),
                    None => Value::None,
                })
            }
            Expr::Malloc { .. } => {
                let heap = self.heap();
                if let Some(ty) = expected {
                    self.type_heap(heap, ty);
                }
                Ok(Value::Addr(heap))
            }
            Expr::Null { .. } | Expr::Int { .. } => Ok(Value::None),
        }
    }

    /// Lowers a call; returns the node holding the result if `want_ret`.
    fn lower_call(
        &mut self,
        call: &ast::Call,
        want_ret: bool,
    ) -> Result<Option<NodeId>, LowerError> {
        let mut args = Vec::with_capacity(call.args.len());
        for arg in &call.args {
            let value = self.expr(arg)?;
            args.push(self.materialize(value));
        }
        let ret_dst = if want_ret { Some(self.temp()) } else { None };
        let cs = match &call.callee {
            Callee::Named(sym) => match self.resolve(*sym, call.span)? {
                Slot::Func(f) => self.builder.call_direct(f, args, ret_dst),
                Slot::Node(fp, _) => self.builder.call_indirect(fp, args, ret_dst),
            },
            Callee::Deref { derefs, name } => {
                let base = self.resolve_node(*name, call.span)?;
                // In C, `(*fp)()` and `fp()` are the same call; only derefs
                // beyond the first load through memory.
                let fp = self.deref_chain(base, derefs.saturating_sub(1));
                self.builder.call_indirect(fp, args, ret_dst)
            }
        };
        if let Some(caller) = self.current_func {
            self.builder.set_caller(cs, caller);
        }
        Ok(ret_dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CalleeRef;

    fn lower_src(src: &str) -> ConstraintProgram {
        let program = ddpa_ir::parse(src).expect("parses");
        ddpa_ir::check(&program).expect("checks");
        lower(&program).expect("lowers")
    }

    #[test]
    fn lowers_basic_pointer_flow() {
        let cp = lower_src("int g; void main() { int *p = &g; int *q = p; *q = 0; }");
        assert_eq!(cp.addr_ofs().len(), 1);
        assert_eq!(cp.copies().len(), 1);
        assert_eq!(cp.loads().len(), 0);
        assert_eq!(cp.stores().len(), 0); // storing an int is not a pointer store
    }

    #[test]
    fn lowers_multi_deref_with_temps() {
        let cp = lower_src(
            "int g; void main() { int *p = &g; int **pp = &p; int ***ppp = &pp; \
             int *r = **ppp; **ppp = r; }",
        );
        // `**ppp` as rvalue: two loads; `**ppp = r`: one load then a store.
        assert_eq!(cp.loads().len(), 3);
        assert_eq!(cp.stores().len(), 1);
    }

    #[test]
    fn lowers_malloc_to_heap_site() {
        let cp = lower_src("void main() { int *p = malloc(); int *q = malloc(); }");
        assert_eq!(cp.addr_ofs().len(), 2);
        let objs: Vec<_> = cp
            .addr_ofs()
            .iter()
            .map(|a| cp.display_node(a.obj))
            .collect();
        assert_eq!(objs, vec!["@heap0", "@heap1"]);
    }

    #[test]
    fn lowers_calls_and_function_pointers() {
        let cp = lower_src(
            "int *id(int *p) { return p; } \
             void main() { void *fp = id; int *r = id(null); r = (*fp)(r); r = fp(r); }",
        );
        // fp = id  →  fp = &@fn_id
        assert!(cp
            .addr_ofs()
            .iter()
            .any(|a| cp.display_node(a.obj) == "@fn_id"));
        let sites = cp.callsites();
        assert_eq!(sites.len(), 3);
        let indirect: Vec<_> = sites.iter().filter(|c| c.is_indirect()).collect();
        assert_eq!(indirect.len(), 2);
        match sites.iter().next().expect("first callsite").callee {
            CalleeRef::Direct(f) => {
                assert_eq!(cp.interner().resolve(cp.func(f).name), "id");
            }
            CalleeRef::Indirect(_) => panic!("first call is direct"),
        }
    }

    #[test]
    fn null_arguments_are_skipped() {
        let cp = lower_src("void f(int *p) { } void main() { f(null); }");
        let cs = cp.callsites().iter().next().expect("one callsite");
        assert_eq!(cs.args, vec![None]);
    }

    #[test]
    fn return_flows_into_ret_node() {
        let cp = lower_src("int g; int *f() { return &g; } void main() { int *p = f(); }");
        let f = cp
            .funcs()
            .iter_enumerated()
            .find(|(_, i)| cp.interner().resolve(i.name) == "f");
        let (_, finfo) = f.expect("f exists");
        assert!(cp.addr_ofs().iter().any(|a| a.dst == finfo.ret));
        // p = f() creates a ret temp then copies into main::p.
        let cs = cp.callsites().iter().next().expect("callsite");
        assert!(cs.ret_dst.is_some());
    }

    #[test]
    fn shadowed_locals_get_distinct_nodes() {
        let cp = lower_src("int a; int b; void main() { int *p = &a; { int *p = &b; p = null; } }");
        // Two distinct nodes named main::p and main::p.2.
        let names: Vec<_> = cp.node_ids().map(|n| cp.display_node(n)).collect();
        assert!(names.contains(&"main::p".to_owned()));
        assert!(names.contains(&"main::p.2".to_owned()));
    }

    #[test]
    fn calls_in_conditions_are_lowered() {
        let cp = lower_src(
            "int *f() { return null; } void main() { if (f() == null) { } while (f() != null) { } }",
        );
        assert_eq!(cp.callsites().len(), 2);
    }

    #[test]
    fn global_initializers_lower() {
        let cp = lower_src("int g; int *p = &g; void main() { }");
        assert_eq!(cp.addr_ofs().len(), 1);
    }

    #[test]
    fn struct_value_fields_lower_to_field_nodes() {
        let cp = lower_src(
            "struct S { int *f; int *g; }; \
             int x; \
             void main() { struct S s; s.f = &x; int *r = s.f; int **pf = &s.g; }",
        );
        // s gets field nodes at declaration.
        let names: Vec<_> = cp.node_ids().map(|n| cp.display_node(n)).collect();
        assert!(names.contains(&"main::s.f0".to_owned()), "{names:?}");
        assert!(names.contains(&"main::s.f1".to_owned()));
        // s.f = &x: store through the field's address.
        assert_eq!(cp.stores().len(), 1);
        // r = s.f: load.
        assert_eq!(cp.loads().len(), 1);
        // No FieldAddr for `.` access — only direct addr-of field nodes.
        assert!(cp.field_addrs().is_empty());
    }

    #[test]
    fn struct_pointer_fields_lower_to_field_addr() {
        let cp = lower_src(
            "struct S { int *f; }; \
             int x; \
             void main() { struct S *p = malloc(); p->f = &x; int *r = p->f; int *q = &p->f; }",
        );
        // p->f twice as place/read + &p->f once = 3 FieldAddr constraints.
        assert_eq!(cp.field_addrs().len(), 3);
        assert_eq!(cp.stores().len(), 1);
        assert_eq!(cp.loads().len(), 1);
        // The malloc was typed: heap0 has a field node.
        let heap = cp
            .node_ids()
            .find(|&n| cp.display_node(n) == "@heap0")
            .expect("heap exists");
        assert!(cp.field_of(heap, 0).is_some());
    }

    #[test]
    fn untyped_malloc_has_no_fields() {
        let cp = lower_src(
            "struct S { int *f; }; \
             void take(void *p) { } \
             void main() { take(malloc()); }",
        );
        let heap = cp
            .node_ids()
            .find(|&n| cp.display_node(n) == "@heap0")
            .expect("heap exists");
        assert!(cp.field_of(heap, 0).is_none());
    }

    #[test]
    fn malloc_into_struct_pointer_field_is_typed() {
        let cp = lower_src(
            "struct L { struct L *next; }; \
             void main() { struct L *head = malloc(); head->next = malloc(); }",
        );
        // Both heap objects are typed with the `next` field.
        for heap_name in ["@heap0", "@heap1"] {
            let heap = cp
                .node_ids()
                .find(|&n| cp.display_node(n) == heap_name)
                .expect("heap exists");
            assert!(cp.field_of(heap, 0).is_some(), "{heap_name} untyped");
        }
    }
}

#[cfg(test)]
mod array_tests {
    use super::*;

    fn lower_src(src: &str) -> ConstraintProgram {
        let program = ddpa_ir::parse(src).expect("parses");
        ddpa_ir::check(&program).expect("checks");
        lower(&program).expect("lowers")
    }

    #[test]
    fn arrays_lower_to_storage_and_decay() {
        let cp = lower_src(
            "int g; int h; \
             void main() { int *tab[4]; tab[0] = &g; tab[3] = &h; int *x = tab[1]; }",
        );
        let names: Vec<_> = cp.node_ids().map(|n| cp.display_node(n)).collect();
        assert!(names.contains(&"main::tab".to_owned()));
        assert!(names.contains(&"main::tab[]".to_owned()));
        // The decayed pointer holds the storage object's address.
        let tab = cp
            .node_ids()
            .find(|&n| cp.display_node(n) == "main::tab")
            .expect("tab");
        let storage = cp
            .node_ids()
            .find(|&n| cp.display_node(n) == "main::tab[]")
            .expect("storage");
        assert!(cp
            .addr_ofs()
            .iter()
            .any(|a| a.dst == tab && a.obj == storage));
        // Element accesses are loads/stores through the decayed pointer.
        assert_eq!(cp.stores().len(), 2);
        assert_eq!(cp.loads().len(), 1);
        assert!(cp.stores().iter().all(|st| st.ptr == tab));
    }

    #[test]
    fn global_arrays_lower() {
        let cp = lower_src("int *gtab[8]; void main() { gtab[2] = null; }");
        let names: Vec<_> = cp.node_ids().map(|n| cp.display_node(n)).collect();
        assert!(names.contains(&"gtab[]".to_owned()));
    }
}
