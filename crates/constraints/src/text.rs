//! A line-oriented textual constraint format.
//!
//! The original system stored pre-derived assignment databases produced by a
//! compile–link–analyze pipeline; this module plays that role as a plain
//! text format, used by the CLI, tests, and constraint dumps.
//!
//! ```text
//! # comment
//! fun id/1            # declare function `id` with 1 formal
//! p = &g              # address-of
//! q = p               # copy
//! r = *q              # load
//! *p = r              # store
//! call id(p) -> r     # direct call, result into r
//! icall fp(p, _)      # indirect call via fp, 2nd argument irrelevant
//! ```
//!
//! Field-sensitive programs declare field nodes with `field parent.N`
//! (creating the location `parent.fN`) and take field addresses with
//! `dst = &base->N`.
//!
//! Formals and return slots of declared functions are referenced as
//! `name::argN` and `name::ret`. Every other name denotes a variable node.
//! Printing a [`ConstraintProgram`] and re-parsing it yields an
//! analysis-equivalent program (temporaries and heap objects come back as
//! plain variables, which the analyses treat identically).

use crate::model::NodeId;
use crate::program::{ConstraintBuilder, ConstraintProgram};

/// An error while parsing the textual format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TextError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line number.
    pub line: usize,
}

impl std::fmt::Display for TextError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "constraint text error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for TextError {}

/// Parses the textual constraint format into a program.
///
/// # Errors
///
/// Returns [`TextError`] on malformed lines, unknown function references,
/// or out-of-range formal indices.
///
/// # Examples
///
/// ```
/// let cp = ddpa_constraints::parse_constraints(
///     "fun id/1\n p = &g\n call id(p) -> r\n",
/// )?;
/// assert_eq!(cp.addr_ofs().len(), 1);
/// assert_eq!(cp.callsites().len(), 1);
/// # Ok::<(), ddpa_constraints::TextError>(())
/// ```
pub fn parse_constraints(text: &str) -> Result<ConstraintProgram, TextError> {
    let mut builder = ConstraintBuilder::new();

    // Pass 1: function declarations (so formal references resolve anywhere).
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw);
        if let Some(rest) = line.strip_prefix("fun ") {
            let (name, arity) = parse_fun_decl(rest, lineno + 1)?;
            if builder.lookup_func(name).is_some() {
                return Err(TextError {
                    message: format!("function `{name}` declared twice"),
                    line: lineno + 1,
                });
            }
            builder.func(name, arity);
        }
    }

    // Pass 2: field-node declarations, in order (parents precede nested
    // fields in printed output).
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw);
        if let Some(rest) = line.strip_prefix("field ") {
            let (parent, field) = parse_field_ref(rest, lineno + 1)?;
            let parent = require(&mut builder, parent, lineno + 1)?;
            builder.field_node(parent, field);
        }
    }

    // Pass 3: constraints and calls.
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw);
        if line.is_empty() || line.starts_with("fun ") || line.starts_with("field ") {
            continue;
        }
        parse_line(&mut builder, line, lineno + 1)?;
    }

    Ok(builder.build())
}

fn strip_comment(line: &str) -> &str {
    let body = match line.find('#') {
        Some(pos) => &line[..pos],
        None => line,
    };
    body.trim()
}

fn parse_fun_decl(rest: &str, line: usize) -> Result<(&str, usize), TextError> {
    let rest = rest.trim();
    let (name, arity) = rest.split_once('/').ok_or_else(|| TextError {
        message: format!("expected `fun name/arity`, found `fun {rest}`"),
        line,
    })?;
    let arity: usize = arity.trim().parse().map_err(|_| TextError {
        message: format!("invalid arity `{arity}`"),
        line,
    })?;
    let name = name.trim();
    if name.is_empty() {
        return Err(TextError {
            message: "empty function name".into(),
            line,
        });
    }
    Ok((name, arity))
}

/// Splits `parent.N` into its parts.
fn parse_field_ref(text: &str, line: usize) -> Result<(&str, u32), TextError> {
    let text = text.trim();
    let (parent, field) = text.rsplit_once('.').ok_or_else(|| TextError {
        message: format!("expected `parent.N`, found `{text}`"),
        line,
    })?;
    let field: u32 = field.parse().map_err(|_| TextError {
        message: format!("invalid field index in `{text}`"),
        line,
    })?;
    if parent.is_empty() {
        return Err(TextError {
            message: "empty field parent".into(),
            line,
        });
    }
    Ok((parent, field))
}

/// Resolves a name to a node: `f::argN` / `f::ret` for declared functions,
/// `_` for none, anything else is a variable.
fn resolve_name(
    builder: &mut ConstraintBuilder,
    name: &str,
    line: usize,
) -> Result<Option<NodeId>, TextError> {
    let name = name.trim();
    if name.is_empty() {
        return Err(TextError {
            message: "empty name".into(),
            line,
        });
    }
    if name == "_" {
        return Ok(None);
    }
    if let Some((func_name, member)) = name.rsplit_once("::") {
        if let Some(func) = builder.lookup_func(func_name) {
            let info = builder.func_info(func);
            if member == "ret" {
                return Ok(Some(info.ret));
            }
            if let Some(idx) = member.strip_prefix("arg") {
                let idx: usize = idx.parse().map_err(|_| TextError {
                    message: format!("invalid formal reference `{name}`"),
                    line,
                })?;
                return match info.formals.get(idx) {
                    Some(&node) => Ok(Some(node)),
                    None => Err(TextError {
                        message: format!(
                            "function `{func_name}` has {} formal(s), no `arg{idx}`",
                            info.formals.len()
                        ),
                        line,
                    }),
                };
            }
            // `main::p` style qualified locals fall through to plain vars.
        }
    }
    // `parent.fN` refers to a declared field node.
    if let Some((parent, rest)) = name.rsplit_once(".f") {
        if let Ok(field) = rest.parse::<u32>() {
            if let Some(parent_node) =
                resolve_name(builder, parent, line)?.filter(|_| !parent.is_empty())
            {
                if let Some(node) = builder.lookup_field(parent_node, field) {
                    return Ok(Some(node));
                }
            }
        }
    }
    Ok(Some(builder.var(name)))
}

fn require(builder: &mut ConstraintBuilder, name: &str, line: usize) -> Result<NodeId, TextError> {
    resolve_name(builder, name, line)?.ok_or_else(|| TextError {
        message: "`_` is not allowed here".into(),
        line,
    })
}

fn parse_line(builder: &mut ConstraintBuilder, line: &str, lineno: usize) -> Result<(), TextError> {
    if let Some(rest) = line
        .strip_prefix("call ")
        .or_else(|| line.strip_prefix("icall "))
    {
        let indirect = line.starts_with("icall ");
        return parse_call(builder, rest, indirect, lineno);
    }

    let (lhs, rhs) = line.split_once('=').ok_or_else(|| TextError {
        message: format!("expected `=` in `{line}`"),
        line: lineno,
    })?;
    let (lhs, rhs) = (lhs.trim(), rhs.trim());

    if let Some(ptr) = lhs.strip_prefix('*') {
        // *ptr = src
        let ptr = require(builder, ptr, lineno)?;
        let src = require(builder, rhs, lineno)?;
        builder.store(ptr, src);
    } else if let Some(obj) = rhs.strip_prefix('&') {
        let dst = require(builder, lhs, lineno)?;
        let obj = obj.trim();
        // `&base->N` takes a field address.
        if let Some((base, field)) = obj.split_once("->") {
            let field: u32 = field.trim().parse().map_err(|_| TextError {
                message: format!("invalid field index in `&{obj}`"),
                line: lineno,
            })?;
            let base = require(builder, base, lineno)?;
            builder.field_addr(dst, base, field);
            return Ok(());
        }
        // A function name after `&` means its function object.
        let obj_node = match builder.lookup_func(obj) {
            Some(func) => builder.func_info(func).object,
            None => require(builder, obj, lineno)?,
        };
        builder.addr_of(dst, obj_node);
    } else if let Some(ptr) = rhs.strip_prefix('*') {
        let dst = require(builder, lhs, lineno)?;
        let ptr = require(builder, ptr, lineno)?;
        builder.load(dst, ptr);
    } else {
        let dst = require(builder, lhs, lineno)?;
        let src = require(builder, rhs, lineno)?;
        builder.copy(dst, src);
    }
    Ok(())
}

fn parse_call(
    builder: &mut ConstraintBuilder,
    rest: &str,
    indirect: bool,
    lineno: usize,
) -> Result<(), TextError> {
    let open = rest.find('(').ok_or_else(|| TextError {
        message: "expected `(` in call".into(),
        line: lineno,
    })?;
    let close = rest.rfind(')').ok_or_else(|| TextError {
        message: "expected `)` in call".into(),
        line: lineno,
    })?;
    if close < open {
        return Err(TextError {
            message: "mismatched parentheses".into(),
            line: lineno,
        });
    }
    let callee = rest[..open].trim();
    let args_text = &rest[open + 1..close];
    let tail = rest[close + 1..].trim();

    let mut args = Vec::new();
    if !args_text.trim().is_empty() {
        for arg in args_text.split(',') {
            args.push(resolve_name(builder, arg, lineno)?);
        }
    }

    // Tail: optional `-> ret`, optional `in caller`.
    let tokens: Vec<&str> = tail.split_whitespace().collect();
    let (ret_dst, caller_name) = match tokens.as_slice() {
        [] => (None, None),
        ["->", r] => (resolve_name(builder, r, lineno)?, None),
        ["in", g] => (None, Some(*g)),
        ["->", r, "in", g] => (resolve_name(builder, r, lineno)?, Some(*g)),
        _ => {
            return Err(TextError {
                message: format!("unexpected trailing `{tail}`"),
                line: lineno,
            })
        }
    };
    let caller = match caller_name {
        Some(name) => Some(builder.lookup_func(name).ok_or_else(|| TextError {
            message: format!("unknown caller function `{name}`"),
            line: lineno,
        })?),
        None => None,
    };

    let cs = if indirect {
        let fp = require(builder, callee, lineno)?;
        builder.call_indirect(fp, args, ret_dst)
    } else {
        let func = builder.lookup_func(callee).ok_or_else(|| TextError {
            message: format!("call to undeclared function `{callee}` (declare with `fun`)"),
            line: lineno,
        })?;
        builder.call_direct(func, args, ret_dst)
    };
    if let Some(caller) = caller {
        builder.set_caller(cs, caller);
    }
    Ok(())
}

/// Renders `cp` in the textual constraint format.
///
/// The output re-parses ([`parse_constraints`]) to an analysis-equivalent
/// program.
pub fn print_constraints(cp: &ConstraintProgram) -> String {
    use crate::model::CalleeRef;
    use std::fmt::Write as _;

    let mut out = String::new();
    for info in cp.funcs().iter() {
        let _ = writeln!(
            out,
            "fun {}/{}",
            cp.interner().resolve(info.name),
            info.formals.len()
        );
    }
    for (parent, field, _) in cp.field_nodes() {
        let _ = writeln!(out, "field {}.{}", cp.display_node(parent), field);
    }
    for a in cp.addr_ofs() {
        let obj = match cp.node(a.obj).as_func() {
            Some(func) => cp.interner().resolve(cp.func(func).name).to_owned(),
            None => cp.display_node(a.obj),
        };
        let _ = writeln!(out, "{} = &{}", cp.display_node(a.dst), obj);
    }
    for c in cp.copies() {
        let _ = writeln!(
            out,
            "{} = {}",
            cp.display_node(c.dst),
            cp.display_node(c.src)
        );
    }
    for l in cp.loads() {
        let _ = writeln!(
            out,
            "{} = *{}",
            cp.display_node(l.dst),
            cp.display_node(l.ptr)
        );
    }
    for s in cp.stores() {
        let _ = writeln!(
            out,
            "*{} = {}",
            cp.display_node(s.ptr),
            cp.display_node(s.src)
        );
    }
    for fa in cp.field_addrs() {
        let _ = writeln!(
            out,
            "{} = &{}->{}",
            cp.display_node(fa.dst),
            cp.display_node(fa.base),
            fa.field
        );
    }
    for cs in cp.callsites().iter() {
        let (kw, callee) = match cs.callee {
            CalleeRef::Direct(func) => {
                ("call", cp.interner().resolve(cp.func(func).name).to_owned())
            }
            CalleeRef::Indirect(fp) => ("icall", cp.display_node(fp)),
        };
        let args: Vec<String> = cs
            .args
            .iter()
            .map(|a| match a {
                Some(node) => cp.display_node(*node),
                None => "_".to_owned(),
            })
            .collect();
        let _ = write!(out, "{kw} {callee}({})", args.join(", "));
        if let Some(ret) = cs.ret_dst {
            let _ = write!(out, " -> {}", cp.display_node(ret));
        }
        if let Some(caller) = cs.caller {
            let _ = write!(out, " in {}", cp.interner().resolve(cp.func(caller).name));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_constraint_forms() {
        let cp = parse_constraints(
            "# demo\n\
             fun f/2\n\
             p = &g\n\
             q = p\n\
             r = *q\n\
             *p = r\n\
             call f(p, _) -> r\n\
             icall fp(q)\n",
        )
        .expect("parses");
        assert_eq!(cp.addr_ofs().len(), 1);
        assert_eq!(cp.copies().len(), 1);
        assert_eq!(cp.loads().len(), 1);
        assert_eq!(cp.stores().len(), 1);
        assert_eq!(cp.callsites().len(), 2);
        assert_eq!(cp.indirect_callsites().len(), 1);
    }

    #[test]
    fn resolves_formal_and_ret_references() {
        let cp = parse_constraints(
            "fun f/1\n\
             f::arg0 = &g\n\
             r = f::ret\n",
        )
        .expect("parses");
        let f = cp.funcs().iter().next().expect("f declared");
        assert_eq!(cp.addr_ofs()[0].dst, f.formals[0]);
        assert_eq!(cp.copies()[0].src, f.ret);
    }

    #[test]
    fn address_of_function_uses_object() {
        let cp = parse_constraints("fun f/0\nfp = &f\n").expect("parses");
        let f = cp.funcs().iter().next().expect("f declared");
        assert_eq!(cp.addr_ofs()[0].obj, f.object);
    }

    #[test]
    fn rejects_call_to_undeclared_function() {
        let err = parse_constraints("call f(x)\n").expect_err("rejects");
        assert!(err.message.contains("undeclared"));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn rejects_out_of_range_formal() {
        let err = parse_constraints("fun f/1\nx = f::arg3\n").expect_err("rejects");
        assert!(err.message.contains("no `arg3`"));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_constraints("just words\n").is_err());
        assert!(parse_constraints("fun broken\n").is_err());
        assert!(parse_constraints("call f(x\n").is_err());
        assert!(parse_constraints("x = _\n").is_err());
    }

    #[test]
    fn print_parse_roundtrip_is_equivalent() {
        let text = "fun f/1\n\
                    p = &g\n\
                    q = p\n\
                    r = *q\n\
                    *p = q\n\
                    fp = &f\n\
                    call f(p) -> r\n\
                    icall fp(q) -> s\n";
        let cp1 = parse_constraints(text).expect("parses");
        let printed = print_constraints(&cp1);
        let cp2 = parse_constraints(&printed).expect("reparses");
        assert_eq!(cp1.addr_ofs().len(), cp2.addr_ofs().len());
        assert_eq!(cp1.copies().len(), cp2.copies().len());
        assert_eq!(cp1.loads().len(), cp2.loads().len());
        assert_eq!(cp1.stores().len(), cp2.stores().len());
        assert_eq!(cp1.callsites().len(), cp2.callsites().len());
        assert_eq!(print_constraints(&cp2), printed, "printing is a fixpoint");
    }
}

#[cfg(test)]
mod field_tests {
    use super::*;

    #[test]
    fn parses_field_declarations_and_addresses() {
        let cp = parse_constraints(
            "field o.0\n\
             field o.1\n\
             p = &o\n\
             f0 = &p->0\n\
             f1 = &p->1\n\
             *f0 = p\n",
        )
        .expect("parses");
        assert_eq!(cp.field_addrs().len(), 2);
        let o = cp
            .node_ids()
            .find(|&n| cp.display_node(n) == "o")
            .expect("o");
        assert!(cp.field_of(o, 0).is_some());
        assert!(cp.field_of(o, 1).is_some());
        assert!(cp.field_of(o, 2).is_none());
    }

    #[test]
    fn field_node_names_resolve() {
        let cp = parse_constraints(
            "field o.0\n\
             x = &o.f0\n",
        )
        .expect("parses");
        let o = cp
            .node_ids()
            .find(|&n| cp.display_node(n) == "o")
            .expect("o");
        let fld = cp.field_of(o, 0).expect("field node");
        assert_eq!(cp.addr_ofs()[0].obj, fld);
    }

    #[test]
    fn nested_fields_roundtrip() {
        let text = "field o.0\n\
                    field o.f0.2\n\
                    p = &o\n\
                    q = &p->0\n\
                    r = &q->2\n";
        let cp = parse_constraints(text).expect("parses");
        let printed = print_constraints(&cp);
        let cp2 = parse_constraints(&printed).expect("reparses");
        assert_eq!(print_constraints(&cp2), printed, "fixpoint");
        assert_eq!(cp2.field_addrs().len(), 2);
        assert_eq!(cp2.field_nodes().len(), 2);
    }

    #[test]
    fn rejects_bad_field_syntax() {
        assert!(parse_constraints("field o\n").is_err());
        assert!(parse_constraints("field .3\n").is_err());
        assert!(parse_constraints("x = &p->notanumber\n").is_err());
    }
}
