//! Structural diff of two constraint programs — the edit-detection half
//! of incremental invalidation.
//!
//! An `add-constraints` edit re-parses the whole canonical text, so the
//! engine never sees "the edit" — it sees two programs. This module
//! recovers the edit as a *changed-node set*: for every node id of the
//! old program, a deterministic signature is computed over everything the
//! deduction rules ([`ddpa-demand`]'s `rules.rs`) can read about that
//! node — its display identity, address-takenness, all eight primitive
//! adjacency rows, field-address rows, field declarations, and the full
//! contents of every call site reachable from its argument/return/fp
//! rows (plus, for function-object nodes, the function's signature and
//! direct call sites). A node whose signature differs between the two
//! programs is *changed*; a goal whose support set touches a changed
//! node must be re-derived, everything else may be kept warm.
//!
//! Two scans fall outside per-node rows and are tracked separately:
//!
//! * the global indirect-callsite list ([PARAM] and forward-prop rule
//!   (e) scan it in full) — [`ProgramDiff::indirect_changed`];
//! * identity itself — if any *old* node id resolves to a different
//!   location in the new program (or an old function's shape moved), the
//!   node-id space is not stable and no memoized answer can be rebound;
//!   [`ProgramDiff::compatible`] turns false and callers must fall back
//!   to full invalidation. Append-only edits (the `add-constraints`
//!   path: new text is appended to the canonical source) always keep the
//!   old id space intact, so this is the common case, not a limitation.
//!
//! Hashing is FNV-1a over explicitly serialized fields — *not*
//! `DefaultHasher`, which is randomized per process and useless for
//! anything compared across parses.

use std::collections::HashMap;

use crate::model::{CallSiteId, CalleeRef, NodeId, NodeKind};
use crate::program::ConstraintProgram;

/// The changed-node summary of an edit `old → new`.
#[derive(Clone, Debug)]
pub struct ProgramDiff {
    /// Old-program node ids whose rule-visible signature changed, sorted
    /// ascending. Nodes that exist only in the new program are *not*
    /// listed — no old support set can reference them.
    pub changed: Vec<u32>,
    /// The global indirect-callsite list changed (a site was added or an
    /// existing one's contents differ).
    pub indirect_changed: bool,
    /// Old node ids mean the same locations in the new program. When
    /// false, `changed`/`indirect_changed` are meaningless and the caller
    /// must invalidate everything.
    pub compatible: bool,
}

impl ProgramDiff {
    /// The "give up" diff: incompatible, so callers fully invalidate.
    pub fn incompatible() -> Self {
        ProgramDiff {
            changed: Vec::new(),
            indirect_changed: true,
            compatible: false,
        }
    }

    /// Whether `node`'s signature changed.
    pub fn is_changed(&self, node: u32) -> bool {
        self.changed.binary_search(&node).is_ok()
    }

    /// Whether the edit changed nothing a rule can observe.
    pub fn is_noop(&self) -> bool {
        self.compatible && !self.indirect_changed && self.changed.is_empty()
    }
}

/// FNV-1a, the repo's standard process-independent hash.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x1_0000_0000_01b3);
    }

    fn u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        for b in s.bytes() {
            self.byte(b);
        }
    }

    fn opt(&mut self, v: Option<NodeId>) {
        match v {
            Some(n) => self.u32(n.as_u32()),
            None => self.u32(u32::MAX),
        }
    }
}

/// Folds one call site's full rule-visible contents.
fn hash_callsite(h: &mut Fnv, cp: &ConstraintProgram, cs: CallSiteId) {
    let site = cp.callsite(cs);
    match site.callee {
        CalleeRef::Direct(f) => {
            h.byte(1);
            h.u32(f.as_u32());
        }
        CalleeRef::Indirect(fp) => {
            h.byte(2);
            h.u32(fp.as_u32());
        }
    }
    h.u32(site.args.len() as u32);
    for &a in &site.args {
        h.opt(a);
    }
    h.opt(site.ret_dst);
}

/// Per-program context precomputed once: field declarations grouped by
/// parent (the `field_of` lookup rules read them by parent node).
struct SigCtx<'a> {
    cp: &'a ConstraintProgram,
    fields_of: HashMap<NodeId, Vec<(u32, NodeId)>>,
}

impl<'a> SigCtx<'a> {
    fn new(cp: &'a ConstraintProgram) -> Self {
        let mut fields_of: HashMap<NodeId, Vec<(u32, NodeId)>> = HashMap::new();
        for (parent, field, node) in cp.field_nodes() {
            fields_of.entry(parent).or_default().push((field, node));
        }
        SigCtx { cp, fields_of }
    }

    /// The signature of everything a rule can read about `n`.
    fn node_sig(&self, n: NodeId) -> u64 {
        let cp = self.cp;
        let mut h = Fnv::new();
        h.str(&cp.display_node(n));
        h.byte(cp.is_address_taken(n) as u8);
        for row in [
            cp.addr_objs_of(n),
            cp.addr_dsts_of(n),
            cp.copy_srcs_of(n),
            cp.copy_dsts_of(n),
            cp.load_ptrs_of(n),
            cp.load_dsts_of(n),
            cp.store_srcs_of(n),
            cp.store_ptrs_of(n),
        ] {
            h.u32(row.len() as u32);
            for &m in row {
                h.u32(m.as_u32());
            }
        }
        h.u32(cp.field_addrs_of(n).len() as u32);
        for &(base, field) in cp.field_addrs_of(n) {
            h.u32(base.as_u32());
            h.u32(field);
        }
        h.u32(cp.field_addrs_from(n).len() as u32);
        for &(field, dst) in cp.field_addrs_from(n) {
            h.u32(field);
            h.u32(dst.as_u32());
        }
        if let Some(decls) = self.fields_of.get(&n) {
            h.u32(decls.len() as u32);
            for &(field, node) in decls {
                h.u32(field);
                h.u32(node.as_u32());
            }
        } else {
            h.u32(0);
        }
        // Callsite-backed rows fold the sites' full contents, so editing
        // a call dirties every node whose rules read that call.
        h.u32(cp.arg_uses_of(n).len() as u32);
        for &(cs, pos) in cp.arg_uses_of(n) {
            h.u32(pos);
            hash_callsite(&mut h, cp, cs);
        }
        h.u32(cp.ret_dst_uses_of(n).len() as u32);
        for &cs in cp.ret_dst_uses_of(n) {
            hash_callsite(&mut h, cp, cs);
        }
        h.u32(cp.fp_uses_of(n).len() as u32);
        for &cs in cp.fp_uses_of(n) {
            hash_callsite(&mut h, cp, cs);
        }
        // A function-object node also carries the function's shape and
        // direct call sites ([PARAM]/[RET]/fwd-prop (e) attribute those
        // reads to the function object).
        if let NodeKind::Func { func } = cp.node(n).kind {
            let info = cp.func(func);
            h.u32(info.formals.len() as u32);
            for &f in &info.formals {
                h.u32(f.as_u32());
            }
            h.u32(info.ret.as_u32());
            h.u32(cp.direct_callsites_of(func).len() as u32);
            for &cs in cp.direct_callsites_of(func) {
                hash_callsite(&mut h, cp, cs);
            }
        }
        h.0
    }

    /// The signature of the global indirect-callsite list.
    fn indirect_sig(&self) -> u64 {
        let cp = self.cp;
        let mut h = Fnv::new();
        h.u32(cp.indirect_callsites().len() as u32);
        for &cs in cp.indirect_callsites() {
            hash_callsite(&mut h, cp, cs);
        }
        h.0
    }
}

/// Checks that every old node id still names the same location and every
/// old function kept its shape — the precondition for rebinding any
/// memoized entry.
fn compatible(old: &ConstraintProgram, new: &ConstraintProgram) -> bool {
    if new.num_nodes() < old.num_nodes() {
        return false;
    }
    for n in old.node_ids() {
        if old.display_node(n) != new.display_node(n) {
            return false;
        }
    }
    if new.funcs().len() < old.funcs().len() {
        return false;
    }
    for (f, info) in old.funcs().iter_enumerated() {
        let ninfo = new.func(f);
        if old.interner().resolve(info.name) != new.interner().resolve(ninfo.name)
            || info.object != ninfo.object
            || info.formals != ninfo.formals
            || info.ret != ninfo.ret
        {
            return false;
        }
    }
    true
}

/// Diffs `old → new`, producing the changed-node set the dirtying pass
/// consumes. See the module docs for what a "change" is.
pub fn diff_programs(old: &ConstraintProgram, new: &ConstraintProgram) -> ProgramDiff {
    if !compatible(old, new) {
        return ProgramDiff::incompatible();
    }
    let old_ctx = SigCtx::new(old);
    let new_ctx = SigCtx::new(new);
    let mut changed = Vec::new();
    for n in old.node_ids() {
        if old_ctx.node_sig(n) != new_ctx.node_sig(n) {
            changed.push(n.as_u32());
        }
    }
    changed.sort_unstable();
    ProgramDiff {
        changed,
        indirect_changed: old_ctx.indirect_sig() != new_ctx.indirect_sig(),
        compatible: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::parse_constraints;

    fn node(cp: &ConstraintProgram, name: &str) -> u32 {
        cp.node_ids()
            .find(|&n| cp.display_node(n) == name)
            .unwrap_or_else(|| panic!("node {name}"))
            .as_u32()
    }

    #[test]
    fn identical_programs_diff_to_noop() {
        let a = parse_constraints("p = &o\nq = p\n").expect("parse");
        let b = parse_constraints("p = &o\nq = p\n").expect("parse");
        let d = diff_programs(&a, &b);
        assert!(d.compatible);
        assert!(d.is_noop());
    }

    #[test]
    fn appended_constraint_changes_exactly_its_endpoints() {
        let a = parse_constraints("p = &o\nq = p\nr = &u\n").expect("parse");
        let b = parse_constraints("p = &o\nq = p\nr = &u\nq = r\n").expect("parse");
        let d = diff_programs(&a, &b);
        assert!(d.compatible);
        assert!(!d.indirect_changed);
        // `q = r` touches q's copy_srcs row and r's copy_dsts row; p/o/u
        // rows are untouched.
        assert_eq!(
            d.changed,
            vec![node(&a, "q"), node(&a, "r")],
            "only the edit's endpoints change"
        );
        assert!(!d.is_changed(node(&a, "p")));
        assert!(!d.is_changed(node(&a, "o")));
    }

    #[test]
    fn new_nodes_are_not_reported_as_changed() {
        let a = parse_constraints("p = &o\n").expect("parse");
        let b = parse_constraints("p = &o\nz = &w\n").expect("parse");
        let d = diff_programs(&a, &b);
        assert!(d.compatible);
        assert!(d.changed.is_empty(), "p and o rows are untouched");
    }

    #[test]
    fn taking_an_address_changes_the_object() {
        let a = parse_constraints("p = &o\nq = &u\n").expect("parse");
        let b = parse_constraints("p = &o\nq = &u\nr = &o\n").expect("parse");
        let d = diff_programs(&a, &b);
        assert!(d.is_changed(node(&a, "o")), "o's addr_dsts row grew");
        assert!(!d.is_changed(node(&a, "u")));
    }

    #[test]
    fn divergent_node_spaces_are_incompatible() {
        let a = parse_constraints("p = &o\n").expect("parse");
        let b = parse_constraints("q = &o\np = q\n").expect("parse");
        let d = diff_programs(&a, &b);
        assert!(!d.compatible, "node 0 is p in one program, q in the other");
    }

    #[test]
    fn shrinking_is_incompatible() {
        let a = parse_constraints("p = &o\nq = p\n").expect("parse");
        let b = parse_constraints("p = &o\n").expect("parse");
        assert!(!diff_programs(&a, &b).compatible);
    }
}
