//! The constraint program: the shared substrate of all `ddpa` analyses.
//!
//! Following the PLDI 2001 formulation, a program is abstracted to a set of
//! *abstract locations* (named variables, compiler temporaries, heap
//! allocation sites, functions, formals and return slots — one uniform
//! [`NodeId`] space) and four primitive assignment forms over them:
//!
//! | constraint        | C syntax  | meaning                                  |
//! |-------------------|-----------|------------------------------------------|
//! | [`AddrOf`]        | `x = &y`  | `y ∈ pts(x)`                             |
//! | [`Assign`]        | `x = y`   | `pts(x) ⊇ pts(y)`                        |
//! | [`Load`]          | `x = *y`  | `∀o ∈ pts(y): pts(x) ⊇ pts(o)`           |
//! | [`Store`]         | `*x = y`  | `∀o ∈ pts(x): pts(o) ⊇ pts(y)`           |
//!
//! plus [`CallSite`]s, whose argument/return copies are wired by the
//! analyses themselves so that indirect calls can be resolved *during*
//! analysis (the on-the-fly call graph).
//!
//! The crate provides:
//!
//! * [`model`] — ids and metadata for locations, functions, call sites;
//! * [`program`] — [`ConstraintProgram`] (immutable, fully indexed) and its
//!   [`ConstraintBuilder`];
//! * [`mod@lower`] — lowering from the MiniC AST ([`ddpa_ir`]), normalizing
//!   arbitrary dereference chains with temporaries;
//! * [`text`] — a small textual constraint format (parse & print), useful
//!   for tests, the CLI, and constraint dumps;
//! * [`dot`] — Graphviz export of the constraint graph;
//! * [`stats`] — program characteristic counts (the paper's "benchmark
//!   characteristics" table).
//!
//! # Examples
//!
//! ```
//! let program = ddpa_ir::parse("int g; void main() { int *p = &g; int *q = p; }")?;
//! let cp = ddpa_constraints::lower(&program)?;
//! assert_eq!(cp.addr_ofs().len(), 1);
//! assert_eq!(cp.copies().len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod diff;
pub mod dot;
pub mod lower;
pub mod model;
pub mod program;
pub mod stats;
pub mod text;

pub use diff::{diff_programs, ProgramDiff};
pub use dot::to_dot;
pub use lower::{lower, lower_with_obs, LowerError};
pub use model::{CallSite, CallSiteId, CalleeRef, FuncId, FuncInfo, NodeId, NodeInfo, NodeKind};
pub use program::{AddrOf, Assign, ConstraintBuilder, ConstraintProgram, FieldAddr, Load, Store};
pub use stats::ProgramStats;
pub use text::{parse_constraints, print_constraints, TextError};
