//! Program characteristic statistics — the data behind the paper's
//! "benchmark characteristics" table.

use std::fmt;

use crate::model::NodeKind;
use crate::program::ConstraintProgram;

/// Counts describing a constraint program.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProgramStats {
    /// Total abstract locations.
    pub nodes: usize,
    /// Named variables.
    pub vars: usize,
    /// Compiler temporaries.
    pub temps: usize,
    /// Heap allocation sites.
    pub heaps: usize,
    /// Functions.
    pub funcs: usize,
    /// `x = &y` constraints.
    pub addr_ofs: usize,
    /// `x = y` constraints.
    pub copies: usize,
    /// `x = *y` constraints.
    pub loads: usize,
    /// `*x = y` constraints.
    pub stores: usize,
    /// `x = &y->f` constraints (field-sensitive extension).
    pub field_addrs: usize,
    /// Field nodes.
    pub fields: usize,
    /// Direct call sites.
    pub direct_calls: usize,
    /// Indirect (function-pointer) call sites.
    pub indirect_calls: usize,
    /// Locations whose address is taken.
    pub address_taken: usize,
}

impl ProgramStats {
    /// Computes the statistics of `cp`.
    pub fn of(cp: &ConstraintProgram) -> Self {
        let mut stats = ProgramStats {
            nodes: cp.num_nodes(),
            funcs: cp.funcs().len(),
            addr_ofs: cp.addr_ofs().len(),
            copies: cp.copies().len(),
            loads: cp.loads().len(),
            stores: cp.stores().len(),
            field_addrs: cp.field_addrs().len(),
            ..ProgramStats::default()
        };
        for node in cp.node_ids() {
            match cp.node(node).kind {
                NodeKind::Var { .. } => stats.vars += 1,
                NodeKind::Temp { .. } => stats.temps += 1,
                NodeKind::Heap { .. } => stats.heaps += 1,
                NodeKind::Field { .. } => stats.fields += 1,
                NodeKind::Func { .. } | NodeKind::Formal { .. } | NodeKind::Ret { .. } => {}
            }
            if cp.is_address_taken(node) {
                stats.address_taken += 1;
            }
        }
        for cs in cp.callsites().iter() {
            if cs.is_indirect() {
                stats.indirect_calls += 1;
            } else {
                stats.direct_calls += 1;
            }
        }
        stats
    }

    /// Total primitive assignments (the paper's "#assignments").
    pub fn assignments(&self) -> usize {
        self.addr_ofs + self.copies + self.loads + self.stores + self.field_addrs
    }

    /// Total call sites.
    pub fn calls(&self) -> usize {
        self.direct_calls + self.indirect_calls
    }

    /// Publishes every count as a `program.*` gauge in `registry`.
    pub fn record(&self, registry: &ddpa_obs::Registry) {
        let pairs: [(&str, usize); 16] = [
            ("program.nodes", self.nodes),
            ("program.vars", self.vars),
            ("program.temps", self.temps),
            ("program.heaps", self.heaps),
            ("program.funcs", self.funcs),
            ("program.addr_ofs", self.addr_ofs),
            ("program.copies", self.copies),
            ("program.loads", self.loads),
            ("program.stores", self.stores),
            ("program.field_addrs", self.field_addrs),
            ("program.fields", self.fields),
            ("program.calls.direct", self.direct_calls),
            ("program.calls.indirect", self.indirect_calls),
            ("program.address_taken", self.address_taken),
            ("program.assignments", self.assignments()),
            ("program.calls", self.calls()),
        ];
        for (name, value) in pairs {
            registry.gauge(name).set(value as u64);
        }
    }
}

impl fmt::Display for ProgramStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "nodes={} (vars={}, temps={}, heap={}, funcs={}) \
             assignments={} (addr={}, copy={}, load={}, store={}, field={}) \
             calls={} (direct={}, indirect={}) addr-taken={}",
            self.nodes,
            self.vars,
            self.temps,
            self.heaps,
            self.funcs,
            self.assignments(),
            self.addr_ofs,
            self.copies,
            self.loads,
            self.stores,
            self.field_addrs,
            self.calls(),
            self.direct_calls,
            self.indirect_calls,
            self.address_taken,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower;

    #[test]
    fn counts_match_program() {
        let program = ddpa_ir::parse(
            "int g; \
             int *f(int *p) { return p; } \
             void main() { int *x = &g; int *y = f(x); int *z = malloc(); void *fp = f; \
                           int *w = (*fp)(z); }",
        )
        .expect("parses");
        let cp = lower(&program).expect("lowers");
        let stats = ProgramStats::of(&cp);
        assert_eq!(stats.funcs, 2);
        assert_eq!(stats.heaps, 1);
        assert_eq!(stats.direct_calls, 1);
        assert_eq!(stats.indirect_calls, 1);
        assert_eq!(stats.assignments(), cp.num_constraints());
        assert!(stats.address_taken >= 3); // g, heap, both function objects
        let text = stats.to_string();
        assert!(text.contains("indirect=1"));
    }
}
