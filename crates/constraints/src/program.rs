//! The immutable, fully indexed constraint program and its builder.

use std::collections::HashMap;

use ddpa_support::{IndexVec, Interner, Symbol};

use crate::model::{CallSite, CallSiteId, CalleeRef, FuncId, FuncInfo, NodeId, NodeInfo, NodeKind};

/// `dst = &obj`
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AddrOf {
    /// The pointer receiving the address.
    pub dst: NodeId,
    /// The location whose address is taken.
    pub obj: NodeId,
}

/// `dst = src` (called *copy* in the paper; named `Assign` here to avoid
/// clashing with the `Copy` trait).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Assign {
    /// The destination.
    pub dst: NodeId,
    /// The source.
    pub src: NodeId,
}

/// `dst = *ptr`
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Load {
    /// The destination.
    pub dst: NodeId,
    /// The dereferenced pointer.
    pub ptr: NodeId,
}

/// `*ptr = src`
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Store {
    /// The dereferenced pointer.
    pub ptr: NodeId,
    /// The stored value.
    pub src: NodeId,
}

/// `dst = &base->field` (field-sensitive extension): for every object
/// `o ∈ pts(base)` that has the field, `pts(dst) ∋ o.field`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FieldAddr {
    /// The pointer receiving the field address.
    pub dst: NodeId,
    /// The pointer to the containing object.
    pub base: NodeId,
    /// Field index.
    pub field: u32,
}

/// Builds a [`ConstraintProgram`] incrementally.
///
/// # Examples
///
/// ```
/// use ddpa_constraints::ConstraintBuilder;
///
/// let mut b = ConstraintBuilder::new();
/// let x = b.var("x");
/// let y = b.var("y");
/// b.addr_of(x, y); // x = &y
/// let cp = b.build();
/// assert_eq!(cp.num_nodes(), 2);
/// assert!(cp.is_address_taken(y));
/// ```
#[derive(Debug, Default)]
pub struct ConstraintBuilder {
    interner: Interner,
    nodes: IndexVec<NodeId, NodeInfo>,
    funcs: IndexVec<FuncId, FuncInfo>,
    callsites: IndexVec<CallSiteId, CallSite>,
    addr_ofs: Vec<AddrOf>,
    copies: Vec<Assign>,
    loads: Vec<Load>,
    stores: Vec<Store>,
    field_addrs: Vec<FieldAddr>,
    field_nodes: HashMap<(NodeId, u32), NodeId>,
    vars_by_name: HashMap<Symbol, NodeId>,
    funcs_by_name: HashMap<Symbol, FuncId>,
    owners: HashMap<NodeId, FuncId>,
    temp_seq: u32,
    heap_seq: u32,
}

impl ConstraintBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a name.
    pub fn intern(&mut self, name: &str) -> Symbol {
        self.interner.intern(name)
    }

    /// Returns the node for named variable `name`, creating it on first use.
    pub fn var(&mut self, name: &str) -> NodeId {
        let sym = self.interner.intern(name);
        if let Some(&node) = self.vars_by_name.get(&sym) {
            return node;
        }
        let node = self.nodes.push(NodeInfo {
            kind: NodeKind::Var { name: sym },
        });
        self.vars_by_name.insert(sym, node);
        node
    }

    /// Looks up a named variable without creating it.
    pub fn lookup_var(&self, name: &str) -> Option<NodeId> {
        let sym = self.interner.lookup(name)?;
        self.vars_by_name.get(&sym).copied()
    }

    /// Creates a fresh temporary node.
    pub fn temp(&mut self) -> NodeId {
        let seq = self.temp_seq;
        self.temp_seq += 1;
        self.nodes.push(NodeInfo {
            kind: NodeKind::Temp { seq },
        })
    }

    /// Creates a fresh heap allocation-site node.
    pub fn heap(&mut self) -> NodeId {
        let seq = self.heap_seq;
        self.heap_seq += 1;
        self.nodes.push(NodeInfo {
            kind: NodeKind::Heap { seq },
        })
    }

    /// Returns the node for field `field` of `parent`, creating it on
    /// first use. Field nodes are distinct pointable locations.
    pub fn field_node(&mut self, parent: NodeId, field: u32) -> NodeId {
        if let Some(&node) = self.field_nodes.get(&(parent, field)) {
            return node;
        }
        let node = self.nodes.push(NodeInfo {
            kind: NodeKind::Field { parent, field },
        });
        self.field_nodes.insert((parent, field), node);
        node
    }

    /// Looks up a field node without creating it.
    pub fn lookup_field(&self, parent: NodeId, field: u32) -> Option<NodeId> {
        self.field_nodes.get(&(parent, field)).copied()
    }

    /// Declares a function with `arity` formals, creating its object,
    /// formal, and return nodes. Returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a function with this name was already declared.
    pub fn func(&mut self, name: &str, arity: usize) -> FuncId {
        let sym = self.interner.intern(name);
        assert!(
            !self.funcs_by_name.contains_key(&sym),
            "function `{name}` declared twice"
        );
        let func = self.funcs.next_index();
        let object = self.nodes.push(NodeInfo {
            kind: NodeKind::Func { func },
        });
        let formals = (0..arity)
            .map(|index| {
                self.nodes.push(NodeInfo {
                    kind: NodeKind::Formal {
                        func,
                        index: index as u32,
                    },
                })
            })
            .collect();
        let ret = self.nodes.push(NodeInfo {
            kind: NodeKind::Ret { func },
        });
        let id = self.funcs.push(FuncInfo {
            name: sym,
            object,
            formals,
            ret,
        });
        debug_assert_eq!(id, func);
        self.funcs_by_name.insert(sym, func);
        func
    }

    /// Looks up a function by name.
    pub fn lookup_func(&self, name: &str) -> Option<FuncId> {
        let sym = self.interner.lookup(name)?;
        self.funcs_by_name.get(&sym).copied()
    }

    /// Returns a function's metadata.
    pub fn func_info(&self, func: FuncId) -> &FuncInfo {
        &self.funcs[func]
    }

    /// Adds `dst = &obj`.
    pub fn addr_of(&mut self, dst: NodeId, obj: NodeId) -> &mut Self {
        self.addr_ofs.push(AddrOf { dst, obj });
        self
    }

    /// Adds `dst = src`.
    pub fn copy(&mut self, dst: NodeId, src: NodeId) -> &mut Self {
        self.copies.push(Assign { dst, src });
        self
    }

    /// Adds `dst = *ptr`.
    pub fn load(&mut self, dst: NodeId, ptr: NodeId) -> &mut Self {
        self.loads.push(Load { dst, ptr });
        self
    }

    /// Adds `*ptr = src`.
    pub fn store(&mut self, ptr: NodeId, src: NodeId) -> &mut Self {
        self.stores.push(Store { ptr, src });
        self
    }

    /// Adds `dst = &base->field`.
    ///
    /// Only objects for which [`Self::field_node`] was called with this
    /// `field` produce a target; other objects flowing into `base` are
    /// skipped (accessing a field they do not have is undefined behavior
    /// and not modeled, as is conventional).
    pub fn field_addr(&mut self, dst: NodeId, base: NodeId, field: u32) -> &mut Self {
        self.field_addrs.push(FieldAddr { dst, base, field });
        self
    }

    /// Adds a direct call site.
    pub fn call_direct(
        &mut self,
        func: FuncId,
        args: Vec<Option<NodeId>>,
        ret_dst: Option<NodeId>,
    ) -> CallSiteId {
        self.callsites.push(CallSite {
            callee: CalleeRef::Direct(func),
            args,
            ret_dst,
            caller: None,
        })
    }

    /// Adds an indirect call site through function pointer `fp`.
    pub fn call_indirect(
        &mut self,
        fp: NodeId,
        args: Vec<Option<NodeId>>,
        ret_dst: Option<NodeId>,
    ) -> CallSiteId {
        self.callsites.push(CallSite {
            callee: CalleeRef::Indirect(fp),
            args,
            ret_dst,
            caller: None,
        })
    }

    /// Records the function containing call site `cs`.
    pub fn set_caller(&mut self, cs: CallSiteId, caller: FuncId) {
        self.callsites[cs].caller = Some(caller);
    }

    /// Records that `node` (a local variable, temporary, or heap site)
    /// belongs to `func`. Formals and return slots are owned implicitly.
    pub fn set_owner(&mut self, node: NodeId, func: FuncId) {
        self.owners.insert(node, func);
    }

    /// Finalizes the program, computing all indexes.
    pub fn build(self) -> ConstraintProgram {
        let n = self.nodes.len();
        let mut index = ProgramIndex::with_nodes(n, self.funcs.len());

        for (i, a) in self.addr_ofs.iter().enumerate() {
            index.addr_objs_of[a.dst].push(a.obj);
            index.addr_dsts_of[a.obj].push(a.dst);
            index.address_taken[a.obj] = true;
            let _ = i;
        }
        for c in &self.copies {
            index.copy_srcs_of[c.dst].push(c.src);
            index.copy_dsts_of[c.src].push(c.dst);
        }
        for l in &self.loads {
            index.load_ptrs_of[l.dst].push(l.ptr);
            index.load_dsts_of[l.ptr].push(l.dst);
        }
        for s in &self.stores {
            index.store_srcs_of[s.ptr].push(s.src);
            index.store_ptrs_of[s.src].push(s.ptr);
        }
        for fa in &self.field_addrs {
            index.field_addrs_of[fa.dst].push((fa.base, fa.field));
            index.field_addrs_from[fa.base].push((fa.field, fa.dst));
        }
        for (cs_id, cs) in self.callsites.iter_enumerated() {
            for (pos, arg) in cs.args.iter().enumerate() {
                if let Some(node) = arg {
                    index.arg_uses_of[*node].push((cs_id, pos as u32));
                }
            }
            if let Some(dst) = cs.ret_dst {
                index.ret_dst_uses_of[dst].push(cs_id);
            }
            match cs.callee {
                CalleeRef::Direct(func) => index.direct_callsites_of[func].push(cs_id),
                CalleeRef::Indirect(fp) => {
                    index.fp_uses_of[fp].push(cs_id);
                    index.indirect_callsites.push(cs_id);
                }
            }
        }

        ConstraintProgram {
            interner: self.interner,
            nodes: self.nodes,
            funcs: self.funcs,
            callsites: self.callsites,
            addr_ofs: self.addr_ofs,
            copies: self.copies,
            loads: self.loads,
            stores: self.stores,
            field_addrs: self.field_addrs,
            field_nodes: self.field_nodes,
            owners: self.owners,
            index,
        }
    }
}

#[derive(Debug)]
struct ProgramIndex {
    addr_objs_of: IndexVec<NodeId, Vec<NodeId>>,
    addr_dsts_of: IndexVec<NodeId, Vec<NodeId>>,
    copy_srcs_of: IndexVec<NodeId, Vec<NodeId>>,
    copy_dsts_of: IndexVec<NodeId, Vec<NodeId>>,
    load_ptrs_of: IndexVec<NodeId, Vec<NodeId>>,
    load_dsts_of: IndexVec<NodeId, Vec<NodeId>>,
    store_srcs_of: IndexVec<NodeId, Vec<NodeId>>,
    store_ptrs_of: IndexVec<NodeId, Vec<NodeId>>,
    field_addrs_of: IndexVec<NodeId, Vec<(NodeId, u32)>>,
    field_addrs_from: IndexVec<NodeId, Vec<(u32, NodeId)>>,
    arg_uses_of: IndexVec<NodeId, Vec<(CallSiteId, u32)>>,
    ret_dst_uses_of: IndexVec<NodeId, Vec<CallSiteId>>,
    fp_uses_of: IndexVec<NodeId, Vec<CallSiteId>>,
    address_taken: IndexVec<NodeId, bool>,
    direct_callsites_of: IndexVec<FuncId, Vec<CallSiteId>>,
    indirect_callsites: Vec<CallSiteId>,
}

impl ProgramIndex {
    fn with_nodes(n: usize, f: usize) -> Self {
        ProgramIndex {
            addr_objs_of: IndexVec::from_elem(Vec::new(), n),
            addr_dsts_of: IndexVec::from_elem(Vec::new(), n),
            copy_srcs_of: IndexVec::from_elem(Vec::new(), n),
            copy_dsts_of: IndexVec::from_elem(Vec::new(), n),
            load_ptrs_of: IndexVec::from_elem(Vec::new(), n),
            load_dsts_of: IndexVec::from_elem(Vec::new(), n),
            store_srcs_of: IndexVec::from_elem(Vec::new(), n),
            store_ptrs_of: IndexVec::from_elem(Vec::new(), n),
            field_addrs_of: IndexVec::from_elem(Vec::new(), n),
            field_addrs_from: IndexVec::from_elem(Vec::new(), n),
            arg_uses_of: IndexVec::from_elem(Vec::new(), n),
            ret_dst_uses_of: IndexVec::from_elem(Vec::new(), n),
            fp_uses_of: IndexVec::from_elem(Vec::new(), n),
            address_taken: IndexVec::from_elem(false, n),
            direct_callsites_of: IndexVec::from_elem(Vec::new(), f),
            indirect_callsites: Vec::new(),
        }
    }
}

/// An immutable constraint program with bidirectional indexes.
///
/// Built with [`ConstraintBuilder`], [`crate::lower()`], or
/// [`crate::parse_constraints`].
#[derive(Debug)]
pub struct ConstraintProgram {
    interner: Interner,
    nodes: IndexVec<NodeId, NodeInfo>,
    funcs: IndexVec<FuncId, FuncInfo>,
    callsites: IndexVec<CallSiteId, CallSite>,
    addr_ofs: Vec<AddrOf>,
    copies: Vec<Assign>,
    loads: Vec<Load>,
    stores: Vec<Store>,
    field_addrs: Vec<FieldAddr>,
    field_nodes: HashMap<(NodeId, u32), NodeId>,
    owners: HashMap<NodeId, FuncId>,
    index: ProgramIndex,
}

impl ConstraintProgram {
    /// Number of abstract locations.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + 'static {
        self.nodes.indices()
    }

    /// Metadata for `node`.
    pub fn node(&self, node: NodeId) -> &NodeInfo {
        &self.nodes[node]
    }

    /// All `dst = &obj` constraints.
    pub fn addr_ofs(&self) -> &[AddrOf] {
        &self.addr_ofs
    }

    /// All `dst = src` constraints.
    pub fn copies(&self) -> &[Assign] {
        &self.copies
    }

    /// All `dst = *ptr` constraints.
    pub fn loads(&self) -> &[Load] {
        &self.loads
    }

    /// All `*ptr = src` constraints.
    pub fn stores(&self) -> &[Store] {
        &self.stores
    }

    /// All `dst = &base->field` constraints.
    pub fn field_addrs(&self) -> &[FieldAddr] {
        &self.field_addrs
    }

    /// The field node for `(parent, field)`, if the program declared one.
    pub fn field_of(&self, parent: NodeId, field: u32) -> Option<NodeId> {
        self.field_nodes.get(&(parent, field)).copied()
    }

    /// Field-address constraints writing into `node`
    /// (`node = &base->field` as `(base, field)` pairs).
    pub fn field_addrs_of(&self, node: NodeId) -> &[(NodeId, u32)] {
        &self.index.field_addrs_of[node]
    }

    /// All field-node declarations as `(parent, field, node)`, sorted by
    /// node id (parents always precede their nested fields).
    pub fn field_nodes(&self) -> Vec<(NodeId, u32, NodeId)> {
        let mut decls: Vec<(NodeId, u32, NodeId)> = self
            .field_nodes
            .iter()
            .map(|(&(parent, field), &node)| (parent, field, node))
            .collect();
        decls.sort_by_key(|&(_, _, node)| node);
        decls
    }

    /// Field-address constraints reading through `node`
    /// (`dst = &node->field` as `(field, dst)` pairs).
    pub fn field_addrs_from(&self, node: NodeId) -> &[(u32, NodeId)] {
        &self.index.field_addrs_from[node]
    }

    /// All functions.
    pub fn funcs(&self) -> &IndexVec<FuncId, FuncInfo> {
        &self.funcs
    }

    /// Metadata for `func`.
    pub fn func(&self, func: FuncId) -> &FuncInfo {
        &self.funcs[func]
    }

    /// All call sites.
    pub fn callsites(&self) -> &IndexVec<CallSiteId, CallSite> {
        &self.callsites
    }

    /// Metadata for `cs`.
    pub fn callsite(&self, cs: CallSiteId) -> &CallSite {
        &self.callsites[cs]
    }

    /// The interner resolving symbols in this program.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Objects whose address `node` takes (`node = &obj` constraints).
    pub fn addr_objs_of(&self, node: NodeId) -> &[NodeId] {
        &self.index.addr_objs_of[node]
    }

    /// Pointers that take `node`'s address.
    pub fn addr_dsts_of(&self, node: NodeId) -> &[NodeId] {
        &self.index.addr_dsts_of[node]
    }

    /// Copy sources flowing into `node` (`node = src`).
    pub fn copy_srcs_of(&self, node: NodeId) -> &[NodeId] {
        &self.index.copy_srcs_of[node]
    }

    /// Copy destinations fed by `node` (`dst = node`).
    pub fn copy_dsts_of(&self, node: NodeId) -> &[NodeId] {
        &self.index.copy_dsts_of[node]
    }

    /// Pointers loaded into `node` (`node = *ptr`).
    pub fn load_ptrs_of(&self, node: NodeId) -> &[NodeId] {
        &self.index.load_ptrs_of[node]
    }

    /// Destinations of loads through `node` (`dst = *node`).
    pub fn load_dsts_of(&self, node: NodeId) -> &[NodeId] {
        &self.index.load_dsts_of[node]
    }

    /// Sources of stores through `node` (`*node = src`).
    pub fn store_srcs_of(&self, node: NodeId) -> &[NodeId] {
        &self.index.store_srcs_of[node]
    }

    /// Pointers stored through with `node` as source (`*ptr = node`).
    pub fn store_ptrs_of(&self, node: NodeId) -> &[NodeId] {
        &self.index.store_ptrs_of[node]
    }

    /// Call sites (and positions) where `node` is an actual argument.
    pub fn arg_uses_of(&self, node: NodeId) -> &[(CallSiteId, u32)] {
        &self.index.arg_uses_of[node]
    }

    /// Call sites whose return value flows into `node`.
    pub fn ret_dst_uses_of(&self, node: NodeId) -> &[CallSiteId] {
        &self.index.ret_dst_uses_of[node]
    }

    /// Indirect call sites whose function pointer is `node`.
    pub fn fp_uses_of(&self, node: NodeId) -> &[CallSiteId] {
        &self.index.fp_uses_of[node]
    }

    /// Returns `true` if `node` can be pointed to (its address is taken,
    /// or it is a heap or function object).
    pub fn is_address_taken(&self, node: NodeId) -> bool {
        self.index.address_taken[node]
            || matches!(
                self.nodes[node].kind,
                NodeKind::Heap { .. } | NodeKind::Func { .. } | NodeKind::Field { .. }
            )
    }

    /// Direct call sites of `func`.
    pub fn direct_callsites_of(&self, func: FuncId) -> &[CallSiteId] {
        &self.index.direct_callsites_of[func]
    }

    /// All indirect call sites.
    pub fn indirect_callsites(&self) -> &[CallSiteId] {
        &self.index.indirect_callsites
    }

    /// Functions whose address is taken anywhere — the sound fallback
    /// target set for an unresolved indirect call.
    pub fn address_taken_funcs(&self) -> Vec<FuncId> {
        self.funcs
            .iter_enumerated()
            .filter(|(_, info)| !self.index.addr_dsts_of[info.object].is_empty())
            .map(|(id, _)| id)
            .collect()
    }

    /// The function owning `node`, if known: explicit for locals, temps
    /// and heap sites registered with [`ConstraintBuilder::set_owner`];
    /// implicit for formals, return slots, and field nodes (the parent's
    /// owner).
    pub fn owner_of(&self, node: NodeId) -> Option<FuncId> {
        match self.nodes[node].kind {
            NodeKind::Formal { func, .. } | NodeKind::Ret { func } => Some(func),
            NodeKind::Field { parent, .. } => self.owner_of(parent),
            NodeKind::Func { .. } => None,
            NodeKind::Var { .. } | NodeKind::Temp { .. } | NodeKind::Heap { .. } => {
                self.owners.get(&node).copied()
            }
        }
    }

    /// A human-readable name for `node` (for diagnostics and dumps).
    pub fn display_node(&self, node: NodeId) -> String {
        match self.nodes[node].kind {
            NodeKind::Var { name } => self.interner.resolve(name).to_owned(),
            NodeKind::Temp { seq } => format!("%t{seq}"),
            NodeKind::Heap { seq } => format!("@heap{seq}"),
            NodeKind::Func { func } => {
                format!("@fn_{}", self.interner.resolve(self.funcs[func].name))
            }
            NodeKind::Formal { func, index } => {
                format!(
                    "{}::arg{index}",
                    self.interner.resolve(self.funcs[func].name)
                )
            }
            NodeKind::Ret { func } => {
                format!("{}::ret", self.interner.resolve(self.funcs[func].name))
            }
            NodeKind::Field { parent, field } => {
                format!("{}.f{}", self.display_node(parent), field)
            }
        }
    }

    /// Total number of primitive constraints (excluding call sites).
    pub fn num_constraints(&self) -> usize {
        self.addr_ofs.len()
            + self.copies.len()
            + self.loads.len()
            + self.stores.len()
            + self.field_addrs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_creates_function_nodes() {
        let mut b = ConstraintBuilder::new();
        let f = b.func("f", 2);
        let info = b.func_info(f).clone();
        assert_eq!(info.formals.len(), 2);
        let cp = b.build();
        assert_eq!(cp.num_nodes(), 4); // object + 2 formals + ret
        assert!(cp.node(info.object).is_func());
        assert!(cp.is_address_taken(info.object));
    }

    #[test]
    fn var_is_deduplicated() {
        let mut b = ConstraintBuilder::new();
        let x1 = b.var("x");
        let x2 = b.var("x");
        let y = b.var("y");
        assert_eq!(x1, x2);
        assert_ne!(x1, y);
    }

    #[test]
    fn indexes_are_bidirectional() {
        let mut b = ConstraintBuilder::new();
        let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
        b.addr_of(x, y);
        b.copy(z, x);
        b.load(z, x);
        b.store(x, z);
        let cp = b.build();
        assert_eq!(cp.addr_objs_of(x), &[y]);
        assert_eq!(cp.addr_dsts_of(y), &[x]);
        assert_eq!(cp.copy_srcs_of(z), &[x]);
        assert_eq!(cp.copy_dsts_of(x), &[z]);
        assert_eq!(cp.load_ptrs_of(z), &[x]);
        assert_eq!(cp.load_dsts_of(x), &[z]);
        assert_eq!(cp.store_srcs_of(x), &[z]);
        assert_eq!(cp.store_ptrs_of(z), &[x]);
        assert!(cp.is_address_taken(y));
        assert!(!cp.is_address_taken(x));
    }

    #[test]
    fn call_indexes() {
        let mut b = ConstraintBuilder::new();
        let f = b.func("f", 1);
        let (fp, a, r) = (b.var("fp"), b.var("a"), b.var("r"));
        let cs1 = b.call_direct(f, vec![Some(a)], Some(r));
        let cs2 = b.call_indirect(fp, vec![None], None);
        let cp = b.build();
        assert_eq!(cp.direct_callsites_of(f), &[cs1]);
        assert_eq!(cp.indirect_callsites(), &[cs2]);
        assert_eq!(cp.fp_uses_of(fp), &[cs2]);
        assert_eq!(cp.arg_uses_of(a), &[(cs1, 0)]);
        assert_eq!(cp.ret_dst_uses_of(r), &[cs1]);
    }

    #[test]
    fn address_taken_funcs_requires_addrof() {
        let mut b = ConstraintBuilder::new();
        let f = b.func("f", 0);
        let g = b.func("g", 0);
        let fp = b.var("fp");
        let g_obj = b.func_info(g).object;
        b.addr_of(fp, g_obj);
        let cp = b.build();
        assert_eq!(cp.address_taken_funcs(), vec![g]);
        // But the function object itself is still a pointable location.
        assert!(cp.is_address_taken(cp.func(f).object));
    }

    #[test]
    fn display_names() {
        let mut b = ConstraintBuilder::new();
        let f = b.func("f", 1);
        let x = b.var("x");
        let t = b.temp();
        let h = b.heap();
        let info = b.func_info(f).clone();
        let cp = b.build();
        assert_eq!(cp.display_node(x), "x");
        assert_eq!(cp.display_node(t), "%t0");
        assert_eq!(cp.display_node(h), "@heap0");
        assert_eq!(cp.display_node(info.object), "@fn_f");
        assert_eq!(cp.display_node(info.formals[0]), "f::arg0");
        assert_eq!(cp.display_node(info.ret), "f::ret");
    }
}
