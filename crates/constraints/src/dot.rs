//! Graphviz export of the constraint graph.
//!
//! `dot -Tsvg` the output to *see* the program the analyses work on: one
//! node per abstract location (shaped by kind), one edge per constraint.
//!
//! | constraint      | edge style                 |
//! |-----------------|----------------------------|
//! | `x = &o`        | dotted, label `&`          |
//! | `x = y`         | solid                      |
//! | `x = *y`        | dashed, label `*load`      |
//! | `*x = y`        | dashed, label `store*`     |
//! | `x = &b->f`     | dotted, label `&->f`       |
//! | call edges      | bold, label `call`/`icall` |

use std::fmt::Write as _;

use crate::model::{CalleeRef, NodeId, NodeKind};
use crate::program::ConstraintProgram;

/// Escapes a label for the dot format.
fn esc(label: &str) -> String {
    label.replace('\\', "\\\\").replace('"', "\\\"")
}

fn node_attrs(cp: &ConstraintProgram, node: NodeId) -> &'static str {
    match cp.node(node).kind {
        NodeKind::Var { .. } => "shape=ellipse",
        NodeKind::Temp { .. } => "shape=ellipse, style=dashed, color=gray50",
        NodeKind::Heap { .. } => "shape=box3d, style=filled, fillcolor=lightyellow",
        NodeKind::Func { .. } => "shape=septagon, style=filled, fillcolor=lightblue",
        NodeKind::Formal { .. } => "shape=ellipse, style=filled, fillcolor=honeydew",
        NodeKind::Ret { .. } => "shape=ellipse, style=filled, fillcolor=mistyrose",
        NodeKind::Field { .. } => "shape=component, style=filled, fillcolor=lavender",
    }
}

/// Renders `cp` as a Graphviz digraph.
///
/// Only nodes that participate in at least one constraint are emitted,
/// keeping dumps of generated programs readable.
///
/// # Examples
///
/// ```
/// let cp = ddpa_constraints::parse_constraints("p = &o\nq = p\n")?;
/// let dot = ddpa_constraints::to_dot(&cp);
/// assert!(dot.starts_with("digraph constraints {"));
/// assert!(dot.contains("label=\"&\""));
/// # Ok::<(), ddpa_constraints::TextError>(())
/// ```
pub fn to_dot(cp: &ConstraintProgram) -> String {
    let mut used = vec![false; cp.num_nodes()];
    let mark = |n: NodeId, used: &mut Vec<bool>| used[n.as_u32() as usize] = true;
    for a in cp.addr_ofs() {
        mark(a.dst, &mut used);
        mark(a.obj, &mut used);
    }
    for c in cp.copies() {
        mark(c.dst, &mut used);
        mark(c.src, &mut used);
    }
    for l in cp.loads() {
        mark(l.dst, &mut used);
        mark(l.ptr, &mut used);
    }
    for s in cp.stores() {
        mark(s.ptr, &mut used);
        mark(s.src, &mut used);
    }
    for fa in cp.field_addrs() {
        mark(fa.dst, &mut used);
        mark(fa.base, &mut used);
    }
    for cs in cp.callsites().iter() {
        if let CalleeRef::Indirect(fp) = cs.callee {
            mark(fp, &mut used);
        }
        for arg in cs.args.iter().flatten() {
            mark(*arg, &mut used);
        }
        if let Some(d) = cs.ret_dst {
            mark(d, &mut used);
        }
    }

    let mut out = String::from("digraph constraints {\n  rankdir=LR;\n  node [fontsize=10];\n");
    for node in cp.node_ids() {
        if used[node.as_u32() as usize] {
            let _ = writeln!(
                out,
                "  n{} [label=\"{}\", {}];",
                node.as_u32(),
                esc(&cp.display_node(node)),
                node_attrs(cp, node)
            );
        }
    }
    for a in cp.addr_ofs() {
        let _ = writeln!(
            out,
            "  n{} -> n{} [style=dotted, label=\"&\"];",
            a.obj.as_u32(),
            a.dst.as_u32()
        );
    }
    for c in cp.copies() {
        let _ = writeln!(out, "  n{} -> n{};", c.src.as_u32(), c.dst.as_u32());
    }
    for l in cp.loads() {
        let _ = writeln!(
            out,
            "  n{} -> n{} [style=dashed, label=\"*load\"];",
            l.ptr.as_u32(),
            l.dst.as_u32()
        );
    }
    for s in cp.stores() {
        let _ = writeln!(
            out,
            "  n{} -> n{} [style=dashed, label=\"store*\"];",
            s.src.as_u32(),
            s.ptr.as_u32()
        );
    }
    for fa in cp.field_addrs() {
        let _ = writeln!(
            out,
            "  n{} -> n{} [style=dotted, label=\"&->f{}\"];",
            fa.base.as_u32(),
            fa.dst.as_u32(),
            fa.field
        );
    }
    for cs in cp.callsites().iter() {
        let (style, target): (&str, String) = match cs.callee {
            CalleeRef::Direct(f) => {
                let obj = cp.func(f).object;
                ("call", format!("n{}", obj.as_u32()))
            }
            CalleeRef::Indirect(fp) => ("icall", format!("n{}", fp.as_u32())),
        };
        if let Some(d) = cs.ret_dst {
            let _ = writeln!(
                out,
                "  {} -> n{} [style=bold, label=\"{}→ret\"];",
                target,
                d.as_u32(),
                style
            );
        }
        for arg in cs.args.iter().flatten() {
            let _ = writeln!(
                out,
                "  n{} -> {} [style=bold, label=\"{}\"];",
                arg.as_u32(),
                target,
                style
            );
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_nodes_and_edges() {
        let cp = crate::parse_constraints(
            "fun f/1\np = &o\nq = p\nr = *q\n*p = r\nfp = &f\nicall fp(q) -> r\n",
        )
        .expect("parses");
        let dot = to_dot(&cp);
        assert!(dot.starts_with("digraph constraints {"));
        assert!(dot.ends_with("}\n"));
        assert!(dot.contains("label=\"p\""));
        assert!(dot.contains("label=\"@fn_f\""));
        assert!(dot.contains("style=dotted, label=\"&\""));
        assert!(dot.contains("label=\"*load\""));
        assert!(dot.contains("label=\"store*\""));
        assert!(dot.contains("label=\"icall\""));
    }

    #[test]
    fn unused_nodes_are_omitted() {
        let mut b = crate::ConstraintBuilder::new();
        let (x, y) = (b.var("x"), b.var("y"));
        let _orphan = b.var("orphan");
        b.copy(x, y);
        let dot = to_dot(&b.build());
        assert!(dot.contains("label=\"x\""));
        assert!(!dot.contains("orphan"));
    }

    #[test]
    fn labels_are_escaped() {
        let mut b = crate::ConstraintBuilder::new();
        let x = b.var("weird\"name");
        let y = b.var("y");
        b.copy(x, y);
        let dot = to_dot(&b.build());
        assert!(dot.contains("weird\\\"name"));
    }
}
