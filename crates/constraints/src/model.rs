//! Ids and metadata for abstract locations, functions, and call sites.

use ddpa_support::{define_index, Symbol};

define_index! {
    /// An abstract memory location (node in the constraint graph).
    ///
    /// One uniform id space covers named variables, temporaries, heap
    /// allocation sites, functions, formal parameters and return slots:
    /// in C, any location may both *hold* a pointer and *be* pointed to.
    pub struct NodeId;
}

define_index! {
    /// A function in the constraint program.
    pub struct FuncId;
}

define_index! {
    /// A call site in the constraint program.
    pub struct CallSiteId;
}

/// What kind of abstract location a node is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A named source variable (global or local; the symbol is already
    /// scope-qualified by lowering, e.g. `main::p`).
    Var {
        /// The (qualified) source name.
        name: Symbol,
    },
    /// A compiler temporary introduced while normalizing expressions.
    Temp {
        /// Sequence number, unique per program.
        seq: u32,
    },
    /// A heap allocation site (`malloc()`), one abstract object per site.
    Heap {
        /// Sequence number, unique per program.
        seq: u32,
    },
    /// The function object itself — what a function pointer points to.
    Func {
        /// The function.
        func: FuncId,
    },
    /// A formal parameter of a function.
    Formal {
        /// The enclosing function.
        func: FuncId,
        /// Zero-based parameter position.
        index: u32,
    },
    /// The return slot of a function; `return e` copies into it.
    Ret {
        /// The enclosing function.
        func: FuncId,
    },
    /// A field of another object (field-sensitive extension): the
    /// distinct sub-location `parent.f<field>`.
    Field {
        /// The containing object.
        parent: NodeId,
        /// Field index within the parent.
        field: u32,
    },
}

/// Full metadata for one node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeInfo {
    /// The node's kind.
    pub kind: NodeKind,
}

impl NodeInfo {
    /// Returns `true` if this node is a function object.
    pub fn is_func(&self) -> bool {
        matches!(self.kind, NodeKind::Func { .. })
    }

    /// Returns the function id if this node is a function object.
    pub fn as_func(&self) -> Option<FuncId> {
        match self.kind {
            NodeKind::Func { func } => Some(func),
            _ => None,
        }
    }
}

/// Metadata for one function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuncInfo {
    /// The function's source name.
    pub name: Symbol,
    /// The node standing for the function object (`&f`).
    pub object: NodeId,
    /// Formal parameter nodes in position order.
    pub formals: Vec<NodeId>,
    /// The return slot node.
    pub ret: NodeId,
}

/// How a call site names its callee.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CalleeRef {
    /// A direct call to a known function.
    Direct(FuncId),
    /// An indirect call through the function pointer held in this node.
    Indirect(NodeId),
}

/// One call site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallSite {
    /// The callee reference.
    pub callee: CalleeRef,
    /// Actual argument nodes, in position order. `None` marks an argument
    /// irrelevant to pointer analysis (e.g. `null` or an integer).
    pub args: Vec<Option<NodeId>>,
    /// Where the returned value flows, if the result is used.
    pub ret_dst: Option<NodeId>,
    /// The function containing this call site (`None` for calls in global
    /// initializers or constraint files without caller information).
    pub caller: Option<FuncId>,
}

impl CallSite {
    /// Returns `true` if this is an indirect (function-pointer) call.
    pub fn is_indirect(&self) -> bool {
        matches!(self.callee, CalleeRef::Indirect(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_info_helpers() {
        let f = NodeInfo {
            kind: NodeKind::Func {
                func: FuncId::from_u32(2),
            },
        };
        assert!(f.is_func());
        assert_eq!(f.as_func(), Some(FuncId::from_u32(2)));
        let t = NodeInfo {
            kind: NodeKind::Temp { seq: 0 },
        };
        assert!(!t.is_func());
        assert_eq!(t.as_func(), None);
    }

    #[test]
    fn callsite_indirectness() {
        let direct = CallSite {
            callee: CalleeRef::Direct(FuncId::from_u32(0)),
            args: vec![],
            ret_dst: None,
            caller: None,
        };
        let indirect = CallSite {
            callee: CalleeRef::Indirect(NodeId::from_u32(5)),
            args: vec![None],
            ret_dst: Some(NodeId::from_u32(1)),
            caller: Some(FuncId::from_u32(1)),
        };
        assert!(!direct.is_indirect());
        assert!(indirect.is_indirect());
    }
}
