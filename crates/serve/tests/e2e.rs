//! End-to-end tests over real sockets on 127.0.0.1:0.
//!
//! Covers the acceptance criteria of the server PR: batch answers
//! identical to a direct engine, warm-cache hits on repeated batches,
//! no stale answers after `add-constraints`, malformed/truncated/
//! oversized rejection, backpressure, and clean shutdown.

use std::collections::BTreeSet;
use std::net::TcpStream;
use std::thread::JoinHandle;

use ddpa_obs::{JsonValue, Obs};
use ddpa_serve::proto::{build, QuerySpec};
use ddpa_serve::{Client, ServeConfig, Server};

struct TestServer {
    addr: std::net::SocketAddr,
    handle: ddpa_serve::ServerHandle,
    obs: Obs,
    thread: Option<JoinHandle<std::io::Result<()>>>,
}

impl TestServer {
    fn start(config: ServeConfig) -> TestServer {
        let obs = Obs::new();
        let server = Server::bind("127.0.0.1:0", config, obs.clone()).expect("bind 127.0.0.1:0");
        let addr = server.local_addr();
        let handle = server.handle();
        let thread = std::thread::spawn(move || server.run());
        TestServer {
            addr,
            handle,
            obs,
            thread: Some(thread),
        }
    }

    fn client(&self) -> Client {
        Client::connect(self.addr).expect("connect to test server")
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(t) = self.thread.take() {
            t.join().expect("server thread").expect("server run");
        }
    }
}

fn ok(v: &JsonValue) -> bool {
    v.get("ok").and_then(JsonValue::as_bool) == Some(true)
}

fn error_code(v: &JsonValue) -> &str {
    v.get("error")
        .and_then(|e| e.get("code"))
        .and_then(JsonValue::as_str)
        .unwrap_or("<no error code>")
}

fn result_pts(v: &JsonValue) -> BTreeSet<String> {
    v.get("pts")
        .and_then(JsonValue::as_array)
        .expect("result has pts")
        .iter()
        .map(|s| s.as_str().expect("pts entries are strings").to_string())
        .collect()
}

#[test]
fn ping_stats_and_clean_shutdown() {
    let server = TestServer::start(ServeConfig::default());
    let mut c = server.client();
    let resp = c.request(&build::ping()).expect("ping");
    assert!(ok(&resp), "{resp}");
    let stats = c.request(&build::stats()).expect("stats");
    assert!(ok(&stats));
    assert!(stats.get("sessions").is_some());
    let resp = c
        .request(&build::shutdown())
        .expect("shutdown is acknowledged");
    assert!(ok(&resp), "{resp}");
    // Drop joins the server thread; a hang here fails the test by timeout.
}

#[test]
fn open_query_close_lifecycle() {
    let server = TestServer::start(ServeConfig::default());
    let mut c = server.client();
    let resp = c
        .request(&build::open("s", "p = &o\nq = p\n", false, None))
        .expect("open");
    assert!(ok(&resp), "{resp}");
    assert_eq!(resp.get("generation").and_then(JsonValue::as_u64), Some(0));

    // Duplicate open is rejected.
    let resp = c
        .request(&build::open("s", "p = &o\n", false, None))
        .expect("duplicate open answered");
    assert!(!ok(&resp));
    assert_eq!(error_code(&resp), "session-exists");

    let q = QuerySpec::PointsTo { name: "q".into() };
    let resp = c
        .request(&build::query("s", &q, None, None))
        .expect("query");
    assert!(ok(&resp), "{resp}");
    let result = resp.get("result").expect("has result");
    assert_eq!(result_pts(result), BTreeSet::from(["o".to_string()]));
    assert_eq!(
        result.get("complete").and_then(JsonValue::as_bool),
        Some(true)
    );

    // Unknown node and unknown session produce their own codes.
    let ghost = QuerySpec::PointsTo {
        name: "ghost".into(),
    };
    let resp = c
        .request(&build::query("s", &ghost, None, None))
        .expect("answered");
    assert_eq!(error_code(&resp), "no-node");
    let resp = c
        .request(&build::query("nope", &q, None, None))
        .expect("answered");
    assert_eq!(error_code(&resp), "no-session");

    let resp = c.request(&build::close("s")).expect("close");
    assert!(ok(&resp));
    let resp = c
        .request(&build::close("s"))
        .expect("double close answered");
    assert_eq!(error_code(&resp), "no-session");
}

#[test]
fn malformed_truncated_and_oversized_lines() {
    let config = ServeConfig {
        max_line_bytes: 256,
        ..ServeConfig::default()
    };
    let server = TestServer::start(config);

    let mut c = server.client();
    // Malformed JSON gets bad-json and the connection stays usable.
    let resp = c.roundtrip_line("{not json").expect("answered");
    let v = ddpa_obs::parse_json(&resp).expect("response is JSON");
    assert_eq!(error_code(&v), "bad-json");
    // Well-formed JSON, invalid request shape.
    let resp = c.roundtrip_line("[1,2,3]").expect("answered");
    let v = ddpa_obs::parse_json(&resp).expect("response is JSON");
    assert_eq!(error_code(&v), "bad-request");
    // Unknown op.
    let resp = c
        .roundtrip_line("{\"op\":\"frobnicate\"}")
        .expect("answered");
    let v = ddpa_obs::parse_json(&resp).expect("response is JSON");
    assert_eq!(error_code(&v), "unknown-op");

    // Oversized line: rejected, then the same connection resyncs and
    // answers the next request normally.
    let huge = format!("{{\"op\":\"ping\",\"pad\":\"{}\"}}", "x".repeat(512));
    let resp = c.roundtrip_line(&huge).expect("answered");
    let v = ddpa_obs::parse_json(&resp).expect("response is JSON");
    assert_eq!(error_code(&v), "oversized");
    let resp = c
        .request(&build::ping())
        .expect("connection survived oversize");
    assert!(ok(&resp), "{resp}");

    // Truncated frame: bytes then EOF without a newline.
    let mut raw = TcpStream::connect(server.addr).expect("connect");
    use std::io::{Read, Write};
    raw.write_all(b"{\"op\":\"ping\"").expect("partial write");
    raw.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut response = String::new();
    raw.read_to_string(&mut response).expect("read response");
    let line = response.lines().next().expect("got a response line");
    let v = ddpa_obs::parse_json(line).expect("response is JSON");
    assert_eq!(error_code(&v), "bad-request");
    assert!(
        v.get("error")
            .and_then(|e| e.get("message"))
            .and_then(JsonValue::as_str)
            .unwrap_or("")
            .contains("truncated"),
        "{v}"
    );
}

#[test]
fn connection_limit_sheds_with_busy() {
    let config = ServeConfig {
        max_connections: 0,
        ..ServeConfig::default()
    };
    let server = TestServer::start(config);
    let mut c = server.client();
    let line = c.read_line().expect("server pushes a rejection line");
    let v = ddpa_obs::parse_json(&line).expect("rejection is JSON");
    assert_eq!(error_code(&v), "busy");
}

#[test]
fn multi_client_smoke() {
    let server = TestServer::start(ServeConfig::default());
    let mut opener = server.client();
    let resp = opener
        .request(&build::open(
            "shared",
            "p = &o\nq = p\nr = q\n",
            false,
            None,
        ))
        .expect("open");
    assert!(ok(&resp), "{resp}");

    let addr = server.addr;
    let workers: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                for _ in 0..25 {
                    let q = QuerySpec::PointsTo { name: "r".into() };
                    let resp = c
                        .request(&build::query("shared", &q, None, None))
                        .expect("query");
                    assert!(ok(&resp), "{resp}");
                    let result = resp.get("result").expect("has result");
                    assert_eq!(result_pts(result), BTreeSet::from(["o".to_string()]));
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }
    // 1 open + 100 queries, all counted.
    assert!(server.obs.counter("server.requests").get() >= 101);
}

/// The headline acceptance test: a ≥100-query mixed batch against a
/// syn-4k session answers identically to a direct in-process engine,
/// repeats hit the warm cache, and `add-constraints` leaves no stale
/// answer.
#[test]
fn syn4k_batch_matches_direct_engine_and_caches() {
    let cp = ddpa_gen::generate_random(&ddpa_gen::RandomConfig::sized(12, 4_000));
    let text = ddpa_constraints::print_constraints(&cp);

    // The reference: a fresh engine over the same canonical text.
    let ref_cp = ddpa_constraints::parse_constraints(&text).expect("canonical text parses");
    let mut names: Vec<String> = ref_cp.node_ids().map(|n| ref_cp.display_node(n)).collect();
    names.sort();
    let pick = |i: usize| names[(i * 37) % names.len()].clone();

    let mut specs: Vec<QuerySpec> = Vec::new();
    for i in 0..60 {
        specs.push(QuerySpec::PointsTo { name: pick(i) });
    }
    for i in 0..30 {
        specs.push(QuerySpec::PointedToBy { name: pick(i + 60) });
    }
    for i in 0..30 {
        specs.push(QuerySpec::MayAlias {
            a: pick(i + 90),
            b: pick(i + 120),
        });
    }
    assert!(specs.len() >= 100, "acceptance needs a 100+ query batch");

    // Direct answers from an in-process engine.
    let mut engine = ddpa_demand::DemandEngine::new(&ref_cp, ddpa_demand::DemandConfig::default());
    let node_of = |name: &str| {
        ref_cp
            .node_ids()
            .find(|&n| ref_cp.display_node(n) == name)
            .expect("picked names exist")
    };
    let direct: Vec<JsonValue> = specs
        .iter()
        .map(|spec| match spec {
            QuerySpec::PointsTo { name } => {
                let r = engine.points_to(node_of(name));
                let set: BTreeSet<String> = r.pts.iter().map(|&t| ref_cp.display_node(t)).collect();
                JsonValue::str(format!(
                    "pts:{}:{}",
                    r.complete,
                    set.into_iter().collect::<Vec<_>>().join(",")
                ))
            }
            QuerySpec::PointedToBy { name } => {
                let r = engine.pointed_to_by(node_of(name));
                let set: BTreeSet<String> = r.pts.iter().map(|&t| ref_cp.display_node(t)).collect();
                JsonValue::str(format!(
                    "ptb:{}:{}",
                    r.complete,
                    set.into_iter().collect::<Vec<_>>().join(",")
                ))
            }
            QuerySpec::MayAlias { a, b } => {
                let r = engine.may_alias(node_of(a), node_of(b));
                JsonValue::str(format!("alias:{}:{}", r.resolved, r.may_alias))
            }
            QuerySpec::CallTargets { .. } => unreachable!("not generated here"),
        })
        .collect();

    let server = TestServer::start(ServeConfig::default());
    let mut c = server.client();
    let resp = c
        .request(&build::open("syn", &text, false, None))
        .expect("open syn-4k");
    assert!(ok(&resp), "{resp}");

    let digest_server = |resp: &JsonValue| -> Vec<String> {
        resp.get("results")
            .and_then(JsonValue::as_array)
            .expect("batch has results")
            .iter()
            .map(|r| {
                if let Some(pts) = r.get("pts") {
                    let set: BTreeSet<String> = pts
                        .as_array()
                        .expect("pts array")
                        .iter()
                        .map(|s| s.as_str().expect("name").to_string())
                        .collect();
                    let complete = r
                        .get("complete")
                        .and_then(JsonValue::as_bool)
                        .expect("complete");
                    format!(
                        "{}:{}",
                        complete,
                        set.into_iter().collect::<Vec<_>>().join(",")
                    )
                } else {
                    let resolved = r
                        .get("resolved")
                        .and_then(JsonValue::as_bool)
                        .expect("resolved");
                    let may = r
                        .get("may_alias")
                        .and_then(JsonValue::as_bool)
                        .expect("may_alias");
                    format!("alias:{resolved}:{may}")
                }
            })
            .collect()
    };
    let digest_direct: Vec<String> = direct
        .iter()
        .map(|d| {
            let s = d.as_str().expect("digest string");
            // strip the kind prefix used for readability
            let mut parts = s.splitn(2, ':');
            let kind = parts.next().expect("kind");
            let rest = parts.next().expect("rest");
            if kind == "alias" {
                format!("alias:{rest}")
            } else {
                rest.to_string()
            }
        })
        .collect();

    // First batch (cold server cache).
    let batch = build::batch("syn", &specs, false, None, Some(60_000));
    let resp = c.request(&batch).expect("first batch");
    assert!(ok(&resp), "{resp}");
    assert_eq!(
        digest_server(&resp),
        digest_direct,
        "server answers identical to direct engine"
    );

    // Second identical batch: warm session cache must register hits.
    let resp = c.request(&batch).expect("second batch");
    assert!(ok(&resp), "{resp}");
    assert_eq!(
        digest_server(&resp),
        digest_direct,
        "warm answers identical"
    );
    let hits = server.obs.counter("server.cache_hits.syn").get();
    assert!(hits > 0, "second identical batch must hit the warm cache");

    // Parallel fan-out returns the same answers (different work, same sets).
    let par = build::batch("syn", &specs, true, None, Some(60_000));
    let resp = c.request(&par).expect("parallel batch");
    assert!(ok(&resp), "{resp}");
    assert_eq!(
        digest_server(&resp),
        digest_direct,
        "parallel answers identical"
    );

    // Incremental edit: give the first points-to query's pointer a new
    // object, then check the server's answer includes it (no stale memo).
    let first = specs
        .iter()
        .find_map(|s| match s {
            QuerySpec::PointsTo { name } => Some(name.clone()),
            _ => None,
        })
        .expect("batch has points-to queries");
    let resp = c
        .request(&build::add_constraints(
            "syn",
            &format!("{first} = &fresh_obj\n"),
        ))
        .expect("add-constraints");
    assert!(ok(&resp), "{resp}");
    assert_eq!(resp.get("generation").and_then(JsonValue::as_u64), Some(1));

    let q = QuerySpec::PointsTo {
        name: first.clone(),
    };
    let resp = c
        .request(&build::query("syn", &q, None, Some(60_000)))
        .expect("post-edit query");
    assert!(ok(&resp), "{resp}");
    let result = resp.get("result").expect("has result");
    assert_eq!(
        result.get("generation").and_then(JsonValue::as_u64),
        Some(1),
        "answers are stamped with the post-edit generation"
    );
    assert!(
        result_pts(result).contains("fresh_obj"),
        "no stale answer after add-constraints: {result}"
    );
    assert!(server.obs.counter("server.invalidations").get() >= 1);
}

#[test]
fn timeouts_are_reported_and_counted() {
    // A deep chain with a 0ms... rather, an expired deadline comes from
    // timeout_ms=1 on a cold, large session: the first slice runs, the
    // deadline check fires before convergence.
    let mut text = String::from("v0 = &obj\n");
    for i in 1..60_000 {
        text.push_str(&format!("v{} = v{}\n", i, i - 1));
    }
    let server = TestServer::start(ServeConfig::default());
    let mut c = server.client();
    let resp = c
        .request(&build::open("deep", &text, false, None))
        .expect("open");
    assert!(ok(&resp), "{resp}");
    let q = QuerySpec::PointsTo {
        name: "v59999".into(),
    };
    let resp = c
        .request(&build::query("deep", &q, None, Some(1)))
        .expect("query");
    assert!(ok(&resp), "{resp}");
    let result = resp.get("result").expect("has result");
    if result.get("timed_out").and_then(JsonValue::as_bool) == Some(true) {
        assert_eq!(
            result.get("complete").and_then(JsonValue::as_bool),
            Some(false),
            "a timed-out answer is partial"
        );
        assert!(server.obs.counter("server.timeouts").get() >= 1);
    } else {
        // A fast machine may finish inside 1ms; the contract is only
        // that a timeout, when it happens, is reported and counted.
        assert_eq!(
            result.get("complete").and_then(JsonValue::as_bool),
            Some(true)
        );
    }
}

#[test]
fn minic_sessions_work_over_the_wire() {
    let server = TestServer::start(ServeConfig::default());
    let mut c = server.client();
    let resp = c
        .request(&build::open(
            "mc",
            "int g; void main() { int *p = &g; int *q = p; }",
            true,
            None,
        ))
        .expect("open MiniC");
    assert!(ok(&resp), "{resp}");
    let q = QuerySpec::PointsTo {
        name: "main::q".into(),
    };
    let resp = c
        .request(&build::query("mc", &q, None, None))
        .expect("query");
    assert!(ok(&resp), "{resp}");
    assert_eq!(
        result_pts(resp.get("result").expect("result")),
        BTreeSet::from(["g".to_string()])
    );
}

// ---------------------------------------------------------------------
// Snapshot / warm-start (ddpa-snap integration)
// ---------------------------------------------------------------------

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ddpa-serve-snap-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp snapshot dir");
    dir
}

#[test]
fn snapshot_then_restore_warm_starts_across_server_restarts() {
    let dir = temp_dir("restart");
    let program = {
        let mut text = String::new();
        for i in 0..12 {
            text.push_str(&format!("p{i} = &o{i}\nq{i} = p{i}\nr{i} = q{i}\n"));
        }
        text
    };
    let specs: Vec<QuerySpec> = (0..12)
        .map(|i| QuerySpec::PointsTo {
            name: format!("r{i}"),
        })
        .collect();

    // First life: warm the session, snapshot it, remember the answers.
    let mut cold_answers = Vec::new();
    {
        let server = TestServer::start(ServeConfig {
            snapshot_dir: Some(dir.clone()),
            ..ServeConfig::default()
        });
        let mut c = server.client();
        c.expect_ok(&build::open("warm", &program, false, None))
            .expect("open");
        for spec in &specs {
            let resp = c
                .expect_ok(&build::query("warm", spec, None, None))
                .expect("query");
            cold_answers.push(result_pts(resp.get("result").expect("result")));
        }
        let snap = c
            .expect_ok(&build::snapshot("warm", None))
            .expect("snapshot op");
        assert!(snap.get("entries").and_then(JsonValue::as_u64).unwrap_or(0) > 0);
        assert!(snap.get("bytes").and_then(JsonValue::as_u64).unwrap_or(0) > 0);
        assert_eq!(server.obs.counter("snap.write").get(), 1);
        assert!(server.obs.counter("snap.bytes").get() > 0);
    }
    assert!(
        dir.join("warm.snap").is_file(),
        "snapshot landed in the dir"
    );

    // Second life: restore-on-open warm-starts the same session name.
    let server = TestServer::start(ServeConfig {
        snapshot_dir: Some(dir.clone()),
        restore_on_open: true,
        ..ServeConfig::default()
    });
    let mut c = server.client();
    let opened = c
        .expect_ok(&build::open("warm", &program, false, None))
        .expect("open restores");
    assert!(
        opened
            .get("restored")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0)
            > 0,
        "open reports restored entries: {opened}"
    );
    assert_eq!(server.obs.counter("snap.load").get(), 1);

    // The first post-restore query is served from the restored memo:
    // nonzero share hits, zero work, bit-identical answer.
    for (spec, cold) in specs.iter().zip(&cold_answers) {
        let resp = c
            .expect_ok(&build::with_trace(build::query("warm", spec, None, None)))
            .expect("restored query");
        let result = resp.get("result").expect("result");
        assert_eq!(&result_pts(result), cold, "restored answers bit-identical");
        assert_eq!(result.get("work").and_then(JsonValue::as_u64), Some(0));
    }
    assert!(
        server.obs.counter("demand.share.hits").get() > 0,
        "post-restore queries report shared-memo hits"
    );

    // Explicit `restore` op into a *different* session over the same
    // program works too.
    c.expect_ok(&build::open("twin", &program, false, None))
        .expect("open twin");
    let restored = c
        .expect_ok(&build::restore(
            "twin",
            &dir.join("warm.snap").display().to_string(),
        ))
        .expect("restore op");
    assert!(
        restored
            .get("installed")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0)
            > 0,
        "{restored}"
    );
    let resp = c
        .expect_ok(&build::query("twin", &specs[0], None, None))
        .expect("twin query");
    assert_eq!(
        result_pts(resp.get("result").expect("result")),
        cold_answers[0]
    );
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_and_mismatched_snapshots_are_cleanly_refused() {
    let dir = temp_dir("refuse");
    let server = TestServer::start(ServeConfig {
        snapshot_dir: Some(dir.clone()),
        restore_on_open: true,
        ..ServeConfig::default()
    });
    let mut c = server.client();
    c.expect_ok(&build::open("a", "p = &o\nq = p\n", false, None))
        .expect("open a");

    // A corrupt file: refused with the snapshot error code, server fine.
    let corrupt = dir.join("corrupt.snap");
    std::fs::write(&corrupt, b"DDPASNAPgarbage-that-is-not-a-snapshot").expect("write");
    let resp = c
        .request(&build::restore("a", &corrupt.display().to_string()))
        .expect("answered");
    assert!(!ok(&resp));
    assert_eq!(error_code(&resp), "snapshot-error");
    assert_eq!(server.obs.counter("snap.reject").get(), 1);

    // A valid snapshot of a *different* program: program-hash mismatch.
    c.expect_ok(&build::snapshot(
        "a",
        Some(&dir.join("a.snap").display().to_string()),
    ))
    .expect("snapshot a");
    c.expect_ok(&build::open("b", "x = &y\nz = x\n", false, None))
        .expect("open b");
    let resp = c
        .request(&build::restore(
            "b",
            &dir.join("a.snap").display().to_string(),
        ))
        .expect("answered");
    assert!(!ok(&resp));
    assert_eq!(error_code(&resp), "snapshot-error");
    assert_eq!(server.obs.counter("snap.reject").get(), 2);

    // Restore-on-open over a mismatched snapshot proceeds cold instead
    // of failing the open.
    std::fs::copy(dir.join("a.snap"), dir.join("c.snap")).expect("copy");
    let opened = c
        .expect_ok(&build::open("c", "m = &n\n", false, None))
        .expect("open proceeds cold");
    assert_eq!(opened.get("restored").and_then(JsonValue::as_u64), Some(0));
    assert_eq!(server.obs.counter("snap.reject").get(), 3);

    // The server still answers queries after every refusal.
    let resp = c
        .expect_ok(&build::query(
            "a",
            &QuerySpec::PointsTo { name: "q".into() },
            None,
            None,
        ))
        .expect("query");
    assert_eq!(
        result_pts(resp.get("result").expect("result")),
        BTreeSet::from(["o".to_string()])
    );
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn oversized_inline_restore_payload_gets_a_clean_error() {
    // Regression test for the protocol decision that `restore` takes a
    // server-side path: a client that tries to inline a snapshot payload
    // larger than max_line_bytes must get a clean `oversized` error and
    // a usable connection afterwards, not a truncated-frame mess.
    let server = TestServer::start(ServeConfig {
        max_line_bytes: 1024,
        ..ServeConfig::default()
    });
    let mut c = server.client();
    let payload = "A".repeat(8 * 1024); // "snapshot" blob, base64-ish
    let line = format!("{{\"op\":\"restore\",\"session\":\"s\",\"data\":\"{payload}\"}}");
    let resp = c.roundtrip_line(&line).expect("answered");
    let resp = ddpa_obs::parse_json(&resp).expect("valid JSON error");
    assert!(!ok(&resp));
    assert_eq!(error_code(&resp), "oversized");

    // The connection resynchronized: the next request works.
    let resp = c.request(&build::ping()).expect("ping after oversized");
    assert!(ok(&resp), "{resp}");

    // And an under-limit inline payload is refused by the parser with a
    // clean bad-request explaining the path-based contract.
    let resp = c
        .request(
            &ddpa_obs::parse_json(
                "{\"op\":\"restore\",\"session\":\"s\",\"path\":\"f\",\"data\":\"AA\"}",
            )
            .expect("valid"),
        )
        .expect("answered");
    assert!(!ok(&resp));
    assert_eq!(error_code(&resp), "bad-request");
}

#[test]
fn periodic_snapshotter_persists_sessions_without_being_asked() {
    let dir = temp_dir("periodic");
    let server = TestServer::start(ServeConfig {
        snapshot_dir: Some(dir.clone()),
        snapshot_every_ms: 100,
        ..ServeConfig::default()
    });
    let mut c = server.client();
    c.expect_ok(&build::open("bg", "p = &o\nq = p\n", false, None))
        .expect("open");
    c.expect_ok(&build::query(
        "bg",
        &QuerySpec::PointsTo { name: "q".into() },
        None,
        None,
    ))
    .expect("query");
    // Wait out a couple of ticks; the snapshotter must write on its own.
    let path = dir.join("bg.snap");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while !path.is_file() && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    assert!(path.is_file(), "periodic snapshotter wrote {path:?}");
    assert!(server.obs.counter("snap.write").get() >= 1);
    // Shutdown runs one final pass and joins the ticker (Drop hangs
    // otherwise); the file must still parse cleanly afterwards.
    drop(server);
    let snap = ddpa_snap::read_file(&path).expect("final snapshot parses");
    assert!(!snap.entries.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}
