//! A server session: one loaded [`ConstraintProgram`] plus a warm
//! [`DemandEngine`] whose memo table persists across requests.
//!
//! # Incremental edits
//!
//! The engine borrows the program (`DemandEngine<'p>`), so an
//! `add-constraints` edit cannot mutate the program in place. Instead the
//! session keeps the program's canonical constraint text, re-parses the
//! combined text into a *new* heap allocation, repoints the engine with
//! [`DemandEngine::reload`] (which drops every tabled goal and bumps the
//! generation counter), and only then frees the old program. Responses
//! are stamped with the generation so clients can detect which answers
//! predate an edit.
//!
//! # Timeouts
//!
//! The engine has no clock; it has *budgets*, and an out-of-budget query
//! resumes exactly where it stopped on the next call. Wall-clock
//! timeouts are therefore implemented by [`drive`]: run the query in
//! fixed budget slices and check the deadline between slices. This
//! requires memoization (the session engine always caches), otherwise a
//! new slice would restart from scratch.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ddpa_constraints::{CallSiteId, ConstraintProgram, NodeId};
use ddpa_demand::{
    DemandConfig, DemandEngine, EditStats, EngineStats, QueryTrace, SchedPolicy, SharedMemo,
    ThreadPool, TraceReport,
};

use crate::proto::{ErrorCode, ProtoError, QuerySpec};

/// Budget granularity for deadline-sliced queries: big enough that the
/// per-slice bookkeeping is noise, small enough that a timeout is
/// honoured within a few milliseconds of deduction.
const SLICE: u64 = 8192;

/// A query spec with its names resolved against a session's program.
#[derive(Clone, Copy, Debug)]
pub enum ResolvedSpec {
    PointsTo(NodeId),
    PointedToBy(NodeId),
    MayAlias(NodeId, NodeId),
    CallTargets(CallSiteId),
}

/// The answer to one query, ready for rendering.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryAnswer {
    /// `points-to` / `pointed-to-by`: a set of node display names.
    Set {
        names: Vec<String>,
        complete: bool,
        work: u64,
        timed_out: bool,
    },
    /// `may-alias`.
    Alias {
        may_alias: bool,
        resolved: bool,
        work: u64,
        timed_out: bool,
    },
    /// `call-targets`: a set of function names.
    Targets {
        names: Vec<String>,
        resolved: bool,
        work: u64,
        timed_out: bool,
    },
}

impl QueryAnswer {
    /// Whether the deadline expired before the answer was exact.
    pub fn timed_out(&self) -> bool {
        match self {
            QueryAnswer::Set { timed_out, .. }
            | QueryAnswer::Alias { timed_out, .. }
            | QueryAnswer::Targets { timed_out, .. } => *timed_out,
        }
    }
}

/// What [`Session::restore_snapshot`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RestoreStats {
    /// Entries newly installed into the shared table.
    pub installed: usize,
    /// `true` when the snapshot predated an edit and its surviving
    /// entries were rebound to the live program (rather than installed
    /// under a matching hash).
    pub rebound: bool,
    /// Entries the rebinding dropped because the edit transitively
    /// dirtied them. Always 0 on the matching-hash path.
    pub dropped: usize,
}

/// Outcome of [`drive`]: the stepped answer plus totals.
struct Driven<R> {
    answer: R,
    complete: bool,
    work: u64,
    timed_out: bool,
}

/// Runs `step` (one engine query call) to completion, budget exhaustion,
/// or deadline expiry, whichever comes first.
///
/// With neither budget nor deadline this is a single unlimited call.
/// Otherwise the query runs in [`SLICE`]-sized budget instalments; the
/// engine's resumption guarantee means each instalment continues where
/// the previous one stopped, so slicing changes nothing but the points
/// at which the clock is checked.
fn drive<R>(
    engine: &mut DemandEngine<'_>,
    budget: Option<u64>,
    deadline: Option<Instant>,
    mut step: impl FnMut(&mut DemandEngine<'_>) -> (R, bool, u64),
) -> Driven<R> {
    if budget.is_none() && deadline.is_none() {
        engine.set_budget(None);
        let (answer, complete, work) = step(engine);
        return Driven {
            answer,
            complete,
            work,
            timed_out: false,
        };
    }
    debug_assert!(
        engine.config().caching,
        "deadline slicing needs memoization to make progress across slices"
    );
    let mut total = 0u64;
    let mut remaining = budget;
    loop {
        let expired = deadline.is_some_and(|d| Instant::now() >= d);
        // An already-expired deadline still runs one zero-budget step:
        // that serves memoized answers (and partial sets) without doing
        // new deduction.
        let slice = if expired {
            0
        } else {
            remaining.map_or(SLICE, |r| r.min(SLICE))
        };
        engine.set_budget(Some(slice));
        let (answer, complete, work) = step(engine);
        total += work;
        if let Some(rem) = &mut remaining {
            *rem = rem.saturating_sub(work);
        }
        let exhausted = remaining == Some(0);
        // `work == 0` without completion means the slice could not make
        // progress; bail rather than spin (cannot happen with a positive
        // slice, but guards against a hang if that invariant breaks).
        if complete || exhausted || expired || work == 0 {
            engine.set_budget(None);
            return Driven {
                answer,
                complete,
                work: total,
                timed_out: expired && !complete,
            };
        }
    }
}

/// Runs one resolved query on `engine`, honouring budget and deadline.
fn run_resolved(
    engine: &mut DemandEngine<'_>,
    cp: &ConstraintProgram,
    spec: ResolvedSpec,
    budget: Option<u64>,
    deadline: Option<Instant>,
) -> QueryAnswer {
    let node_names =
        |nodes: &[NodeId]| -> Vec<String> { nodes.iter().map(|&n| cp.display_node(n)).collect() };
    match spec {
        ResolvedSpec::PointsTo(n) => {
            let d = drive(engine, budget, deadline, |e| {
                let r = e.points_to(n);
                let (c, w) = (r.complete, r.work);
                (r, c, w)
            });
            QueryAnswer::Set {
                names: node_names(&d.answer.pts),
                complete: d.complete,
                work: d.work,
                timed_out: d.timed_out,
            }
        }
        ResolvedSpec::PointedToBy(n) => {
            let d = drive(engine, budget, deadline, |e| {
                let r = e.pointed_to_by(n);
                let (c, w) = (r.complete, r.work);
                (r, c, w)
            });
            QueryAnswer::Set {
                names: node_names(&d.answer.pts),
                complete: d.complete,
                work: d.work,
                timed_out: d.timed_out,
            }
        }
        ResolvedSpec::MayAlias(a, b) => {
            let d = drive(engine, budget, deadline, |e| {
                let r = e.may_alias(a, b);
                let (c, w) = (r.resolved, r.work);
                (r, c, w)
            });
            QueryAnswer::Alias {
                may_alias: d.answer.may_alias,
                resolved: d.complete,
                work: d.work,
                timed_out: d.timed_out,
            }
        }
        ResolvedSpec::CallTargets(cs) => {
            let d = drive(engine, budget, deadline, |e| {
                let r = e.call_targets(cs);
                let (c, w) = (r.resolved, r.work);
                (r, c, w)
            });
            let names = d
                .answer
                .targets
                .iter()
                .map(|&f| cp.interner().resolve(cp.func(f).name).to_string())
                .collect();
            QueryAnswer::Targets {
                names,
                resolved: d.complete,
                work: d.work,
                timed_out: d.timed_out,
            }
        }
    }
}

/// One loaded program with a warm demand engine.
///
/// `engine` borrows `program` through a `'static` lifetime obtained from
/// the stable `Box` allocation; see the field-level SAFETY notes.
pub struct Session {
    /// Declared *before* `program` so it drops first: the engine's
    /// `&'static ConstraintProgram` must never outlive the box it points
    /// into.
    engine: DemandEngine<'static>,
    /// The owning allocation behind the engine's borrow. Only replaced
    /// via [`Session::add_constraints`], which repoints the engine before
    /// freeing the old box.
    program: Box<ConstraintProgram>,
    /// Canonical constraint text of `program`; `add-constraints` appends
    /// to this and re-parses.
    source: String,
    /// Display-name → node index for query resolution.
    names: HashMap<String, NodeId>,
    /// Default deduction budget for queries on this session.
    default_budget: Option<u64>,
    /// Shared memo table tying the warm engine and parallel batch
    /// workers together: the warm engine publishes completed subgoals,
    /// workers install them at zero cost (and vice versa — results a
    /// batch computes warm later requests for free). `add-constraints`
    /// bumps its generation through [`DemandEngine::reload`].
    shared: Arc<SharedMemo>,
    /// Frame-scheduler width for parallel queries (1 = scheduler off).
    workers: usize,
    /// Session default for intra-query parallelism: applied when a query
    /// request carries no `parallel_query` override.
    parallel_default: bool,
    /// How the most recent [`Session::query_opt`] was scheduled, when the
    /// request asked for parallelism: `"parallel"` (frame scheduler ran)
    /// or `"sequential-fallback"` (the sequential engine served it —
    /// budgeted, deadline-expired, single-worker, or a cache hit).
    /// `None` when the request didn't ask for parallelism.
    last_sched: Option<&'static str>,
}

// Compile-time proof that sessions may move between connection threads:
// the engine holds `&'static ConstraintProgram`, which is `Send` because
// `ConstraintProgram` is `Sync` (it is plain immutable data; the parallel
// driver already shares it across workers).
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Session>();
};

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("nodes", &self.program.num_nodes())
            .field("constraints", &self.program.num_constraints())
            .field("generation", &self.engine.generation())
            .finish()
    }
}

impl Session {
    /// Parses `text` (constraint text, or MiniC when `minic`) and opens a
    /// session over it.
    pub fn open(text: &str, minic: bool, default_budget: Option<u64>) -> Result<Self, ProtoError> {
        let cp = parse_program(text, minic)?;
        // Canonicalize through the printer so `add_constraints` can
        // append plain constraint lines even to MiniC-born sessions —
        // then re-parse the canonical text and serve *that* program, so
        // `source` is the exact text whose first-appearance order minted
        // the live node-id space. Edits append to `source` and diff the
        // re-parse against the live program; if the two were born from
        // different texts (the printer groups constraints by kind), every
        // diff would see shuffled ids and fall back to full invalidation.
        let source = ddpa_constraints::print_constraints(&cp);
        let cp = parse_program(&source, false)?;
        let program = Box::new(cp);
        // SAFETY: the box's heap allocation is stable; the reference is
        // only held by `self.engine`, which drops before `self.program`
        // (field order) and is repointed before any box replacement.
        let cp_ref: &'static ConstraintProgram =
            unsafe { &*(program.as_ref() as *const ConstraintProgram) };
        let shared = Arc::new(SharedMemo::new());
        let engine = DemandEngine::new(cp_ref, DemandConfig::default())
            .with_shared_memo(Arc::clone(&shared));
        let names = index_names(&program);
        Ok(Session {
            engine,
            program,
            source,
            names,
            default_budget,
            shared,
            workers: 1,
            parallel_default: false,
            last_sched: None,
        })
    }

    /// Configures intra-query parallelism: the frame-scheduler width and
    /// policy (from the server's `--workers`/`--sched-policy` knobs) plus
    /// the session's `parallel_query` default from `open`.
    pub fn with_parallel(mut self, workers: usize, policy: SchedPolicy, default_on: bool) -> Self {
        self.workers = workers.max(1);
        self.parallel_default = default_on;
        self.engine.set_sched_policy(policy);
        self
    }

    /// The configured frame-scheduler width.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The session's `parallel_query` default.
    pub fn parallel_default(&self) -> bool {
        self.parallel_default
    }

    /// The loaded program.
    pub fn program(&self) -> &ConstraintProgram {
        &self.program
    }

    /// The canonical constraint text of the loaded program.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Invalidation generation: bumped by every [`Session::add_constraints`].
    pub fn generation(&self) -> u64 {
        self.engine.generation()
    }

    /// The session's default deduction budget.
    pub fn default_budget(&self) -> Option<u64> {
        self.default_budget
    }

    /// Snapshot of the warm engine's counters.
    pub fn engine_stats(&self) -> EngineStats {
        self.engine.stats()
    }

    /// Opens a per-request trace bracket on the session's engine. Batch
    /// workers share the engine's [`Obs`](ddpa_obs::Obs), so the bracket
    /// captures their work too.
    pub fn begin_trace(&self, id: impl Into<String>) -> QueryTrace {
        self.engine.begin_trace(id)
    }

    /// Closes a trace bracket opened by [`Session::begin_trace`].
    pub fn finish_trace(&self, trace: QueryTrace) -> TraceReport {
        trace.finish(&self.engine)
    }

    /// Number of memoized subgoals currently tabled.
    pub fn tabled_goals(&self) -> usize {
        self.engine.tabled_goals()
    }

    /// The warm engine's hottest goals plus critical-path profile,
    /// rendered for the wire (`inspect` op): `(hottest array, critical
    /// path object)`.
    pub fn inspect_json(&self, top: usize) -> (ddpa_obs::JsonValue, ddpa_obs::JsonValue) {
        use ddpa_obs::JsonValue;
        let cp = self.engine.program();
        let hottest = self
            .engine
            .hottest_goals(top)
            .into_iter()
            .map(|p| {
                JsonValue::Object(vec![
                    (
                        "goal".to_owned(),
                        JsonValue::str(ddpa_demand::display_goal(cp, p.goal)),
                    ),
                    ("work".to_owned(), JsonValue::U64(p.work)),
                    ("fires".to_owned(), JsonValue::U64(p.fires)),
                    ("complete".to_owned(), JsonValue::Bool(p.complete)),
                    ("elems".to_owned(), JsonValue::U64(p.elems as u64)),
                    ("watchers".to_owned(), JsonValue::U64(p.watchers as u64)),
                ])
            })
            .collect();
        let profile = self.engine.critical_path();
        (JsonValue::Array(hottest), profile.to_json(cp))
    }

    /// The warm engine's flight-recorder contents, newest last, plus the
    /// (recorded, dropped) totals (`flight` op). Empty when the recorder
    /// is off.
    pub fn flight_json(&self, limit: usize) -> (Vec<ddpa_obs::JsonValue>, u64, u64) {
        let (recorded, dropped) = self
            .engine
            .flight_recorder()
            .map(|f| (f.recorded(), f.dropped()))
            .unwrap_or((0, 0));
        (self.engine.flight_events_json(limit), recorded, dropped)
    }

    /// The warm engine's goal dependency graph as Graphviz DOT.
    pub fn graph_dot(&self) -> String {
        self.engine.goal_graph().to_dot(self.engine.program())
    }

    /// The warm engine's goal dependency graph as a JSON object.
    pub fn graph_json(&self) -> ddpa_obs::JsonValue {
        self.engine.goal_graph().to_json(self.engine.program())
    }

    /// The shared memo table the warm engine and batch workers publish
    /// into.
    pub fn shared_memo(&self) -> &Arc<SharedMemo> {
        &self.shared
    }

    /// Captures the session's completed fixpoints as a snapshot, stamped
    /// with the session's canonical program text. Compacts the shared
    /// table first, so stale generations are never serialized.
    pub fn export_snapshot(&self) -> ddpa_snap::Snapshot {
        ddpa_snap::Snapshot::of_memo(&self.shared, self.source.clone())
    }

    /// Warm-starts the session from a snapshot.
    ///
    /// When the snapshot's program hash matches the session's canonical
    /// text, every entry is imported into the shared table (where the
    /// warm engine's next activation of each goal finds it at zero
    /// cost). When the hashes differ — the usual cause is an
    /// `add-constraints` edit since the snapshot was taken — the
    /// snapshot's own program text is re-parsed and diffed against the
    /// live program: if the old node ids survive, every entry the edit
    /// did not transitively dirty is *rebound* to the live program and
    /// installed, and only the dirtied remainder is dropped. The restore
    /// is refused only when the two programs are incompatible (old ids
    /// name different locations) or the snapshot text does not parse.
    pub fn restore_snapshot(
        &mut self,
        snapshot: &ddpa_snap::Snapshot,
    ) -> Result<RestoreStats, ProtoError> {
        if snapshot.verify_program(&self.source).is_ok() {
            return Ok(RestoreStats {
                installed: snapshot.install(&self.shared),
                rebound: false,
                dropped: 0,
            });
        }
        let old = parse_program(&snapshot.program_text, false).map_err(|e| {
            ProtoError::new(
                ErrorCode::Snapshot,
                format!("snapshot program text does not parse: {}", e.message),
            )
        })?;
        let diff = ddpa_constraints::diff_programs(&old, &self.program);
        if !diff.compatible {
            return Err(ProtoError::new(
                ErrorCode::Snapshot,
                "snapshot was taken over an incompatible program \
                 (node ids do not survive into the live program)"
                    .to_string(),
            ));
        }
        let (dirty, _edges) = ddpa_demand::dirty_closure(&snapshot.entries, &diff);
        let survivors: Vec<_> = snapshot
            .entries
            .iter()
            .filter(|(g, _)| !dirty.contains(g))
            .cloned()
            .collect();
        let dropped = snapshot.entries.len() - survivors.len();
        Ok(RestoreStats {
            installed: self.shared.import(survivors),
            rebound: true,
            dropped,
        })
    }

    /// Appends constraint text to the session's program.
    ///
    /// Re-parses the combined source, diffs the old and new programs,
    /// atomically swaps the engine onto the new program, and invalidates
    /// only the transitively dirtied goals
    /// ([`DemandEngine::reload_incremental`]) — everything whose support
    /// set misses the edit stays warm. The generation is bumped either
    /// way. On parse error the session is unchanged. Returns what the
    /// edit did to the memoized state.
    pub fn add_constraints(&mut self, extra: &str) -> Result<EditStats, ProtoError> {
        let mut combined = self.source.clone();
        if !combined.is_empty() && !combined.ends_with('\n') {
            combined.push('\n');
        }
        combined.push_str(extra);
        let cp = parse_program(&combined, false)?;
        // Keep `source` as the appended text (NOT a fresh canonical
        // print): re-printing would regroup constraints by kind and shift
        // node ids out from under the next edit's diff.
        let diff = ddpa_constraints::diff_programs(&self.program, &cp);
        let program = Box::new(cp);
        // SAFETY: same argument as in `open`; ordering matters — the
        // engine is repointed at the new box *before* the old box drops.
        let cp_ref: &'static ConstraintProgram =
            unsafe { &*(program.as_ref() as *const ConstraintProgram) };
        let stats = self.engine.reload_incremental(cp_ref, &diff);
        self.names = index_names(&program);
        self.source = combined;
        let _old = std::mem::replace(&mut self.program, program);
        Ok(stats)
    }

    /// Resolves a spec's names/indices against the loaded program.
    pub fn resolve(&self, spec: &QuerySpec) -> Result<ResolvedSpec, ProtoError> {
        let node = |name: &str| -> Result<NodeId, ProtoError> {
            self.names.get(name).copied().ok_or_else(|| {
                ProtoError::new(ErrorCode::NoNode, format!("no node named {name:?}"))
            })
        };
        match spec {
            QuerySpec::PointsTo { name } => Ok(ResolvedSpec::PointsTo(node(name)?)),
            QuerySpec::PointedToBy { name } => Ok(ResolvedSpec::PointedToBy(node(name)?)),
            QuerySpec::MayAlias { a, b } => Ok(ResolvedSpec::MayAlias(node(a)?, node(b)?)),
            QuerySpec::CallTargets { site } => {
                let sites = self.program.callsites().len();
                if *site >= sites as u64 {
                    return Err(ProtoError::new(
                        ErrorCode::NoNode,
                        format!("call site {site} out of range (program has {sites})"),
                    ));
                }
                Ok(ResolvedSpec::CallTargets(CallSiteId::from_u32(
                    *site as u32,
                )))
            }
        }
    }

    /// Answers one query on the session's warm engine.
    ///
    /// `budget` overrides the session default; `deadline` bounds
    /// wall-clock time via budget slicing.
    pub fn query(
        &mut self,
        spec: ResolvedSpec,
        budget: Option<u64>,
        deadline: Option<Instant>,
    ) -> QueryAnswer {
        self.query_opt(spec, budget, deadline, None)
    }

    /// [`Session::query`] with a per-request `parallel_query` override
    /// (`None` inherits the session default).
    ///
    /// A parallel query runs on the frame scheduler only when no budget
    /// applies (neither per-request nor session default): budget slicing
    /// needs the sequential engine's resumption guarantee. The scheduler
    /// runs each query to its fixpoint, so a deadline is checked between
    /// queries but cannot preempt one mid-flight (documented in
    /// `docs/SERVER.md`).
    pub fn query_opt(
        &mut self,
        spec: ResolvedSpec,
        budget: Option<u64>,
        deadline: Option<Instant>,
        parallel: Option<bool>,
    ) -> QueryAnswer {
        let budget = budget.or(self.default_budget);
        let requested = parallel.unwrap_or(self.parallel_default);
        let parallel = requested && self.workers > 1;
        // SAFETY-free re-borrow dance: `run_resolved` needs the engine
        // (`&mut`) and the program (`&`) at once; the engine's own copy
        // of the program reference is handed out to avoid aliasing
        // `self.program` while `self.engine` is mutably borrowed.
        let cp = self.engine.program();
        let answer = 'answer: {
            if parallel && budget.is_none() {
                // Serve memoized/expired-deadline answers through the
                // normal path; everything else runs unbudgeted on the
                // scheduler.
                let expired = deadline.is_some_and(|d| Instant::now() >= d);
                if !expired {
                    self.engine.set_workers(self.workers);
                    let answer = run_resolved(&mut self.engine, cp, spec, None, None);
                    self.engine.set_workers(1);
                    break 'answer answer;
                }
            }
            run_resolved(&mut self.engine, cp, spec, budget, deadline)
        };
        // Report how a parallelism-requesting query was actually
        // scheduled, so budget/deadline/cache fallbacks are never silent.
        self.last_sched = if !requested {
            None
        } else if self.engine.last_query_parallel() {
            Some("parallel")
        } else {
            Some("sequential-fallback")
        };
        answer
    }

    /// How the most recent [`Session::query_opt`] was scheduled:
    /// `Some("parallel")` when the frame scheduler ran,
    /// `Some("sequential-fallback")` when parallelism was requested but
    /// the sequential engine served the answer (budgeted, traced,
    /// deadline-expired, single-worker, or a cache hit), `None` when the
    /// request didn't ask for parallelism.
    pub fn last_sched(&self) -> Option<&'static str> {
        self.last_sched
    }

    /// Answers a batch by fanning out over `pool` with one engine per
    /// worker (the parallel-driver claim protocol generalized to mixed
    /// query kinds).
    ///
    /// Workers share the session's [`SharedMemo`]: subgoals the warm
    /// engine already completed are installed at zero rule firings, each
    /// remaining subgoal is deduced once across the whole batch, and the
    /// batch's completed results are published back for later warm
    /// queries. Workers also publish metrics into the session engine's
    /// [`Obs`](ddpa_obs::Obs), so `engine_stats()` aggregates batch work
    /// and shared-table traffic. Answers are identical to the warm path.
    pub fn query_batch_parallel(
        &self,
        specs: &[ResolvedSpec],
        budget: Option<u64>,
        deadline: Option<Instant>,
        pool: &ThreadPool,
    ) -> Vec<QueryAnswer> {
        let budget = budget.or(self.default_budget);
        let cp: &ConstraintProgram = &self.program;
        // Workers inherit the session engine's configuration (budgets,
        // tracing, cycle collapsing, …) so a batch answer never differs
        // from the warm path because of a config mismatch.
        let config = self.engine.config().clone();
        if specs.len() <= 1 || pool.threads() == 1 {
            let mut engine = DemandEngine::with_obs(cp, config, self.engine.obs().clone())
                .with_shared_memo(Arc::clone(&self.shared));
            return specs
                .iter()
                .map(|&s| run_resolved(&mut engine, cp, s, budget, deadline))
                .collect();
        }

        let mut results: Vec<Option<QueryAnswer>> = vec![None; specs.len()];
        let next = AtomicUsize::new(0);

        #[derive(Clone, Copy)]
        struct SlotPtr(*mut Option<QueryAnswer>);
        unsafe impl Send for SlotPtr {}
        unsafe impl Sync for SlotPtr {}
        let slots: Vec<SlotPtr> = results.iter_mut().map(|r| SlotPtr(r as *mut _)).collect();
        let slots = &slots;
        let next = &next;

        let workers = pool.threads().min(specs.len());
        let config = &config;
        let shared = &self.shared;
        let obs = self.engine.obs();
        pool.scoped((0..workers).map(|_| {
            Box::new(move || {
                let mut engine = DemandEngine::with_obs(cp, config.clone(), obs.clone())
                    .with_shared_memo(Arc::clone(shared));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= specs.len() {
                        break;
                    }
                    let answer = run_resolved(&mut engine, cp, specs[i], budget, deadline);
                    // SAFETY: index i was claimed exclusively via the
                    // atomic counter; each slot outlives the scoped batch
                    // and is written at most once.
                    let slot: SlotPtr = slots[i];
                    unsafe {
                        *slot.0 = Some(answer);
                    }
                }
            }) as Box<dyn FnOnce() + Send + '_>
        }));

        results
            .into_iter()
            .map(|r| r.expect("all slots filled"))
            .collect()
    }
}

fn parse_program(text: &str, minic: bool) -> Result<ConstraintProgram, ProtoError> {
    let bad = |e: String| ProtoError::new(ErrorCode::BadProgram, e);
    if minic {
        let ast = ddpa_ir::parse(text).map_err(|e| bad(e.to_string()))?;
        ddpa_constraints::lower(&ast).map_err(|e| bad(e.to_string()))
    } else {
        ddpa_constraints::parse_constraints(text).map_err(|e| bad(e.to_string()))
    }
}

fn index_names(cp: &ConstraintProgram) -> HashMap<String, NodeId> {
    cp.node_ids().map(|n| (cp.display_node(n), n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set_names(answer: &QueryAnswer) -> Vec<String> {
        match answer {
            QueryAnswer::Set { names, .. } => names.clone(),
            other => panic!("expected a set answer, got {other:?}"),
        }
    }

    #[test]
    fn open_query_and_edit() {
        let mut s = Session::open("p = &o\nq = p\n", false, None).expect("valid program");
        let spec = s
            .resolve(&QuerySpec::PointsTo { name: "q".into() })
            .expect("q exists");
        let a = s.query(spec, None, None);
        assert_eq!(set_names(&a), vec!["o"]);
        assert_eq!(s.generation(), 0);

        s.add_constraints("p = &o2\n").expect("valid edit");
        assert_eq!(s.generation(), 1);
        // Names were re-indexed against the new program; re-resolve.
        let spec = s
            .resolve(&QuerySpec::PointsTo { name: "q".into() })
            .expect("q still exists");
        let a = s.query(spec, None, None);
        assert_eq!(set_names(&a), vec!["o", "o2"], "no stale memo after edit");
    }

    #[test]
    fn bad_edit_leaves_session_unchanged() {
        let mut s = Session::open("p = &o\n", false, None).expect("valid program");
        let err = s
            .add_constraints("this is not a constraint")
            .expect_err("parse error");
        assert_eq!(err.code, ErrorCode::BadProgram);
        assert_eq!(s.generation(), 0);
        let spec = s
            .resolve(&QuerySpec::PointsTo { name: "p".into() })
            .expect("p still resolvable");
        assert_eq!(set_names(&s.query(spec, None, None)), vec!["o"]);
    }

    #[test]
    fn minic_sessions_canonicalize_and_accept_edits() {
        let mut s = Session::open(
            "int g; void main() { int *p = &g; int *q = p; }",
            true,
            None,
        )
        .expect("valid MiniC");
        let spec = s
            .resolve(&QuerySpec::PointsTo {
                name: "main::q".into(),
            })
            .expect("main::q exists");
        assert_eq!(set_names(&s.query(spec, None, None)), vec!["g"]);
        // MiniC sessions accept *constraint-text* edits thanks to
        // canonicalization through the printer.
        s.add_constraints("main::q = &g\n")
            .expect("constraint edit on MiniC session");
        assert_eq!(s.generation(), 1);
    }

    #[test]
    fn resolve_reports_missing_names_and_sites() {
        let s = Session::open("p = &o\n", false, None).expect("valid program");
        let err = s
            .resolve(&QuerySpec::PointsTo {
                name: "ghost".into(),
            })
            .expect_err("no such node");
        assert_eq!(err.code, ErrorCode::NoNode);
        let err = s
            .resolve(&QuerySpec::CallTargets { site: 0 })
            .expect_err("no call sites");
        assert_eq!(err.code, ErrorCode::NoNode);
    }

    #[test]
    fn may_alias_and_deadline_paths() {
        let mut s = Session::open("p = &o\nq = p\nr = &u\n", false, None).expect("valid");
        let alias = s
            .resolve(&QuerySpec::MayAlias {
                a: "p".into(),
                b: "q".into(),
            })
            .expect("resolvable");
        match s.query(alias, None, None) {
            QueryAnswer::Alias {
                may_alias,
                resolved,
                ..
            } => {
                assert!(may_alias);
                assert!(resolved);
            }
            other => panic!("expected alias answer, got {other:?}"),
        }
        // An already-expired deadline still serves the (now memoized)
        // answer, and does not report a timeout for complete answers.
        let past = Instant::now() - std::time::Duration::from_millis(1);
        let spec = s
            .resolve(&QuerySpec::PointsTo { name: "q".into() })
            .expect("resolvable");
        let a = s.query(spec, None, Some(past));
        assert_eq!(set_names(&a), vec!["o"]);
        assert!(!a.timed_out(), "memoized answers beat expired deadlines");
        // A cold query under an expired deadline reports the timeout.
        let mut cold = Session::open("p = &o\nq = p\n", false, None).expect("valid");
        let spec = cold
            .resolve(&QuerySpec::PointsTo { name: "q".into() })
            .expect("resolvable");
        let a = cold.query(spec, None, Some(past));
        assert!(a.timed_out(), "cold query under expired deadline times out");
    }

    #[test]
    fn budget_slicing_resumes_to_completion() {
        // A long copy chain: tiny budgets must still converge because
        // drive() keeps resuming while the deadline allows.
        let mut text = String::from("v0 = &obj\n");
        for i in 1..200 {
            text.push_str(&format!("v{} = v{}\n", i, i - 1));
        }
        let mut s = Session::open(&text, false, None).expect("valid chain");
        let spec = s
            .resolve(&QuerySpec::PointsTo {
                name: "v199".into(),
            })
            .expect("resolvable");
        let deadline = Instant::now() + std::time::Duration::from_secs(30);
        let a = s.query(spec, None, Some(deadline));
        assert_eq!(set_names(&a), vec!["obj"]);
        assert!(!a.timed_out());
        // And an explicit budget is still honoured under slicing: a
        // 3-unit budget cannot resolve a 200-copy chain in one request.
        let mut cold = Session::open(&text, false, None).expect("valid chain");
        let spec = cold
            .resolve(&QuerySpec::PointsTo {
                name: "v199".into(),
            })
            .expect("resolvable");
        match cold.query(spec, Some(3), Some(deadline)) {
            QueryAnswer::Set { complete, .. } => assert!(!complete, "tiny budget stays partial"),
            other => panic!("expected set answer, got {other:?}"),
        }
    }

    #[test]
    fn edits_that_create_and_extend_cycles_serve_fresh_answers() {
        // A closed copy ring long enough (40 edges) to trip the default
        // collapse threshold (32) during the first query's cascade.
        let mut text = String::new();
        for i in 1..40 {
            text.push_str(&format!("a{} = a{}\n", i, i - 1));
        }
        text.push_str("a0 = a39\n");
        text.push_str("a0 = &o1\n");
        text.push_str("tail = a20\n");
        let mut s = Session::open(&text, false, None).expect("valid ring");
        let spec = |s: &Session, name: &str| {
            s.resolve(&QuerySpec::PointsTo { name: name.into() })
                .expect("resolvable")
        };
        assert_eq!(set_names(&s.query(spec(&s, "tail"), None, None)), ["o1"]);
        assert!(
            s.engine_stats().cycles_collapsed > 0,
            "the 40-edge ring must collapse under the default threshold"
        );

        // Edit 1: extend the existing (collapsed) ring with a new member
        // and a new object seed. The reload drops the merged state; the
        // new answers must include o2 everywhere on the ring.
        s.add_constraints("a39x = a39\na0 = a39x\na5 = &o2\n")
            .expect("valid edit");
        assert_eq!(s.generation(), 1);
        assert_eq!(
            set_names(&s.query(spec(&s, "tail"), None, None)),
            ["o1", "o2"],
            "no stale merged state after extending the ring"
        );
        assert_eq!(
            set_names(&s.query(spec(&s, "a39x"), None, None)),
            ["o1", "o2"],
            "the new member joins the cycle"
        );

        // Edit 2: create a brand-new cycle out of what was a plain chain.
        let mut chain = String::from("c0 = &o3\n");
        for i in 1..40 {
            chain.push_str(&format!("c{} = c{}\n", i, i - 1));
        }
        s.add_constraints(&chain).expect("valid chain edit");
        assert_eq!(s.generation(), 2);
        assert_eq!(set_names(&s.query(spec(&s, "c39"), None, None)), ["o3"]);
        s.add_constraints("c0 = c39\nc17 = &o4\n")
            .expect("cycle-closing edit");
        assert_eq!(s.generation(), 3);
        assert_eq!(
            set_names(&s.query(spec(&s, "c3"), None, None)),
            ["o3", "o4"],
            "closing the chain into a ring flows o4 everywhere"
        );
        // The old ring is untouched by the c-edits.
        assert_eq!(
            set_names(&s.query(spec(&s, "tail"), None, None)),
            ["o1", "o2"]
        );
    }

    #[test]
    fn parallel_queries_match_sequential_and_count_scheduler_work() {
        let mut text = String::from("v0 = &obj\n");
        for i in 1..120 {
            text.push_str(&format!("v{} = v{}\n", i, i - 1));
        }
        let mut seq = Session::open(&text, false, None).expect("valid chain");
        let mut par = Session::open(&text, false, None)
            .expect("valid chain")
            .with_parallel(4, SchedPolicy::Dfs, true);
        assert_eq!(par.workers(), 4);
        assert!(par.parallel_default());
        for name in ["v119", "v60", "v0"] {
            let spec = |s: &Session| {
                s.resolve(&QuerySpec::PointsTo { name: name.into() })
                    .expect("resolvable")
            };
            let a = seq.query(spec(&seq), None, None);
            let b = par.query(spec(&par), None, None); // inherits the default
            assert_eq!(set_names(&a), set_names(&b), "{name}");
        }
        // The per-request override forces the sequential path even on a
        // parallel-default session (and vice versa).
        let spec = par
            .resolve(&QuerySpec::PointsTo {
                name: "v119".into(),
            })
            .expect("resolvable");
        let off = par.query_opt(spec, None, None, Some(false));
        assert_eq!(set_names(&off), vec!["obj"]);
        // A budget pins the query to the sequential engine: partial
        // answers require the resumption guarantee.
        let limited = par.query_opt(spec, Some(3), None, Some(true));
        match limited {
            QueryAnswer::Set { complete, .. } => assert!(complete, "memoized by now"),
            other => panic!("expected set answer, got {other:?}"),
        }
    }

    #[test]
    fn edits_keep_disjoint_chains_warm() {
        let mut s = Session::open("p = &o\nq = p\nr = &u\n", false, None).expect("valid");
        let spec = |s: &Session, name: &str| {
            s.resolve(&QuerySpec::PointsTo { name: name.into() })
                .expect("resolvable")
        };
        assert_eq!(set_names(&s.query(spec(&s, "q"), None, None)), vec!["o"]);
        assert_eq!(set_names(&s.query(spec(&s, "r"), None, None)), vec!["u"]);

        // Edit touches only the r chain; the p/q chain stays warm.
        let edit = s.add_constraints("s = r\n").expect("valid edit");
        assert!(!edit.full, "compatible append-only edit");
        assert!(edit.retained > 0, "p/q chain survives");
        assert!(edit.invalidated > 0, "r chain is dirtied");
        assert_eq!(s.generation(), 1);
        match s.query(spec(&s, "q"), None, None) {
            QueryAnswer::Set { names, work, .. } => {
                assert_eq!(names, vec!["o"]);
                assert_eq!(work, 0, "untouched goal answers from the warm table");
            }
            other => panic!("expected set answer, got {other:?}"),
        }
        assert_eq!(set_names(&s.query(spec(&s, "s"), None, None)), vec!["u"]);
    }

    #[test]
    fn restore_after_edit_rebinds_surviving_entries() {
        // Warm a session, snapshot it, then edit: the snapshot's hash no
        // longer matches, but its untouched entries must still restore.
        let mut donor = Session::open("p = &o\nq = p\nr = &u\n", false, None).expect("valid");
        let spec = |s: &Session, name: &str| {
            s.resolve(&QuerySpec::PointsTo { name: name.into() })
                .expect("resolvable")
        };
        donor.query(spec(&donor, "q"), None, None);
        donor.query(spec(&donor, "r"), None, None);
        let snapshot = donor.export_snapshot();
        assert!(!snapshot.entries.is_empty());

        let mut s = Session::open("p = &o\nq = p\nr = &u\n", false, None).expect("valid");
        s.add_constraints("r = &u2\n").expect("valid edit");
        let restore = s.restore_snapshot(&snapshot).expect("rebinds");
        assert!(restore.rebound, "hash mismatch took the rebind path");
        assert!(restore.installed > 0, "the p/q chain survives the edit");
        assert!(restore.dropped > 0, "the edited r chain is dropped");
        // The restored entries serve; the dirtied one re-derives fresh.
        match s.query(spec(&s, "q"), None, None) {
            QueryAnswer::Set { names, work, .. } => {
                assert_eq!(names, vec!["o"]);
                assert_eq!(work, 0, "restored entry answers at zero cost");
            }
            other => panic!("expected set answer, got {other:?}"),
        }
        assert_eq!(
            set_names(&s.query(spec(&s, "r"), None, None)),
            vec!["u", "u2"],
            "dirtied entry was not restored stale"
        );

        // A snapshot of an unrelated program is still refused.
        let mut foreign = Session::open("z = &w\n", false, None).expect("valid");
        let err = foreign.restore_snapshot(&snapshot).expect_err("refused");
        assert_eq!(err.code, ErrorCode::Snapshot);
    }

    #[test]
    fn parallel_fallbacks_are_reported() {
        let mut text = String::from("v0 = &obj\n");
        for i in 1..80 {
            text.push_str(&format!("v{} = v{}\n", i, i - 1));
        }
        let mut s = Session::open(&text, false, None)
            .expect("valid chain")
            .with_parallel(4, SchedPolicy::Dfs, false);
        let spec = s
            .resolve(&QuerySpec::PointsTo { name: "v79".into() })
            .expect("resolvable");

        // No parallelism requested: no sched marker at all.
        s.query_opt(spec, None, None, None);
        assert_eq!(s.last_sched(), None);

        // Budgeted parallel request: pinned to the sequential engine.
        let mut cold = Session::open(&text, false, None)
            .expect("valid chain")
            .with_parallel(4, SchedPolicy::Dfs, false);
        let cspec = cold
            .resolve(&QuerySpec::PointsTo { name: "v79".into() })
            .expect("resolvable");
        cold.query_opt(cspec, Some(10_000), None, Some(true));
        assert_eq!(cold.last_sched(), Some("sequential-fallback"));

        // Unbudgeted cold parallel request: the scheduler runs.
        let mut fresh = Session::open(&text, false, None)
            .expect("valid chain")
            .with_parallel(4, SchedPolicy::Dfs, false);
        let fspec = fresh
            .resolve(&QuerySpec::PointsTo { name: "v79".into() })
            .expect("resolvable");
        fresh.query_opt(fspec, None, None, Some(true));
        assert_eq!(fresh.last_sched(), Some("parallel"));
        // And the repeat is a cache hit, reported as a fallback.
        fresh.query_opt(fspec, None, None, Some(true));
        assert_eq!(fresh.last_sched(), Some("sequential-fallback"));
    }

    #[test]
    fn parallel_batch_matches_warm_engine() {
        let mut text = String::new();
        for i in 0..20 {
            text.push_str(&format!("p{i} = &o{i}\n"));
            text.push_str(&format!("q{i} = p{i}\n"));
        }
        let mut s = Session::open(&text, false, None).expect("valid");
        let specs: Vec<ResolvedSpec> = (0..20)
            .map(|i| {
                s.resolve(&QuerySpec::PointsTo {
                    name: format!("q{i}"),
                })
                .expect("resolvable")
            })
            .collect();
        let warm: Vec<QueryAnswer> = specs.iter().map(|&x| s.query(x, None, None)).collect();
        let pool = ThreadPool::new(4);
        let fanned = s.query_batch_parallel(&specs, None, None, &pool);
        assert_eq!(warm.len(), fanned.len());
        for (w, f) in warm.iter().zip(&fanned) {
            assert_eq!(set_names(w), set_names(f), "parallel answers identical");
        }
    }
}
