//! The TCP server: accept loop, bounded line reader, request dispatch.
//!
//! Threading model: one OS thread per connection (bounded by
//! [`ServeConfig::max_connections`]), plus a shared [`ThreadPool`] that
//! parallel batches fan out over. Sessions live in a server-wide map;
//! each session is wrapped in its own mutex so queries on different
//! sessions proceed concurrently while queries on one session serialize
//! against its single warm engine.
//!
//! Robustness:
//!
//! * per-request deduction budgets and wall-clock timeouts (budget
//!   slicing, see [`crate::session`]);
//! * bounded line reads — an oversized request is rejected with an
//!   `oversized` error and the connection resynchronizes at the next
//!   newline without ever buffering more than `max_line_bytes`;
//! * malformed JSON and truncated frames get error responses, not
//!   connection drops (truncated frames close after responding, since
//!   EOF already ended the stream);
//! * a bounded in-flight gate sheds load with `busy` errors instead of
//!   queueing unboundedly;
//! * clean shutdown on a `shutdown` request or [`ServerHandle::shutdown`]
//!   — the accept loop is woken by a self-connection, connection threads
//!   notice within one read-timeout tick, and all threads are joined.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ddpa_demand::{EngineStats, ThreadPool};
use ddpa_obs::{Counter, JsonValue, Obs};

use crate::proto::{error_response, ok_response, parse_request, ErrorCode, ProtoError, Request};
use crate::session::{QueryAnswer, ResolvedSpec, Session};

/// How often blocked reads wake up to check the shutdown flag.
const READ_TICK: Duration = Duration::from_millis(100);

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads in the shared pool for parallel batches.
    pub threads: usize,
    /// Default per-query deduction budget (`None` = unlimited).
    pub default_budget: Option<u64>,
    /// Default per-request wall-clock timeout in milliseconds (0 = none);
    /// requests may override with `"timeout_ms"`.
    pub default_timeout_ms: u64,
    /// Longest accepted request line in bytes.
    pub max_line_bytes: usize,
    /// Requests allowed to execute concurrently before `busy` shedding.
    pub max_inflight: usize,
    /// Concurrent connections before new ones are rejected with `busy`.
    pub max_connections: usize,
    /// Most queries accepted in one batch.
    pub max_batch: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(8);
        ServeConfig {
            threads,
            default_budget: None,
            default_timeout_ms: 10_000,
            max_line_bytes: 4 << 20,
            max_inflight: 64,
            max_connections: 64,
            max_batch: 4096,
        }
    }
}

/// Pre-resolved counter handles for the hot request path.
struct ServerCounters {
    requests: Counter,
    errors: Counter,
    timeouts: Counter,
    busy: Counter,
    connections: Counter,
    sessions_opened: Counter,
    sessions_closed: Counter,
    invalidations: Counter,
    batch_queries: Counter,
}

impl ServerCounters {
    fn new(obs: &Obs) -> Self {
        ServerCounters {
            requests: obs.counter("server.requests"),
            errors: obs.counter("server.errors"),
            timeouts: obs.counter("server.timeouts"),
            busy: obs.counter("server.busy_rejections"),
            connections: obs.counter("server.connections"),
            sessions_opened: obs.counter("server.sessions_opened"),
            sessions_closed: obs.counter("server.sessions_closed"),
            invalidations: obs.counter("server.invalidations"),
            batch_queries: obs.counter("server.batch_queries"),
        }
    }
}

struct ServerState {
    config: ServeConfig,
    obs: Obs,
    counters: ServerCounters,
    sessions: Mutex<HashMap<String, Arc<Mutex<Session>>>>,
    pool: ThreadPool,
    shutdown: AtomicBool,
    inflight: AtomicUsize,
    open_connections: AtomicUsize,
    addr: SocketAddr,
}

impl ServerState {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop: a throwaway connection unblocks
        // `TcpListener::accept`.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A cloneable handle for stopping a running server from another thread
/// (a signal-watcher, a test, the CLI's stdin-EOF watcher).
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Requests a graceful shutdown; idempotent.
    pub fn shutdown(&self) {
        self.state.trigger_shutdown();
    }
}

/// A bound, not-yet-running demand-query server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    pub fn bind(
        addr: impl ToSocketAddrs,
        config: ServeConfig,
        obs: Obs,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let counters = ServerCounters::new(&obs);
        let pool = ThreadPool::new(config.threads.max(1));
        let state = Arc::new(ServerState {
            config,
            counters,
            obs,
            sessions: Mutex::new(HashMap::new()),
            pool,
            shutdown: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            open_connections: AtomicUsize::new(0),
            addr: local,
        });
        Ok(Server { listener, state })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// A handle that can stop the server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Runs the accept loop until shutdown; joins every connection thread
    /// before returning.
    pub fn run(self) -> std::io::Result<()> {
        let mut threads: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if self.state.shutting_down() {
                break;
            }
            let (stream, _) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    if self.state.shutting_down() {
                        break;
                    }
                    return Err(e);
                }
            };
            if self.state.shutting_down() {
                break;
            }
            // Line-at-a-time protocol: disable Nagle so single-query
            // round-trips are not throttled by delayed ACKs.
            let _ = stream.set_nodelay(true);
            threads.retain(|t| !t.is_finished());
            let open = self.state.open_connections.load(Ordering::SeqCst);
            if open >= self.state.config.max_connections {
                self.state.counters.busy.inc();
                let mut stream = stream;
                let line = error_response(ErrorCode::Busy, "connection limit reached").to_string();
                let _ = stream.write_all(line.as_bytes());
                let _ = stream.write_all(b"\n");
                continue;
            }
            self.state.open_connections.fetch_add(1, Ordering::SeqCst);
            self.state.counters.connections.inc();
            let state = Arc::clone(&self.state);
            match std::thread::Builder::new()
                .name("ddpa-serve-conn".to_string())
                .spawn(move || {
                    let _ = handle_connection(&state, stream);
                    state.open_connections.fetch_sub(1, Ordering::SeqCst);
                }) {
                Ok(t) => threads.push(t),
                Err(_) => {
                    self.state.open_connections.fetch_sub(1, Ordering::SeqCst);
                }
            }
        }
        for t in threads {
            let _ = t.join();
        }
        Ok(())
    }
}

/// What the bounded reader produced for one frame.
enum Frame {
    /// A complete newline-terminated line (without the newline).
    Line(Vec<u8>),
    /// The line exceeded `max_line_bytes`; nothing has been buffered
    /// beyond the cap and the stream still needs resynchronizing.
    Oversized,
    /// Bytes followed by EOF with no newline.
    Truncated,
    /// Clean EOF at a frame boundary.
    Eof,
    /// The server is shutting down.
    Shutdown,
}

/// Reads one newline-terminated frame, never buffering more than
/// `max + 1` bytes, waking every [`READ_TICK`] to honour shutdown.
fn read_frame(
    reader: &mut BufReader<TcpStream>,
    max: usize,
    state: &ServerState,
) -> std::io::Result<Frame> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        if state.shutting_down() {
            return Ok(Frame::Shutdown);
        }
        let room = (max + 1).saturating_sub(buf.len());
        if room == 0 {
            return Ok(Frame::Oversized);
        }
        match reader
            .by_ref()
            .take(room as u64)
            .read_until(b'\n', &mut buf)
        {
            Ok(0) => {
                return Ok(if buf.is_empty() {
                    Frame::Eof
                } else {
                    Frame::Truncated
                });
            }
            Ok(_) => {
                if buf.last() == Some(&b'\n') {
                    buf.pop();
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    if buf.len() > max {
                        return Ok(Frame::Oversized);
                    }
                    return Ok(Frame::Line(buf));
                }
                // No newline yet: either the cap is hit (next iteration
                // reports Oversized) or the socket ran dry mid-line and
                // the next read continues the frame.
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Discards bytes until the next newline so an oversized frame does not
/// poison the frames behind it.
fn resync_to_newline(
    reader: &mut BufReader<TcpStream>,
    state: &ServerState,
) -> std::io::Result<bool> {
    loop {
        if state.shutting_down() {
            return Ok(false);
        }
        // Inspect buffered bytes so nothing past the newline is
        // discarded; fill_buf + consume gives exact control.
        let step = match reader.fill_buf() {
            Ok([]) => return Ok(false), // EOF while resyncing
            Ok(bytes) => match bytes.iter().position(|&b| b == b'\n') {
                Some(pos) => (pos + 1, true),
                None => (bytes.len(), false),
            },
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                continue;
            }
            Err(e) => return Err(e),
        };
        let (n, found_newline) = step;
        reader.consume(n);
        if found_newline {
            return Ok(true);
        }
    }
}

/// Whether the connection should stay open after a response.
enum After {
    Continue,
    Close,
}

fn handle_connection(state: &ServerState, stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TICK))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        match read_frame(&mut reader, state.config.max_line_bytes, state)? {
            Frame::Line(bytes) => {
                let (response, after) = match String::from_utf8(bytes) {
                    Ok(line) if line.trim().is_empty() => continue,
                    Ok(line) => handle_line(state, &line),
                    Err(_) => (
                        fail(state, ErrorCode::BadJson, "request line is not UTF-8"),
                        After::Continue,
                    ),
                };
                write_line(&mut writer, &response)?;
                if matches!(after, After::Close) {
                    return Ok(());
                }
            }
            Frame::Oversized => {
                state.counters.requests.inc();
                let msg = format!(
                    "request line exceeds max_line_bytes ({})",
                    state.config.max_line_bytes
                );
                write_line(&mut writer, &fail(state, ErrorCode::Oversized, &msg))?;
                if !resync_to_newline(&mut reader, state)? {
                    return Ok(());
                }
            }
            Frame::Truncated => {
                state.counters.requests.inc();
                let resp = fail(
                    state,
                    ErrorCode::BadRequest,
                    "truncated frame: stream ended before newline",
                );
                // Best-effort: the peer half-closed its write side but
                // may still be reading.
                let _ = write_line(&mut writer, &resp);
                return Ok(());
            }
            Frame::Eof => return Ok(()),
            Frame::Shutdown => {
                let _ = write_line(
                    &mut writer,
                    &error_response(ErrorCode::ShuttingDown, "server is shutting down").to_string(),
                );
                return Ok(());
            }
        }
    }
}

fn write_line(writer: &mut TcpStream, line: &str) -> std::io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Records an error and renders its response line.
fn fail(state: &ServerState, code: ErrorCode, message: &str) -> String {
    state.counters.errors.inc();
    error_response(code, message).to_string()
}

/// Handles one request line; returns the response line and whether the
/// connection should close afterwards.
fn handle_line(state: &ServerState, line: &str) -> (String, After) {
    state.counters.requests.inc();
    let _span = state.obs.span("server.request");

    if state.shutting_down() {
        return (
            fail(state, ErrorCode::ShuttingDown, "server is shutting down"),
            After::Close,
        );
    }

    let value = match ddpa_obs::parse_json(line) {
        Ok(v) => v,
        Err(e) => return (fail(state, ErrorCode::BadJson, &e), After::Continue),
    };
    let request = match parse_request(&value) {
        Ok(r) => r,
        Err(e) => {
            state.counters.errors.inc();
            return (e.to_line(), After::Continue);
        }
    };

    // Backpressure: bound the number of requests executing at once.
    let slot = state.inflight.fetch_add(1, Ordering::SeqCst);
    struct InflightGuard<'a>(&'a AtomicUsize);
    impl Drop for InflightGuard<'_> {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::SeqCst);
        }
    }
    let _guard = InflightGuard(&state.inflight);
    if slot >= state.config.max_inflight {
        state.counters.busy.inc();
        return (
            fail(
                state,
                ErrorCode::Busy,
                "server is saturated; retry after in-flight requests drain",
            ),
            After::Continue,
        );
    }

    match dispatch(state, request) {
        Ok((response, after)) => (response.to_string(), after),
        Err(e) => {
            state.counters.errors.inc();
            (e.to_line(), After::Continue)
        }
    }
}

// Lock helpers. Both recover from poisoning (`into_inner`) instead of
// panicking: a request that dies while holding a lock must wedge only
// itself, not every later request on the same mutex. Recovery is sound
// here — the session map only ever inserts/removes whole entries, and a
// session interrupted mid-query holds partial memo state the engine is
// designed to resume from (or rebuild after the next reload).

fn lock_sessions(
    state: &ServerState,
) -> std::sync::MutexGuard<'_, HashMap<String, Arc<Mutex<Session>>>> {
    state
        .sessions
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn get_session(state: &ServerState, name: &str) -> Result<Arc<Mutex<Session>>, ProtoError> {
    lock_sessions(state)
        .get(name)
        .cloned()
        .ok_or_else(|| ProtoError::new(ErrorCode::NoSession, format!("no session {name:?}")))
}

fn lock_session(session: &Arc<Mutex<Session>>) -> std::sync::MutexGuard<'_, Session> {
    session
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Computes the request deadline from the explicit or default timeout.
fn deadline_for(state: &ServerState, timeout_ms: Option<u64>) -> Option<Instant> {
    let ms = timeout_ms.unwrap_or(state.config.default_timeout_ms);
    if ms == 0 {
        None
    } else {
        Some(Instant::now() + Duration::from_millis(ms))
    }
}

/// Mirrors a request's per-session engine deltas into the server
/// registry, so the `--metrics-out` export carries them: the cache-hit
/// delta goes to `server.cache_hits.<name>`, shared-memo traffic
/// aggregates across sessions under `demand.share.*`, and timeouts bump
/// `server.timeouts`. `before`/`after` are [`Session::engine_stats`]
/// snapshots bracketing the query call(s); batch workers publish into
/// the session engine's registry, so their traffic is included.
fn record_query_obs(
    state: &ServerState,
    session_name: &str,
    before: &EngineStats,
    after: &EngineStats,
    timeouts: u64,
) {
    let hits_delta = after.cache_hits.saturating_sub(before.cache_hits);
    if hits_delta > 0 {
        state
            .obs
            .counter(&format!("server.cache_hits.{session_name}"))
            .add(hits_delta);
    }
    let share = [
        ("demand.share.hits", before.share_hits, after.share_hits),
        (
            "demand.share.misses",
            before.share_misses,
            after.share_misses,
        ),
        (
            "demand.share.publishes",
            before.share_publishes,
            after.share_publishes,
        ),
        (
            "demand.share.evictions",
            before.share_evictions,
            after.share_evictions,
        ),
    ];
    for (name, b, a) in share {
        let delta = a.saturating_sub(b);
        if delta > 0 {
            state.obs.counter(name).add(delta);
        }
    }
    if timeouts > 0 {
        state.counters.timeouts.add(timeouts);
    }
}

fn render_answer(answer: &QueryAnswer, generation: u64) -> JsonValue {
    let names_json = |names: &[String]| {
        JsonValue::Array(names.iter().map(|n| JsonValue::str(n.as_str())).collect())
    };
    let fields = match answer {
        QueryAnswer::Set {
            names,
            complete,
            work,
            timed_out,
        } => vec![
            ("pts".to_string(), names_json(names)),
            ("complete".to_string(), JsonValue::Bool(*complete)),
            ("work".to_string(), JsonValue::U64(*work)),
            ("timed_out".to_string(), JsonValue::Bool(*timed_out)),
        ],
        QueryAnswer::Alias {
            may_alias,
            resolved,
            work,
            timed_out,
        } => vec![
            ("may_alias".to_string(), JsonValue::Bool(*may_alias)),
            ("resolved".to_string(), JsonValue::Bool(*resolved)),
            ("work".to_string(), JsonValue::U64(*work)),
            ("timed_out".to_string(), JsonValue::Bool(*timed_out)),
        ],
        QueryAnswer::Targets {
            names,
            resolved,
            work,
            timed_out,
        } => vec![
            ("targets".to_string(), names_json(names)),
            ("resolved".to_string(), JsonValue::Bool(*resolved)),
            ("work".to_string(), JsonValue::U64(*work)),
            ("timed_out".to_string(), JsonValue::Bool(*timed_out)),
        ],
    };
    let mut fields = fields;
    fields.push(("generation".to_string(), JsonValue::U64(generation)));
    JsonValue::Object(fields)
}

fn dispatch(state: &ServerState, request: Request) -> Result<(JsonValue, After), ProtoError> {
    match request {
        Request::Ping => Ok((ok_response("ping", vec![]), After::Continue)),
        Request::Shutdown => {
            state.trigger_shutdown();
            Ok((ok_response("shutdown", vec![]), After::Close))
        }
        Request::Stats => Ok((stats_response(state), After::Continue)),
        Request::Open {
            session,
            program,
            minic,
            budget,
        } => {
            let _span = state.obs.span("server.request.open");
            let new = Session::open(&program, minic, budget)?;
            let (nodes, constraints) = (new.program().num_nodes(), new.program().num_constraints());
            let mut sessions = lock_sessions(state);
            if sessions.contains_key(&session) {
                return Err(ProtoError::new(
                    ErrorCode::SessionExists,
                    format!("session {session:?} already exists"),
                ));
            }
            sessions.insert(session.clone(), Arc::new(Mutex::new(new)));
            drop(sessions);
            state.counters.sessions_opened.inc();
            Ok((
                ok_response(
                    "open",
                    vec![
                        ("session", JsonValue::str(session.as_str())),
                        ("nodes", JsonValue::U64(nodes as u64)),
                        ("constraints", JsonValue::U64(constraints as u64)),
                        ("generation", JsonValue::U64(0)),
                    ],
                ),
                After::Continue,
            ))
        }
        Request::Close { session } => {
            let removed = lock_sessions(state).remove(&session);
            if removed.is_none() {
                return Err(ProtoError::new(
                    ErrorCode::NoSession,
                    format!("no session {session:?}"),
                ));
            }
            state.counters.sessions_closed.inc();
            Ok((
                ok_response("close", vec![("session", JsonValue::str(session.as_str()))]),
                After::Continue,
            ))
        }
        Request::AddConstraints { session, program } => {
            let _span = state.obs.span("server.request.add-constraints");
            let handle = get_session(state, &session)?;
            let mut s = lock_session(&handle);
            s.add_constraints(&program)?;
            state.counters.invalidations.inc();
            let response = ok_response(
                "add-constraints",
                vec![
                    ("session", JsonValue::str(session.as_str())),
                    ("nodes", JsonValue::U64(s.program().num_nodes() as u64)),
                    (
                        "constraints",
                        JsonValue::U64(s.program().num_constraints() as u64),
                    ),
                    ("generation", JsonValue::U64(s.generation())),
                ],
            );
            Ok((response, After::Continue))
        }
        Request::Query {
            session,
            spec,
            budget,
            timeout_ms,
        } => {
            let _span = state.obs.span("server.request.query");
            let handle = get_session(state, &session)?;
            let deadline = deadline_for(state, timeout_ms);
            let mut s = lock_session(&handle);
            let resolved = s.resolve(&spec)?;
            let before = s.engine_stats();
            let answer = s.query(resolved, budget, deadline);
            let after = s.engine_stats();
            let generation = s.generation();
            drop(s);
            record_query_obs(state, &session, &before, &after, answer.timed_out() as u64);
            Ok((
                ok_response(
                    "query",
                    vec![
                        ("session", JsonValue::str(session.as_str())),
                        ("result", render_answer(&answer, generation)),
                        ("generation", JsonValue::U64(generation)),
                    ],
                ),
                After::Continue,
            ))
        }
        Request::Batch {
            session,
            specs,
            parallel,
            budget,
            timeout_ms,
        } => {
            let _span = state.obs.span("server.request.batch");
            if specs.len() > state.config.max_batch {
                return Err(ProtoError::new(
                    ErrorCode::BadRequest,
                    format!(
                        "batch of {} queries exceeds max_batch ({})",
                        specs.len(),
                        state.config.max_batch
                    ),
                ));
            }
            let handle = get_session(state, &session)?;
            let deadline = deadline_for(state, timeout_ms);
            state.counters.batch_queries.add(specs.len() as u64);

            // Resolve all names up front so per-spec failures become
            // inline error entries instead of poisoning the batch.
            let mut s = lock_session(&handle);
            let resolved: Vec<Result<ResolvedSpec, ProtoError>> =
                specs.iter().map(|spec| s.resolve(spec)).collect();
            let generation = s.generation();

            let mut timeouts = 0u64;
            let before = s.engine_stats();
            let (results, after): (Vec<JsonValue>, EngineStats) = if parallel {
                let ok_specs: Vec<ResolvedSpec> = resolved
                    .iter()
                    .filter_map(|r| r.as_ref().ok().copied())
                    .collect();
                let answers = s.query_batch_parallel(&ok_specs, budget, deadline, &state.pool);
                // Batch workers publish into the session engine's
                // registry, so this snapshot includes their traffic.
                let after = s.engine_stats();
                drop(s);
                let mut answers = answers.into_iter();
                let rendered = resolved
                    .iter()
                    .map(|r| match r {
                        Ok(_) => {
                            let a = answers.next().expect("one answer per resolved spec");
                            timeouts += a.timed_out() as u64;
                            render_answer(&a, generation)
                        }
                        Err(e) => error_response(e.code, &e.message),
                    })
                    .collect();
                (rendered, after)
            } else {
                let rendered = resolved
                    .iter()
                    .map(|r| match r {
                        Ok(spec) => {
                            let a = s.query(*spec, budget, deadline);
                            timeouts += a.timed_out() as u64;
                            render_answer(&a, generation)
                        }
                        Err(e) => error_response(e.code, &e.message),
                    })
                    .collect();
                let after = s.engine_stats();
                drop(s);
                (rendered, after)
            };
            record_query_obs(state, &session, &before, &after, timeouts);
            Ok((
                ok_response(
                    "batch",
                    vec![
                        ("session", JsonValue::str(session.as_str())),
                        ("results", JsonValue::Array(results)),
                        ("generation", JsonValue::U64(generation)),
                    ],
                ),
                After::Continue,
            ))
        }
    }
}

fn stats_response(state: &ServerState) -> JsonValue {
    let sessions = lock_sessions(state);
    let mut per_session: Vec<(String, JsonValue)> = sessions
        .iter()
        .map(|(name, handle)| {
            let s = lock_session(handle);
            let stats = s.engine_stats();
            (
                name.clone(),
                JsonValue::Object(vec![
                    (
                        "nodes".to_string(),
                        JsonValue::U64(s.program().num_nodes() as u64),
                    ),
                    (
                        "constraints".to_string(),
                        JsonValue::U64(s.program().num_constraints() as u64),
                    ),
                    ("generation".to_string(), JsonValue::U64(s.generation())),
                    (
                        "tabled_goals".to_string(),
                        JsonValue::U64(s.tabled_goals() as u64),
                    ),
                    ("queries".to_string(), JsonValue::U64(stats.queries)),
                    ("cache_hits".to_string(), JsonValue::U64(stats.cache_hits)),
                    ("share_hits".to_string(), JsonValue::U64(stats.share_hits)),
                    (
                        "share_publishes".to_string(),
                        JsonValue::U64(stats.share_publishes),
                    ),
                    ("work".to_string(), JsonValue::U64(stats.work)),
                ]),
            )
        })
        .collect();
    per_session.sort_by(|a, b| a.0.cmp(&b.0));
    drop(sessions);
    let c = &state.counters;
    let counters = JsonValue::Object(vec![
        ("requests".to_string(), JsonValue::U64(c.requests.get())),
        ("errors".to_string(), JsonValue::U64(c.errors.get())),
        ("timeouts".to_string(), JsonValue::U64(c.timeouts.get())),
        ("busy_rejections".to_string(), JsonValue::U64(c.busy.get())),
        (
            "connections".to_string(),
            JsonValue::U64(c.connections.get()),
        ),
        (
            "sessions_opened".to_string(),
            JsonValue::U64(c.sessions_opened.get()),
        ),
        (
            "sessions_closed".to_string(),
            JsonValue::U64(c.sessions_closed.get()),
        ),
        (
            "invalidations".to_string(),
            JsonValue::U64(c.invalidations.get()),
        ),
        (
            "batch_queries".to_string(),
            JsonValue::U64(c.batch_queries.get()),
        ),
    ]);
    ok_response(
        "stats",
        vec![
            ("sessions", JsonValue::Object(per_session)),
            ("counters", counters),
            ("threads", JsonValue::U64(state.config.threads as u64)),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::QuerySpec;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn pts_names(session: &Arc<Mutex<Session>>, name: &str) -> Vec<String> {
        let mut s = lock_session(session);
        let spec = s
            .resolve(&QuerySpec::PointsTo { name: name.into() })
            .expect("resolvable");
        match s.query(spec, None, None) {
            QueryAnswer::Set { names, .. } => names,
            other => panic!("expected set answer, got {other:?}"),
        }
    }

    #[test]
    fn poisoned_session_recovers_and_spares_other_sessions() {
        let wedged = Arc::new(Mutex::new(
            Session::open("p = &o\nq = p\n", false, None).expect("valid"),
        ));
        let healthy = Arc::new(Mutex::new(
            Session::open("r = &u\n", false, None).expect("valid"),
        ));

        // A request handler dies while holding the session lock.
        let grabbed = Arc::clone(&wedged);
        let died = catch_unwind(AssertUnwindSafe(move || {
            let _guard = grabbed.lock().expect("not yet poisoned");
            panic!("handler died mid-request");
        }));
        assert!(died.is_err());
        assert!(wedged.is_poisoned(), "the panic poisoned the mutex");

        // Later requests on the same session recover instead of dying on
        // an `expect`, and the engine still answers correctly.
        assert_eq!(pts_names(&wedged, "q"), vec!["o"]);
        // Unrelated sessions never notice.
        assert_eq!(pts_names(&healthy, "r"), vec!["u"]);
    }
}
