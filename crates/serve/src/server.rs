//! The TCP server: accept loop, bounded line reader, request dispatch.
//!
//! Threading model: one OS thread per connection (bounded by
//! [`ServeConfig::max_connections`]), plus a shared [`ThreadPool`] that
//! parallel batches fan out over. Sessions live in a server-wide map;
//! each session is wrapped in its own mutex so queries on different
//! sessions proceed concurrently while queries on one session serialize
//! against its single warm engine.
//!
//! Robustness:
//!
//! * per-request deduction budgets and wall-clock timeouts (budget
//!   slicing, see [`crate::session`]);
//! * bounded line reads — an oversized request is rejected with an
//!   `oversized` error and the connection resynchronizes at the next
//!   newline without ever buffering more than `max_line_bytes`;
//! * malformed JSON and truncated frames get error responses, not
//!   connection drops (truncated frames close after responding, since
//!   EOF already ended the stream);
//! * a bounded in-flight gate sheds load with `busy` errors instead of
//!   queueing unboundedly;
//! * clean shutdown on a `shutdown` request or [`ServerHandle::shutdown`]
//!   — the accept loop is woken by a self-connection, connection threads
//!   notice within one read-timeout tick, and all threads are joined.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use ddpa_demand::{EngineStats, SchedPolicy, ThreadPool, TraceReport};
use ddpa_obs::{Counter, Histogram, JsonValue, JsonlSink, Obs};

use crate::proto::{error_response, ok_response, parse_request, ErrorCode, ProtoError, Request};
use crate::session::{QueryAnswer, ResolvedSpec, Session};

/// How often blocked reads wake up to check the shutdown flag.
const READ_TICK: Duration = Duration::from_millis(100);

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads in the shared pool for parallel batches.
    pub threads: usize,
    /// Frame-scheduler width for intra-query parallelism (`parallel_query`
    /// requests); 1 disables the scheduler.
    pub workers: usize,
    /// Scheduling policy (DFS/BFS) for parallel queries.
    pub sched_policy: SchedPolicy,
    /// Default per-query deduction budget (`None` = unlimited).
    pub default_budget: Option<u64>,
    /// Default per-request wall-clock timeout in milliseconds (0 = none);
    /// requests may override with `"timeout_ms"`.
    pub default_timeout_ms: u64,
    /// Longest accepted request line in bytes.
    pub max_line_bytes: usize,
    /// Requests allowed to execute concurrently before `busy` shedding.
    pub max_inflight: usize,
    /// Concurrent connections before new ones are rejected with `busy`.
    pub max_connections: usize,
    /// Most queries accepted in one batch.
    pub max_batch: usize,
    /// Structured access log: one `{"kind":"access",...}` JSONL line per
    /// dispatched request, appended to this path (`None` = no log).
    /// Requests at or above [`ServeConfig::slow_ms`] additionally get a
    /// `{"kind":"slow",...}` line carrying the full trace.
    pub access_log: Option<PathBuf>,
    /// Slow-request threshold in milliseconds: requests at or above it
    /// are flagged `"slow": true` in the access log and logged with
    /// their full trace.
    pub slow_ms: u64,
    /// How many of the slowest query/batch requests the in-memory ring
    /// retains for the `slow` op.
    pub slow_keep: usize,
    /// Directory for session snapshots: the default target of the
    /// `snapshot` op, the source scanned by restore-on-open, and the
    /// output of the periodic snapshotter (`None` = snapshotting has no
    /// default location; explicit `snapshot` paths still work).
    pub snapshot_dir: Option<PathBuf>,
    /// Period of the background snapshotter thread in milliseconds
    /// (0 = disabled). Requires `snapshot_dir`.
    pub snapshot_every_ms: u64,
    /// Warm-start newly opened sessions from
    /// `<snapshot_dir>/<session>.snap` when that file exists and matches
    /// the program. Mismatches and corrupt files are counted
    /// (`snap.reject`) and the open proceeds cold — warm-starting is
    /// best-effort by design.
    pub restore_on_open: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(8);
        ServeConfig {
            threads,
            workers: 1,
            sched_policy: SchedPolicy::default(),
            default_budget: None,
            default_timeout_ms: 10_000,
            max_line_bytes: 4 << 20,
            max_inflight: 64,
            max_connections: 64,
            max_batch: 4096,
            access_log: None,
            slow_ms: 100,
            slow_keep: 32,
            snapshot_dir: None,
            snapshot_every_ms: 0,
            restore_on_open: false,
        }
    }
}

/// Pre-resolved counter handles for the hot request path.
struct ServerCounters {
    requests: Counter,
    errors: Counter,
    timeouts: Counter,
    busy: Counter,
    connections: Counter,
    sessions_opened: Counter,
    sessions_closed: Counter,
    invalidations: Counter,
    batch_queries: Counter,
    /// Snapshot files written (`snapshot` op + periodic snapshotter).
    snap_writes: Counter,
    /// Snapshots successfully restored (`restore` op + restore-on-open).
    snap_loads: Counter,
    /// Snapshot loads refused: corrupt file, version mismatch, program
    /// hash mismatch, or unreadable path.
    snap_rejects: Counter,
    /// Total snapshot bytes written.
    snap_bytes: Counter,
    /// Background snapshot writes discarded because an edit raced the
    /// export (the session generation moved before the file was written).
    snap_stale_discards: Counter,
    /// Goals invalidated by `add-constraints` edits (transitively dirty).
    dirty_goals: Counter,
    /// Goals kept warm across `add-constraints` edits.
    dirty_retained: Counter,
    /// Dependency edges traversed by edit-time dirty propagation.
    dirty_edges: Counter,
    /// Parallelism-requesting queries the sequential engine served
    /// (budgeted, traced, deadline-expired, single-worker, or cache hit).
    sched_fallbacks: Counter,
}

impl ServerCounters {
    fn new(obs: &Obs) -> Self {
        ServerCounters {
            requests: obs.counter("server.requests"),
            errors: obs.counter("server.errors"),
            timeouts: obs.counter("server.timeouts"),
            busy: obs.counter("server.busy_rejections"),
            connections: obs.counter("server.connections"),
            sessions_opened: obs.counter("server.sessions_opened"),
            sessions_closed: obs.counter("server.sessions_closed"),
            invalidations: obs.counter("server.invalidations"),
            batch_queries: obs.counter("server.batch_queries"),
            snap_writes: obs.counter("snap.write"),
            snap_loads: obs.counter("snap.load"),
            snap_rejects: obs.counter("snap.reject"),
            snap_bytes: obs.counter("snap.bytes"),
            snap_stale_discards: obs.counter("snap.stale_discards"),
            dirty_goals: obs.counter("demand.dirty.goals"),
            dirty_retained: obs.counter("demand.dirty.retained"),
            dirty_edges: obs.counter("demand.dirty.edges"),
            sched_fallbacks: obs.counter("server.sched.fallbacks"),
        }
    }
}

/// Pre-resolved latency histograms (microseconds) for the request path.
/// Registered by name, so `--metrics-out` exports them as `hist` lines.
struct ServerHists {
    /// Every dispatched request, wall time through `dispatch`.
    request_us: Histogram,
    /// `query` requests only.
    query_us: Histogram,
    /// `batch` requests only (whole batch, not per element).
    batch_us: Histogram,
}

impl ServerHists {
    fn new(obs: &Obs) -> Self {
        ServerHists {
            request_us: obs.histogram("server.latency.request_us"),
            query_us: obs.histogram("server.latency.query_us"),
            batch_us: obs.histogram("server.latency.batch_us"),
        }
    }
}

/// One retained slow-ring entry: the rendered JSON plus its sort key.
struct SlowEntry {
    latency_us: u64,
    entry: JsonValue,
}

struct ServerState {
    config: ServeConfig,
    obs: Obs,
    counters: ServerCounters,
    hists: ServerHists,
    sessions: Mutex<HashMap<String, Arc<Mutex<Session>>>>,
    pool: ThreadPool,
    shutdown: AtomicBool,
    inflight: AtomicUsize,
    open_connections: AtomicUsize,
    /// Monotone source of per-request trace IDs (`r1`, `r2`, …).
    trace_seq: AtomicU64,
    /// The structured access log, when enabled.
    access: Option<Mutex<JsonlSink<BufWriter<File>>>>,
    /// The N slowest query/batch requests, slowest first, with full
    /// traces. Bounded by `config.slow_keep`.
    slow: Mutex<Vec<SlowEntry>>,
    addr: SocketAddr,
}

impl ServerState {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Mints the next trace/request ID.
    fn mint_trace_id(&self) -> String {
        format!("r{}", self.trace_seq.fetch_add(1, Ordering::Relaxed) + 1)
    }

    fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop: a throwaway connection unblocks
        // `TcpListener::accept`.
        let _ = TcpStream::connect(self.addr);
    }
}

/// RAII slot on the `open_connections` gauge: acquiring increments,
/// dropping decrements. The connection thread owns it for its whole
/// lifetime, so no early return, IO error, panic, or failed spawn can
/// leak the slot — a leaked slot would permanently shrink the
/// `max_connections` budget until the gauge "fills up" and every new
/// connection is shed with `busy`.
struct OpenConnGuard {
    state: Arc<ServerState>,
}

impl OpenConnGuard {
    fn acquire(state: Arc<ServerState>) -> Self {
        state.open_connections.fetch_add(1, Ordering::SeqCst);
        OpenConnGuard { state }
    }
}

impl Drop for OpenConnGuard {
    fn drop(&mut self) {
        self.state.open_connections.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A cloneable handle for stopping a running server from another thread
/// (a signal-watcher, a test, the CLI's stdin-EOF watcher).
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Requests a graceful shutdown; idempotent.
    pub fn shutdown(&self) {
        self.state.trigger_shutdown();
    }
}

/// A bound, not-yet-running demand-query server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    pub fn bind(
        addr: impl ToSocketAddrs,
        config: ServeConfig,
        obs: Obs,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let counters = ServerCounters::new(&obs);
        let hists = ServerHists::new(&obs);
        let pool = ThreadPool::new(config.threads.max(1));
        let access = match &config.access_log {
            Some(path) => {
                let file = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?;
                Some(Mutex::new(JsonlSink::new(BufWriter::new(file))))
            }
            None => None,
        };
        let state = Arc::new(ServerState {
            config,
            counters,
            hists,
            obs,
            sessions: Mutex::new(HashMap::new()),
            pool,
            shutdown: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            open_connections: AtomicUsize::new(0),
            trace_seq: AtomicU64::new(0),
            access,
            slow: Mutex::new(Vec::new()),
            addr: local,
        });
        Ok(Server { listener, state })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// A handle that can stop the server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Runs the accept loop until shutdown; joins every connection thread
    /// (and the background snapshotter, when configured) before
    /// returning.
    pub fn run(self) -> std::io::Result<()> {
        // Periodic durability: a detached ticker writes every session's
        // snapshot into the snapshot dir, so a crash loses at most one
        // period of memo growth. It exits (after one final pass) when
        // the shutdown flag rises.
        let snapshotter = if self.state.config.snapshot_dir.is_some()
            && self.state.config.snapshot_every_ms > 0
        {
            let state = Arc::clone(&self.state);
            std::thread::Builder::new()
                .name("ddpa-serve-snap".to_string())
                .spawn(move || snapshot_loop(&state))
                .ok()
        } else {
            None
        };
        let mut threads: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if self.state.shutting_down() {
                break;
            }
            let (stream, _) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    if self.state.shutting_down() {
                        break;
                    }
                    self.state.trigger_shutdown();
                    if let Some(t) = snapshotter {
                        let _ = t.join();
                    }
                    return Err(e);
                }
            };
            if self.state.shutting_down() {
                break;
            }
            // Line-at-a-time protocol: disable Nagle so single-query
            // round-trips are not throttled by delayed ACKs.
            let _ = stream.set_nodelay(true);
            threads.retain(|t| !t.is_finished());
            let open = self.state.open_connections.load(Ordering::SeqCst);
            if open >= self.state.config.max_connections {
                self.state.counters.busy.inc();
                let mut stream = stream;
                let line = error_response(ErrorCode::Busy, "connection limit reached").to_string();
                let _ = stream.write_all(line.as_bytes());
                let _ = stream.write_all(b"\n");
                continue;
            }
            let guard = OpenConnGuard::acquire(Arc::clone(&self.state));
            self.state.counters.connections.inc();
            let state = Arc::clone(&self.state);
            // The guard travels into the connection thread; every exit
            // path — clean EOF, IO error, handler panic, or the spawn
            // itself failing (the closure is dropped unrun) — releases
            // the slot exactly once via Drop.
            if let Ok(t) = std::thread::Builder::new()
                .name("ddpa-serve-conn".to_string())
                .spawn(move || {
                    let _guard = guard;
                    let _ = handle_connection(&state, stream);
                })
            {
                threads.push(t);
            }
        }
        for t in threads {
            let _ = t.join();
        }
        if let Some(t) = snapshotter {
            let _ = t.join();
        }
        Ok(())
    }
}

/// File name a session snapshots to under the server's snapshot dir.
/// Session names are client-controlled, so anything outside
/// `[A-Za-z0-9._-]` is replaced — the result is always a bare file name
/// that cannot escape the directory.
fn snapshot_file_name(session: &str) -> String {
    let safe: String = session
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect();
    format!("{safe}.snap")
}

/// `<snapshot_dir>/<session>.snap`, when a snapshot dir is configured.
fn default_snapshot_path(state: &ServerState, session: &str) -> Option<PathBuf> {
    state
        .config
        .snapshot_dir
        .as_ref()
        .map(|dir| dir.join(snapshot_file_name(session)))
}

/// Exports one session's completed fixpoints and atomically writes them
/// to `path`; returns `Some((entries, bytes, generation))`, or `None`
/// when an `add-constraints` edit raced the export and the stale write
/// was discarded.
fn write_session_snapshot(
    state: &ServerState,
    session: &Arc<Mutex<Session>>,
    path: &Path,
) -> Result<Option<(usize, usize, u64)>, ddpa_snap::SnapError> {
    let _span = state.obs.span("snap.write");
    let s = lock_session(session);
    let snapshot = s.export_snapshot();
    let generation = s.generation();
    drop(s);
    commit_session_snapshot(state, session, &snapshot, generation, path)
}

/// Second half of [`write_session_snapshot`]: persists `snapshot` only
/// if `session` is still at the `generation` the export was captured
/// under. The export runs under the session lock but the (slow) file
/// write does not, so an `add-constraints` edit can land in between —
/// blindly renaming the file into place would clobber a fresher
/// snapshot on disk with pre-edit state. A moved generation discards
/// the write (`Ok(None)`, counted by `snap.stale_discards`); the next
/// snapshotter tick re-exports from current state.
fn commit_session_snapshot(
    state: &ServerState,
    session: &Arc<Mutex<Session>>,
    snapshot: &ddpa_snap::Snapshot,
    generation: u64,
    path: &Path,
) -> Result<Option<(usize, usize, u64)>, ddpa_snap::SnapError> {
    if lock_session(session).generation() != generation {
        state.counters.snap_stale_discards.inc();
        return Ok(None);
    }
    let entries = snapshot.entries.len();
    let bytes = ddpa_snap::write_file(snapshot, path)?;
    state.counters.snap_writes.inc();
    state.counters.snap_bytes.add(bytes as u64);
    Ok(Some((entries, bytes, generation)))
}

/// Writes every live session's snapshot into the snapshot dir. Failures
/// are counted (`server.errors`) but never fatal: the next tick retries.
/// Stale discards (an edit raced the export) are not failures.
fn snapshot_all_sessions(state: &ServerState) {
    let sessions: Vec<(String, Arc<Mutex<Session>>)> = lock_sessions(state)
        .iter()
        .map(|(name, handle)| (name.clone(), Arc::clone(handle)))
        .collect();
    for (name, handle) in sessions {
        if let Some(path) = default_snapshot_path(state, &name) {
            if write_session_snapshot(state, &handle, &path).is_err() {
                state.counters.errors.inc();
            }
        }
    }
}

/// Body of the background snapshotter thread: every `snapshot_every_ms`
/// persist all sessions, sleeping in [`READ_TICK`] steps so shutdown is
/// honoured promptly; one final pass runs at shutdown so the freshest
/// memo state is on disk for the next process.
fn snapshot_loop(state: &ServerState) {
    let period = Duration::from_millis(state.config.snapshot_every_ms.max(1));
    loop {
        let mut waited = Duration::ZERO;
        while waited < period {
            if state.shutting_down() {
                snapshot_all_sessions(state);
                return;
            }
            let step = READ_TICK.min(period - waited);
            std::thread::sleep(step);
            waited += step;
        }
        snapshot_all_sessions(state);
    }
}

/// What the bounded reader produced for one frame.
enum Frame {
    /// A complete newline-terminated line (without the newline).
    Line(Vec<u8>),
    /// The line exceeded `max_line_bytes`; nothing has been buffered
    /// beyond the cap and the stream still needs resynchronizing.
    Oversized,
    /// Bytes followed by EOF with no newline.
    Truncated,
    /// Clean EOF at a frame boundary.
    Eof,
    /// The server is shutting down.
    Shutdown,
}

/// Reads one newline-terminated frame, never buffering more than
/// `max + 1` bytes, waking every [`READ_TICK`] to honour shutdown.
fn read_frame(
    reader: &mut BufReader<TcpStream>,
    max: usize,
    state: &ServerState,
) -> std::io::Result<Frame> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        if state.shutting_down() {
            return Ok(Frame::Shutdown);
        }
        let room = (max + 1).saturating_sub(buf.len());
        if room == 0 {
            return Ok(Frame::Oversized);
        }
        match reader
            .by_ref()
            .take(room as u64)
            .read_until(b'\n', &mut buf)
        {
            Ok(0) => {
                return Ok(if buf.is_empty() {
                    Frame::Eof
                } else {
                    Frame::Truncated
                });
            }
            Ok(_) => {
                if buf.last() == Some(&b'\n') {
                    buf.pop();
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    if buf.len() > max {
                        return Ok(Frame::Oversized);
                    }
                    return Ok(Frame::Line(buf));
                }
                // No newline yet: either the cap is hit (next iteration
                // reports Oversized) or the socket ran dry mid-line and
                // the next read continues the frame.
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Discards bytes until the next newline so an oversized frame does not
/// poison the frames behind it.
fn resync_to_newline(
    reader: &mut BufReader<TcpStream>,
    state: &ServerState,
) -> std::io::Result<bool> {
    loop {
        if state.shutting_down() {
            return Ok(false);
        }
        // Inspect buffered bytes so nothing past the newline is
        // discarded; fill_buf + consume gives exact control.
        let step = match reader.fill_buf() {
            Ok([]) => return Ok(false), // EOF while resyncing
            Ok(bytes) => match bytes.iter().position(|&b| b == b'\n') {
                Some(pos) => (pos + 1, true),
                None => (bytes.len(), false),
            },
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                continue;
            }
            Err(e) => return Err(e),
        };
        let (n, found_newline) = step;
        reader.consume(n);
        if found_newline {
            return Ok(true);
        }
    }
}

/// Whether the connection should stay open after a response.
enum After {
    Continue,
    Close,
}

fn handle_connection(state: &ServerState, stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TICK))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        match read_frame(&mut reader, state.config.max_line_bytes, state)? {
            Frame::Line(bytes) => {
                let (response, after) = match String::from_utf8(bytes) {
                    Ok(line) if line.trim().is_empty() => continue,
                    Ok(line) => handle_line(state, &line),
                    Err(_) => (
                        fail(state, ErrorCode::BadJson, "request line is not UTF-8"),
                        After::Continue,
                    ),
                };
                write_line(&mut writer, &response)?;
                if matches!(after, After::Close) {
                    return Ok(());
                }
            }
            Frame::Oversized => {
                state.counters.requests.inc();
                let msg = format!(
                    "request line exceeds max_line_bytes ({})",
                    state.config.max_line_bytes
                );
                write_line(&mut writer, &fail(state, ErrorCode::Oversized, &msg))?;
                if !resync_to_newline(&mut reader, state)? {
                    return Ok(());
                }
            }
            Frame::Truncated => {
                state.counters.requests.inc();
                let resp = fail(
                    state,
                    ErrorCode::BadRequest,
                    "truncated frame: stream ended before newline",
                );
                // Best-effort: the peer half-closed its write side but
                // may still be reading.
                let _ = write_line(&mut writer, &resp);
                return Ok(());
            }
            Frame::Eof => return Ok(()),
            Frame::Shutdown => {
                let _ = write_line(
                    &mut writer,
                    &error_response(ErrorCode::ShuttingDown, "server is shutting down").to_string(),
                );
                return Ok(());
            }
        }
    }
}

fn write_line(writer: &mut TcpStream, line: &str) -> std::io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Records an error and renders its response line.
fn fail(state: &ServerState, code: ErrorCode, message: &str) -> String {
    state.counters.errors.inc();
    error_response(code, message).to_string()
}

/// Handles one request line; returns the response line and whether the
/// connection should close afterwards.
fn handle_line(state: &ServerState, line: &str) -> (String, After) {
    state.counters.requests.inc();
    let _span = state.obs.span("server.request");

    if state.shutting_down() {
        return (
            fail(state, ErrorCode::ShuttingDown, "server is shutting down"),
            After::Close,
        );
    }

    let value = match ddpa_obs::parse_json(line) {
        Ok(v) => v,
        Err(e) => return (fail(state, ErrorCode::BadJson, &e), After::Continue),
    };
    let request = match parse_request(&value) {
        Ok(r) => r,
        Err(e) => {
            state.counters.errors.inc();
            return (e.to_line(), After::Continue);
        }
    };

    // Backpressure: bound the number of requests executing at once.
    let slot = state.inflight.fetch_add(1, Ordering::SeqCst);
    struct InflightGuard<'a>(&'a AtomicUsize);
    impl Drop for InflightGuard<'_> {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::SeqCst);
        }
    }
    let _guard = InflightGuard(&state.inflight);
    if slot >= state.config.max_inflight {
        state.counters.busy.inc();
        return (
            fail(
                state,
                ErrorCode::Busy,
                "server is saturated; retry after in-flight requests drain",
            ),
            After::Continue,
        );
    }

    // Request-level observability: every dispatched request gets a trace
    // ID, a latency sample, and (when enabled) an access-log line; traced
    // query/batch requests additionally feed the slow ring.
    let trace_id = state.mint_trace_id();
    let (op_name, session_name) = request_summary(&request);
    let started = Instant::now();
    let mut report: Option<TraceReport> = None;
    let outcome = dispatch(state, request, &trace_id, &mut report);
    let latency_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    observe_request(
        state,
        &trace_id,
        op_name,
        session_name.as_deref(),
        outcome.is_ok(),
        latency_us,
        report.as_ref(),
    );

    match outcome {
        Ok((response, after)) => (response.to_string(), after),
        Err(e) => {
            state.counters.errors.inc();
            (e.to_line(), After::Continue)
        }
    }
}

/// The op name and target session of a request, for logging.
fn request_summary(request: &Request) -> (&'static str, Option<String>) {
    match request {
        Request::Ping => ("ping", None),
        Request::Stats => ("stats", None),
        Request::Shutdown => ("shutdown", None),
        Request::Slow { .. } => ("slow", None),
        Request::Open { session, .. } => ("open", Some(session.clone())),
        Request::Close { session } => ("close", Some(session.clone())),
        Request::AddConstraints { session, .. } => ("add-constraints", Some(session.clone())),
        Request::Query { session, .. } => ("query", Some(session.clone())),
        Request::Batch { session, .. } => ("batch", Some(session.clone())),
        Request::Snapshot { session, .. } => ("snapshot", Some(session.clone())),
        Request::Restore { session, .. } => ("restore", Some(session.clone())),
        Request::Inspect { session, .. } => ("inspect", Some(session.clone())),
        Request::Flight { session, .. } => ("flight", Some(session.clone())),
        Request::Graph { session, .. } => ("graph", Some(session.clone())),
        Request::Scrape => ("scrape", None),
    }
}

/// Milliseconds since the Unix epoch, for access-log timestamps.
fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// Records one dispatched request: latency histograms, the access log,
/// and — for query/batch requests, which carry a [`TraceReport`] — the
/// slow ring.
fn observe_request(
    state: &ServerState,
    trace_id: &str,
    op: &'static str,
    session: Option<&str>,
    ok: bool,
    latency_us: u64,
    report: Option<&TraceReport>,
) {
    state.hists.request_us.record(latency_us);
    match op {
        "query" => state.hists.query_us.record(latency_us),
        "batch" => state.hists.batch_us.record(latency_us),
        _ => {}
    }
    let slow = latency_us >= state.config.slow_ms.saturating_mul(1000);

    if let Some(sink) = &state.access {
        let mut fields = vec![
            ("trace", JsonValue::str(trace_id)),
            ("op", JsonValue::str(op)),
            ("unix_ms", JsonValue::U64(unix_ms())),
            ("ok", JsonValue::Bool(ok)),
            ("latency_us", JsonValue::U64(latency_us)),
            ("slow", JsonValue::Bool(slow)),
        ];
        if let Some(s) = session {
            fields.push(("session", JsonValue::str(s)));
        }
        if let Some(r) = report {
            fields.push(("generation", JsonValue::U64(r.generation)));
            fields.push(("fires", JsonValue::U64(r.delta.fires)));
            fields.push(("goals", JsonValue::U64(r.delta.goals_activated)));
            fields.push(("work", JsonValue::U64(r.delta.work)));
            fields.push(("cache_hits", JsonValue::U64(r.delta.cache_hits)));
            fields.push(("share_hits", JsonValue::U64(r.delta.share_hits)));
        }
        let mut sink = sink.lock().unwrap_or_else(|p| p.into_inner());
        let _ = sink.emit("access", &fields);
        if slow {
            if let Some(r) = report {
                fields.push(("trace_report", r.json()));
            }
            let _ = sink.emit("slow", &fields);
        }
        // Flush per line so the log is tail-able while the server runs.
        let _ = sink.flush();
    }

    // The slow ring retains the N slowest traced (query/batch) requests.
    if let Some(r) = report {
        let mut entry_fields = vec![
            ("op".to_owned(), JsonValue::str(op)),
            ("latency_us".to_owned(), JsonValue::U64(latency_us)),
            ("unix_ms".to_owned(), JsonValue::U64(unix_ms())),
            ("trace".to_owned(), r.json()),
        ];
        if let Some(s) = session {
            entry_fields.insert(1, ("session".to_owned(), JsonValue::str(s)));
        }
        let mut ring = state.slow.lock().unwrap_or_else(|p| p.into_inner());
        ring.push(SlowEntry {
            latency_us,
            entry: JsonValue::Object(entry_fields),
        });
        ring.sort_by_key(|e| std::cmp::Reverse(e.latency_us));
        ring.truncate(state.config.slow_keep);
    }
}

// Lock helpers. Both recover from poisoning (`into_inner`) instead of
// panicking: a request that dies while holding a lock must wedge only
// itself, not every later request on the same mutex. Recovery is sound
// here — the session map only ever inserts/removes whole entries, and a
// session interrupted mid-query holds partial memo state the engine is
// designed to resume from (or rebuild after the next reload).

fn lock_sessions(
    state: &ServerState,
) -> std::sync::MutexGuard<'_, HashMap<String, Arc<Mutex<Session>>>> {
    state
        .sessions
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn get_session(state: &ServerState, name: &str) -> Result<Arc<Mutex<Session>>, ProtoError> {
    lock_sessions(state)
        .get(name)
        .cloned()
        .ok_or_else(|| ProtoError::new(ErrorCode::NoSession, format!("no session {name:?}")))
}

fn lock_session(session: &Arc<Mutex<Session>>) -> std::sync::MutexGuard<'_, Session> {
    session
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Computes the request deadline from the explicit or default timeout.
fn deadline_for(state: &ServerState, timeout_ms: Option<u64>) -> Option<Instant> {
    let ms = timeout_ms.unwrap_or(state.config.default_timeout_ms);
    if ms == 0 {
        None
    } else {
        Some(Instant::now() + Duration::from_millis(ms))
    }
}

/// Mirrors a request's per-session engine deltas into the server
/// registry, so the `--metrics-out` export carries them: the cache-hit
/// delta goes to `server.cache_hits.<name>`, shared-memo traffic
/// aggregates across sessions under `demand.share.*`, and timeouts bump
/// `server.timeouts`. `delta` is the request's [`TraceReport`] delta
/// ([`EngineStats::delta_since`] around the query call(s)); batch
/// workers publish into the session engine's registry, so their traffic
/// is included.
fn record_query_obs(state: &ServerState, session_name: &str, delta: &EngineStats, timeouts: u64) {
    if delta.cache_hits > 0 {
        state
            .obs
            .counter(&format!("server.cache_hits.{session_name}"))
            .add(delta.cache_hits);
    }
    let share = [
        ("demand.share.hits", delta.share_hits),
        ("demand.share.misses", delta.share_misses),
        ("demand.share.publishes", delta.share_publishes),
        ("demand.share.evictions", delta.share_evictions),
        ("demand.sched.parked", delta.sched_parked),
        ("demand.sched.resumed", delta.sched_resumed),
        ("demand.sched.steals", delta.sched_steals),
        ("demand.sched.wakeups", delta.sched_wakeups),
    ];
    for (name, d) in share {
        if d > 0 {
            state.obs.counter(name).add(d);
        }
    }
    if timeouts > 0 {
        state.counters.timeouts.add(timeouts);
    }
}

fn render_answer(answer: &QueryAnswer, generation: u64) -> JsonValue {
    let names_json = |names: &[String]| {
        JsonValue::Array(names.iter().map(|n| JsonValue::str(n.as_str())).collect())
    };
    let fields = match answer {
        QueryAnswer::Set {
            names,
            complete,
            work,
            timed_out,
        } => vec![
            ("pts".to_string(), names_json(names)),
            ("complete".to_string(), JsonValue::Bool(*complete)),
            ("work".to_string(), JsonValue::U64(*work)),
            ("timed_out".to_string(), JsonValue::Bool(*timed_out)),
        ],
        QueryAnswer::Alias {
            may_alias,
            resolved,
            work,
            timed_out,
        } => vec![
            ("may_alias".to_string(), JsonValue::Bool(*may_alias)),
            ("resolved".to_string(), JsonValue::Bool(*resolved)),
            ("work".to_string(), JsonValue::U64(*work)),
            ("timed_out".to_string(), JsonValue::Bool(*timed_out)),
        ],
        QueryAnswer::Targets {
            names,
            resolved,
            work,
            timed_out,
        } => vec![
            ("targets".to_string(), names_json(names)),
            ("resolved".to_string(), JsonValue::Bool(*resolved)),
            ("work".to_string(), JsonValue::U64(*work)),
            ("timed_out".to_string(), JsonValue::Bool(*timed_out)),
        ],
    };
    let mut fields = fields;
    fields.push(("generation".to_string(), JsonValue::U64(generation)));
    JsonValue::Object(fields)
}

/// Dispatches one parsed request. `trace_id` is the minted request ID;
/// query/batch arms bracket their engine work with it and hand the
/// resulting [`TraceReport`] back through `report_out` for the caller's
/// access-log/slow-ring bookkeeping.
fn dispatch(
    state: &ServerState,
    request: Request,
    trace_id: &str,
    report_out: &mut Option<TraceReport>,
) -> Result<(JsonValue, After), ProtoError> {
    match request {
        Request::Ping => Ok((ok_response("ping", vec![]), After::Continue)),
        Request::Shutdown => {
            state.trigger_shutdown();
            Ok((ok_response("shutdown", vec![]), After::Close))
        }
        Request::Stats => Ok((stats_response(state), After::Continue)),
        Request::Slow { limit } => {
            let ring = state.slow.lock().unwrap_or_else(|p| p.into_inner());
            let n = limit.map_or(ring.len(), |l| l as usize).min(ring.len());
            let entries: Vec<JsonValue> = ring.iter().take(n).map(|e| e.entry.clone()).collect();
            let kept = ring.len();
            drop(ring);
            Ok((
                ok_response(
                    "slow",
                    vec![
                        ("entries", JsonValue::Array(entries)),
                        ("kept", JsonValue::U64(kept as u64)),
                        ("threshold_ms", JsonValue::U64(state.config.slow_ms)),
                    ],
                ),
                After::Continue,
            ))
        }
        Request::Open {
            session,
            program,
            minic,
            budget,
            parallel_query,
        } => {
            let _span = state.obs.span("server.request.open");
            let mut new = Session::open(&program, minic, budget)?.with_parallel(
                state.config.workers,
                state.config.sched_policy,
                parallel_query,
            );
            // Best-effort warm start: a matching snapshot in the
            // snapshot dir seeds the fresh session's shared memo, so its
            // first queries are share hits instead of cold deduction. A
            // missing, corrupt, or mismatched snapshot leaves the open
            // cold — restore failures must never fail an open.
            let mut restored = 0u64;
            if state.config.restore_on_open {
                if let Some(path) = default_snapshot_path(state, &session) {
                    if path.exists() {
                        match ddpa_snap::read_file(&path) {
                            Ok(snapshot) => match new.restore_snapshot(&snapshot) {
                                Ok(r) => {
                                    restored = r.installed as u64;
                                    state.counters.snap_loads.inc();
                                }
                                Err(_) => state.counters.snap_rejects.inc(),
                            },
                            Err(_) => state.counters.snap_rejects.inc(),
                        }
                    }
                }
            }
            let (nodes, constraints) = (new.program().num_nodes(), new.program().num_constraints());
            let mut sessions = lock_sessions(state);
            if sessions.contains_key(&session) {
                return Err(ProtoError::new(
                    ErrorCode::SessionExists,
                    format!("session {session:?} already exists"),
                ));
            }
            sessions.insert(session.clone(), Arc::new(Mutex::new(new)));
            drop(sessions);
            state.counters.sessions_opened.inc();
            Ok((
                ok_response(
                    "open",
                    vec![
                        ("session", JsonValue::str(session.as_str())),
                        ("nodes", JsonValue::U64(nodes as u64)),
                        ("constraints", JsonValue::U64(constraints as u64)),
                        ("generation", JsonValue::U64(0)),
                        ("restored", JsonValue::U64(restored)),
                    ],
                ),
                After::Continue,
            ))
        }
        Request::Close { session } => {
            let removed = lock_sessions(state).remove(&session);
            if removed.is_none() {
                return Err(ProtoError::new(
                    ErrorCode::NoSession,
                    format!("no session {session:?}"),
                ));
            }
            state.counters.sessions_closed.inc();
            Ok((
                ok_response("close", vec![("session", JsonValue::str(session.as_str()))]),
                After::Continue,
            ))
        }
        Request::AddConstraints { session, program } => {
            let _span = state.obs.span("server.request.add-constraints");
            let handle = get_session(state, &session)?;
            let mut s = lock_session(&handle);
            let edit = s.add_constraints(&program)?;
            state.counters.invalidations.inc();
            state.counters.dirty_goals.add(edit.invalidated as u64);
            state.counters.dirty_retained.add(edit.retained as u64);
            state.counters.dirty_edges.add(edit.dirty_edges);
            let response = ok_response(
                "add-constraints",
                vec![
                    ("session", JsonValue::str(session.as_str())),
                    ("nodes", JsonValue::U64(s.program().num_nodes() as u64)),
                    (
                        "constraints",
                        JsonValue::U64(s.program().num_constraints() as u64),
                    ),
                    ("generation", JsonValue::U64(s.generation())),
                    ("invalidated", JsonValue::U64(edit.invalidated as u64)),
                    ("retained", JsonValue::U64(edit.retained as u64)),
                    ("full_invalidation", JsonValue::Bool(edit.full)),
                ],
            );
            Ok((response, After::Continue))
        }
        Request::Query {
            session,
            spec,
            budget,
            timeout_ms,
            trace: want_trace,
            parallel_query,
        } => {
            let _span = state.obs.span("server.request.query");
            let handle = get_session(state, &session)?;
            let deadline = deadline_for(state, timeout_ms);
            let mut s = lock_session(&handle);
            let resolved = s.resolve(&spec)?;
            let bracket = s.begin_trace(trace_id);
            let answer = s.query_opt(resolved, budget, deadline, parallel_query);
            let report = s.finish_trace(bracket);
            let generation = s.generation();
            let sched = s.last_sched();
            drop(s);
            record_query_obs(state, &session, &report.delta, answer.timed_out() as u64);
            let mut fields = vec![
                ("session", JsonValue::str(session.as_str())),
                ("result", render_answer(&answer, generation)),
                ("generation", JsonValue::U64(generation)),
            ];
            // A query that asked for parallelism reports how it actually
            // ran, so budget/trace-forced fallbacks are never silent.
            if let Some(sched) = sched {
                if sched == "sequential-fallback" {
                    state.counters.sched_fallbacks.inc();
                }
                fields.push(("sched", JsonValue::str(sched)));
            }
            if want_trace {
                fields.push(("trace", report.json()));
            }
            *report_out = Some(report);
            Ok((ok_response("query", fields), After::Continue))
        }
        Request::Batch {
            session,
            specs,
            parallel,
            budget,
            timeout_ms,
            trace: want_trace,
        } => {
            let _span = state.obs.span("server.request.batch");
            if specs.len() > state.config.max_batch {
                return Err(ProtoError::new(
                    ErrorCode::BadRequest,
                    format!(
                        "batch of {} queries exceeds max_batch ({})",
                        specs.len(),
                        state.config.max_batch
                    ),
                ));
            }
            let handle = get_session(state, &session)?;
            let deadline = deadline_for(state, timeout_ms);
            state.counters.batch_queries.add(specs.len() as u64);

            // Resolve all names up front so per-spec failures become
            // inline error entries instead of poisoning the batch.
            let mut s = lock_session(&handle);
            let resolved: Vec<Result<ResolvedSpec, ProtoError>> =
                specs.iter().map(|spec| s.resolve(spec)).collect();
            let generation = s.generation();

            let mut timeouts = 0u64;
            let bracket = s.begin_trace(trace_id);
            let (results, report): (Vec<JsonValue>, TraceReport) = if parallel {
                let ok_specs: Vec<ResolvedSpec> = resolved
                    .iter()
                    .filter_map(|r| r.as_ref().ok().copied())
                    .collect();
                let answers = s.query_batch_parallel(&ok_specs, budget, deadline, &state.pool);
                // Batch workers publish into the session engine's
                // registry, so the bracket includes their traffic.
                let report = s.finish_trace(bracket);
                drop(s);
                let mut answers = answers.into_iter();
                let rendered = resolved
                    .iter()
                    .map(|r| match r {
                        Ok(_) => {
                            let a = answers.next().expect("one answer per resolved spec");
                            timeouts += a.timed_out() as u64;
                            render_answer(&a, generation)
                        }
                        Err(e) => error_response(e.code, &e.message),
                    })
                    .collect();
                (rendered, report)
            } else {
                let rendered = resolved
                    .iter()
                    .map(|r| match r {
                        Ok(spec) => {
                            let a = s.query(*spec, budget, deadline);
                            timeouts += a.timed_out() as u64;
                            render_answer(&a, generation)
                        }
                        Err(e) => error_response(e.code, &e.message),
                    })
                    .collect();
                let report = s.finish_trace(bracket);
                drop(s);
                (rendered, report)
            };
            record_query_obs(state, &session, &report.delta, timeouts);
            let mut fields = vec![
                ("session", JsonValue::str(session.as_str())),
                ("results", JsonValue::Array(results)),
                ("generation", JsonValue::U64(generation)),
            ];
            if want_trace {
                fields.push(("trace", report.json()));
            }
            *report_out = Some(report);
            Ok((ok_response("batch", fields), After::Continue))
        }
        Request::Snapshot { session, path } => {
            let _span = state.obs.span("server.request.snapshot");
            let handle = get_session(state, &session)?;
            let path = match path {
                Some(p) => PathBuf::from(p),
                None => default_snapshot_path(state, &session).ok_or_else(|| {
                    ProtoError::new(
                        ErrorCode::Snapshot,
                        "no \"path\" given and the server has no --snapshot-dir",
                    )
                })?,
            };
            // A concurrent edit discards the export; for an explicit
            // snapshot request, re-export from the post-edit state
            // rather than failing (bounded, in case edits keep coming).
            let mut written = None;
            for _ in 0..3 {
                written = write_session_snapshot(state, &handle, &path)
                    .map_err(|e| ProtoError::new(ErrorCode::Snapshot, e.to_string()))?;
                if written.is_some() {
                    break;
                }
            }
            let (entries, bytes, generation) = written.ok_or_else(|| {
                ProtoError::new(
                    ErrorCode::Snapshot,
                    "session is being edited concurrently; snapshot discarded — retry",
                )
            })?;
            let shown = path.display().to_string();
            Ok((
                ok_response(
                    "snapshot",
                    vec![
                        ("session", JsonValue::str(session.as_str())),
                        ("path", JsonValue::str(shown.as_str())),
                        ("entries", JsonValue::U64(entries as u64)),
                        ("bytes", JsonValue::U64(bytes as u64)),
                        ("generation", JsonValue::U64(generation)),
                    ],
                ),
                After::Continue,
            ))
        }
        Request::Inspect { session, top } => {
            let _span = state.obs.span("server.request.inspect");
            let handle = get_session(state, &session)?;
            let s = lock_session(&handle);
            let (hottest, critical_path) = s.inspect_json(top.unwrap_or(10) as usize);
            let (generation, tabled) = (s.generation(), s.tabled_goals());
            drop(s);
            Ok((
                ok_response(
                    "inspect",
                    vec![
                        ("session", JsonValue::str(session.as_str())),
                        ("hottest", hottest),
                        ("critical_path", critical_path),
                        ("tabled_goals", JsonValue::U64(tabled as u64)),
                        ("generation", JsonValue::U64(generation)),
                    ],
                ),
                After::Continue,
            ))
        }
        Request::Flight { session, limit } => {
            let _span = state.obs.span("server.request.flight");
            let handle = get_session(state, &session)?;
            let s = lock_session(&handle);
            let (events, recorded, dropped) =
                s.flight_json(limit.map_or(usize::MAX, |l| l as usize));
            let generation = s.generation();
            drop(s);
            Ok((
                ok_response(
                    "flight",
                    vec![
                        ("session", JsonValue::str(session.as_str())),
                        ("events", JsonValue::Array(events)),
                        ("recorded", JsonValue::U64(recorded)),
                        ("dropped", JsonValue::U64(dropped)),
                        ("generation", JsonValue::U64(generation)),
                    ],
                ),
                After::Continue,
            ))
        }
        Request::Graph { session, dot } => {
            let _span = state.obs.span("server.request.graph");
            let handle = get_session(state, &session)?;
            let s = lock_session(&handle);
            let generation = s.generation();
            let mut fields = vec![("session", JsonValue::str(session.as_str()))];
            if dot {
                let text = s.graph_dot();
                drop(s);
                fields.push(("text", JsonValue::str(text)));
            } else {
                let graph = s.graph_json();
                drop(s);
                fields.push(("graph", graph));
            }
            fields.push(("generation", JsonValue::U64(generation)));
            Ok((ok_response("graph", fields), After::Continue))
        }
        Request::Scrape => {
            let _span = state.obs.span("server.request.scrape");
            let mut sink = JsonlSink::new(Vec::new());
            let _ = sink.emit_registry(&state.obs.registry);
            // Session engines keep their own registries; surface each
            // engine's headline counters under a session-scoped name so
            // one scrape covers the whole process.
            let sessions: Vec<(String, Arc<Mutex<Session>>)> = lock_sessions(state)
                .iter()
                .map(|(name, handle)| (name.clone(), Arc::clone(handle)))
                .collect();
            for (name, handle) in sessions {
                let s = lock_session(&handle);
                let stats = s.engine_stats();
                let tabled = s.tabled_goals() as u64;
                drop(s);
                let counters = [
                    ("queries", stats.queries),
                    ("work", stats.work),
                    ("fires", stats.fires),
                    ("flight_events", stats.flight_events),
                ];
                for (key, value) in counters {
                    let _ = sink.emit(
                        "counter",
                        &[
                            ("name", JsonValue::str(format!("session.{name}.{key}"))),
                            ("value", JsonValue::U64(value)),
                        ],
                    );
                }
                let _ = sink.emit(
                    "gauge",
                    &[
                        (
                            "name",
                            JsonValue::str(format!("session.{name}.tabled_goals")),
                        ),
                        ("value", JsonValue::U64(tabled)),
                    ],
                );
            }
            let text = String::from_utf8(sink.into_inner()).unwrap_or_default();
            let lines = text.lines().count() as u64;
            Ok((
                ok_response(
                    "scrape",
                    vec![
                        ("text", JsonValue::str(text)),
                        ("lines", JsonValue::U64(lines)),
                    ],
                ),
                After::Continue,
            ))
        }
        Request::Restore { session, path } => {
            let _span = state.obs.span("server.request.restore");
            let handle = get_session(state, &session)?;
            let snapshot = ddpa_snap::read_file(&path).map_err(|e| {
                state.counters.snap_rejects.inc();
                ProtoError::new(ErrorCode::Snapshot, format!("cannot restore {path:?}: {e}"))
            })?;
            let mut s = lock_session(&handle);
            let restore = s
                .restore_snapshot(&snapshot)
                .inspect_err(|_| state.counters.snap_rejects.inc())?;
            let generation = s.generation();
            drop(s);
            state.counters.snap_loads.inc();
            Ok((
                ok_response(
                    "restore",
                    vec![
                        ("session", JsonValue::str(session.as_str())),
                        ("path", JsonValue::str(path.as_str())),
                        ("installed", JsonValue::U64(restore.installed as u64)),
                        ("entries", JsonValue::U64(snapshot.entries.len() as u64)),
                        ("rebound", JsonValue::Bool(restore.rebound)),
                        ("dropped", JsonValue::U64(restore.dropped as u64)),
                        ("generation", JsonValue::U64(generation)),
                    ],
                ),
                After::Continue,
            ))
        }
    }
}

fn stats_response(state: &ServerState) -> JsonValue {
    let sessions = lock_sessions(state);
    let mut per_session: Vec<(String, JsonValue)> = sessions
        .iter()
        .map(|(name, handle)| {
            let s = lock_session(handle);
            let stats = s.engine_stats();
            (
                name.clone(),
                JsonValue::Object(vec![
                    (
                        "nodes".to_string(),
                        JsonValue::U64(s.program().num_nodes() as u64),
                    ),
                    (
                        "constraints".to_string(),
                        JsonValue::U64(s.program().num_constraints() as u64),
                    ),
                    ("generation".to_string(), JsonValue::U64(s.generation())),
                    (
                        "tabled_goals".to_string(),
                        JsonValue::U64(s.tabled_goals() as u64),
                    ),
                    ("queries".to_string(), JsonValue::U64(stats.queries)),
                    ("fires".to_string(), JsonValue::U64(stats.fires)),
                    ("goals".to_string(), JsonValue::U64(stats.goals_activated)),
                    ("cache_hits".to_string(), JsonValue::U64(stats.cache_hits)),
                    ("share_hits".to_string(), JsonValue::U64(stats.share_hits)),
                    (
                        "share_publishes".to_string(),
                        JsonValue::U64(stats.share_publishes),
                    ),
                    ("work".to_string(), JsonValue::U64(stats.work)),
                ]),
            )
        })
        .collect();
    per_session.sort_by(|a, b| a.0.cmp(&b.0));
    drop(sessions);
    let c = &state.counters;
    let counters = JsonValue::Object(vec![
        ("requests".to_string(), JsonValue::U64(c.requests.get())),
        ("errors".to_string(), JsonValue::U64(c.errors.get())),
        ("timeouts".to_string(), JsonValue::U64(c.timeouts.get())),
        ("busy_rejections".to_string(), JsonValue::U64(c.busy.get())),
        (
            "connections".to_string(),
            JsonValue::U64(c.connections.get()),
        ),
        (
            "sessions_opened".to_string(),
            JsonValue::U64(c.sessions_opened.get()),
        ),
        (
            "sessions_closed".to_string(),
            JsonValue::U64(c.sessions_closed.get()),
        ),
        (
            "invalidations".to_string(),
            JsonValue::U64(c.invalidations.get()),
        ),
        (
            "batch_queries".to_string(),
            JsonValue::U64(c.batch_queries.get()),
        ),
        (
            "sched_fallbacks".to_string(),
            JsonValue::U64(c.sched_fallbacks.get()),
        ),
        (
            "open_connections".to_string(),
            JsonValue::U64(state.open_connections.load(Ordering::SeqCst) as u64),
        ),
    ]);
    let hist_json = |h: &Histogram| {
        JsonValue::Object(vec![
            ("count".to_string(), JsonValue::U64(h.count())),
            ("p50".to_string(), JsonValue::U64(h.quantile(0.5))),
            ("p90".to_string(), JsonValue::U64(h.quantile(0.9))),
            ("p99".to_string(), JsonValue::U64(h.quantile(0.99))),
            ("max".to_string(), JsonValue::U64(h.max())),
        ])
    };
    let latency = JsonValue::Object(vec![
        ("request_us".to_string(), hist_json(&state.hists.request_us)),
        ("query_us".to_string(), hist_json(&state.hists.query_us)),
        ("batch_us".to_string(), hist_json(&state.hists.batch_us)),
    ]);
    let slow_kept = state.slow.lock().unwrap_or_else(|p| p.into_inner()).len();
    let slow = JsonValue::Object(vec![
        ("kept".to_string(), JsonValue::U64(slow_kept as u64)),
        (
            "threshold_ms".to_string(),
            JsonValue::U64(state.config.slow_ms),
        ),
    ]);
    ok_response(
        "stats",
        vec![
            ("sessions", JsonValue::Object(per_session)),
            ("counters", counters),
            ("latency", latency),
            ("slow", slow),
            ("threads", JsonValue::U64(state.config.threads as u64)),
            ("workers", JsonValue::U64(state.config.workers as u64)),
            (
                "sched_policy",
                JsonValue::str(state.config.sched_policy.as_str()),
            ),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::QuerySpec;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn pts_names(session: &Arc<Mutex<Session>>, name: &str) -> Vec<String> {
        let mut s = lock_session(session);
        let spec = s
            .resolve(&QuerySpec::PointsTo { name: name.into() })
            .expect("resolvable");
        match s.query(spec, None, None) {
            QueryAnswer::Set { names, .. } => names,
            other => panic!("expected set answer, got {other:?}"),
        }
    }

    #[test]
    fn poisoned_session_recovers_and_spares_other_sessions() {
        let wedged = Arc::new(Mutex::new(
            Session::open("p = &o\nq = p\n", false, None).expect("valid"),
        ));
        let healthy = Arc::new(Mutex::new(
            Session::open("r = &u\n", false, None).expect("valid"),
        ));

        // A request handler dies while holding the session lock.
        let grabbed = Arc::clone(&wedged);
        let died = catch_unwind(AssertUnwindSafe(move || {
            let _guard = grabbed.lock().expect("not yet poisoned");
            panic!("handler died mid-request");
        }));
        assert!(died.is_err());
        assert!(wedged.is_poisoned(), "the panic poisoned the mutex");

        // Later requests on the same session recover instead of dying on
        // an `expect`, and the engine still answers correctly.
        assert_eq!(pts_names(&wedged, "q"), vec!["o"]);
        // Unrelated sessions never notice.
        assert_eq!(pts_names(&healthy, "r"), vec!["u"]);
    }

    #[test]
    fn traced_requests_report_deltas_that_sum_to_session_totals() {
        use crate::client::Client;
        use crate::proto::build;

        let config = ServeConfig {
            threads: 2,
            // Zero threshold: every request counts as slow, so the ring
            // and the slow flag are exercised deterministically.
            slow_ms: 0,
            slow_keep: 4,
            ..ServeConfig::default()
        };
        let server = Server::bind("127.0.0.1:0", config, Obs::new()).expect("bind");
        let addr = server.local_addr();
        let handle = server.handle();
        let runner = std::thread::spawn(move || server.run());

        let mut c = Client::connect(addr).expect("connect");
        let mut program = String::new();
        for i in 0..8 {
            program.push_str(&format!("p{i} = &o{i}\nq{i} = p{i}\n"));
        }
        c.expect_ok(&build::open("s", &program, false, None))
            .expect("open");

        let get = |v: &JsonValue, key: &str| -> u64 {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .unwrap_or_else(|| panic!("missing numeric {key:?} in {v}"))
        };

        // Traced single queries plus one traced parallel batch; sum the
        // per-request deltas the traces report.
        let (mut queries, mut fires, mut goals, mut work) = (0u64, 0u64, 0u64, 0u64);
        let (mut cache_hits, mut share_hits) = (0u64, 0u64);
        let mut seen_ids = std::collections::HashSet::new();
        let mut track = |trace: &JsonValue| {
            let id = trace
                .get("id")
                .and_then(JsonValue::as_str)
                .expect("trace id")
                .to_owned();
            assert!(seen_ids.insert(id), "trace IDs are unique per request");
            assert!(trace.get("wall_us").and_then(JsonValue::as_u64).is_some());
            queries += get(trace, "queries");
            fires += get(trace, "fires");
            goals += get(trace, "goals");
            work += get(trace, "work");
            cache_hits += get(trace, "cache_hits");
            share_hits += get(trace, "share_hits");
        };
        let specs: Vec<QuerySpec> = (0..8)
            .map(|i| QuerySpec::PointsTo {
                name: format!("q{i}"),
            })
            .collect();
        for spec in &specs[..4] {
            let v = c
                .expect_ok(&build::with_trace(build::query("s", spec, None, None)))
                .expect("traced query");
            track(v.get("trace").expect("response carries trace"));
        }
        let v = c
            .expect_ok(&build::with_trace(build::batch(
                "s", &specs, true, None, None,
            )))
            .expect("traced batch");
        track(v.get("trace").expect("batch carries trace"));
        // An untraced request must not carry the field but still counts
        // toward the session totals.
        let v = c
            .expect_ok(&build::query("s", &specs[0], None, None))
            .expect("untraced query");
        assert!(v.get("trace").is_none(), "trace is opt-in");
        queries += 1;
        cache_hits += 1; // repeat of a memoized query

        // The traced deltas must sum to the session's registry totals.
        let stats = c.expect_ok(&build::stats()).expect("stats");
        let sess = stats
            .get("sessions")
            .and_then(|s| s.get("s"))
            .expect("session stats");
        assert_eq!(get(sess, "queries"), queries, "queries sum");
        assert_eq!(get(sess, "fires"), fires, "fires sum");
        assert_eq!(get(sess, "goals"), goals, "goals sum");
        assert_eq!(get(sess, "work"), work, "work (budget spent) sum");
        assert_eq!(get(sess, "cache_hits"), cache_hits, "cache hits sum");
        assert_eq!(get(sess, "share_hits"), share_hits, "share hits sum");
        assert!(fires > 0 && work > 0, "the traced queries did real work");

        // Latency histograms surfaced in stats: 5 query + 1 batch + the
        // untraced query land in query_us/batch_us.
        let latency = stats.get("latency").expect("latency section");
        let q = latency.get("query_us").expect("query hist");
        assert_eq!(get(q, "count"), 5);
        assert!(get(q, "p50") <= get(q, "p99"));
        assert!(get(q, "p99") <= get(q, "max"));
        assert_eq!(latency.get("batch_us").map(|h| get(h, "count")), Some(1));

        // The slow ring keeps the slowest traced requests, bounded.
        let slow = c.expect_ok(&build::slow(None)).expect("slow op");
        let entries = slow
            .get("entries")
            .and_then(JsonValue::as_array)
            .expect("entries array");
        assert_eq!(entries.len(), 4, "ring bounded by slow_keep");
        let slowest = get(&entries[0], "latency_us");
        let last = get(&entries[entries.len() - 1], "latency_us");
        assert!(slowest >= last, "entries are slowest-first");
        assert!(
            entries[0]
                .get("trace")
                .and_then(|t| t.get("id"))
                .and_then(JsonValue::as_str)
                .is_some(),
            "ring entries carry full traces"
        );
        let limited = c.expect_ok(&build::slow(Some(2))).expect("slow limit");
        assert_eq!(
            limited
                .get("entries")
                .and_then(JsonValue::as_array)
                .map(<[JsonValue]>::len),
            Some(2)
        );

        handle.shutdown();
        runner.join().expect("server thread").expect("clean run");
    }

    #[test]
    fn introspection_ops_end_to_end() {
        use crate::client::Client;
        use crate::proto::build;

        let config = ServeConfig {
            threads: 1,
            ..ServeConfig::default()
        };
        let server = Server::bind("127.0.0.1:0", config, Obs::new()).expect("bind");
        let addr = server.local_addr();
        let handle = server.handle();
        let runner = std::thread::spawn(move || server.run());

        let mut c = Client::connect(addr).expect("connect");
        c.expect_ok(&build::open(
            "s",
            "p = &a\np = &b\nq = p\nr = *q\n*q = p\n",
            false,
            None,
        ))
        .expect("open");
        let spec = QuerySpec::PointsTo { name: "r".into() };
        c.expect_ok(&build::query("s", &spec, None, None))
            .expect("query");

        // inspect: hottest goals attributed, critical path carries W/S.
        let v = c.expect_ok(&build::inspect("s", Some(3))).expect("inspect");
        let hottest = v
            .get("hottest")
            .and_then(JsonValue::as_array)
            .expect("hottest array");
        assert!(!hottest.is_empty() && hottest.len() <= 3);
        assert!(hottest[0]
            .get("goal")
            .and_then(JsonValue::as_str)
            .is_some_and(|g| g.starts_with("pts(") || g.starts_with("ptb(")));
        let cp = v.get("critical_path").expect("critical path");
        let work = cp.get("work").and_then(JsonValue::as_u64).expect("work");
        let span = cp.get("span").and_then(JsonValue::as_u64).expect("span");
        assert!(work >= span && span > 0, "W={work} >= S={span} > 0");
        assert!(cp.get("headroom").is_some());

        // flight: structured events with resolved goal names.
        let v = c.expect_ok(&build::flight("s", Some(50))).expect("flight");
        let events = v
            .get("events")
            .and_then(JsonValue::as_array)
            .expect("events array");
        assert!(!events.is_empty() && events.len() <= 50);
        for e in events {
            assert_eq!(e.get("kind").and_then(JsonValue::as_str), Some("flight"));
            assert!(e.get("seq").and_then(JsonValue::as_u64).is_some());
            ddpa_obs::validate_metrics_line(&e.to_string()).expect("flight line validates");
        }
        assert!(v.get("recorded").and_then(JsonValue::as_u64).unwrap_or(0) > 0);

        // graph: JSON nodes/edges, and DOT text on request.
        let v = c.expect_ok(&build::graph("s", false)).expect("graph json");
        let graph = v.get("graph").expect("graph object");
        assert!(graph
            .get("nodes")
            .and_then(JsonValue::as_array)
            .is_some_and(|n| !n.is_empty()));
        assert!(graph.get("edges").and_then(JsonValue::as_array).is_some());
        let v = c.expect_ok(&build::graph("s", true)).expect("graph dot");
        let text = v.get("text").and_then(JsonValue::as_str).expect("dot text");
        assert!(text.starts_with("digraph goals {"), "{text}");
        assert!(text.contains("->"), "dot has edges: {text}");

        // scrape: strict metrics-JSONL covering server and session counters.
        let v = c.expect_ok(&build::scrape()).expect("scrape");
        let text = v.get("text").and_then(JsonValue::as_str).expect("text");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            v.get("lines").and_then(JsonValue::as_u64),
            Some(lines.len() as u64)
        );
        for line in &lines {
            ddpa_obs::validate_metrics_line(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        assert!(text.contains("\"server.requests\""));
        assert!(
            text.contains("\"session.s.flight_events\""),
            "scrape carries per-session flight counters:\n{text}"
        );

        handle.shutdown();
        runner.join().expect("server thread").expect("clean run");
    }

    #[test]
    fn parallel_query_requests_run_on_the_scheduler() {
        use crate::client::Client;
        use crate::proto::build;

        let config = ServeConfig {
            threads: 1,
            workers: 4,
            ..ServeConfig::default()
        };
        let server = Server::bind("127.0.0.1:0", config, Obs::new()).expect("bind");
        let addr = server.local_addr();
        let handle = server.handle();
        let runner = std::thread::spawn(move || server.run());

        let mut c = Client::connect(addr).expect("connect");
        let mut program = String::from("v0 = &obj\n");
        for i in 1..150 {
            program.push_str(&format!("v{} = v{}\n", i, i - 1));
        }
        c.expect_ok(&build::open("s", &program, false, None))
            .expect("open");
        // Per-request opt-in on a session whose default is sequential.
        let spec = QuerySpec::PointsTo {
            name: "v149".into(),
        };
        let v = c
            .expect_ok(&build::with_parallel_query(build::query(
                "s", &spec, None, None,
            )))
            .expect("parallel query");
        let result = v.get("result").expect("result");
        assert_eq!(
            result
                .get("pts")
                .and_then(JsonValue::as_array)
                .map(|a| a.iter().filter_map(JsonValue::as_str).collect::<Vec<_>>()),
            Some(vec!["obj"]),
        );
        assert_eq!(
            result.get("complete").and_then(JsonValue::as_bool),
            Some(true)
        );
        // A session opened with parallel_query applies it by default.
        c.expect_ok(&build::with_parallel_query(build::open(
            "par", &program, false, None,
        )))
        .expect("open parallel-default session");
        let v = c
            .expect_ok(&build::query("par", &spec, None, None))
            .expect("default-parallel query");
        assert_eq!(
            v.get("result")
                .and_then(|r| r.get("complete"))
                .and_then(JsonValue::as_bool),
            Some(true)
        );
        // Stats surface the scheduler knobs next to the pool width.
        let stats = c.expect_ok(&build::stats()).expect("stats");
        assert_eq!(stats.get("workers").and_then(JsonValue::as_u64), Some(4));
        assert_eq!(
            stats.get("sched_policy").and_then(JsonValue::as_str),
            Some("dfs")
        );

        handle.shutdown();
        runner.join().expect("server thread").expect("clean run");
    }

    #[test]
    fn access_log_lines_are_schema_valid() {
        use crate::client::Client;
        use crate::proto::build;

        let path = std::env::temp_dir().join(format!(
            "ddpa-access-test-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        let config = ServeConfig {
            threads: 1,
            access_log: Some(path.clone()),
            slow_ms: 0, // everything is "slow": the slow lines get exercised
            ..ServeConfig::default()
        };
        let server = Server::bind("127.0.0.1:0", config, Obs::new()).expect("bind");
        let addr = server.local_addr();
        let handle = server.handle();
        let runner = std::thread::spawn(move || server.run());

        let mut c = Client::connect(addr).expect("connect");
        c.expect_ok(&build::open("s", "p = &o\nq = p\n", false, None))
            .expect("open");
        let spec = QuerySpec::PointsTo { name: "q".into() };
        c.expect_ok(&build::query("s", &spec, None, None))
            .expect("query");
        c.expect_ok(&build::ping()).expect("ping");
        handle.shutdown();
        runner.join().expect("server thread").expect("clean run");

        let text = std::fs::read_to_string(&path).expect("access log written");
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        assert!(lines.len() >= 4, "open + query + slow + ping, got:\n{text}");
        for line in &lines {
            ddpa_obs::validate_metrics_line(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        let parsed: Vec<JsonValue> = lines
            .iter()
            .map(|l| ddpa_obs::parse_json(l).expect("valid"))
            .collect();
        let kind = |v: &JsonValue| v.get("kind").and_then(JsonValue::as_str).map(str::to_owned);
        let query_line = parsed
            .iter()
            .find(|v| {
                kind(v).as_deref() == Some("access")
                    && v.get("op").and_then(JsonValue::as_str) == Some("query")
            })
            .expect("query access line");
        assert_eq!(
            query_line.get("session").and_then(JsonValue::as_str),
            Some("s")
        );
        assert_eq!(
            query_line.get("ok").and_then(JsonValue::as_bool),
            Some(true)
        );
        assert!(query_line
            .get("trace")
            .and_then(JsonValue::as_str)
            .is_some());
        assert!(
            query_line
                .get("fires")
                .and_then(JsonValue::as_u64)
                .is_some(),
            "query lines carry work deltas"
        );
        assert!(
            parsed
                .iter()
                .any(|v| kind(v).as_deref() == Some("slow") && v.get("trace_report").is_some()),
            "slow lines carry the full trace report"
        );
        assert!(
            parsed.iter().any(|v| kind(v).as_deref() == Some("access")
                && v.get("op").and_then(JsonValue::as_str) == Some("ping")),
            "non-engine ops are access-logged too"
        );
    }

    #[test]
    fn racing_edit_discards_stale_snapshot_commit() {
        // Satellite regression: the background snapshotter exports under
        // the session lock but writes the file outside it. An edit landing
        // in that window must discard the stale write instead of
        // clobbering disk with pre-edit memo state.
        let server = Server::bind("127.0.0.1:0", ServeConfig::default(), Obs::new()).expect("bind");
        let handle = Arc::new(Mutex::new(
            Session::open("p = &o\nq = p\n", false, None).expect("valid"),
        ));
        pts_names(&handle, "q"); // warm the table so the export is non-empty
        let path = std::env::temp_dir().join(format!(
            "ddpa-stale-snap-{}-{:?}.snap",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);

        // Export, then let an edit land before the commit.
        let s = lock_session(&handle);
        let snapshot = s.export_snapshot();
        let generation = s.generation();
        drop(s);
        lock_session(&handle)
            .add_constraints("r = &u\n")
            .expect("edit");

        let committed =
            commit_session_snapshot(&server.state, &handle, &snapshot, generation, &path)
                .expect("no io error");
        assert_eq!(committed, None, "stale export is discarded");
        assert!(!path.exists(), "no file written for a discarded commit");
        assert_eq!(server.state.counters.snap_stale_discards.get(), 1);

        // A fresh export (post-edit generation) commits normally.
        let s = lock_session(&handle);
        let snapshot = s.export_snapshot();
        let generation = s.generation();
        drop(s);
        let committed =
            commit_session_snapshot(&server.state, &handle, &snapshot, generation, &path)
                .expect("no io error")
                .expect("fresh export commits");
        assert!(committed.0 > 0 && path.exists());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_connection_gauge_returns_to_zero_after_hammering() {
        use crate::client::Client;
        use crate::proto::build;
        use std::io::Write as _;

        let config = ServeConfig {
            threads: 2,
            max_connections: 4, // low cap: some of the hammer gets shed
            ..ServeConfig::default()
        };
        let server = Server::bind("127.0.0.1:0", config, Obs::new()).expect("bind");
        let addr = server.local_addr();
        let state = Arc::clone(&server.state);
        let handle = server.handle();
        let runner = std::thread::spawn(move || server.run());

        // Hammer: concurrent connections that ping, send garbage, or slam
        // the socket shut mid-line — every exit path must release its
        // connection slot.
        let workers: Vec<_> = (0..24)
            .map(|i| {
                std::thread::spawn(move || match i % 3 {
                    0 => {
                        // Normal request; busy-shed connections error
                        // here, which is fine — the slot still frees.
                        if let Ok(mut c) = Client::connect(addr) {
                            let _ = c.request(&build::ping());
                        }
                    }
                    1 => {
                        if let Ok(mut c) = Client::connect(addr) {
                            let _ = c.roundtrip_line("this is not json");
                        }
                    }
                    _ => {
                        // Half a request, then slam the socket shut.
                        if let Ok(mut s) = std::net::TcpStream::connect(addr) {
                            let _ = s.write_all(b"{\"op\":");
                        }
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("hammer thread");
        }

        // Connection threads unwind shortly after their peers hang up.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let open = state.open_connections.load(Ordering::SeqCst);
            if open == 0 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "open_connections stuck at {open}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }

        // The gauge is exported through stats; our own live connection is
        // the only one open.
        let mut c = Client::connect(addr).expect("connect");
        let stats = c.expect_ok(&build::stats()).expect("stats");
        assert_eq!(
            stats
                .get("counters")
                .and_then(|v| v.get("open_connections"))
                .and_then(JsonValue::as_u64),
            Some(1)
        );

        handle.shutdown();
        runner.join().expect("server thread").expect("clean run");
    }

    #[test]
    fn edits_invalidate_selectively_over_the_wire() {
        use crate::client::Client;
        use crate::proto::build;

        let server = Server::bind("127.0.0.1:0", ServeConfig::default(), Obs::new()).expect("bind");
        let addr = server.local_addr();
        let handle = server.handle();
        let runner = std::thread::spawn(move || server.run());

        let path = std::env::temp_dir().join(format!(
            "ddpa-rebind-snap-{}-{:?}.snap",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);

        let mut c = Client::connect(addr).expect("connect");
        c.expect_ok(&build::open("s", "p = &o\nq = p\nr = &u\n", false, None))
            .expect("open");
        let q = QuerySpec::PointsTo { name: "q".into() };
        let r = QuerySpec::PointsTo { name: "r".into() };
        c.expect_ok(&build::query("s", &q, None, None)).expect("q");
        c.expect_ok(&build::query("s", &r, None, None)).expect("r");
        let v = c
            .expect_ok(&build::snapshot("s", path.to_str()))
            .expect("snapshot");
        assert!(
            v.get("entries").and_then(JsonValue::as_u64).unwrap_or(0) > 0,
            "warm session exports entries: {v}"
        );

        // The edit response reports the split: the r-chain is dirtied,
        // the p/q chain survives.
        let v = c
            .expect_ok(&build::add_constraints("s", "r = &u2\n"))
            .expect("edit");
        let get = |v: &JsonValue, key: &str| -> u64 {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .unwrap_or_else(|| panic!("missing numeric {key:?} in {v}"))
        };
        assert!(get(&v, "invalidated") > 0);
        assert!(get(&v, "retained") > 0);
        assert_eq!(
            v.get("full_invalidation").and_then(JsonValue::as_bool),
            Some(false)
        );

        // Satellite: a pre-edit snapshot restores by rebinding survivors
        // instead of being refused on the hash mismatch. Restoring into
        // the edited session itself installs nothing new — the tentpole
        // already kept exactly those survivors warm.
        let v = c
            .expect_ok(&build::restore("s", path.to_str().expect("utf8 path")))
            .expect("restore after edit");
        assert_eq!(v.get("rebound").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(get(&v, "installed"), 0, "survivors were already warm");
        assert!(get(&v, "dropped") > 0, "edited r-chain dropped");

        // A cold session over the same edited program rebinds them for
        // real: survivors install, the dirtied chain is dropped.
        c.expect_ok(&build::open("s2", "p = &o\nq = p\nr = &u\n", false, None))
            .expect("open s2");
        c.expect_ok(&build::add_constraints("s2", "r = &u2\n"))
            .expect("edit s2");
        let v = c
            .expect_ok(&build::restore("s2", path.to_str().expect("utf8 path")))
            .expect("restore into cold session");
        assert_eq!(v.get("rebound").and_then(JsonValue::as_bool), Some(true));
        assert!(get(&v, "installed") > 0, "p/q survivors rebound");
        assert!(get(&v, "dropped") > 0, "edited r-chain dropped");
        // The rebound entries answer correctly post-edit.
        let v = c.expect_ok(&build::query("s2", &r, None, None)).expect("r");
        assert_eq!(
            v.get("result")
                .and_then(|res| res.get("pts"))
                .and_then(JsonValue::as_array)
                .map(|a| a.iter().filter_map(JsonValue::as_str).collect::<Vec<_>>()),
            Some(vec!["u", "u2"])
        );

        // A session over an unrelated program still refuses the snapshot.
        c.expect_ok(&build::open("other", "z = &w\n", false, None))
            .expect("open other");
        let v = c
            .request(&build::restore("other", path.to_str().expect("utf8 path")))
            .expect("roundtrip");
        assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(false));
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("code"))
                .and_then(JsonValue::as_str),
            Some("snapshot-error")
        );

        // The dirty-split counters surface in the metrics export.
        let scrape = c.expect_ok(&build::scrape()).expect("scrape");
        let text = scrape
            .get("text")
            .and_then(JsonValue::as_str)
            .expect("text");
        assert!(text.contains("\"demand.dirty.retained\""), "{text}");
        assert!(text.contains("\"demand.dirty.goals\""), "{text}");

        let _ = std::fs::remove_file(&path);
        handle.shutdown();
        runner.join().expect("server thread").expect("clean run");
    }

    #[test]
    fn budgeted_parallel_queries_report_their_fallback() {
        use crate::client::Client;
        use crate::proto::build;

        let config = ServeConfig {
            workers: 4,
            ..ServeConfig::default()
        };
        let server = Server::bind("127.0.0.1:0", config, Obs::new()).expect("bind");
        let addr = server.local_addr();
        let handle = server.handle();
        let runner = std::thread::spawn(move || server.run());

        let mut c = Client::connect(addr).expect("connect");
        let mut program = String::from("v0 = &obj\n");
        for i in 1..60 {
            program.push_str(&format!("v{} = v{}\n", i, i - 1));
        }
        c.expect_ok(&build::open("s", &program, false, None))
            .expect("open");
        let spec = QuerySpec::PointsTo { name: "v59".into() };

        // parallel + budget: the engine pins the query to the sequential
        // path, and the response says so instead of silently degrading.
        let v = c
            .expect_ok(&build::with_parallel_query(build::query(
                "s",
                &spec,
                Some(1_000_000),
                None,
            )))
            .expect("budgeted parallel query");
        assert_eq!(
            v.get("sched").and_then(JsonValue::as_str),
            Some("sequential-fallback")
        );

        // An unbudgeted cold parallel query really runs on the scheduler.
        c.expect_ok(&build::open("cold", &program, false, None))
            .expect("open cold");
        let v = c
            .expect_ok(&build::with_parallel_query(build::query(
                "cold", &spec, None, None,
            )))
            .expect("parallel query");
        assert_eq!(v.get("sched").and_then(JsonValue::as_str), Some("parallel"));

        // A plain sequential query carries no marker at all.
        let v = c
            .expect_ok(&build::query("s", &spec, None, None))
            .expect("sequential query");
        assert!(v.get("sched").is_none());

        // Fallbacks are counted and exported.
        let scrape = c.expect_ok(&build::scrape()).expect("scrape");
        let text = scrape
            .get("text")
            .and_then(JsonValue::as_str)
            .expect("text");
        assert!(text.contains("\"server.sched.fallbacks\""), "{text}");
        let stats = c.expect_ok(&build::stats()).expect("stats");
        assert_eq!(
            stats
                .get("counters")
                .and_then(|v| v.get("sched_fallbacks"))
                .and_then(JsonValue::as_u64),
            Some(1)
        );

        handle.shutdown();
        runner.join().expect("server thread").expect("clean run");
    }
}
