//! The `ddpa-serve` wire protocol: line-delimited JSON over TCP.
//!
//! Every request is one JSON object on one line; every response is one
//! JSON object on one line. Parsing reuses the hand-rolled reader in
//! [`ddpa_obs::parse_json`], so the whole protocol stays inside the
//! workspace's zero-dependency envelope.
//!
//! Successful responses carry `"ok": true` plus operation-specific
//! fields; failures carry `"ok": false` and an `"error"` object with a
//! stable [`ErrorCode`] and a human-readable message. The grammar is
//! documented in `docs/SERVER.md`.

use ddpa_obs::JsonValue;

/// A single query against a session, as it appears on the wire either
/// inside `{"op":"query",...}` or as an element of a batch's `"queries"`
/// array.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QuerySpec {
    /// `{"kind":"points-to","name":"main::p"}` — what may `name` point to?
    PointsTo { name: String },
    /// `{"kind":"pointed-to-by","name":"obj"}` — which pointers may point
    /// to `name`?
    PointedToBy { name: String },
    /// `{"kind":"may-alias","a":"p","b":"q"}` — may the two pointers
    /// alias?
    MayAlias { a: String, b: String },
    /// `{"kind":"call-targets","site":3}` — which functions may indirect
    /// call site number 3 invoke?
    CallTargets { site: u64 },
}

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Server-wide counters and per-session statistics.
    Stats,
    /// Graceful server shutdown.
    Shutdown,
    /// Create a session from program text.
    Open {
        session: String,
        program: String,
        /// `true` when `program` is MiniC source rather than constraint
        /// text.
        minic: bool,
        /// Default deduction budget for queries on this session.
        budget: Option<u64>,
        /// Session default for intra-query parallelism: when `true`,
        /// queries on this session run on the frame scheduler with the
        /// server's configured worker count unless a request overrides it.
        parallel_query: bool,
    },
    /// Drop a session.
    Close { session: String },
    /// Append constraint text to a live session, invalidating its memo
    /// table and bumping its generation.
    AddConstraints { session: String, program: String },
    /// One query against a session.
    Query {
        session: String,
        spec: QuerySpec,
        budget: Option<u64>,
        timeout_ms: Option<u64>,
        /// `"trace": true` — attach a per-request trace object (trace ID,
        /// wall time, work deltas) to the response.
        trace: bool,
        /// `"parallel_query": true/false` — per-request override of the
        /// session's intra-query parallelism default (`None` inherits it).
        parallel_query: Option<bool>,
    },
    /// Many queries against a session, answered in order.
    Batch {
        session: String,
        specs: Vec<QuerySpec>,
        /// Fan the batch over the server's worker pool (private engines,
        /// no shared warm cache) instead of the session's warm engine.
        parallel: bool,
        budget: Option<u64>,
        timeout_ms: Option<u64>,
        /// `"trace": true` — attach one trace object covering the whole
        /// batch to the response.
        trace: bool,
    },
    /// The server's ring of slowest requests, most recent first.
    Slow {
        /// Cap on returned entries (defaults to the whole ring).
        limit: Option<u64>,
    },
    /// Persist a session's completed fixpoints as a snapshot file on the
    /// *server's* filesystem.
    Snapshot {
        session: String,
        /// Target path; defaults to `<snapshot-dir>/<session>.snap` when
        /// the server was started with `--snapshot-dir`.
        path: Option<String>,
    },
    /// Warm-start a session from a snapshot file on the *server's*
    /// filesystem. Deliberately path-based, never inline: a multi-MB
    /// snapshot payload would trip the bounded line reader
    /// (`max_line_bytes`) and be truncated mid-frame.
    Restore { session: String, path: String },
    /// Goal-graph introspection for a session: the hottest goals by
    /// attributed work plus the critical-path profile (`W`, `S`, `W/S`).
    Inspect {
        session: String,
        /// Cap on returned hottest goals (defaults to 10).
        top: Option<u64>,
    },
    /// The session engine's flight-recorder contents, newest last.
    Flight {
        session: String,
        /// Cap on returned events (defaults to the whole ring).
        limit: Option<u64>,
    },
    /// The session's goal dependency graph, as JSON or Graphviz DOT.
    Graph {
        session: String,
        /// `true` → respond with a DOT `"text"` field instead of JSON
        /// nodes/edges.
        dot: bool,
    },
    /// Server-wide metrics scrape: the whole observability registry as
    /// metrics-JSONL text (one line per counter/gauge/histogram),
    /// embedded in the response's `"text"` field.
    Scrape,
}

/// Stable machine-readable error codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not valid JSON.
    BadJson,
    /// The JSON was well-formed but not a valid request.
    BadRequest,
    /// The line exceeded the server's `max_line_bytes`.
    Oversized,
    /// Unknown `"op"` value.
    UnknownOp,
    /// The named session does not exist.
    NoSession,
    /// `open` for a session name that already exists.
    SessionExists,
    /// A query named a node the session's program does not contain.
    NoNode,
    /// Program text failed to parse/lower.
    BadProgram,
    /// The server is saturated (in-flight or connection limit).
    Busy,
    /// The server is shutting down.
    ShuttingDown,
    /// A snapshot could not be written or restored (io failure, corrupt
    /// file, format-version or program-hash mismatch).
    Snapshot,
}

impl ErrorCode {
    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadJson => "bad-json",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::Oversized => "oversized",
            ErrorCode::UnknownOp => "unknown-op",
            ErrorCode::NoSession => "no-session",
            ErrorCode::SessionExists => "session-exists",
            ErrorCode::NoNode => "no-node",
            ErrorCode::BadProgram => "bad-program",
            ErrorCode::Busy => "busy",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Snapshot => "snapshot-error",
        }
    }
}

/// A protocol-level failure: code plus human-readable message.
#[derive(Clone, Debug, PartialEq)]
pub struct ProtoError {
    pub code: ErrorCode,
    pub message: String,
}

impl ProtoError {
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        ProtoError {
            code,
            message: message.into(),
        }
    }

    /// Renders the error as a response line (no trailing newline).
    pub fn to_line(&self) -> String {
        error_response(self.code, &self.message).to_string()
    }
}

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Builds a `{"ok":false,"error":{...}}` response value.
pub fn error_response(code: ErrorCode, message: &str) -> JsonValue {
    obj(vec![
        ("ok", JsonValue::Bool(false)),
        (
            "error",
            obj(vec![
                ("code", JsonValue::str(code.as_str())),
                ("message", JsonValue::str(message)),
            ]),
        ),
    ])
}

/// Builds a `{"ok":true,"op":op,...fields}` response value.
pub fn ok_response(op: &str, fields: Vec<(&str, JsonValue)>) -> JsonValue {
    let mut all = vec![("ok", JsonValue::Bool(true)), ("op", JsonValue::str(op))];
    all.extend(fields);
    obj(all)
}

fn bad(message: impl Into<String>) -> ProtoError {
    ProtoError::new(ErrorCode::BadRequest, message)
}

fn need_str(v: &JsonValue, key: &str) -> Result<String, ProtoError> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| bad(format!("missing or non-string field {key:?}")))
}

fn opt_u64(v: &JsonValue, key: &str) -> Result<Option<u64>, ProtoError> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(f) => f
            .as_u64()
            .map(Some)
            .ok_or_else(|| bad(format!("field {key:?} must be a non-negative integer"))),
    }
}

fn opt_str(v: &JsonValue, key: &str) -> Result<Option<String>, ProtoError> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(f) => f
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| bad(format!("field {key:?} must be a string"))),
    }
}

fn opt_bool(v: &JsonValue, key: &str) -> Result<Option<bool>, ProtoError> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(f) => f
            .as_bool()
            .map(Some)
            .ok_or_else(|| bad(format!("field {key:?} must be a boolean"))),
    }
}

/// Parses one query spec object (the `"kind"`-discriminated shape used by
/// both `query` and `batch`).
pub fn parse_spec(v: &JsonValue) -> Result<QuerySpec, ProtoError> {
    let kind = need_str(v, "kind")?;
    match kind.as_str() {
        "points-to" => Ok(QuerySpec::PointsTo {
            name: need_str(v, "name")?,
        }),
        "pointed-to-by" => Ok(QuerySpec::PointedToBy {
            name: need_str(v, "name")?,
        }),
        "may-alias" => Ok(QuerySpec::MayAlias {
            a: need_str(v, "a")?,
            b: need_str(v, "b")?,
        }),
        "call-targets" => {
            let site = opt_u64(v, "site")?
                .ok_or_else(|| bad("call-targets needs a \"site\" index"))?;
            Ok(QuerySpec::CallTargets { site })
        }
        other => Err(bad(format!(
            "unknown query kind {other:?} (expected points-to, pointed-to-by, may-alias, or call-targets)"
        ))),
    }
}

/// Parses a request line that has already been decoded from JSON.
pub fn parse_request(v: &JsonValue) -> Result<Request, ProtoError> {
    if v.as_object().is_none() {
        return Err(bad("request must be a JSON object"));
    }
    let op = need_str(v, "op").map_err(|_| bad("request needs a string \"op\" field"))?;
    match op.as_str() {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "open" => {
            let format = match v.get("format").and_then(JsonValue::as_str) {
                None | Some("constraints") => false,
                Some("minic") => true,
                Some(other) => {
                    return Err(bad(format!(
                        "unknown format {other:?} (expected constraints or minic)"
                    )))
                }
            };
            Ok(Request::Open {
                session: need_str(v, "session")?,
                program: need_str(v, "program")?,
                minic: format,
                budget: opt_u64(v, "budget")?,
                parallel_query: opt_bool(v, "parallel_query")?.unwrap_or(false),
            })
        }
        "close" => Ok(Request::Close {
            session: need_str(v, "session")?,
        }),
        "add-constraints" => Ok(Request::AddConstraints {
            session: need_str(v, "session")?,
            program: need_str(v, "program")?,
        }),
        "query" => Ok(Request::Query {
            session: need_str(v, "session")?,
            spec: parse_spec(v)?,
            budget: opt_u64(v, "budget")?,
            timeout_ms: opt_u64(v, "timeout_ms")?,
            trace: opt_bool(v, "trace")?.unwrap_or(false),
            parallel_query: opt_bool(v, "parallel_query")?,
        }),
        "batch" => {
            let queries = v
                .get("queries")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| bad("batch needs a \"queries\" array"))?;
            let specs = queries.iter().map(parse_spec).collect::<Result<_, _>>()?;
            Ok(Request::Batch {
                session: need_str(v, "session")?,
                specs,
                parallel: opt_bool(v, "parallel")?.unwrap_or(false),
                budget: opt_u64(v, "budget")?,
                timeout_ms: opt_u64(v, "timeout_ms")?,
                trace: opt_bool(v, "trace")?.unwrap_or(false),
            })
        }
        "slow" => Ok(Request::Slow {
            limit: opt_u64(v, "limit")?,
        }),
        "snapshot" => Ok(Request::Snapshot {
            session: need_str(v, "session")?,
            path: opt_str(v, "path")?,
        }),
        "restore" => {
            if v.get("data").is_some() || v.get("bytes").is_some() {
                return Err(bad(
                    "restore takes a server-side \"path\", not an inline payload \
                     (snapshots exceed the line-length limit)",
                ));
            }
            Ok(Request::Restore {
                session: need_str(v, "session")?,
                path: need_str(v, "path")?,
            })
        }
        "inspect" => Ok(Request::Inspect {
            session: need_str(v, "session")?,
            top: opt_u64(v, "top")?,
        }),
        "flight" => Ok(Request::Flight {
            session: need_str(v, "session")?,
            limit: opt_u64(v, "limit")?,
        }),
        "graph" => Ok(Request::Graph {
            session: need_str(v, "session")?,
            dot: opt_bool(v, "dot")?.unwrap_or(false),
        }),
        "scrape" => Ok(Request::Scrape),
        other => Err(ProtoError::new(
            ErrorCode::UnknownOp,
            format!("unknown op {other:?}"),
        )),
    }
}

/// Request builders shared by [`crate::Client`], the CLI, and tests.
///
/// Each returns the [`JsonValue`] that, serialized onto one line, forms
/// the corresponding request.
pub mod build {
    use super::{obj, JsonValue, QuerySpec};

    pub fn ping() -> JsonValue {
        obj(vec![("op", JsonValue::str("ping"))])
    }

    pub fn stats() -> JsonValue {
        obj(vec![("op", JsonValue::str("stats"))])
    }

    pub fn shutdown() -> JsonValue {
        obj(vec![("op", JsonValue::str("shutdown"))])
    }

    /// `{"op":"slow"}` — the server's slowest-request ring.
    pub fn slow(limit: Option<u64>) -> JsonValue {
        let mut fields = vec![("op", JsonValue::str("slow"))];
        if let Some(n) = limit {
            fields.push(("limit", JsonValue::U64(n)));
        }
        obj(fields)
    }

    /// Appends `"trace": true` to a built `query`/`batch` request so the
    /// response carries a per-request trace object.
    pub fn with_trace(request: JsonValue) -> JsonValue {
        match request {
            JsonValue::Object(mut fields) => {
                fields.push(("trace".to_owned(), JsonValue::Bool(true)));
                JsonValue::Object(fields)
            }
            other => other,
        }
    }

    /// Appends `"parallel_query": true` to a built `open`/`query` request:
    /// on `open` it becomes the session default, on `query` a per-request
    /// override of that default.
    pub fn with_parallel_query(request: JsonValue) -> JsonValue {
        match request {
            JsonValue::Object(mut fields) => {
                fields.push(("parallel_query".to_owned(), JsonValue::Bool(true)));
                JsonValue::Object(fields)
            }
            other => other,
        }
    }

    pub fn open(session: &str, program: &str, minic: bool, budget: Option<u64>) -> JsonValue {
        let mut fields = vec![
            ("op", JsonValue::str("open")),
            ("session", JsonValue::str(session)),
            ("program", JsonValue::str(program)),
            (
                "format",
                JsonValue::str(if minic { "minic" } else { "constraints" }),
            ),
        ];
        if let Some(b) = budget {
            fields.push(("budget", JsonValue::U64(b)));
        }
        obj(fields)
    }

    pub fn close(session: &str) -> JsonValue {
        obj(vec![
            ("op", JsonValue::str("close")),
            ("session", JsonValue::str(session)),
        ])
    }

    pub fn add_constraints(session: &str, program: &str) -> JsonValue {
        obj(vec![
            ("op", JsonValue::str("add-constraints")),
            ("session", JsonValue::str(session)),
            ("program", JsonValue::str(program)),
        ])
    }

    /// The `"kind"`-discriminated fields of one query spec.
    pub fn spec_fields(spec: &QuerySpec) -> Vec<(&'static str, JsonValue)> {
        match spec {
            QuerySpec::PointsTo { name } => vec![
                ("kind", JsonValue::str("points-to")),
                ("name", JsonValue::str(name.as_str())),
            ],
            QuerySpec::PointedToBy { name } => vec![
                ("kind", JsonValue::str("pointed-to-by")),
                ("name", JsonValue::str(name.as_str())),
            ],
            QuerySpec::MayAlias { a, b } => vec![
                ("kind", JsonValue::str("may-alias")),
                ("a", JsonValue::str(a.as_str())),
                ("b", JsonValue::str(b.as_str())),
            ],
            QuerySpec::CallTargets { site } => vec![
                ("kind", JsonValue::str("call-targets")),
                ("site", JsonValue::U64(*site)),
            ],
        }
    }

    /// `{"op":"snapshot","session":...}` — persist a session's memo to a
    /// server-side file (default path under the server's snapshot dir).
    pub fn snapshot(session: &str, path: Option<&str>) -> JsonValue {
        let mut fields = vec![
            ("op", JsonValue::str("snapshot")),
            ("session", JsonValue::str(session)),
        ];
        if let Some(p) = path {
            fields.push(("path", JsonValue::str(p)));
        }
        obj(fields)
    }

    /// `{"op":"restore","session":...,"path":...}` — warm-start a session
    /// from a server-side snapshot file.
    pub fn restore(session: &str, path: &str) -> JsonValue {
        obj(vec![
            ("op", JsonValue::str("restore")),
            ("session", JsonValue::str(session)),
            ("path", JsonValue::str(path)),
        ])
    }

    /// `{"op":"inspect","session":...}` — hottest goals and the
    /// critical-path profile.
    pub fn inspect(session: &str, top: Option<u64>) -> JsonValue {
        let mut fields = vec![
            ("op", JsonValue::str("inspect")),
            ("session", JsonValue::str(session)),
        ];
        if let Some(n) = top {
            fields.push(("top", JsonValue::U64(n)));
        }
        obj(fields)
    }

    /// `{"op":"flight","session":...}` — the session's flight-recorder
    /// contents.
    pub fn flight(session: &str, limit: Option<u64>) -> JsonValue {
        let mut fields = vec![
            ("op", JsonValue::str("flight")),
            ("session", JsonValue::str(session)),
        ];
        if let Some(n) = limit {
            fields.push(("limit", JsonValue::U64(n)));
        }
        obj(fields)
    }

    /// `{"op":"graph","session":...}` — the session's goal dependency
    /// graph (JSON, or DOT text with `dot=true`).
    pub fn graph(session: &str, dot: bool) -> JsonValue {
        let mut fields = vec![
            ("op", JsonValue::str("graph")),
            ("session", JsonValue::str(session)),
        ];
        if dot {
            fields.push(("dot", JsonValue::Bool(true)));
        }
        obj(fields)
    }

    /// `{"op":"scrape"}` — the server's metrics registry as JSONL text.
    pub fn scrape() -> JsonValue {
        obj(vec![("op", JsonValue::str("scrape"))])
    }

    pub fn query(
        session: &str,
        spec: &QuerySpec,
        budget: Option<u64>,
        timeout_ms: Option<u64>,
    ) -> JsonValue {
        let mut fields = vec![
            ("op", JsonValue::str("query")),
            ("session", JsonValue::str(session)),
        ];
        fields.extend(spec_fields(spec));
        if let Some(b) = budget {
            fields.push(("budget", JsonValue::U64(b)));
        }
        if let Some(t) = timeout_ms {
            fields.push(("timeout_ms", JsonValue::U64(t)));
        }
        obj(fields)
    }

    pub fn batch(
        session: &str,
        specs: &[QuerySpec],
        parallel: bool,
        budget: Option<u64>,
        timeout_ms: Option<u64>,
    ) -> JsonValue {
        let queries = specs
            .iter()
            .map(|s| obj(spec_fields(s)))
            .collect::<Vec<_>>();
        let mut fields = vec![
            ("op", JsonValue::str("batch")),
            ("session", JsonValue::str(session)),
            ("queries", JsonValue::Array(queries)),
        ];
        if parallel {
            fields.push(("parallel", JsonValue::Bool(true)));
        }
        if let Some(b) = budget {
            fields.push(("budget", JsonValue::U64(b)));
        }
        if let Some(t) = timeout_ms {
            fields.push(("timeout_ms", JsonValue::U64(t)));
        }
        obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddpa_obs::parse_json;

    fn round_trip(v: &JsonValue) -> Request {
        let line = v.to_string();
        let reparsed = parse_json(&line).expect("builder output is valid JSON");
        parse_request(&reparsed).expect("builder output is a valid request")
    }

    #[test]
    fn builders_round_trip_through_parser() {
        assert_eq!(round_trip(&build::ping()), Request::Ping);
        assert_eq!(round_trip(&build::stats()), Request::Stats);
        assert_eq!(round_trip(&build::shutdown()), Request::Shutdown);
        assert_eq!(
            round_trip(&build::open("s", "p = &o\n", false, Some(100))),
            Request::Open {
                session: "s".into(),
                program: "p = &o\n".into(),
                minic: false,
                budget: Some(100),
                parallel_query: false,
            }
        );
        assert_eq!(
            round_trip(&build::with_parallel_query(build::open(
                "s", "p = &o\n", false, None
            ))),
            Request::Open {
                session: "s".into(),
                program: "p = &o\n".into(),
                minic: false,
                budget: None,
                parallel_query: true,
            }
        );
        assert_eq!(
            round_trip(&build::close("s")),
            Request::Close {
                session: "s".into()
            }
        );
        assert_eq!(
            round_trip(&build::add_constraints("s", "q = p\n")),
            Request::AddConstraints {
                session: "s".into(),
                program: "q = p\n".into(),
            }
        );
        let specs = vec![
            QuerySpec::PointsTo { name: "p".into() },
            QuerySpec::PointedToBy { name: "o".into() },
            QuerySpec::MayAlias {
                a: "p".into(),
                b: "q".into(),
            },
            QuerySpec::CallTargets { site: 2 },
        ];
        for spec in &specs {
            assert_eq!(
                round_trip(&build::query("s", spec, None, Some(50))),
                Request::Query {
                    session: "s".into(),
                    spec: spec.clone(),
                    budget: None,
                    timeout_ms: Some(50),
                    trace: false,
                    parallel_query: None,
                }
            );
        }
        assert_eq!(
            round_trip(&build::with_parallel_query(build::query(
                "s", &specs[0], None, None,
            ))),
            Request::Query {
                session: "s".into(),
                spec: specs[0].clone(),
                budget: None,
                timeout_ms: None,
                trace: false,
                parallel_query: Some(true),
            }
        );
        assert_eq!(
            round_trip(&build::batch("s", &specs, true, Some(9), None)),
            Request::Batch {
                session: "s".into(),
                specs,
                parallel: true,
                budget: Some(9),
                timeout_ms: None,
                trace: false,
            }
        );
        assert_eq!(
            round_trip(&build::slow(Some(3))),
            Request::Slow { limit: Some(3) }
        );
        assert_eq!(
            round_trip(&build::slow(None)),
            Request::Slow { limit: None }
        );
        assert_eq!(
            round_trip(&build::snapshot("s", None)),
            Request::Snapshot {
                session: "s".into(),
                path: None,
            }
        );
        assert_eq!(
            round_trip(&build::snapshot("s", Some("/var/snaps/s.snap"))),
            Request::Snapshot {
                session: "s".into(),
                path: Some("/var/snaps/s.snap".into()),
            }
        );
        assert_eq!(
            round_trip(&build::restore("s", "/var/snaps/s.snap")),
            Request::Restore {
                session: "s".into(),
                path: "/var/snaps/s.snap".into(),
            }
        );
        assert_eq!(
            round_trip(&build::inspect("s", Some(5))),
            Request::Inspect {
                session: "s".into(),
                top: Some(5),
            }
        );
        assert_eq!(
            round_trip(&build::inspect("s", None)),
            Request::Inspect {
                session: "s".into(),
                top: None,
            }
        );
        assert_eq!(
            round_trip(&build::flight("s", Some(100))),
            Request::Flight {
                session: "s".into(),
                limit: Some(100),
            }
        );
        assert_eq!(
            round_trip(&build::graph("s", true)),
            Request::Graph {
                session: "s".into(),
                dot: true,
            }
        );
        assert_eq!(
            round_trip(&build::graph("s", false)),
            Request::Graph {
                session: "s".into(),
                dot: false,
            }
        );
        assert_eq!(round_trip(&build::scrape()), Request::Scrape);
    }

    #[test]
    fn restore_refuses_inline_payloads() {
        let v =
            parse_json("{\"op\":\"restore\",\"session\":\"s\",\"path\":\"f\",\"data\":\"AAAA\"}")
                .expect("valid JSON");
        let err = parse_request(&v).expect_err("inline payload refused");
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert!(err.message.contains("server-side"));
    }

    #[test]
    fn with_trace_flips_the_trace_flag() {
        let spec = QuerySpec::PointsTo { name: "p".into() };
        let traced = round_trip(&build::with_trace(build::query("s", &spec, None, None)));
        assert!(matches!(traced, Request::Query { trace: true, .. }));
        let batch = round_trip(&build::with_trace(build::batch(
            "s",
            std::slice::from_ref(&spec),
            false,
            None,
            None,
        )));
        assert!(matches!(batch, Request::Batch { trace: true, .. }));
    }

    #[test]
    fn rejects_malformed_requests() {
        let cases = [
            ("[1,2]", "must be a JSON object"),
            ("{}", "needs a string \"op\""),
            ("{\"op\":7}", "needs a string \"op\""),
            ("{\"op\":\"open\",\"session\":\"s\"}", "program"),
            (
                "{\"op\":\"query\",\"session\":\"s\",\"kind\":\"frobnicate\"}",
                "unknown query kind",
            ),
            (
                "{\"op\":\"query\",\"session\":\"s\",\"kind\":\"may-alias\",\"a\":\"p\"}",
                "\"b\"",
            ),
            (
                "{\"op\":\"batch\",\"session\":\"s\"}",
                "\"queries\" array",
            ),
            (
                "{\"op\":\"query\",\"session\":\"s\",\"kind\":\"points-to\",\"name\":\"p\",\"budget\":-1}",
                "non-negative integer",
            ),
        ];
        for (line, needle) in cases {
            let v = parse_json(line).expect("test input is valid JSON");
            let err = parse_request(&v).expect_err(line);
            assert_eq!(err.code, ErrorCode::BadRequest, "{line}");
            assert!(
                err.message.contains(needle),
                "{line}: {} should mention {needle:?}",
                err.message
            );
        }
    }

    #[test]
    fn unknown_op_gets_its_own_code() {
        let v = parse_json("{\"op\":\"frobnicate\"}").expect("valid JSON");
        let err = parse_request(&v).expect_err("unknown op");
        assert_eq!(err.code, ErrorCode::UnknownOp);
    }

    #[test]
    fn error_response_shape() {
        let line = error_response(ErrorCode::NoSession, "no session \"x\"").to_string();
        let v = parse_json(&line).expect("error response is valid JSON");
        assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(false));
        let e = v.get("error").expect("has error object");
        assert_eq!(
            e.get("code").and_then(JsonValue::as_str),
            Some("no-session")
        );
    }
}
