//! `ddpa-serve` — a persistent demand-query server.
//!
//! The demand engine's economics reward long-lived processes: memoized
//! subgoals make the second query over a program far cheaper than the
//! first, but a one-shot CLI throws that warm state away. This crate
//! keeps it alive behind a TCP socket speaking line-delimited JSON
//! (hand-rolled on `std` alone — the reader/writer live in
//! [`ddpa_obs::json`]):
//!
//! * **sessions** — named, each one loaded [`ConstraintProgram`] plus a
//!   warm [`DemandEngine`](ddpa_demand::DemandEngine) whose memo table
//!   persists across requests ([`Session`]);
//! * **queries** — `points-to`, `pointed-to-by`, `may-alias`,
//!   `call-targets`, singly or in batches; parallel batches fan out over
//!   a shared [`ThreadPool`](ddpa_demand::ThreadPool);
//! * **incremental edits** — `add-constraints` appends to a live
//!   session, invalidates its memo table, and stamps every answer with a
//!   generation counter so clients can detect pre-edit answers;
//! * **robustness** — per-request budgets and wall-clock timeouts,
//!   bounded request lines with oversized-frame resync, in-flight
//!   backpressure, graceful shutdown.
//!
//! Protocol grammar, session lifecycle, error codes, and metric names
//! are documented in `docs/SERVER.md`.
//!
//! # Examples
//!
//! ```
//! use ddpa_serve::{proto, Client, ServeConfig, Server};
//!
//! let server = Server::bind("127.0.0.1:0", ServeConfig::default(), ddpa_obs::Obs::new())?;
//! let addr = server.local_addr();
//! let handle = server.handle();
//! let thread = std::thread::spawn(move || server.run());
//!
//! let mut client = Client::connect(addr)?;
//! client.expect_ok(&proto::build::open("demo", "p = &o\nq = p\n", false, None))?;
//! let resp = client.expect_ok(&proto::build::query(
//!     "demo",
//!     &proto::QuerySpec::PointsTo { name: "q".into() },
//!     None,
//!     None,
//! ))?;
//! let pts = resp.get("result").and_then(|r| r.get("pts")).expect("has pts");
//! assert_eq!(pts.to_string(), "[\"o\"]");
//!
//! handle.shutdown();
//! thread.join().expect("server thread")?;
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! [`ConstraintProgram`]: ddpa_constraints::ConstraintProgram

pub mod client;
pub mod proto;
pub mod server;
pub mod session;

pub use client::Client;
pub use proto::{ErrorCode, ProtoError, QuerySpec, Request};
pub use server::{ServeConfig, Server, ServerHandle};
pub use session::{QueryAnswer, Session};
