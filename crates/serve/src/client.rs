//! A blocking line-protocol client for `ddpa-serve`.
//!
//! One request line out, one response line back. Used by the `ddpa
//! client` CLI subcommand, the benchmark harness, and the end-to-end
//! tests; request bodies come from [`crate::proto::build`].

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use ddpa_obs::JsonValue;

/// A connected client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // One request line per round-trip: Nagle + delayed ACK would add
        // tens of milliseconds of latency to every query.
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Sends one raw line and reads one raw response line (newlines
    /// stripped). Useful for protocol tests that send malformed input.
    pub fn roundtrip_line(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_line()
    }

    /// Reads one response line without sending anything (for servers
    /// that push a response unprompted, e.g. the busy rejection).
    pub fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Sends a request value and decodes the JSON response.
    pub fn request(&mut self, req: &JsonValue) -> std::io::Result<JsonValue> {
        let line = self.roundtrip_line(&req.to_string())?;
        ddpa_obs::parse_json(&line).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad response JSON: {e}"),
            )
        })
    }

    /// Sends a request and fails unless the response has `"ok": true`.
    pub fn expect_ok(&mut self, req: &JsonValue) -> std::io::Result<JsonValue> {
        let v = self.request(req)?;
        if v.get("ok").and_then(JsonValue::as_bool) == Some(true) {
            return Ok(v);
        }
        let code = v
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(JsonValue::as_str)
            .unwrap_or("unknown");
        let message = v
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(JsonValue::as_str)
            .unwrap_or("");
        Err(std::io::Error::other(format!(
            "server error {code}: {message}"
        )))
    }
}
