//! Iterative Tarjan strongly-connected components.
//!
//! Used by the exhaustive solver's periodic cycle-collapsing pass and by the
//! workload generator's structural statistics. The implementation is fully
//! iterative so deep copy-chains in generated programs cannot overflow the
//! call stack.

/// The SCC decomposition of a directed graph over `0..n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SccResult {
    /// `component[v]` is the SCC id of node `v`. Component ids are assigned
    /// in reverse topological order of the condensation (a node's component
    /// id is `>=` those of components it can reach).
    pub component: Vec<u32>,
    /// Total number of components.
    pub count: u32,
}

impl SccResult {
    /// Returns the size of each component, indexed by component id.
    pub fn component_sizes(&self) -> Vec<u32> {
        let mut sizes = vec![0u32; self.count as usize];
        for &c in &self.component {
            sizes[c as usize] += 1;
        }
        sizes
    }

    /// Number of components with more than one node (true cycles).
    pub fn nontrivial_count(&self) -> usize {
        self.component_sizes().iter().filter(|&&s| s > 1).count()
    }
}

/// Computes strongly-connected components of the graph with `n` nodes whose
/// successors are produced by `successors(v, out)` (pushing into `out`).
///
/// # Examples
///
/// ```
/// use ddpa_support::scc::tarjan;
///
/// // 0 -> 1 -> 2 -> 0 (cycle), 3 isolated
/// let edges = vec![vec![1], vec![2], vec![0], vec![]];
/// let scc = tarjan(4, |v, out| out.extend(&edges[v as usize]));
/// assert_eq!(scc.count, 2);
/// assert_eq!(scc.component[0], scc.component[1]);
/// assert_eq!(scc.component[1], scc.component[2]);
/// assert_ne!(scc.component[0], scc.component[3]);
/// ```
pub fn tarjan(n: usize, mut successors: impl FnMut(u32, &mut Vec<u32>)) -> SccResult {
    const UNVISITED: u32 = u32::MAX;

    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut component = vec![UNVISITED; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut count = 0u32;

    // Explicit DFS frame: (node, successors, next successor position).
    struct Frame {
        node: u32,
        succs: Vec<u32>,
        pos: usize,
    }

    let mut scratch: Vec<u32> = Vec::new();
    for start in 0..n as u32 {
        if index[start as usize] != UNVISITED {
            continue;
        }
        let mut frames: Vec<Frame> = Vec::new();
        index[start as usize] = next_index;
        lowlink[start as usize] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start as usize] = true;
        scratch.clear();
        successors(start, &mut scratch);
        frames.push(Frame {
            node: start,
            succs: std::mem::take(&mut scratch),
            pos: 0,
        });

        while let Some(frame) = frames.last_mut() {
            if frame.pos < frame.succs.len() {
                let w = frame.succs[frame.pos];
                frame.pos += 1;
                let wi = w as usize;
                if index[wi] == UNVISITED {
                    index[wi] = next_index;
                    lowlink[wi] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[wi] = true;
                    scratch.clear();
                    successors(w, &mut scratch);
                    frames.push(Frame {
                        node: w,
                        succs: std::mem::take(&mut scratch),
                        pos: 0,
                    });
                } else if on_stack[wi] {
                    let v = frame.node as usize;
                    lowlink[v] = lowlink[v].min(index[wi]);
                }
            } else {
                let v = frame.node;
                let vi = v as usize;
                if lowlink[vi] == index[vi] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        component[w as usize] = count;
                        if w == v {
                            break;
                        }
                    }
                    count += 1;
                }
                frames.pop();
                if let Some(parent) = frames.last() {
                    let p = parent.node as usize;
                    lowlink[p] = lowlink[p].min(lowlink[vi]);
                }
            }
        }
    }

    SccResult { component, count }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scc_of(edges: &[Vec<u32>]) -> SccResult {
        tarjan(edges.len(), |v, out| out.extend(&edges[v as usize]))
    }

    #[test]
    fn empty_graph() {
        let r = scc_of(&[]);
        assert_eq!(r.count, 0);
    }

    #[test]
    fn dag_has_singleton_components() {
        let r = scc_of(&[vec![1, 2], vec![2], vec![]]);
        assert_eq!(r.count, 3);
        assert_eq!(r.nontrivial_count(), 0);
        // Reverse topological: node 2 (sink) finishes first.
        assert!(r.component[2] < r.component[1]);
        assert!(r.component[1] < r.component[0]);
    }

    #[test]
    fn self_loop_is_singleton_component() {
        let r = scc_of(&[vec![0]]);
        assert_eq!(r.count, 1);
        // A self loop is a size-1 component (not "nontrivial" by node count).
        assert_eq!(r.nontrivial_count(), 0);
    }

    #[test]
    fn two_cycles_bridge() {
        // 0<->1 -> 2<->3
        let r = scc_of(&[vec![1], vec![0, 2], vec![3], vec![2]]);
        assert_eq!(r.count, 2);
        assert_eq!(r.component[0], r.component[1]);
        assert_eq!(r.component[2], r.component[3]);
        assert_ne!(r.component[0], r.component[2]);
        assert_eq!(r.nontrivial_count(), 2);
        assert_eq!(r.component_sizes(), vec![2, 2]);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        let n = 200_000;
        let edges: Vec<Vec<u32>> = (0..n)
            .map(|v| {
                if v + 1 < n {
                    vec![v as u32 + 1]
                } else {
                    vec![]
                }
            })
            .collect();
        let r = scc_of(&edges);
        assert_eq!(r.count, n as u32);
    }

    #[test]
    fn big_cycle_is_one_component() {
        let n = 10_000u32;
        let edges: Vec<Vec<u32>> = (0..n).map(|v| vec![(v + 1) % n]).collect();
        let r = scc_of(&edges);
        assert_eq!(r.count, 1);
        assert_eq!(r.component_sizes(), vec![n]);
    }
}
