//! Union-find (disjoint sets) with path halving and union by rank.
//!
//! The exhaustive Andersen solver collapses detected pointer-equivalence
//! cycles by unioning their nodes; all constraint-graph operations then go
//! through [`UnionFind::find`] to reach the representative.

/// Disjoint-set forest over dense `u32` ids.
///
/// # Examples
///
/// ```
/// use ddpa_support::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert_eq!(uf.find(0), uf.find(1));
/// assert_ne!(uf.find(1), uf.find(2));
/// ```
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the structure tracks no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Adds a fresh singleton element, returning its id.
    pub fn push(&mut self) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        self.rank.push(0);
        self.sets += 1;
        id
    }

    /// Returns the representative of `x`'s set, compressing paths.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    /// Returns the representative of `x`'s set without mutating.
    pub fn find_readonly(&self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x
    }

    /// Unions the sets of `a` and `b`; returns the new representative,
    /// or `None` if they were already in the same set.
    pub fn union(&mut self, a: u32, b: u32) -> Option<u32> {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return None;
        }
        self.sets -= 1;
        let (ra, rb) = (ra as usize, rb as usize);
        let root = if self.rank[ra] < self.rank[rb] {
            self.parent[ra] = rb as u32;
            rb as u32
        } else if self.rank[ra] > self.rank[rb] {
            self.parent[rb] = ra as u32;
            ra as u32
        } else {
            self.parent[rb] = ra as u32;
            self.rank[ra] += 1;
            ra as u32
        };
        Some(root)
    }

    /// Returns `true` if `a` and `b` are in the same set.
    pub fn same_set(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_distinct() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.set_count(), 3);
        assert!(!uf.same_set(0, 1));
        assert!(uf.same_set(2, 2));
    }

    #[test]
    fn union_merges_transitively() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(1, 2);
        assert!(uf.same_set(0, 2));
        assert_eq!(uf.set_count(), 3);
        assert!(uf.union(0, 2).is_none());
    }

    #[test]
    fn push_adds_singleton() {
        let mut uf = UnionFind::new(1);
        let id = uf.push();
        assert_eq!(id, 1);
        assert!(!uf.same_set(0, 1));
        uf.union(0, 1);
        assert!(uf.same_set(0, 1));
    }

    #[test]
    fn find_readonly_matches_find() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 3);
        uf.union(3, 5);
        let rep = uf.find(5);
        assert_eq!(uf.find_readonly(0), rep);
    }
}
