//! Counters, timers and distribution summaries for the evaluation harness.

use std::fmt;
use std::time::Duration;

/// Summary statistics of a sample of `u64` measurements (per-query costs,
/// set sizes, …). Used to regenerate the paper's distribution figures.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// 50th percentile.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl Summary {
    /// Computes a summary of `samples` (sorts its argument).
    ///
    /// Returns the all-zero summary for an empty sample.
    pub fn of(samples: &mut [u64]) -> Self {
        if samples.is_empty() {
            return Summary::default();
        }
        samples.sort_unstable();
        let pct = |p: f64| -> u64 {
            let rank = ((samples.len() as f64 - 1.0) * p).floor() as usize;
            samples[rank]
        };
        Summary {
            count: samples.len(),
            min: samples[0],
            max: *samples.last().expect("nonempty"),
            sum: samples.iter().sum(),
            p50: pct(0.50),
            p90: pct(0.90),
            p99: pct(0.99),
        }
    }

    /// Arithmetic mean of the samples (0 for an empty sample).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={} p50={} p90={} p99={} max={} mean={:.1}",
            self.count,
            self.min,
            self.p50,
            self.p90,
            self.p99,
            self.max,
            self.mean()
        )
    }
}

/// Formats a count with thousands separators (`1234567` → `1,234,567`).
pub fn fmt_count(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Formats a duration compactly (`1.23s`, `45.6ms`, `789µs`).
pub fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.2}s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.1}µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_is_zero() {
        let s = Summary::of(&mut []);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn summary_percentiles() {
        let mut samples: Vec<u64> = (1..=100).collect();
        let s = Summary::of(&mut samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p90, 90);
        assert_eq!(s.p99, 99);
        assert!((s.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::of(&mut [42]);
        assert_eq!(s.min, 42);
        assert_eq!(s.max, 42);
        assert_eq!(s.p99, 42);
    }

    #[test]
    fn count_formatting() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1000), "1,000");
        assert_eq!(fmt_count(1234567), "1,234,567");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
    }
}
