//! String interning.
//!
//! Symbols (variable names, function names, field names) appear in many
//! places — the AST, the constraint program, diagnostics — so they are
//! interned once into a [`Symbol`] and compared by id afterwards.

use std::collections::HashMap;

use crate::define_index;
use crate::idx::IndexVec;

define_index! {
    /// An interned string.
    ///
    /// Obtained from [`Interner::intern`]; resolved back to text with
    /// [`Interner::resolve`].
    pub struct Symbol;
}

/// A deduplicating store of strings.
///
/// # Examples
///
/// ```
/// use ddpa_support::Interner;
///
/// let mut interner = Interner::new();
/// let a = interner.intern("main");
/// let b = interner.intern("main");
/// assert_eq!(a, b);
/// assert_eq!(interner.resolve(a), "main");
/// ```
#[derive(Clone, Debug, Default)]
pub struct Interner {
    strings: IndexVec<Symbol, Box<str>>,
    map: HashMap<Box<str>, Symbol>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `text`, returning its symbol. Idempotent.
    pub fn intern(&mut self, text: &str) -> Symbol {
        if let Some(&sym) = self.map.get(text) {
            return sym;
        }
        let boxed: Box<str> = text.into();
        let sym = self.strings.push(boxed.clone());
        self.map.insert(boxed, sym);
        sym
    }

    /// Returns the text of `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was not produced by this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym]
    }

    /// Returns the symbol for `text` if it has been interned.
    pub fn lookup(&self, text: &str) -> Option<Symbol> {
        self.map.get(text).copied()
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Returns `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates() {
        let mut i = Interner::new();
        let a = i.intern("x");
        let b = i.intern("y");
        let a2 = i.intern("x");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_roundtrips() {
        let mut i = Interner::new();
        let names = ["alpha", "beta", "gamma", ""];
        let syms: Vec<_> = names.iter().map(|n| i.intern(n)).collect();
        for (name, sym) in names.iter().zip(&syms) {
            assert_eq!(i.resolve(*sym), *name);
        }
    }

    #[test]
    fn lookup_only_finds_interned() {
        let mut i = Interner::new();
        assert!(i.lookup("missing").is_none());
        let s = i.intern("present");
        assert_eq!(i.lookup("present"), Some(s));
    }
}
