//! Strongly typed index newtypes and dense maps keyed by them.
//!
//! Pointer analysis juggles several id spaces (nodes, constraints, call
//! sites, functions, …). Mixing them up is a classic source of subtle bugs,
//! so each id space gets its own `u32` newtype via [`crate::define_index!`], and
//! dense per-id storage uses [`IndexVec`] which only accepts the matching
//! index type.

use std::fmt;
use std::hash::Hash;
use std::marker::PhantomData;
use std::ops::{Index, IndexMut};

/// A strongly typed dense index.
///
/// Implemented by the newtypes produced by [`crate::define_index!`]. The contract
/// is that `Self::new(i).index() == i` for all `i < u32::MAX as usize`.
pub trait Idx: Copy + Eq + Ord + Hash + fmt::Debug + 'static {
    /// Creates the index from a raw position.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in `u32`.
    fn new(value: usize) -> Self;

    /// Returns the raw position of this index.
    fn index(self) -> usize;
}

/// Defines a `u32` index newtype implementing [`Idx`].
///
/// # Examples
///
/// ```
/// use ddpa_support::define_index;
/// use ddpa_support::idx::Idx;
///
/// define_index! {
///     /// Identifies a widget.
///     pub struct WidgetId;
/// }
///
/// let w = WidgetId::new(3);
/// assert_eq!(w.index(), 3);
/// assert_eq!(format!("{w}"), "3");
/// ```
#[macro_export]
macro_rules! define_index {
    ($(#[$meta:meta])* $vis:vis struct $name:ident;) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        $vis struct $name(u32);

        impl $name {
            /// Creates the index from a raw `u32`.
            #[inline]
            $vis const fn from_u32(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw `u32` value.
            #[inline]
            #[allow(dead_code)]
            $vis const fn as_u32(self) -> u32 {
                self.0
            }
        }

        impl $crate::idx::Idx for $name {
            #[inline]
            fn new(value: usize) -> Self {
                assert!(value < u32::MAX as usize, "index overflow");
                Self(value as u32)
            }

            #[inline]
            fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl ::std::fmt::Debug for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl ::std::fmt::Display for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

/// A dense vector keyed by a typed index.
///
/// # Examples
///
/// ```
/// use ddpa_support::{define_index, IndexVec};
/// use ddpa_support::idx::Idx;
///
/// define_index! { pub struct NodeId; }
///
/// let mut names: IndexVec<NodeId, &str> = IndexVec::new();
/// let a = names.push("a");
/// let b = names.push("b");
/// assert_eq!(names[a], "a");
/// assert_eq!(names[b], "b");
/// assert_eq!(names.len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct IndexVec<I: Idx, T> {
    raw: Vec<T>,
    _marker: PhantomData<fn(I)>,
}

impl<I: Idx, T> IndexVec<I, T> {
    /// Creates an empty `IndexVec`.
    pub const fn new() -> Self {
        Self {
            raw: Vec::new(),
            _marker: PhantomData,
        }
    }

    /// Creates an empty `IndexVec` with the given capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            raw: Vec::with_capacity(capacity),
            _marker: PhantomData,
        }
    }

    /// Creates an `IndexVec` holding `n` clones of `value`.
    pub fn from_elem(value: T, n: usize) -> Self
    where
        T: Clone,
    {
        Self {
            raw: vec![value; n],
            _marker: PhantomData,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// Returns `true` if the vector holds no elements.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Appends an element, returning its index.
    pub fn push(&mut self, value: T) -> I {
        let idx = I::new(self.raw.len());
        self.raw.push(value);
        idx
    }

    /// Returns the index the next `push` will use.
    pub fn next_index(&self) -> I {
        I::new(self.raw.len())
    }

    /// Returns a reference to the element at `index`, if in bounds.
    pub fn get(&self, index: I) -> Option<&T> {
        self.raw.get(index.index())
    }

    /// Returns a mutable reference to the element at `index`, if in bounds.
    pub fn get_mut(&mut self, index: I) -> Option<&mut T> {
        self.raw.get_mut(index.index())
    }

    /// Iterates over the elements in index order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.raw.iter()
    }

    /// Iterates mutably over the elements in index order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.raw.iter_mut()
    }

    /// Iterates over `(index, &element)` pairs.
    pub fn iter_enumerated(&self) -> impl Iterator<Item = (I, &T)> {
        self.raw.iter().enumerate().map(|(i, t)| (I::new(i), t))
    }

    /// Iterates over all valid indices.
    pub fn indices(&self) -> impl Iterator<Item = I> + 'static {
        (0..self.raw.len()).map(I::new)
    }

    /// Grows the vector to `n` elements by cloning `value`.
    pub fn resize(&mut self, n: usize, value: T)
    where
        T: Clone,
    {
        self.raw.resize(n, value);
    }

    /// Ensures index `index` is valid, filling with `fill()` as needed,
    /// then returns a mutable reference to the element.
    pub fn ensure(&mut self, index: I, mut fill: impl FnMut() -> T) -> &mut T {
        while self.raw.len() <= index.index() {
            self.raw.push(fill());
        }
        &mut self.raw[index.index()]
    }

    /// Returns the underlying storage as a slice.
    pub fn as_slice(&self) -> &[T] {
        &self.raw
    }
}

impl<I: Idx, T> Default for IndexVec<I, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<I: Idx, T: fmt::Debug> fmt::Debug for IndexVec<I, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.raw.iter()).finish()
    }
}

impl<I: Idx, T> Index<I> for IndexVec<I, T> {
    type Output = T;

    fn index(&self, index: I) -> &T {
        &self.raw[index.index()]
    }
}

impl<I: Idx, T> IndexMut<I> for IndexVec<I, T> {
    fn index_mut(&mut self, index: I) -> &mut T {
        &mut self.raw[index.index()]
    }
}

impl<I: Idx, T> FromIterator<T> for IndexVec<I, T> {
    fn from_iter<It: IntoIterator<Item = T>>(iter: It) -> Self {
        Self {
            raw: Vec::from_iter(iter),
            _marker: PhantomData,
        }
    }
}

impl<I: Idx, T> Extend<T> for IndexVec<I, T> {
    fn extend<It: IntoIterator<Item = T>>(&mut self, iter: It) {
        self.raw.extend(iter);
    }
}

impl<'a, I: Idx, T> IntoIterator for &'a IndexVec<I, T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.raw.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    define_index! {
        /// Test index.
        pub struct TestId;
    }

    #[test]
    fn push_and_index() {
        let mut v: IndexVec<TestId, i32> = IndexVec::new();
        let a = v.push(10);
        let b = v.push(20);
        assert_eq!(v[a], 10);
        assert_eq!(v[b], 20);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
    }

    #[test]
    fn enumerated_matches_indices() {
        let v: IndexVec<TestId, char> = "abc".chars().collect();
        let pairs: Vec<_> = v.iter_enumerated().map(|(i, c)| (i.index(), *c)).collect();
        assert_eq!(pairs, vec![(0, 'a'), (1, 'b'), (2, 'c')]);
    }

    #[test]
    fn ensure_grows() {
        let mut v: IndexVec<TestId, i32> = IndexVec::new();
        *v.ensure(TestId::from_u32(3), || 0) = 7;
        assert_eq!(v.len(), 4);
        assert_eq!(v[TestId::from_u32(3)], 7);
        assert_eq!(v[TestId::from_u32(0)], 0);
    }

    #[test]
    fn display_and_debug() {
        let t = TestId::from_u32(5);
        assert_eq!(format!("{t}"), "5");
        assert_eq!(format!("{t:?}"), "TestId(5)");
    }

    #[test]
    fn next_index_is_stable() {
        let mut v: IndexVec<TestId, u8> = IndexVec::new();
        let next = v.next_index();
        let pushed = v.push(1);
        assert_eq!(next, pushed);
    }
}
