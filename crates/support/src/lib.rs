//! Foundation data structures shared by every crate in the `ddpa` workspace.
//!
//! This crate contains no pointer-analysis logic. It provides the small,
//! deterministic building blocks the analyses are made of:
//!
//! * [`idx`] — strongly typed `u32` index newtypes ([`define_index!`]) and
//!   the dense [`IndexVec`] keyed by them;
//! * [`intern`] — a string interner for symbol names;
//! * [`rng`] — a seeded, dependency-free xoshiro256++ generator used by
//!   the workload generators and property tests;
//! * [`bitset`] — a sorted, chunked [`SparseBitSet`] over `u32` keys;
//! * [`hybrid`] — [`HybridSet`], the points-to set representation (inline
//!   sorted array for small sets, sparse bitset for large ones);
//! * [`unionfind`] — union-find with path compression (used for online
//!   cycle collapsing in the exhaustive solver);
//! * [`scc`] — iterative Tarjan strongly-connected components;
//! * [`stats`] — counters, timers and percentile summaries used by the
//!   evaluation harness.
//!
//! Everything here iterates in a deterministic order so that analyses and
//! generated workloads are reproducible byte-for-byte.
//!
//! # Examples
//!
//! ```
//! use ddpa_support::hybrid::HybridSet;
//!
//! let mut pts = HybridSet::new();
//! assert!(pts.insert(7));
//! assert!(!pts.insert(7));
//! assert!(pts.contains(7));
//! assert_eq!(pts.iter().collect::<Vec<_>>(), vec![7]);
//! ```

pub mod bitset;
pub mod hybrid;
pub mod idx;
pub mod intern;
pub mod rng;
pub mod scc;
pub mod stats;
pub mod unionfind;

pub use bitset::SparseBitSet;
pub use hybrid::HybridSet;
pub use idx::{Idx, IndexVec};
pub use intern::{Interner, Symbol};
pub use rng::Rng;
pub use stats::Summary;
pub use unionfind::UnionFind;
